//! Agreement between the two simulation fidelities (DESIGN.md §6): the
//! round-based fast model must track the packet-level simulator on clean
//! paths, and both must drive the estimator to the same HD verdicts in
//! clear-cut cases.

use edgeperf::core::{Estimator, HD_GOODPUT_BPS, MILLISECOND, SECOND};
use edgeperf::netsim::{FastFlow, FlowSim, PathConfig, PathState};
use edgeperf::tcp::TcpConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn packet_level(bytes: u64, bw: u64, rtt_ms: u64) -> (u64, u32) {
    let mut sim =
        FlowSim::new(TcpConfig::ns3_validation(10), PathConfig::ideal(bw, rtt_ms * MILLISECOND), 1);
    sim.schedule_write(0, bytes);
    let res = sim.run(600 * SECOND);
    let w = res.writes[0];
    (w.t_full_ack.unwrap() - w.first_tx.unwrap().0, w.first_tx.unwrap().1)
}

fn fast(bytes: u64, bw: u64, rtt_ms: u64) -> (u64, u32) {
    let mut rng = ChaCha12Rng::seed_from_u64(1);
    let state = PathState {
        base_rtt: rtt_ms * MILLISECOND,
        standing_queue: 0,
        jitter_max: 0,
        bottleneck_bps: bw,
        loss: 0.0,
    };
    let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
    let tr = f.transfer(bytes, &state, &mut rng);
    (tr.ttotal, tr.wnic)
}

#[test]
fn transfer_times_agree_on_clean_paths() {
    for &(bytes, bw, rtt) in &[
        (30_000u64, 10_000_000u64, 40u64),
        (100_000, 5_000_000, 60),
        (300_000, 20_000_000, 25),
        (1_000_000, 8_000_000, 100),
        (15_000, 2_000_000, 150),
    ] {
        let (tp, wp) = packet_level(bytes, bw, rtt);
        let (tf, wf) = fast(bytes, bw, rtt);
        assert_eq!(wp, wf, "Wnic must match exactly");
        let ratio = tf as f64 / tp as f64;
        assert!(
            (0.7..1.35).contains(&ratio),
            "{bytes}B @ {bw}bps/{rtt}ms: packet {tp} vs fast {tf} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn estimator_verdicts_agree_in_clear_cases() {
    // A 25 Mbps path trivially sustains HD; a 1 Mbps path never does.
    for &(bw, expect_hd) in &[(25_000_000u64, true), (1_000_000, false)] {
        let bytes = 250_000u64;
        let rtt = 50u64;

        for (label, (ttotal, wnic)) in
            [("packet", packet_level(bytes, bw, rtt)), ("fast", fast(bytes, bw, rtt))]
        {
            // Build the measured transaction by hand (full-ack endpoint is
            // close enough for clear-cut cases).
            let txn = edgeperf::core::instrument::Transaction {
                bytes_full: bytes,
                bytes_measured: bytes - 1_460,
                ttotal,
                wnic: wnic as u64,
                eligible: true,
                coalesced: 1,
            };
            let mut est = Estimator::new(HD_GOODPUT_BPS);
            let o = est.evaluate(&txn, rtt * MILLISECOND);
            assert!(o.testable, "{label}: 250 kB must be able to test HD");
            assert_eq!(o.achieved, expect_hd, "{label} @ {bw}bps: wrong verdict");
        }
    }
}

#[test]
fn fast_model_is_conservative_or_close_under_loss() {
    // Under loss both models slow down; check they stay within 2× of
    // each other on average (loss realizations differ by construction).
    let mut sum_ratio = 0.0;
    let n = 30;
    for seed in 0..n {
        let mut cfg = PathConfig::ideal(8_000_000, 50 * MILLISECOND);
        cfg.loss = edgeperf::netsim::LossModel::bernoulli(0.01);
        let mut sim = FlowSim::new(TcpConfig::ns3_validation(10), cfg, seed);
        sim.schedule_write(0, 200_000);
        let res = sim.run(600 * SECOND);
        let tp = res.writes[0].t_full_ack.unwrap();

        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let state = PathState {
            base_rtt: 50 * MILLISECOND,
            standing_queue: 0,
            jitter_max: 0,
            bottleneck_bps: 8_000_000,
            loss: 0.01,
        };
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        let tf = f.transfer(200_000, &state, &mut rng).ttotal;
        sum_ratio += tf as f64 / tp as f64;
    }
    let mean_ratio = sum_ratio / n as f64;
    assert!((0.5..2.0).contains(&mean_ratio), "mean ratio = {mean_ratio:.2}");
}
