//! Property-based tests of the core estimation invariants, cross-checked
//! against the packet-level simulator.

use edgeperf::core::gtestable::{gtestable_bps, next_wstart, rounds, sum_wss, wss};
use edgeperf::core::tmodel::{achieved, delivery_rate, t_model};
use edgeperf::core::MILLISECOND;
use proptest::prelude::*;

proptest! {
    /// Eq. 1's integer form matches the closed-form logarithm.
    #[test]
    fn rounds_matches_closed_form(btotal in 1u64..10_000_000, wstart in 100u64..1_000_000) {
        let m = rounds(btotal, wstart);
        let expect = ((btotal as f64 / wstart as f64 + 1.0).log2().ceil()).max(1.0) as u32;
        prop_assert_eq!(m, expect);
    }

    /// The geometric identities behind eqs. 2–3.
    #[test]
    fn wss_sums_are_consistent(k in 1u32..30, wstart in 1u64..1_000_000) {
        let direct: u64 = (1..=k).map(|n| wss(n, wstart)).sum();
        prop_assert_eq!(direct, sum_wss(k, wstart));
    }

    /// Gtestable is monotone in response size: more bytes can only test
    /// an equal-or-higher rate.
    #[test]
    fn gtestable_monotone_in_bytes(
        b1 in 1_000u64..1_000_000,
        extra in 0u64..1_000_000,
        wstart in 1_000u64..100_000,
        rtt_ms in 5u64..300,
    ) {
        let rtt = rtt_ms * MILLISECOND;
        let g1 = gtestable_bps(b1, wstart, rtt);
        let g2 = gtestable_bps(b1 + extra, wstart, rtt);
        prop_assert!(g2 >= g1 * 0.999_999, "g({}) = {g1} > g({}) = {g2}", b1, b1 + extra);
    }

    /// Carry-forward never shrinks the window below the measured Wnic.
    #[test]
    fn next_wstart_at_least_wnic(
        prev_w in 1_000u64..100_000,
        prev_b in 1u64..10_000_000,
        wnic in 1_000u64..1_000_000,
    ) {
        prop_assert!(next_wstart(prev_w, prev_b, wnic) >= wnic);
        prop_assert!(next_wstart(prev_w, prev_b, wnic) >= prev_w);
    }

    /// Tmodel is non-increasing in the target rate.
    #[test]
    fn t_model_non_increasing_in_rate(
        btotal in 2_000u64..5_000_000,
        wnic in 1_000u64..100_000,
        rtt_ms in 5u64..300,
        r1 in 10_000f64..1e9,
        factor in 1.001f64..100.0,
    ) {
        let rtt = rtt_ms * MILLISECOND;
        let t1 = t_model(btotal, wnic, rtt, r1);
        let t2 = t_model(btotal, wnic, rtt, r1 * factor);
        prop_assert!(t2 <= t1 + 1.0, "t_model increased: {t1} -> {t2}");
    }

    /// `achieved` at the estimated delivery rate is consistent: the rate
    /// returned by the bisection is achievable, and 1% above it is not.
    #[test]
    fn delivery_rate_is_the_supremum(
        btotal in 3_000u64..2_000_000,
        wnic in 1_460u64..100_000,
        rtt_ms in 5u64..200,
        slowdown in 1.05f64..50.0,
    ) {
        let rtt = rtt_ms * MILLISECOND;
        // Construct a plausible measured time: the model floor at a high
        // rate, stretched by `slowdown`.
        let floor = t_model(btotal, wnic, rtt, 1e12);
        let ttotal = (floor * slowdown) as u64;
        if let Some(r) = delivery_rate(btotal, wnic, rtt, ttotal) {
            if r > 1.0 {
                prop_assert!(achieved(btotal, wnic, rtt, ttotal, r * 0.999));
                prop_assert!(!achieved(btotal, wnic, rtt, ttotal, r * 1.01),
                    "rate {r} not the supremum");
            }
        }
    }

    /// Longer measured times can only lower the estimated rate.
    #[test]
    fn delivery_rate_monotone_in_time(
        btotal in 3_000u64..2_000_000,
        wnic in 1_460u64..100_000,
        rtt_ms in 5u64..200,
        t1_ms in 10u64..5_000,
        extra_ms in 1u64..5_000,
    ) {
        let rtt = rtt_ms * MILLISECOND;
        let r1 = delivery_rate(btotal, wnic, rtt, t1_ms * MILLISECOND);
        let r2 = delivery_rate(btotal, wnic, rtt, (t1_ms + extra_ms) * MILLISECOND);
        match (r1, r2) {
            (Some(a), Some(b)) => prop_assert!(b <= a * 1.000_001, "{a} -> {b}"),
            (None, Some(_)) => {} // faster-than-model → finite is fine
            (Some(_), None) => prop_assert!(false, "slower transfer became unbounded"),
            (None, None) => {}
        }
    }
}

/// The headline §3.2.3 property at a property-test scale: for random
/// ideal-path configurations whose transfer can test its bottleneck, the
/// estimate never exceeds the bottleneck rate.
#[test]
fn never_overestimates_bottleneck_on_ideal_paths() {
    use edgeperf::netsim::{FlowSim, PathConfig};
    use edgeperf::tcp::TcpConfig;

    let mut checked = 0;
    for (i, &(bw_mbps, rtt_ms, iw, pkts)) in [
        (0.5f64, 20u64, 1u32, 40u64),
        (0.5, 50, 10, 5),
        (1.0, 35, 4, 80),
        (1.5, 110, 2, 200),
        (2.0, 60, 10, 500),
        (2.5, 20, 24, 12),
        (3.0, 80, 16, 350),
        (3.5, 155, 32, 500),
        (4.0, 95, 8, 90),
        (4.5, 20, 50, 25),
        (5.0, 200, 10, 450),
        (5.0, 20, 1, 500),
    ]
    .iter()
    .enumerate()
    {
        let bw = (bw_mbps * 1e6) as u64;
        let rtt = rtt_ms * MILLISECOND;
        let mut sim =
            FlowSim::new(TcpConfig::ns3_validation(iw), PathConfig::ideal(bw, rtt), i as u64);
        let bytes = pkts * 1_460;
        sim.schedule_write(0, bytes);
        let res = sim.run(3_600 * edgeperf::core::SECOND);
        let w = res.writes[0];
        let (Some((t0, wnic)), Some(t2), Some(last), Some(min_rtt)) =
            (w.first_tx, w.t_second_last_ack, w.last_packet_bytes, res.info.min_rtt)
        else {
            continue;
        };
        let measured = bytes - last as u64;
        if measured == 0 || t2 <= t0 {
            continue;
        }
        if gtestable_bps(measured, wnic as u64, min_rtt) <= bw as f64 {
            continue; // cannot test this bottleneck
        }
        let g = delivery_rate(measured, wnic as u64, min_rtt, t2 - t0).unwrap_or(f64::INFINITY);
        let g = g.min(gtestable_bps(measured, wnic as u64, min_rtt));
        assert!(g <= bw as f64 * (1.0 + 1e-9), "config {i}: estimated {g} > bottleneck {bw}");
        checked += 1;
    }
    assert!(checked >= 6, "too few capable configs exercised: {checked}");
}
