//! Congestion-control comparison: Reno vs CUBIC vs BBR-lite through the
//! packet-level simulator, and the slow-start-after-idle option. These
//! behaviours are what make goodput depend on more than bandwidth — the
//! paper's §3.2 premise.

use edgeperf::core::{MILLISECOND, SECOND};
use edgeperf::netsim::{FlowSim, LossModel, PathConfig};
use edgeperf::tcp::{CcAlgorithm, TcpConfig};

fn transfer_time(cc: CcAlgorithm, loss: f64, bytes: u64, seed: u64) -> u64 {
    let tcp = TcpConfig { cc, delayed_ack_disabled: true, ..Default::default() };
    let mut path = PathConfig::ideal(10_000_000, 60 * MILLISECOND);
    path.loss = LossModel::bernoulli(loss);
    let mut sim = FlowSim::new(tcp, path, seed);
    sim.schedule_write(0, bytes);
    let res = sim.run(600 * SECOND);
    res.writes[0].t_full_ack.expect("transfer completes")
}

#[test]
fn all_algorithms_complete_clean_transfers_similarly() {
    let bytes = 500_000;
    let reno = transfer_time(CcAlgorithm::Reno, 0.0, bytes, 1);
    let cubic = transfer_time(CcAlgorithm::Cubic, 0.0, bytes, 1);
    let bbr = transfer_time(CcAlgorithm::BbrLite, 0.0, bytes, 1);
    // No loss: all three are slow-start dominated and land close together.
    for (name, t) in [("cubic", cubic), ("bbr", bbr)] {
        let ratio = t as f64 / reno as f64;
        assert!((0.6..1.7).contains(&ratio), "{name}: {t} vs reno {reno}");
    }
}

#[test]
fn bbr_outperforms_reno_under_loss() {
    // 1% random loss: loss-based CC keeps halving; BBR keeps its model.
    let bytes = 800_000;
    let mut reno_total = 0u64;
    let mut bbr_total = 0u64;
    for seed in 0..8 {
        reno_total += transfer_time(CcAlgorithm::Reno, 0.01, bytes, seed);
        bbr_total += transfer_time(CcAlgorithm::BbrLite, 0.01, bytes, seed);
    }
    assert!(
        bbr_total < reno_total,
        "BBR should finish faster under loss: bbr {bbr_total} vs reno {reno_total}"
    );
}

#[test]
fn cubic_recovers_faster_than_reno_after_loss() {
    // A long transfer with sparse loss: CUBIC's concave recovery should
    // not be (much) slower than Reno's linear one.
    let bytes = 2_000_000;
    let mut reno_total = 0u64;
    let mut cubic_total = 0u64;
    for seed in 10..16 {
        reno_total += transfer_time(CcAlgorithm::Reno, 0.003, bytes, seed);
        cubic_total += transfer_time(CcAlgorithm::Cubic, 0.003, bytes, seed);
    }
    assert!(
        (cubic_total as f64) < reno_total as f64 * 1.2,
        "cubic {cubic_total} vs reno {reno_total}"
    );
}

#[test]
fn slow_start_after_idle_collapses_the_window() {
    let run = |ss_after_idle: bool| {
        let tcp = TcpConfig {
            cc: CcAlgorithm::Reno,
            delayed_ack_disabled: true,
            slow_start_after_idle: ss_after_idle,
            ..Default::default()
        };
        let mut sim = FlowSim::new(tcp, PathConfig::ideal(50_000_000, 60 * MILLISECOND), 3);
        sim.schedule_write(0, 150_000); // grow the window
        sim.schedule_write(10 * SECOND, 150_000); // after a long idle
        let res = sim.run(120 * SECOND);
        res.writes[1].first_tx.unwrap().1 // Wnic of the second response
    };
    let persistent = run(false);
    let collapsed = run(true);
    assert!(persistent > 4 * 14_600, "window should have grown: {persistent}");
    assert_eq!(collapsed, 14_600, "idle restart must reset to IW10");
}

#[test]
fn idle_restart_degrades_measured_goodput_capability() {
    // With idle restart, the second transaction starts from IW10 again —
    // the Figure-4 carry-forward world no longer applies, and Gtestable
    // (computed from the real Wnic) is lower.
    use edgeperf::core::gtestable::gtestable_bps;
    let g_grown = gtestable_bps(40_000, 20 * 14_600, 60 * MILLISECOND);
    let g_collapsed = gtestable_bps(40_000, 14_600, 60 * MILLISECOND);
    assert!(g_grown > g_collapsed);
}

#[test]
fn fastflow_idle_restart_matches_config() {
    use edgeperf::netsim::{FastFlow, PathState};
    use rand::SeedableRng;
    let state = PathState {
        base_rtt: 40 * MILLISECOND,
        standing_queue: 0,
        jitter_max: 0,
        bottleneck_bps: 50_000_000,
        loss: 0.0,
    };
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
    for (flag, expect_reset) in [(false, false), (true, true)] {
        let cfg = TcpConfig { slow_start_after_idle: flag, ..Default::default() };
        let mut f = FastFlow::new(cfg);
        f.transfer(200_000, &state, &mut rng);
        let grown = f.cwnd();
        assert!(grown > cfg.initial_cwnd_bytes());
        f.on_idle(5 * SECOND);
        if expect_reset {
            assert_eq!(f.cwnd(), cfg.initial_cwnd_bytes());
        } else {
            assert_eq!(f.cwnd(), grown);
        }
    }
}
