//! End-to-end pipeline test: synthetic world → simulated traffic →
//! production-style measurement → aggregation → the paper's analyses.
//! Exercises every crate through the public API.

use edgeperf::analysis::figures::{fig6_hdratio, fig6_minrtt, fig9_opportunity};
use edgeperf::analysis::tables::{table1, AnalysisKind};
use edgeperf::analysis::{AnalysisConfig, Dataset, DegradationMetric, TemporalClass};
use edgeperf::world::{run_study, Continent, StudyConfig, World, WorldConfig};

fn small_study() -> (Vec<edgeperf::analysis::SessionRecord>, usize) {
    let world =
        World::generate(WorldConfig { seed: 1234, country_fraction: 0.35, ..Default::default() });
    let cfg = StudyConfig {
        seed: 77,
        days: 1,
        sessions_per_group_window: 70,
        parallelism: 0,
        ..Default::default()
    };
    let n_windows = cfg.n_windows() as usize;
    (run_study(&world, &cfg), n_windows)
}

#[test]
fn pipeline_produces_paper_shaped_results() {
    let (records, n_windows) = small_study();
    assert!(records.len() > 100_000, "records = {}", records.len());

    // ── Figure 6 shape ────────────────────────────────────────────────
    let (mr, _per) = fig6_minrtt(&records);
    let p50 = mr.quantile(0.5);
    assert!(p50 > 8.0 && p50 < 60.0, "median MinRTT = {p50}");
    // 80th percentile noticeably above the median (long tail).
    assert!(mr.quantile(0.8) > p50 * 1.2);

    let (hd, _) = fig6_hdratio(&records);
    let gt0 = 1.0 - hd.fraction_leq(0.0);
    assert!(gt0 > 0.6, "HDratio>0 fraction = {gt0}");

    // ── Dataset + opportunity: preferred route usually at least as good
    let ds = Dataset::from_records(&records, n_windows);
    assert!(ds.preferred_bytes() < ds.total_bytes());
    let cfg = AnalysisConfig::default();
    if let Some(opp) = fig9_opportunity(&cfg, &ds, DegradationMetric::MinRtt) {
        let median_improvement = opp.diff.quantile(0.5);
        assert!(
            median_improvement < 3.0,
            "median available improvement should be ~0 or negative, got {median_improvement}"
        );
    }

    // ── Table 1: classes cover all traffic, uneventful dominates ─────
    let t1 = table1(&cfg, &ds, AnalysisKind::Degradation, DegradationMetric::MinRtt, 5.0);
    let total_share: f64 = t1.overall.values().map(|s| s.group_share).sum();
    assert!((total_share - 1.0).abs() < 1e-9, "shares must sum to 1, got {total_share}");
    let eventful: f64 = t1
        .overall
        .iter()
        .filter(|(c, _)| !matches!(c, TemporalClass::Uneventful | TemporalClass::Ignored))
        .map(|(_, s)| s.event_share)
        .sum();
    assert!(eventful < 0.3, "most traffic must not be degraded: {eventful}");
}

#[test]
fn continental_ordering_matches_paper() {
    let world = World::generate(WorldConfig::default());
    let cfg = StudyConfig {
        seed: 9,
        days: 1,
        sessions_per_group_window: 12,
        parallelism: 0,
        ..Default::default()
    };
    let records = run_study(&world, &cfg);
    let (_, per) = fig6_minrtt(&records);
    let med = |c: Continent| per.get(&(c as u8)).map(|cdf| cdf.quantile(0.5)).unwrap();
    // Paper Fig 6b: AF > AS > (EU, NA); SA also worse than EU/NA.
    assert!(med(Continent::Africa) > med(Continent::Europe));
    assert!(med(Continent::Asia) > med(Continent::Europe));
    assert!(med(Continent::SouthAmerica) > med(Continent::NorthAmerica));

    let (_, hd_per) = fig6_hdratio(&records);
    let zero = |c: Continent| hd_per.get(&(c as u8)).map(|cdf| cdf.fraction_leq(0.0)).unwrap();
    assert!(zero(Continent::Africa) > zero(Continent::Europe));
    assert!(zero(Continent::SouthAmerica) > zero(Continent::NorthAmerica));
}

#[test]
fn study_records_are_internally_consistent() {
    let (records, n_windows) = small_study();
    for r in &records {
        assert!(r.route_rank <= 2);
        assert!((r.window as usize) < n_windows);
        assert!(r.min_rtt_ms.is_finite() && r.min_rtt_ms > 0.0);
        if let Some(h) = r.hdratio {
            assert!((0.0..=1.0).contains(&h));
        }
        assert!(r.bytes > 0);
        // Rank 0 is never flagged relative-to-preferred.
        if r.route_rank == 0 {
            assert!(!r.longer_path && !r.more_prepended);
        }
    }
    // All three ranks appear, in roughly the Edge-Fabric 47/26.5/26.5 split.
    let frac = |rank: u8| {
        records.iter().filter(|r| r.route_rank == rank).count() as f64 / records.len() as f64
    };
    assert!((frac(0) - 0.47).abs() < 0.05, "rank0 share = {}", frac(0));
}
