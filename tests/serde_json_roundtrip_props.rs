//! Property tests for the vendored JSON parser/writer: numbers and
//! strings must survive a serialize → parse round trip with value
//! equality, and finite floats with **bit** equality (`f64::to_bits`) —
//! the discipline every snapshot/agreement test in this workspace is
//! gated on.
//!
//! The hot edges exercised deliberately:
//! - the integral/float boundary at 2^53 (where f64 stops representing
//!   consecutive integers exactly),
//! - the 15–16 digit writer/parser integer fast-path cutoffs
//!   (`write_number`'s `abs < 1e15`, the parser's `len < 16` i64 path),
//! - negative zero (must print `-0` and parse back sign-preserving),
//! - escape sequences including `\uXXXX` and surrogate pairs.

use proptest::prelude::*;
use serde_json::{from_str, parse, to_string, Value};

fn assert_num_round_trip(x: f64) {
    let text = to_string(&Value::Num(x)).expect("number serializes");
    if !x.is_finite() {
        // Documented fallback: JSON has no NaN/±∞, the writer emits null.
        assert_eq!(text, "null");
        return;
    }
    let back: f64 = from_str(&text).expect("number parses");
    assert_eq!(
        back.to_bits(),
        x.to_bits(),
        "bit drift: {x:?} printed as {text} parsed as {back:?}"
    );
    // And through the Value tree (the path every struct field takes).
    match parse(&text).expect("value parses") {
        Value::Num(n) => assert_eq!(n.to_bits(), x.to_bits()),
        other => panic!("number parsed as {other:?}"),
    }
}

proptest! {
    /// Uniform-over-bit-patterns doubles: normals, subnormals, zeros,
    /// NaNs and infinities all flow through the writer without panicking,
    /// and every finite one round-trips bit-exactly.
    #[test]
    fn arbitrary_f64_bit_patterns_round_trip(bits in any::<u64>()) {
        assert_num_round_trip(f64::from_bits(bits));
        assert_num_round_trip(-f64::from_bits(bits));
    }

    /// Consecutive integers straddling 2^53: above it, `x as i64` and the
    /// float formatter must still agree on the (now even-only) values the
    /// f64 actually holds.
    #[test]
    fn integers_at_the_2_pow_53_boundary_round_trip(offset in 0u64..128) {
        let base = (1u64 << 53) - 64;
        let x = (base + offset) as f64;
        assert_num_round_trip(x);
        assert_num_round_trip(-x);
    }

    /// 14–17 digit integers bracket both fast-path cutoffs: the writer's
    /// `abs < 1e15` integral check and the parser's `len < 16` i64 path.
    #[test]
    fn integer_fast_path_edges_round_trip(
        mag in prop::sample::select(vec![1e13, 1e14, 1e15, 1e16]),
        frac in 0.0f64..1.0,
        negate in any::<bool>(),
    ) {
        let x = (mag + frac * mag).trunc();
        assert_num_round_trip(if negate { -x } else { x });
    }

    /// Scientific-notation spellings parse to the same f64 the standard
    /// library parses (the parser must not mangle exponents).
    #[test]
    fn scientific_notation_matches_std_parse(
        mantissa in -9_007_199_254_740_992.0f64..9_007_199_254_740_992.0,
        exp in -200i32..200,
    ) {
        let text = format!("{mantissa}e{exp}");
        let expected: f64 = text.parse().expect("std parses");
        if !expected.is_finite() {
            return; // overflows to inf: not representable JSON output
        }
        let got: f64 = from_str(&text).expect("parser accepts");
        assert_eq!(got.to_bits(), expected.to_bits(), "{text}");
    }

    /// Strings built from escape-heavy alphabets (quotes, backslashes,
    /// control characters, multi-byte UTF-8, astral-plane emoji) survive
    /// write → parse with value equality.
    #[test]
    fn escape_heavy_strings_round_trip(
        chars in prop::collection::vec(
            prop::sample::select(vec![
                'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t',
                '\u{0}', '\u{1}', '\u{8}', '\u{c}', '\u{1f}', '\u{7f}',
                'é', 'Ω', '中', '\u{fffd}', '😀', '𝕏',
            ]),
            0..48,
        ),
    ) {
        let s: String = chars.into_iter().collect();
        let text = to_string(&s).expect("string serializes");
        let back: String = from_str(&text).expect("string parses");
        assert_eq!(back, s);
        // Keys take the same writer/parser path as values.
        let obj = Value::Object(vec![(s.clone(), Value::Str(s.clone()))]);
        let obj_text = to_string(&obj).expect("object serializes");
        assert_eq!(parse(&obj_text).expect("object parses"), obj);
    }

    /// Every `\uXXXX` escape of a non-surrogate BMP scalar decodes to
    /// that exact character.
    #[test]
    fn bmp_unicode_escapes_decode(cp in 0x20u32..0xD800, high in any::<bool>()) {
        let cp = if high { cp + (0xE000 - 0x20).min(0x10000 - cp - 1) } else { cp };
        let cp = if (0xD800..0xE000).contains(&cp) { 0x40 } else { cp };
        let expected = char::from_u32(cp).expect("non-surrogate scalar");
        let text = format!("\"\\u{cp:04x}\"");
        let back: String = from_str(&text).expect("escape parses");
        assert_eq!(back, expected.to_string(), "{text}");
    }

    /// Every astral-plane scalar round-trips through its surrogate pair.
    #[test]
    fn surrogate_pair_escapes_decode(cp in 0x1_0000u32..0x11_0000) {
        let expected = char::from_u32(cp).expect("astral scalar");
        let off = cp - 0x10000;
        let text = format!("\"\\u{:04x}\\u{:04x}\"", 0xD800 + (off >> 10), 0xDC00 + (off & 0x3FF));
        let back: String = from_str(&text).expect("pair parses");
        assert_eq!(back, expected.to_string(), "{text}");
    }
}
