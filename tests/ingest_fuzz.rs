//! Fuzz properties for the ingest boundary: `evaluate_jsonl` must never
//! panic on arbitrary input, and no verdict it emits may carry a
//! non-finite number. Hostile telemetry — truncated JSON, random bytes,
//! NaN/infinite fields, overflowing literals — surfaces as per-line
//! errors, never as a crash or a poisoned `VerdictOut`.

use edgeperf::core::HD_GOODPUT_BPS;
use edgeperf::ingest::{evaluate_jsonl, sample_line};
use proptest::prelude::*;

/// Run the evaluator and check the one invariant every fuzz case shares:
/// whatever comes out as `Ok` is finite and in range.
fn evaluate_and_check(input: &str) {
    for v in evaluate_jsonl(input, HD_GOODPUT_BPS).into_iter().flatten() {
        assert!(v.min_rtt_ms.is_finite(), "non-finite min_rtt_ms in verdict: {}", v.min_rtt_ms);
        assert!(v.achieved <= v.tested, "achieved > tested");
        if let Some(h) = v.hdratio {
            assert!(h.is_finite(), "non-finite hdratio in verdict: {h}");
            assert!((0.0..=1.0).contains(&h), "hdratio out of range: {h}");
        }
    }
}

/// Render an arbitrary f64 as it would appear in captured telemetry.
/// Finite values round-trip through JSON; NaN/inf render as invalid JSON
/// tokens, which is exactly how a buggy serializer would emit them.
fn num(f: f64) -> String {
    format!("{f}")
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let input = String::from_utf8_lossy(&bytes).into_owned();
        evaluate_and_check(&input);
    }

    #[test]
    fn truncated_valid_json_never_panics(cut in 0usize..512) {
        let line = sample_line();
        let cut = cut.min(line.len());
        // sample_line() is ASCII, so any byte index is a char boundary.
        evaluate_and_check(&line[..cut]);
        // A valid line followed by a truncated one: the good line must
        // still evaluate, the bad one must reject without poisoning it.
        let mixed = format!("{line}\n{}", &line[..cut]);
        evaluate_and_check(&mixed);
    }

    #[test]
    fn hostile_numeric_fields_never_reach_a_verdict(
        min_rtt in any::<f64>(),
        issued in any::<f64>(),
        full_ack in any::<f64>(),
        duration in any::<f64>(),
        bytes in any::<u64>(),
        wnic in any::<u32>(),
    ) {
        let line = format!(
            concat!(
                r#"{{"min_rtt_ms":{},"duration_ms":{},"responses":[{{"bytes":{},"#,
                r#""issued_at_ms":{},"wnic":{},"full_ack_ms":{}}}]}}"#,
            ),
            num(min_rtt), num(duration), bytes, num(issued), wnic, num(full_ack),
        );
        evaluate_and_check(&line);
    }

    #[test]
    fn overflowing_literals_are_rejected_not_propagated(exp in 309u32..9999) {
        // 1e309 overflows f64 to +inf at parse time; the evaluator must
        // treat the resulting non-finite value as a reject, not a panic.
        let line = format!(
            r#"{{"min_rtt_ms":1e{exp},"responses":[{{"bytes":100,"issued_at_ms":0.0,"full_ack_ms":1e{exp}}}]}}"#
        );
        for result in evaluate_jsonl(&line, HD_GOODPUT_BPS) {
            assert!(result.is_err(), "overflowing literal produced a verdict");
        }
        evaluate_and_check(&line);
    }
}
