//! RTT estimation per RFC 6298 (srtt / rttvar / RTO) plus the running
//! minimum the paper's MinRTT metric is built from.

use crate::time::{Nanos, MILLISECOND, SECOND};

/// Smoothed RTT estimator with RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<Nanos>,
    rttvar: Nanos,
    min_rtt: Option<Nanos>,
    latest: Option<Nanos>,
    min_rto: Nanos,
    /// Exponential backoff multiplier applied after consecutive timeouts.
    backoff: u32,
}

impl RttEstimator {
    /// New estimator with the given minimum RTO (Linux: 200 ms).
    pub fn new(min_rto: Nanos) -> Self {
        RttEstimator { srtt: None, rttvar: 0, min_rtt: None, latest: None, min_rto, backoff: 0 }
    }

    /// Record an RTT sample (from a non-retransmitted segment, per Karn).
    pub fn on_sample(&mut self, rtt: Nanos) {
        self.latest = Some(rtt);
        self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let diff = srtt.abs_diff(rtt);
                // rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
                self.rttvar = (3 * self.rttvar + diff) / 4;
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some((7 * srtt + rtt) / 8);
            }
        }
        self.backoff = 0;
    }

    /// A retransmission timeout fired: double the RTO (capped).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(10);
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Nanos {
        let base = match self.srtt {
            None => SECOND, // RFC 6298 initial RTO (1 s, conservative)
            Some(srtt) => srtt + (4 * self.rttvar).max(MILLISECOND),
        };
        let backed = base.saturating_mul(1 << self.backoff.min(30));
        backed.clamp(self.min_rto, 120 * SECOND)
    }

    /// Smoothed RTT, if any sample was taken.
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }

    /// Minimum RTT observed over the connection's lifetime.
    pub fn min_rtt(&self) -> Option<Nanos> {
        self.min_rtt
    }

    /// Most recent RTT sample.
    pub fn latest(&self) -> Option<Nanos> {
        self.latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new(200 * MILLISECOND);
        e.on_sample(100 * MILLISECOND);
        assert_eq!(e.srtt(), Some(100 * MILLISECOND));
        assert_eq!(e.min_rtt(), Some(100 * MILLISECOND));
        // RTO = srtt + 4*rttvar = 100 + 200 = 300 ms.
        assert_eq!(e.rto(), 300 * MILLISECOND);
    }

    #[test]
    fn min_rtt_tracks_minimum() {
        let mut e = RttEstimator::new(200 * MILLISECOND);
        e.on_sample(100 * MILLISECOND);
        e.on_sample(50 * MILLISECOND);
        e.on_sample(150 * MILLISECOND);
        assert_eq!(e.min_rtt(), Some(50 * MILLISECOND));
    }

    #[test]
    fn srtt_smooths() {
        let mut e = RttEstimator::new(200 * MILLISECOND);
        e.on_sample(100 * MILLISECOND);
        e.on_sample(200 * MILLISECOND);
        // 7/8*100 + 1/8*200 = 112.5 ms
        assert_eq!(e.srtt(), Some(112_500_000));
    }

    #[test]
    fn rto_has_floor() {
        let mut e = RttEstimator::new(200 * MILLISECOND);
        e.on_sample(MILLISECOND);
        assert_eq!(e.rto(), 200 * MILLISECOND);
    }

    #[test]
    fn rto_backs_off_and_resets() {
        let mut e = RttEstimator::new(200 * MILLISECOND);
        e.on_sample(100 * MILLISECOND);
        let rto0 = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), rto0 * 2);
        e.on_timeout();
        assert_eq!(e.rto(), rto0 * 4);
        // A fresh sample resets the backoff (rttvar also decays, so the
        // new RTO is at or below the pre-backoff value).
        e.on_sample(100 * MILLISECOND);
        assert!(e.rto() <= rto0);
    }

    #[test]
    fn initial_rto_is_one_second() {
        let e = RttEstimator::new(200 * MILLISECOND);
        assert_eq!(e.rto(), SECOND);
    }
}
