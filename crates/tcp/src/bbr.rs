//! BBR-flavoured congestion control (model-based, loss-insensitive).
//!
//! The paper cites BBR (Cardwell et al. [20]) when discussing how loss
//! interacts with the congestion controller to determine goodput. This is
//! a deliberately simplified model-based controller in the window-driven
//! mould of this crate's `CongestionControl` trait:
//!
//! - it estimates the bottleneck bandwidth as the windowed maximum of the
//!   ACK delivery rate,
//! - targets `cwnd = gain × BtlBw × MinRTT` (gain 2 while probing),
//! - and — the property that matters to HDratio under loss — does **not**
//!   collapse the window on isolated losses; only an RTO resets it.
//!
//! It is *not* wire-accurate BBR (no pacing phases, no ProbeRTT); it is
//! the representative "rate-based, loss-tolerant" point in the CC design
//! space, for the `cc_comparison` bench/tests.

use crate::cc::CongestionControl;
use crate::time::{Nanos, SECOND};
use std::collections::VecDeque;

/// Simplified BBR: windowed-max bandwidth sampling, BDP-tracking window.
#[derive(Debug, Clone)]
pub struct BbrLite {
    mss: u32,
    /// (sample time, cumulative bytes acked) history for rate estimation.
    deliveries: VecDeque<(Nanos, u64)>,
    cum_acked: u64,
    /// Windowed max delivery rate, bytes/second.
    btl_bw: f64,
    /// When the current btl_bw sample expires (10 RTT window).
    bw_expiry: Nanos,
}

/// Gain applied to the BDP when sizing the window (startup/probing).
const CWND_GAIN: f64 = 2.0;
/// Bandwidth-sample lifetime, as a multiple of MinRTT.
const BW_WINDOW_RTTS: u64 = 10;

impl BbrLite {
    /// New instance for a connection with the given MSS.
    pub fn new(mss: u32) -> Self {
        BbrLite { mss, deliveries: VecDeque::new(), cum_acked: 0, btl_bw: 0.0, bw_expiry: 0 }
    }

    /// Current bottleneck-bandwidth estimate in bits/second.
    pub fn btl_bw_bps(&self) -> f64 {
        self.btl_bw * 8.0
    }

    fn update_rate(&mut self, now: Nanos, acked: u32, min_rtt: Nanos) {
        self.cum_acked += acked as u64;
        self.deliveries.push_back((now, self.cum_acked));
        // Estimate over roughly one RTT of history.
        let horizon = now.saturating_sub(min_rtt.max(1));
        while self.deliveries.len() > 2
            && self.deliveries.front().is_some_and(|&(t, _)| t < horizon)
        {
            self.deliveries.pop_front();
        }
        if let (Some(&(t0, b0)), Some(&(t1, b1))) =
            (self.deliveries.front(), self.deliveries.back())
        {
            if t1 > t0 && b1 > b0 {
                let rate = (b1 - b0) as f64 * SECOND as f64 / (t1 - t0) as f64;
                if rate > self.btl_bw || now >= self.bw_expiry {
                    self.btl_bw = rate;
                    self.bw_expiry = now + BW_WINDOW_RTTS * min_rtt.max(1);
                }
            }
        }
    }

    fn target_cwnd(&self, min_rtt: Nanos, current: u32) -> u32 {
        if self.btl_bw == 0.0 {
            return current;
        }
        let bdp = self.btl_bw * min_rtt as f64 / SECOND as f64;
        ((bdp * CWND_GAIN) as u32).max(4 * self.mss)
    }
}

impl CongestionControl for BbrLite {
    fn on_ack_slow_start(&mut self, acked: u32, _cwnd: u32) -> u32 {
        // Startup: exponential growth like slow start; the rate estimator
        // fills in as ACKs arrive (driven via on_ack_avoidance in this
        // crate's sender only after ssthresh; BBR never sets ssthresh, so
        // slow-start growth keeps running until the window caps at BDP
        // via on_loss/on_ack_avoidance bounding).
        acked
    }

    fn on_ack_avoidance(&mut self, now: Nanos, acked: u32, cwnd: u32, min_rtt: Nanos) -> u32 {
        self.update_rate(now, acked, min_rtt);
        let target = self.target_cwnd(min_rtt, cwnd);
        if target > cwnd {
            // Move a quarter of the gap per ACK batch: fast but stable.
            ((target - cwnd) / 4).max(1)
        } else {
            0
        }
    }

    fn on_loss(&mut self, _now: Nanos, cwnd: u32) -> (u32, u32) {
        // Loss-insensitive: keep operating at the modelled BDP. Return
        // ssthresh just below cwnd so the sender leaves slow start and
        // growth is governed by the model from here on.
        let floor = (cwnd.max(4 * self.mss)).max(self.mss);
        (floor.saturating_sub(1).max(2 * self.mss), floor)
    }

    fn on_timeout(&mut self, _now: Nanos, cwnd: u32, mss: u32) -> (u32, u32) {
        // A real tail timeout: restart conservatively.
        self.btl_bw = 0.0;
        self.deliveries.clear();
        ((cwnd / 2).max(2 * mss), mss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MILLISECOND;

    const MSS: u32 = 1460;

    #[test]
    fn rate_estimator_converges() {
        let mut bbr = BbrLite::new(MSS);
        let min_rtt = 50 * MILLISECOND;
        // Deliver 1 MSS per ms → 1460 kB/s ≈ 11.7 Mbps.
        for i in 1..200u64 {
            bbr.on_ack_avoidance(i * MILLISECOND, MSS, 100 * MSS, min_rtt);
        }
        let est = bbr.btl_bw_bps();
        assert!((est - 11_680_000.0).abs() / 11_680_000.0 < 0.1, "est = {est}");
    }

    #[test]
    fn window_tracks_bdp() {
        let mut bbr = BbrLite::new(MSS);
        let min_rtt = 40 * MILLISECOND;
        let mut cwnd = 10 * MSS;
        for i in 1..400u64 {
            cwnd += bbr.on_ack_avoidance(i * MILLISECOND, MSS, cwnd, min_rtt);
        }
        // BDP at ~11.7 Mbps × 40 ms ≈ 58 kB; target = 2×BDP ≈ 117 kB.
        let bdp = bbr.btl_bw_bps() / 8.0 * min_rtt as f64 / SECOND as f64;
        let target = 2.0 * bdp;
        assert!(
            (cwnd as f64) > target * 0.7 && (cwnd as f64) < target * 1.4,
            "cwnd {} vs target {}",
            cwnd,
            target
        );
    }

    #[test]
    fn loss_does_not_collapse_window() {
        let mut bbr = BbrLite::new(MSS);
        for i in 1..100u64 {
            bbr.on_ack_avoidance(i * MILLISECOND, MSS, 60 * MSS, 30 * MILLISECOND);
        }
        let cwnd = 60 * MSS;
        let (_, after) = bbr.on_loss(SECOND, cwnd);
        assert!(after >= cwnd, "BBR must not multiplicatively decrease: {after} < {cwnd}");
    }

    #[test]
    fn timeout_resets_model() {
        let mut bbr = BbrLite::new(MSS);
        for i in 1..100u64 {
            bbr.on_ack_avoidance(i * MILLISECOND, MSS, 60 * MSS, 30 * MILLISECOND);
        }
        assert!(bbr.btl_bw_bps() > 0.0);
        let (_, cwnd) = bbr.on_timeout(SECOND, 60 * MSS, MSS);
        assert_eq!(cwnd, MSS);
        assert_eq!(bbr.btl_bw_bps(), 0.0);
    }

    #[test]
    fn window_stops_growing_past_target() {
        let mut bbr = BbrLite::new(MSS);
        let min_rtt = 20 * MILLISECOND;
        for i in 1..100u64 {
            bbr.on_ack_avoidance(i * MILLISECOND, MSS, 30 * MSS, min_rtt);
        }
        // Ask for growth far above the target: increment must be zero.
        let inc = bbr.on_ack_avoidance(200 * MILLISECOND, MSS, 10_000 * MSS, min_rtt);
        assert_eq!(inc, 0);
    }
}
