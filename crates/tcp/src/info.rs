//! `TcpInfo`: the instrumentation-visible snapshot of connection state.
//!
//! The paper's load balancers read kernel TCP state (à la `TCP_INFO`) at
//! session start/end and at prescribed per-transaction points. This struct
//! is our equivalent; in a real deployment it would be populated from
//! `getsockopt(TCP_INFO)` (e.g. via the `nix` crate), here it is populated
//! by the simulated sender.

use crate::sender::SenderState;
use crate::time::Nanos;

/// Snapshot of sender-side TCP state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpInfo {
    /// Congestion window in bytes.
    pub cwnd_bytes: u32,
    /// Slow-start threshold in bytes.
    pub ssthresh_bytes: u32,
    /// Bytes currently unacknowledged.
    pub bytes_in_flight: u64,
    /// Cumulative bytes acknowledged over the connection.
    pub bytes_acked: u64,
    /// Cumulative count of retransmitted segments.
    pub retransmits: u64,
    /// Minimum RTT observed so far, if any sample exists.
    pub min_rtt: Option<Nanos>,
    /// Smoothed RTT, if any sample exists.
    pub srtt: Option<Nanos>,
    /// Congestion state (open / recovery / loss).
    pub state: SenderState,
}
