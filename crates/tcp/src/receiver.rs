//! Receiver-side ACK generation with delayed ACKs.
//!
//! Models RFC 1122/5681 receiver behaviour: ACK every second full-sized
//! segment, otherwise delay up to a timeout (Linux: ~40 ms in practice,
//! "30ms+" per the paper §3.2.5); ACK immediately on out-of-order arrival
//! (producing duplicate ACKs) and when an arrival fills a gap.

use crate::time::Nanos;
use std::collections::BTreeMap;

/// What the receiver wants to do after a segment arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckAction {
    /// Emit an ACK for `cum_seq` immediately.
    Now {
        /// Cumulative sequence acknowledged.
        cum_seq: u64,
    },
    /// Hold the ACK; fire it at `deadline` if nothing else triggers first.
    Delayed {
        /// When the delayed-ACK timer expires.
        deadline: Nanos,
    },
}

/// Delayed-ACK receiver model.
#[derive(Debug, Clone)]
pub struct DelayedAckReceiver {
    /// Next expected in-order byte.
    rcv_nxt: u64,
    /// Out-of-order holes: start → end (exclusive).
    ooo: BTreeMap<u64, u64>,
    /// Segments since the last ACK was sent.
    unacked_segments: u32,
    /// Deadline of a pending delayed ACK, if any.
    pending_deadline: Option<Nanos>,
    delayed_ack_timeout: Nanos,
    delayed_ack_disabled: bool,
    /// Total bytes received (for diagnostics).
    bytes_received: u64,
}

impl DelayedAckReceiver {
    /// New receiver. `timeout` is the delayed-ACK timer; `disabled` forces
    /// an immediate ACK per segment (the NS3-validation configuration).
    pub fn new(timeout: Nanos, disabled: bool) -> Self {
        DelayedAckReceiver {
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            unacked_segments: 0,
            pending_deadline: None,
            delayed_ack_timeout: timeout,
            delayed_ack_disabled: disabled,
            bytes_received: 0,
        }
    }

    /// Next expected in-order sequence number (the cumulative ACK value).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Total payload bytes received (including out-of-order).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Deadline of the pending delayed ACK, if one is armed.
    pub fn ack_deadline(&self) -> Option<Nanos> {
        self.pending_deadline
    }

    /// A data segment `[seq, seq+len)` arrived at `now`.
    pub fn on_segment(&mut self, now: Nanos, seq: u64, len: u32) -> AckAction {
        assert!(len > 0, "zero-length segment");
        self.bytes_received += len as u64;
        let end = seq + len as u64;

        if seq > self.rcv_nxt {
            // Out of order: buffer the range and duplicate-ACK immediately.
            self.insert_ooo(seq, end);
            self.flush_pending();
            return AckAction::Now { cum_seq: self.rcv_nxt };
        }

        let had_gap = !self.ooo.is_empty();
        let advanced = end > self.rcv_nxt;
        if advanced {
            self.rcv_nxt = end;
            self.drain_ooo();
        }

        // Immediate ACK when: delayed ACKs are off, the segment filled (part
        // of) a gap (RFC 5681), or it was a spurious retransmission of data
        // already received.
        if self.delayed_ack_disabled || had_gap || !advanced {
            self.flush_pending();
            return AckAction::Now { cum_seq: self.rcv_nxt };
        }

        self.unacked_segments += 1;
        if self.unacked_segments >= 2 {
            self.flush_pending();
            AckAction::Now { cum_seq: self.rcv_nxt }
        } else {
            let deadline = now + self.delayed_ack_timeout;
            self.pending_deadline = Some(deadline);
            AckAction::Delayed { deadline }
        }
    }

    /// The delayed-ACK timer fired; returns the cumulative ACK to emit, or
    /// `None` if the pending ACK was already flushed.
    pub fn on_ack_timer(&mut self, now: Nanos) -> Option<u64> {
        match self.pending_deadline {
            Some(d) if d <= now => {
                self.flush_pending();
                Some(self.rcv_nxt)
            }
            _ => None,
        }
    }

    fn flush_pending(&mut self) {
        self.pending_deadline = None;
        self.unacked_segments = 0;
    }

    fn insert_ooo(&mut self, seq: u64, end: u64) {
        // Merge with overlapping/adjacent ranges.
        let mut start = seq;
        let mut stop = end;
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=stop)
            .filter(|&(&s, &e)| e >= start && s <= stop)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ooo.remove(&s).unwrap();
            start = start.min(s);
            stop = stop.max(e);
        }
        self.ooo.insert(start, stop);
    }

    fn drain_ooo(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                self.ooo.remove(&s);
                self.rcv_nxt = self.rcv_nxt.max(e);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MILLISECOND;

    const TO: Nanos = 40 * MILLISECOND;

    #[test]
    fn first_segment_is_delayed() {
        let mut r = DelayedAckReceiver::new(TO, false);
        match r.on_segment(0, 0, 1460) {
            AckAction::Delayed { deadline } => assert_eq!(deadline, TO),
            a => panic!("expected delayed, got {a:?}"),
        }
    }

    #[test]
    fn second_segment_acks_immediately() {
        let mut r = DelayedAckReceiver::new(TO, false);
        r.on_segment(0, 0, 1460);
        match r.on_segment(1, 1460, 1460) {
            AckAction::Now { cum_seq } => assert_eq!(cum_seq, 2920),
            a => panic!("expected now, got {a:?}"),
        }
        assert_eq!(r.ack_deadline(), None);
    }

    #[test]
    fn disabled_mode_acks_every_segment() {
        let mut r = DelayedAckReceiver::new(TO, true);
        assert_eq!(r.on_segment(0, 0, 1460), AckAction::Now { cum_seq: 1460 });
        assert_eq!(r.on_segment(1, 1460, 1460), AckAction::Now { cum_seq: 2920 });
    }

    #[test]
    fn out_of_order_produces_dup_ack() {
        let mut r = DelayedAckReceiver::new(TO, false);
        // Segment 1 lost; segment 2 arrives.
        match r.on_segment(0, 1460, 1460) {
            AckAction::Now { cum_seq } => assert_eq!(cum_seq, 0),
            a => panic!("expected dup-ack, got {a:?}"),
        }
        // Another later segment → another dup ack at 0.
        match r.on_segment(1, 2920, 1460) {
            AckAction::Now { cum_seq } => assert_eq!(cum_seq, 0),
            a => panic!("{a:?}"),
        }
    }

    #[test]
    fn gap_fill_acks_everything() {
        let mut r = DelayedAckReceiver::new(TO, false);
        r.on_segment(0, 1460, 1460); // ooo
        r.on_segment(1, 2920, 1460); // ooo
        match r.on_segment(2, 0, 1460) {
            AckAction::Now { cum_seq } => assert_eq!(cum_seq, 4380),
            a => panic!("{a:?}"),
        }
    }

    #[test]
    fn delayed_timer_fires() {
        let mut r = DelayedAckReceiver::new(TO, false);
        let d = match r.on_segment(0, 0, 1000) {
            AckAction::Delayed { deadline } => deadline,
            a => panic!("{a:?}"),
        };
        assert_eq!(r.on_ack_timer(d - 1), None);
        assert_eq!(r.on_ack_timer(d), Some(1000));
        // Timer is one-shot.
        assert_eq!(r.on_ack_timer(d + 1), None);
    }

    #[test]
    fn overlapping_ooo_ranges_merge() {
        let mut r = DelayedAckReceiver::new(TO, false);
        r.on_segment(0, 2920, 1460);
        r.on_segment(1, 1460, 2920); // overlaps the buffered range
        match r.on_segment(2, 0, 1460) {
            AckAction::Now { cum_seq } => assert_eq!(cum_seq, 4380),
            a => panic!("{a:?}"),
        }
    }

    #[test]
    fn bytes_received_counts_everything() {
        let mut r = DelayedAckReceiver::new(TO, true);
        r.on_segment(0, 0, 1000);
        r.on_segment(1, 5000, 500); // out of order still counted
        assert_eq!(r.bytes_received(), 1500);
    }
}

#[cfg(test)]
mod reorder_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever order segments of a contiguous stream arrive in, the
        /// receiver's cumulative position ends at the stream length and
        /// never exceeds the bytes that actually arrived.
        #[test]
        fn arbitrary_arrival_order_converges(
            seg_lens in prop::collection::vec(1u32..3_000, 1..20),
            order in prop::collection::vec(any::<u16>(), 1..20),
        ) {
            // Build the contiguous segment list, then permute by `order`.
            let mut segs: Vec<(u64, u32)> = Vec::new();
            let mut seq = 0u64;
            for &len in &seg_lens {
                segs.push((seq, len));
                seq += len as u64;
            }
            let total = seq;
            let mut perm: Vec<usize> = (0..segs.len()).collect();
            perm.sort_by_key(|&i| order.get(i).copied().unwrap_or(0));

            let mut r = DelayedAckReceiver::new(40_000_000, false);
            for (t, &i) in perm.iter().enumerate() {
                let (s, l) = segs[i];
                r.on_segment(t as u64 * 1_000_000, s, l);
                prop_assert!(r.rcv_nxt() <= total);
            }
            prop_assert_eq!(r.rcv_nxt(), total);
            prop_assert_eq!(r.bytes_received(), total);
        }
    }
}
