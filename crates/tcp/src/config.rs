//! TCP model configuration.

use crate::cc::CcAlgorithm;
use crate::time::{Nanos, MILLISECOND};

/// Parameters of the modelled TCP connection.
///
/// Defaults follow Linux: IW10 (RFC 6928), 1460-byte MSS (1500 MTU minus
/// 40 bytes of headers — the paper's Figure 4 speaks of "1500-byte packets"
/// meaning on-the-wire size), 200 ms minimum RTO, delayed ACKs up to 40 ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment size in payload bytes.
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Congestion control algorithm.
    pub cc: CcAlgorithm,
    /// Enable HyStart-style early slow-start exit on RTT growth (the
    /// "CUBIC hybrid slow start" the paper cites as a goodput-degrading
    /// event, §3.2.3).
    pub hystart: bool,
    /// RTT increase (relative to MinRTT) that triggers a HyStart exit.
    pub hystart_rtt_threshold: f64,
    /// Minimum retransmission timeout.
    pub min_rto: Nanos,
    /// Receiver delayed-ACK timeout (ACK every 2nd packet or after this).
    pub delayed_ack_timeout: Nanos,
    /// Disable delayed ACKs entirely (the paper disabled them in NS3 to
    /// match Linux's byte-counted cwnd growth — footnote 7).
    pub delayed_ack_disabled: bool,
    /// Receive window in bytes (a cap on in-flight data).
    pub receive_window: u32,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// Pace segment transmissions at ~2×cwnd/sRTT instead of bursting
    /// whole windows (Linux has paced by default since sch_fq; bursts are
    /// what overflow shallow queues and stretch multi-round transfers
    /// beyond the ideal model).
    pub pacing: bool,
    /// Collapse the window back to the initial cwnd after an idle period
    /// longer than the RTO (Linux `tcp_slow_start_after_idle`, on by
    /// default there, typically *disabled* on CDN edge servers — the
    /// paper's Figure-4 example relies on the window persisting across
    /// transactions).
    pub slow_start_after_idle: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            initial_cwnd_segments: 10,
            cc: CcAlgorithm::Cubic,
            hystart: false,
            hystart_rtt_threshold: 0.25,
            min_rto: 200 * MILLISECOND,
            delayed_ack_timeout: 40 * MILLISECOND,
            delayed_ack_disabled: false,
            receive_window: 6 * 1024 * 1024,
            dupack_threshold: 3,
            pacing: false,
            slow_start_after_idle: false,
        }
    }
}

impl TcpConfig {
    /// Initial congestion window in bytes.
    pub fn initial_cwnd_bytes(&self) -> u32 {
        self.mss * self.initial_cwnd_segments
    }

    /// Config matching the paper's Figure-4 idealized example: 1500-byte
    /// packets, IW10, Reno-style loss-based growth, no delayed ACKs.
    pub fn figure4() -> Self {
        TcpConfig {
            mss: 1500,
            initial_cwnd_segments: 10,
            cc: CcAlgorithm::Reno,
            delayed_ack_disabled: true,
            ..Default::default()
        }
    }

    /// Config matching the paper's NS3 validation setup (§3.2.3): delayed
    /// ACKs disabled so cwnd growth matches Linux's byte-counting.
    pub fn ns3_validation(initial_cwnd_segments: u32) -> Self {
        TcpConfig {
            mss: 1460,
            initial_cwnd_segments,
            cc: CcAlgorithm::Reno,
            delayed_ack_disabled: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_linux_like() {
        let c = TcpConfig::default();
        assert_eq!(c.initial_cwnd_bytes(), 14_600);
        assert_eq!(c.cc, CcAlgorithm::Cubic);
        assert_eq!(c.min_rto, 200 * MILLISECOND);
    }

    #[test]
    fn figure4_uses_full_packets() {
        let c = TcpConfig::figure4();
        assert_eq!(c.initial_cwnd_bytes(), 15_000);
        assert!(c.delayed_ack_disabled);
    }
}
