//! Congestion-control algorithms: Reno and CUBIC.
//!
//! Growth is byte-counted (ABC, RFC 3465 / Linux behaviour): slow start
//! grows the cwnd by the number of bytes ACKed, not per-ACK — the paper's
//! footnote 3 calls this out as the behaviour its model must match.

use crate::time::{Nanos, SECOND};

/// Which congestion-control algorithm a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgorithm {
    /// NewReno-style AIMD.
    Reno,
    /// CUBIC (RFC 8312) with β = 0.7, C = 0.4.
    Cubic,
    /// Simplified BBR: rate-model-based, loss-insensitive.
    BbrLite,
}

/// Common interface the sender drives.
///
/// All window quantities are in **bytes**. The sender guarantees calls are
/// monotone in `now`.
pub trait CongestionControl {
    /// Bytes newly acknowledged while in slow start; returns the cwnd
    /// increment in bytes.
    fn on_ack_slow_start(&mut self, acked: u32, cwnd: u32) -> u32;

    /// Bytes newly acknowledged in congestion avoidance; returns the cwnd
    /// increment in bytes.
    fn on_ack_avoidance(&mut self, now: Nanos, acked: u32, cwnd: u32, min_rtt: Nanos) -> u32;

    /// A loss event (fast retransmit). Returns `(ssthresh, cwnd)` in bytes.
    fn on_loss(&mut self, now: Nanos, cwnd: u32) -> (u32, u32);

    /// A retransmission timeout. Returns `(ssthresh, cwnd)` in bytes.
    fn on_timeout(&mut self, now: Nanos, cwnd: u32, mss: u32) -> (u32, u32);
}

/// NewReno AIMD: ×0.5 on loss, +1 MSS per RTT in avoidance.
#[derive(Debug, Clone)]
pub struct Reno {
    mss: u32,
    /// Fractional cwnd credit accumulated in congestion avoidance.
    avoid_credit: u64,
}

impl Reno {
    /// New Reno instance for a connection with the given MSS.
    pub fn new(mss: u32) -> Self {
        Reno { mss, avoid_credit: 0 }
    }
}

impl CongestionControl for Reno {
    fn on_ack_slow_start(&mut self, acked: u32, _cwnd: u32) -> u32 {
        acked
    }

    fn on_ack_avoidance(&mut self, _now: Nanos, acked: u32, cwnd: u32, _min_rtt: Nanos) -> u32 {
        // cwnd += mss * acked / cwnd, accumulated to avoid losing
        // sub-byte increments on small ACKs.
        self.avoid_credit += self.mss as u64 * acked as u64;
        let inc = (self.avoid_credit / cwnd.max(1) as u64) as u32;
        self.avoid_credit %= cwnd.max(1) as u64;
        inc
    }

    fn on_loss(&mut self, _now: Nanos, cwnd: u32) -> (u32, u32) {
        let ssthresh = (cwnd / 2).max(2 * self.mss);
        (ssthresh, ssthresh)
    }

    fn on_timeout(&mut self, _now: Nanos, cwnd: u32, mss: u32) -> (u32, u32) {
        let ssthresh = (cwnd / 2).max(2 * self.mss);
        (ssthresh, mss)
    }
}

/// CUBIC (RFC 8312): window growth is a cubic function of time since the
/// last congestion event, scaled in MSS units.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u32,
    /// Window (in segments) just before the last reduction.
    w_max: f64,
    /// Time of the last congestion event.
    epoch_start: Option<Nanos>,
    /// K: time (seconds) for the cubic to return to w_max.
    k: f64,
    /// Fractional segment credit.
    credit: f64,
}

const CUBIC_BETA: f64 = 0.7;
const CUBIC_C: f64 = 0.4;

impl Cubic {
    /// New CUBIC instance for a connection with the given MSS.
    pub fn new(mss: u32) -> Self {
        Cubic { mss, w_max: 0.0, epoch_start: None, k: 0.0, credit: 0.0 }
    }

    fn segments(&self, bytes: u32) -> f64 {
        bytes as f64 / self.mss as f64
    }

    fn w_cubic(&self, t_secs: f64) -> f64 {
        CUBIC_C * (t_secs - self.k).powi(3) + self.w_max
    }
}

impl CongestionControl for Cubic {
    fn on_ack_slow_start(&mut self, acked: u32, _cwnd: u32) -> u32 {
        acked
    }

    fn on_ack_avoidance(&mut self, now: Nanos, acked: u32, cwnd: u32, min_rtt: Nanos) -> u32 {
        let epoch = *self.epoch_start.get_or_insert(now);
        if self.w_max == 0.0 {
            // No loss yet: behave Reno-like until the first congestion event.
            self.w_max = self.segments(cwnd);
            self.k = 0.0;
        }
        let t = (now - epoch) as f64 / SECOND as f64;
        let rtt = (min_rtt.max(1)) as f64 / SECOND as f64;
        let target = self.w_cubic(t + rtt);
        let cwnd_seg = self.segments(cwnd);
        // Standard CUBIC pacing of growth toward the target over one RTT,
        // proportional to bytes ACKed.
        let per_ack = if target > cwnd_seg {
            (target - cwnd_seg) / cwnd_seg
        } else {
            // TCP-friendly floor: at least Reno-rate growth.
            0.01 / cwnd_seg
        };
        self.credit += per_ack * self.segments(acked) / self.segments(self.mss);
        let whole = self.credit.floor();
        self.credit -= whole;
        (whole * self.mss as f64) as u32
    }

    fn on_loss(&mut self, now: Nanos, cwnd: u32) -> (u32, u32) {
        let cwnd_seg = self.segments(cwnd);
        // Fast convergence: if below the previous w_max, shrink it further.
        self.w_max =
            if cwnd_seg < self.w_max { cwnd_seg * (1.0 + CUBIC_BETA) / 2.0 } else { cwnd_seg };
        self.epoch_start = Some(now);
        self.k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        let new = ((cwnd_seg * CUBIC_BETA) * self.mss as f64) as u32;
        let new = new.max(2 * self.mss);
        (new, new)
    }

    fn on_timeout(&mut self, now: Nanos, cwnd: u32, mss: u32) -> (u32, u32) {
        let (ssthresh, _) = self.on_loss(now, cwnd);
        (ssthresh, mss)
    }
}

/// Construct the configured algorithm.
pub fn make_cc(algo: CcAlgorithm, mss: u32) -> Box<dyn CongestionControl + Send> {
    match algo {
        CcAlgorithm::Reno => Box::new(Reno::new(mss)),
        CcAlgorithm::Cubic => Box::new(Cubic::new(mss)),
        CcAlgorithm::BbrLite => Box::new(crate::bbr::BbrLite::new(mss)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MILLISECOND;

    const MSS: u32 = 1460;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut cc = Reno::new(MSS);
        // ACKing a full cwnd in slow start doubles it.
        let cwnd = 10 * MSS;
        let inc = cc.on_ack_slow_start(cwnd, cwnd);
        assert_eq!(inc, cwnd);
    }

    #[test]
    fn reno_avoidance_grows_one_mss_per_rtt() {
        let mut cc = Reno::new(MSS);
        let cwnd = 20 * MSS;
        // ACK a full window's worth of bytes in avoidance: total growth
        // should be ~1 MSS.
        let mut total = 0;
        let mut acked = 0;
        while acked < cwnd {
            total += cc.on_ack_avoidance(0, MSS, cwnd, 50 * MILLISECOND);
            acked += MSS;
        }
        assert!((total as i64 - MSS as i64).unsigned_abs() < 10, "total = {total}");
    }

    #[test]
    fn reno_halves_on_loss() {
        let mut cc = Reno::new(MSS);
        let (ssthresh, cwnd) = cc.on_loss(0, 40 * MSS);
        assert_eq!(ssthresh, 20 * MSS);
        assert_eq!(cwnd, 20 * MSS);
    }

    #[test]
    fn reno_timeout_resets_to_one_mss() {
        let mut cc = Reno::new(MSS);
        let (ssthresh, cwnd) = cc.on_timeout(0, 40 * MSS, MSS);
        assert_eq!(ssthresh, 20 * MSS);
        assert_eq!(cwnd, MSS);
    }

    #[test]
    fn reno_loss_floor_is_two_mss() {
        let mut cc = Reno::new(MSS);
        let (ssthresh, _) = cc.on_loss(0, MSS);
        assert_eq!(ssthresh, 2 * MSS);
    }

    #[test]
    fn cubic_reduces_by_beta_on_loss() {
        let mut cc = Cubic::new(MSS);
        let (_, cwnd) = cc.on_loss(SECOND, 100 * MSS);
        let expected = (100.0 * CUBIC_BETA * MSS as f64) as u32;
        assert_eq!(cwnd, expected);
    }

    #[test]
    fn cubic_recovers_toward_w_max() {
        let mut cc = Cubic::new(MSS);
        let w0 = 100 * MSS;
        let (_, mut cwnd) = cc.on_loss(0, w0);
        // Simulate steady ACK clocking in avoidance for several seconds.
        let rtt = 50 * MILLISECOND;
        let mut now = 0;
        for _ in 0..200 {
            now += rtt;
            let mut acked = 0;
            while acked < cwnd {
                cwnd += cc.on_ack_avoidance(now, MSS, cwnd, rtt);
                acked += MSS;
            }
        }
        // After 10 simulated seconds CUBIC should be at or above w_max.
        assert!(cwnd >= w0, "cwnd = {} vs w_max = {}", cwnd / MSS, w0 / MSS);
    }

    #[test]
    fn cubic_growth_is_slow_near_w_max() {
        let mut cc = Cubic::new(MSS);
        let (_, cwnd_after) = cc.on_loss(0, 100 * MSS);
        // Immediately after loss, per-ACK growth must be small (plateau).
        let inc = cc.on_ack_avoidance(MILLISECOND, MSS, cwnd_after, 20 * MILLISECOND);
        assert!(inc <= MSS, "inc = {inc}");
    }

    #[test]
    fn make_cc_dispatches() {
        let mut r = make_cc(CcAlgorithm::Reno, MSS);
        assert_eq!(r.on_ack_slow_start(100, 14600), 100);
        let mut c = make_cc(CcAlgorithm::Cubic, MSS);
        assert_eq!(c.on_ack_slow_start(100, 14600), 100);
    }
}
