//! TCP sender/receiver behaviour model for edgeperf.
//!
//! This crate models the parts of a TCP implementation that matter to the
//! paper's methodology: congestion-window evolution (slow start growing by
//! *bytes ACKed*, as Linux does — footnote 3 of the paper), Reno and CUBIC
//! congestion control, loss recovery and RTO, RTT estimation, and the
//! delayed-ACK behaviour of receivers (§3.2.5). It deliberately omits what
//! the methodology never observes: urgent pointers, window scaling
//! negotiation, SACK encoding, checksums — this is a *behaviour* model (the
//! role NS3 and the production kernel play in the paper), not a wire-format
//! implementation.
//!
//! The model is a passive state machine driven by an external clock: the
//! discrete-event simulator in `edgeperf-netsim` calls [`sender::TcpSender`]
//! with explicit timestamps, which keeps everything deterministic.

pub mod bbr;
pub mod cc;
pub mod config;
pub mod info;
pub mod receiver;
pub mod rtt;
pub mod sender;
pub mod time;

pub use bbr::BbrLite;
pub use cc::{CcAlgorithm, CongestionControl, Cubic, Reno};
pub use config::TcpConfig;
pub use info::TcpInfo;
pub use receiver::DelayedAckReceiver;
pub use rtt::RttEstimator;
pub use sender::{SenderState, TcpSender};
pub use time::{Nanos, MICROSECOND, MILLISECOND, SECOND};
