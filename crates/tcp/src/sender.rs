//! The TCP sender state machine.
//!
//! Byte-sequence based (no wrap handling — a simulated transaction never
//! approaches 2^64 bytes), cumulative ACKs, NewReno-style recovery, RTO
//! with Karn's rule, and Linux-style cwnd-limited gating of window growth
//! (the paper's footnote 3: growth only happens when the connection was
//! actually limited by cwnd, by bytes ACKed, not ACK count).

use crate::cc::{make_cc, CongestionControl};
use crate::config::TcpConfig;
use crate::info::TcpInfo;
use crate::rtt::RttEstimator;
use crate::time::Nanos;
use std::collections::VecDeque;

/// Congestion state of the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderState {
    /// Normal operation (slow start or congestion avoidance).
    Open,
    /// Fast recovery after a dup-ACK-detected loss.
    Recovery,
    /// RTO-triggered loss state.
    Loss,
}

/// A segment the sender wants on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First byte sequence number.
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// True if this is a retransmission.
    pub retx: bool,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    seq: u64,
    len: u32,
    sent_at: Nanos,
    retx: bool,
}

/// Sender state machine. Drive it with [`TcpSender::next_segment`],
/// [`TcpSender::on_ack`] and [`TcpSender::on_rto`].
pub struct TcpSender {
    cfg: TcpConfig,
    cc: Box<dyn CongestionControl + Send>,
    rtt: RttEstimator,

    /// First unacknowledged sequence number.
    snd_una: u64,
    /// Next new sequence number to send.
    snd_nxt: u64,
    /// Application bytes enqueued (end of stream so far).
    app_limit: u64,

    cwnd: u32,
    ssthresh: u32,
    state: SenderState,
    /// Recovery ends when snd_una passes this point.
    recover: u64,
    dupacks: u32,
    /// Queue of segments to retransmit (seq, len).
    retx_queue: VecDeque<(u64, u32)>,
    /// Segments in flight, ordered by send time (for RTT/RTO).
    in_flight_segs: VecDeque<InFlight>,
    /// Set when a send was blocked by cwnd; gates window growth.
    cwnd_limited: bool,
    /// Last time a segment was sent or an ACK processed (for the
    /// slow-start-after-idle rule).
    last_activity: Nanos,

    bytes_acked_total: u64,
    retransmits: u64,
}

impl TcpSender {
    /// New sender with the given configuration.
    pub fn new(cfg: TcpConfig) -> Self {
        TcpSender {
            cc: make_cc(cfg.cc, cfg.mss),
            rtt: RttEstimator::new(cfg.min_rto),
            snd_una: 0,
            snd_nxt: 0,
            app_limit: 0,
            cwnd: cfg.initial_cwnd_bytes(),
            ssthresh: u32::MAX,
            state: SenderState::Open,
            recover: 0,
            dupacks: 0,
            retx_queue: VecDeque::new(),
            in_flight_segs: VecDeque::new(),
            cwnd_limited: false,
            last_activity: 0,
            bytes_acked_total: 0,
            retransmits: 0,
            cfg,
        }
    }

    /// Append application bytes to the send stream.
    pub fn enqueue(&mut self, bytes: u64) {
        self.app_limit += bytes;
    }

    /// Bytes currently unacknowledged.
    pub fn bytes_in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// True when every enqueued byte has been cumulatively acknowledged.
    pub fn all_acked(&self) -> bool {
        self.snd_una == self.app_limit
    }

    /// First unacknowledged sequence number.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next new sequence number (bytes written to the wire so far).
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// End of the currently enqueued application stream.
    pub fn app_limit(&self) -> u64 {
        self.app_limit
    }

    /// True if unsent application data remains.
    pub fn has_unsent_data(&self) -> bool {
        self.snd_nxt < self.app_limit || !self.retx_queue.is_empty()
    }

    /// Instrumentation snapshot (the `TCP_INFO` analogue).
    pub fn info(&self) -> TcpInfo {
        TcpInfo {
            cwnd_bytes: self.cwnd,
            ssthresh_bytes: self.ssthresh,
            bytes_in_flight: self.bytes_in_flight(),
            bytes_acked: self.bytes_acked_total,
            retransmits: self.retransmits,
            min_rtt: self.rtt.min_rtt(),
            srtt: self.rtt.srtt(),
            state: self.state,
        }
    }

    /// The RTT estimator (read-only).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Seed the RTT estimator with the connection-establishment sample
    /// (the SYN/SYN-ACK exchange): header-sized packets, so this sample
    /// sits at the path's propagation floor — exactly the paper's
    /// footnote-5 observation that MinRTT captures at minimum the header
    /// transmission time.
    pub fn seed_handshake_rtt(&mut self, rtt: Nanos) {
        self.rtt.on_sample(rtt);
    }

    fn window_allows(&self, len: u32) -> bool {
        let inflight = self.bytes_in_flight();
        inflight + len as u64 <= self.cwnd as u64
            && inflight + len as u64 <= self.cfg.receive_window as u64
    }

    /// Produce the next segment to transmit at `now`, or `None` if the
    /// window or the application limits sending. Call repeatedly until it
    /// returns `None`.
    pub fn next_segment(&mut self, now: Nanos) -> Option<Segment> {
        // Retransmissions take priority and are not cwnd-gated beyond one
        // segment at a time (simplified NewReno).
        if let Some((seq, len)) = self.retx_queue.pop_front() {
            self.retransmits += 1;
            self.in_flight_segs.push_back(InFlight { seq, len, sent_at: now, retx: true });
            return Some(Segment { seq, len, retx: true });
        }

        let remaining = self.app_limit - self.snd_nxt;
        if remaining == 0 {
            return None;
        }
        // Slow start after idle: if the connection sat quiet for longer
        // than the RTO, the old window no longer reflects path state.
        if self.cfg.slow_start_after_idle
            && self.bytes_in_flight() == 0
            && now.saturating_sub(self.last_activity) > self.rtt.rto()
        {
            self.cwnd = self.cwnd.min(self.cfg.initial_cwnd_bytes());
        }
        let len = (remaining.min(self.cfg.mss as u64)) as u32;
        if !self.window_allows(len) {
            self.cwnd_limited = true;
            return None;
        }
        let seq = self.snd_nxt;
        self.snd_nxt += len as u64;
        self.last_activity = now;
        self.in_flight_segs.push_back(InFlight { seq, len, sent_at: now, retx: false });
        // Slow-start cwnd-limited rule: more than half the cwnd in flight.
        if self.in_slow_start() && self.bytes_in_flight() * 2 > self.cwnd as u64 {
            self.cwnd_limited = true;
        }
        Some(Segment { seq, len, retx: false })
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Process a cumulative ACK for all bytes below `ack_seq`.
    pub fn on_ack(&mut self, now: Nanos, ack_seq: u64) {
        if ack_seq > self.snd_nxt {
            // Receiver cannot ACK data never sent.
            panic!("ack beyond snd_nxt: {ack_seq} > {}", self.snd_nxt);
        }
        if ack_seq <= self.snd_una {
            self.on_dupack(now);
            return;
        }
        let newly_acked = (ack_seq - self.snd_una) as u32;
        self.snd_una = ack_seq;
        self.last_activity = now;
        self.bytes_acked_total += newly_acked as u64;
        self.dupacks = 0;

        // RTT sample from the newest segment fully covered by this ACK that
        // was never retransmitted (Karn's rule).
        let mut sample: Option<Nanos> = None;
        while let Some(seg) = self.in_flight_segs.front() {
            if seg.seq + seg.len as u64 <= ack_seq {
                if !seg.retx {
                    sample = Some(now.saturating_sub(seg.sent_at));
                }
                self.in_flight_segs.pop_front();
            } else {
                break;
            }
        }
        if let Some(rtt) = sample {
            self.rtt.on_sample(rtt);
        }
        // Drop queued retransmissions now covered by the ACK.
        self.retx_queue.retain(|&(seq, len)| seq + len as u64 > ack_seq);

        match self.state {
            SenderState::Open => self.grow_cwnd(now, newly_acked),
            SenderState::Recovery => {
                if ack_seq >= self.recover {
                    // Recovery complete: deflate to ssthresh.
                    self.cwnd = self.ssthresh.max(2 * self.cfg.mss);
                    self.state = SenderState::Open;
                } else {
                    // Partial ACK: retransmit the next hole immediately.
                    self.queue_first_unacked_retx();
                }
            }
            SenderState::Loss => {
                if ack_seq >= self.recover {
                    self.state = SenderState::Open;
                } else {
                    // Everything up to `recover` was presumed lost at the
                    // RTO; keep retransmitting the stream sequentially.
                    self.queue_first_unacked_retx();
                }
                // Slow start applies while recovering from loss.
                self.grow_cwnd(now, newly_acked);
            }
        }

        // Safety net: outstanding bytes must always be covered by either an
        // in-flight segment (with its RTO) or a queued retransmission;
        // otherwise the connection would wait forever.
        if self.snd_una < self.snd_nxt
            && self.in_flight_segs.is_empty()
            && self.retx_queue.is_empty()
        {
            self.queue_first_unacked_retx();
        }
    }

    fn grow_cwnd(&mut self, now: Nanos, newly_acked: u32) {
        if !self.cwnd_limited {
            // Application-limited: Linux does not grow the window.
            return;
        }
        let inc = if self.in_slow_start() {
            // HyStart: leave slow start early if RTT has inflated.
            if self.cfg.hystart {
                if let (Some(latest), Some(min)) = (self.rtt.latest(), self.rtt.min_rtt()) {
                    if latest as f64 > min as f64 * (1.0 + self.cfg.hystart_rtt_threshold) {
                        self.ssthresh = self.cwnd;
                    }
                }
            }
            if self.in_slow_start() {
                let inc = self.cc.on_ack_slow_start(newly_acked, self.cwnd);
                // Don't overshoot ssthresh.
                if self.ssthresh != u32::MAX && self.cwnd + inc > self.ssthresh {
                    self.ssthresh - self.cwnd
                } else {
                    inc
                }
            } else {
                0
            }
        } else {
            self.cc.on_ack_avoidance(now, newly_acked, self.cwnd, self.rtt.min_rtt().unwrap_or(1))
        };
        self.cwnd = self.cwnd.saturating_add(inc);
        // Re-evaluate limitedness after growth.
        self.cwnd_limited = self.bytes_in_flight() * 2 > self.cwnd as u64;
    }

    fn on_dupack(&mut self, now: Nanos) {
        self.dupacks += 1;
        if self.state == SenderState::Open && self.dupacks >= self.cfg.dupack_threshold {
            // Fast retransmit.
            let (ssthresh, cwnd) = self.cc.on_loss(now, self.cwnd);
            self.ssthresh = ssthresh;
            self.cwnd = cwnd.max(2 * self.cfg.mss);
            self.state = SenderState::Recovery;
            self.recover = self.snd_nxt;
            self.queue_first_unacked_retx();
        }
    }

    fn queue_first_unacked_retx(&mut self) {
        let len = ((self.snd_nxt - self.snd_una).min(self.cfg.mss as u64)) as u32;
        if len == 0 {
            return;
        }
        let seq = self.snd_una;
        if !self.retx_queue.iter().any(|&(s, _)| s == seq) {
            self.retx_queue.push_back((seq, len));
        }
    }

    /// Deadline of the retransmission timer, if data is in flight.
    pub fn rto_deadline(&self) -> Option<Nanos> {
        self.in_flight_segs.front().map(|seg| seg.sent_at + self.rtt.rto())
    }

    /// The retransmission timer fired.
    pub fn on_rto(&mut self, now: Nanos) {
        if self.bytes_in_flight() == 0 {
            return;
        }
        self.rtt.on_timeout();
        let (ssthresh, cwnd) = self.cc.on_timeout(now, self.cwnd, self.cfg.mss);
        self.ssthresh = ssthresh;
        self.cwnd = cwnd;
        self.state = SenderState::Loss;
        self.recover = self.snd_nxt;
        self.dupacks = 0;
        // Everything in flight is presumed lost; retransmit from snd_una.
        self.in_flight_segs.clear();
        self.retx_queue.clear();
        self.queue_first_unacked_retx();
        self.cwnd_limited = true;
    }
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("app_limit", &self.app_limit)
            .field("cwnd", &self.cwnd)
            .field("ssthresh", &self.ssthresh)
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcAlgorithm;
    use crate::time::MILLISECOND;

    fn cfg() -> TcpConfig {
        TcpConfig { cc: CcAlgorithm::Reno, delayed_ack_disabled: true, ..Default::default() }
    }

    /// Send everything allowed at `now`, returning the segments.
    fn drain(s: &mut TcpSender, now: Nanos) -> Vec<Segment> {
        let mut v = Vec::new();
        while let Some(seg) = s.next_segment(now) {
            v.push(seg);
        }
        v
    }

    #[test]
    fn initial_window_is_iw10() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(1_000_000);
        let segs = drain(&mut s, 0);
        assert_eq!(segs.len(), 10);
        assert_eq!(s.bytes_in_flight(), 14_600);
    }

    #[test]
    fn app_limited_sends_less() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(2_000);
        let segs = drain(&mut s, 0);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len, 1460);
        assert_eq!(segs[1].len, 540);
    }

    #[test]
    fn slow_start_doubles_when_cwnd_limited() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(1_000_000);
        drain(&mut s, 0);
        let cwnd0 = s.cwnd();
        // ACK the whole window at t = 50 ms.
        s.on_ack(50 * MILLISECOND, s.snd_nxt());
        assert_eq!(s.cwnd(), 2 * cwnd0);
    }

    #[test]
    fn app_limited_does_not_grow_cwnd() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(1_460); // one segment: far below half the window
        drain(&mut s, 0);
        let cwnd0 = s.cwnd();
        s.on_ack(50 * MILLISECOND, s.snd_nxt());
        assert_eq!(s.cwnd(), cwnd0, "app-limited ACK must not grow cwnd");
    }

    #[test]
    fn rtt_is_sampled_from_acks() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(1_460);
        drain(&mut s, 1_000_000);
        s.on_ack(61 * MILLISECOND, s.snd_nxt());
        assert_eq!(s.rtt().min_rtt(), Some(60 * MILLISECOND));
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(100_000);
        drain(&mut s, 0);
        // Receiver keeps ACKing 0 (first segment lost).
        s.on_ack(10 * MILLISECOND, 0);
        s.on_ack(11 * MILLISECOND, 0);
        assert_eq!(s.info().state, SenderState::Open);
        s.on_ack(12 * MILLISECOND, 0);
        assert_eq!(s.info().state, SenderState::Recovery);
        // The retransmission must be segment 0.
        let seg = s.next_segment(13 * MILLISECOND).expect("retransmission");
        assert!(seg.retx);
        assert_eq!(seg.seq, 0);
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(100_000);
        drain(&mut s, 0);
        let sent = s.snd_nxt();
        for t in 1..=3 {
            s.on_ack(t * MILLISECOND, 0);
        }
        assert_eq!(s.info().state, SenderState::Recovery);
        s.next_segment(4 * MILLISECOND); // emit the retransmission
        s.on_ack(50 * MILLISECOND, sent);
        assert_eq!(s.info().state, SenderState::Open);
        assert!(s.all_acked() || s.has_unsent_data());
    }

    #[test]
    fn rto_collapses_window_and_retransmits() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(100_000);
        drain(&mut s, 0);
        let deadline = s.rto_deadline().expect("data in flight");
        s.on_rto(deadline);
        assert_eq!(s.info().state, SenderState::Loss);
        assert_eq!(s.cwnd(), 1460);
        let seg = s.next_segment(deadline + 1).expect("rto retransmission");
        assert!(seg.retx);
        assert_eq!(seg.seq, 0);
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(1_460);
        drain(&mut s, 0);
        let deadline = s.rto_deadline().unwrap();
        s.on_rto(deadline);
        s.next_segment(deadline + 1);
        // ACK arrives; segment was retransmitted → no RTT sample.
        s.on_ack(deadline + 50 * MILLISECOND, 1_460);
        assert_eq!(s.rtt().min_rtt(), None);
    }

    #[test]
    fn cumulative_ack_beyond_sent_panics() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(1_460);
        drain(&mut s, 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.on_ack(1, 999_999);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn all_acked_lifecycle() {
        let mut s = TcpSender::new(cfg());
        assert!(s.all_acked());
        s.enqueue(3_000);
        assert!(!s.all_acked());
        drain(&mut s, 0);
        s.on_ack(10 * MILLISECOND, 3_000);
        assert!(s.all_acked());
        assert_eq!(s.bytes_in_flight(), 0);
    }

    #[test]
    fn info_snapshot_tracks_totals() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(14_600);
        drain(&mut s, 0);
        s.on_ack(20 * MILLISECOND, 14_600);
        let info = s.info();
        assert_eq!(info.bytes_acked, 14_600);
        assert_eq!(info.retransmits, 0);
        assert_eq!(info.bytes_in_flight, 0);
    }

    #[test]
    fn ssthresh_caps_slow_start_growth() {
        let mut s = TcpSender::new(cfg());
        s.enqueue(10_000_000);
        // Force a loss to set ssthresh, then verify slow start respects it.
        drain(&mut s, 0);
        let d = s.rto_deadline().unwrap();
        s.on_rto(d);
        let ssthresh = s.info().ssthresh_bytes;
        // Retransmit and ACK progressively; cwnd must not blow past
        // ssthresh within slow start growth steps.
        let mut now = d;
        for _ in 0..50 {
            now += 10 * MILLISECOND;
            while let Some(_seg) = s.next_segment(now) {}
            let target = s.snd_nxt();
            now += 10 * MILLISECOND;
            s.on_ack(now, target);
            if s.cwnd() >= ssthresh {
                break;
            }
        }
        // Growth through ssthresh must be exact, not overshooting.
        assert!(s.cwnd() >= ssthresh);
    }
}

#[cfg(test)]
mod hystart_tests {
    use super::*;
    use crate::cc::CcAlgorithm;
    use crate::time::MILLISECOND;

    /// HyStart: a sharp RTT rise during slow start caps ssthresh so the
    /// window stops doubling (CUBIC's early exit, which the paper names
    /// as a goodput-degrading event the model must not mistake for loss).
    #[test]
    fn hystart_exits_slow_start_on_rtt_inflation() {
        let cfg = TcpConfig {
            cc: CcAlgorithm::Cubic,
            hystart: true,
            delayed_ack_disabled: true,
            ..Default::default()
        };
        let mut s = TcpSender::new(cfg);
        s.seed_handshake_rtt(20 * MILLISECOND);
        s.enqueue(10_000_000);
        // Round 1: normal RTT.
        let mut now = 0;
        while s.next_segment(now).is_some() {}
        now += 20 * MILLISECOND;
        s.on_ack(now, s.snd_nxt());
        let after_round1 = s.cwnd();
        // Round 2: RTT inflates 2x (queue building) → HyStart should cap.
        while s.next_segment(now).is_some() {}
        now += 40 * MILLISECOND;
        s.on_ack(now, s.snd_nxt());
        let capped = s.info().ssthresh_bytes;
        assert!(capped != u32::MAX, "HyStart must set ssthresh");
        assert!(capped <= s.cwnd().max(after_round1) * 2, "ssthresh near current window");

        // Control: without HyStart the window keeps doubling freely.
        let mut c = TcpSender::new(TcpConfig { hystart: false, ..cfg });
        c.seed_handshake_rtt(20 * MILLISECOND);
        c.enqueue(10_000_000);
        let mut now = 0;
        for _ in 0..2 {
            while c.next_segment(now).is_some() {}
            now += 40 * MILLISECOND;
            c.on_ack(now, c.snd_nxt());
        }
        assert_eq!(c.info().ssthresh_bytes, u32::MAX, "control must stay in slow start");
    }
}
