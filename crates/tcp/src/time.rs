//! Virtual time for the deterministic simulation stack.
//!
//! All simulation time is integer nanoseconds (`u64`), which removes
//! floating-point drift from event ordering and makes runs bit-for-bit
//! reproducible. Rates convert at the boundary: bits/second in the public
//! API, bytes+nanoseconds internally.

/// Virtual time or duration in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// Convert nanoseconds to floating-point seconds (for reporting only).
pub fn to_secs(ns: Nanos) -> f64 {
    ns as f64 / SECOND as f64
}

/// Convert floating-point milliseconds to [`Nanos`], rounding to nearest.
pub fn from_millis_f64(ms: f64) -> Nanos {
    assert!(ms >= 0.0 && ms.is_finite(), "bad duration {ms} ms");
    (ms * MILLISECOND as f64).round() as Nanos
}

/// Transmission time of `bytes` at `rate_bps` bits per second.
///
/// # Panics
/// Panics if `rate_bps` is zero.
pub fn transmission_time(bytes: u64, rate_bps: u64) -> Nanos {
    assert!(rate_bps > 0, "zero link rate");
    // bytes * 8 * 1e9 / rate, computed in u128 to avoid overflow.
    ((bytes as u128 * 8 * SECOND as u128) / rate_bps as u128) as Nanos
}

/// Rate in bits/second that transfers `bytes` in `dur` nanoseconds.
pub fn rate_bps(bytes: u64, dur: Nanos) -> f64 {
    assert!(dur > 0, "zero duration");
    bytes as f64 * 8.0 * SECOND as f64 / dur as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time_examples() {
        // 1500 B at 3 Mbps = 4 ms.
        assert_eq!(transmission_time(1500, 3_000_000), 4 * MILLISECOND);
        // 1 B at 8 bps = 1 s.
        assert_eq!(transmission_time(1, 8), SECOND);
    }

    #[test]
    fn transmission_time_no_overflow_at_scale() {
        // 10 GB at 1 kbps — enormous duration but must not overflow u128 math.
        let t = transmission_time(10_000_000_000, 1_000);
        assert_eq!(t, 80_000_000 * SECOND);
    }

    #[test]
    fn rate_round_trip() {
        let t = transmission_time(125_000, 10_000_000); // 125 kB at 10 Mbps = 100 ms
        assert_eq!(t, 100 * MILLISECOND);
        assert!((rate_bps(125_000, t) - 10_000_000.0).abs() < 1.0);
    }

    #[test]
    fn from_millis_rounds() {
        assert_eq!(from_millis_f64(1.5), 1_500_000);
        assert_eq!(from_millis_f64(0.0), 0);
    }
}
