//! Synthetic HTTP workload generation, parameterized to match the traffic
//! characterization in §2.3 of the paper (Figures 1–3):
//!
//! - most objects are small (50% of responses under ~6 kB; media
//!   endpoints' median ≈ 19 kB with a heavy tail),
//! - sessions are mostly idle and mostly short-lived (≈ a third end
//!   within a minute; HTTP/2 sessions live longer than HTTP/1.1),
//! - most sessions have few transactions (over 80% fewer than 5), but
//!   sessions with ≥ 50 transactions carry more than half of the bytes.
//!
//! Generation is deterministic per seed. The output is a [`SessionPlan`] —
//! a timed schedule of response writes — executed against a simulated (or
//! real) connection by the caller.

pub mod distributions;
pub mod sessions;

pub use distributions::{LogNormal, Mixture, Pareto};
pub use sessions::{EndpointKind, SessionPlan, TxnPlan, WorkloadConfig};
