//! Session plan generation (paper §2.3).
//!
//! Sessions are drawn from four archetypes whose mixture reproduces the
//! paper's published traffic shape:
//!
//! | archetype | transactions | sizes | role |
//! |---|---|---|---|
//! | quick API | 1–2 | small | the "7.4% of sessions end within 1 s" mass |
//! | interactive | few, spread out | small/medium | idle-dominated browse |
//! | media browse | 5–30 | ≈19 kB median | image/photo endpoints |
//! | video stream | 50–300 chunks | 30–500 kB | the ≥50-transaction sessions carrying >half of all bytes |
//!
//! The HTTP version tilts the mixture: HTTP/1.1 browsers open several
//! parallel connections so each carries fewer transactions and ends
//! sooner; HTTP/2 multiplexes everything onto one longer-lived session.

use crate::distributions::{exponential, LogNormal, Pareto};
use edgeperf_core::{HttpVersion, Nanos, MILLISECOND, SECOND};
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// What kind of endpoint a session talks to (drives response sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// Dynamic content: API responses, rendered HTML.
    Api,
    /// Images and photos.
    Media,
    /// Streaming video segments.
    Video,
}

/// One planned response write.
#[derive(Debug, Clone, Copy)]
pub struct TxnPlan {
    /// Offset from session start at which the response is written.
    pub offset: Nanos,
    /// Response size in bytes.
    pub bytes: u64,
}

/// A timed schedule of response writes for one session.
#[derive(Debug, Clone)]
pub struct SessionPlan {
    /// HTTP version of the session.
    pub http: HttpVersion,
    /// Endpoint kind (media responses feed Figure 2's "media" series).
    pub endpoint: EndpointKind,
    /// Response writes in time order.
    pub transactions: Vec<TxnPlan>,
    /// Session duration (close of the underlying TCP connection).
    pub duration: Nanos,
}

impl SessionPlan {
    /// Total planned bytes.
    pub fn total_bytes(&self) -> u64 {
        self.transactions.iter().map(|t| t.bytes).sum()
    }
}

/// # Example
///
/// ```
/// use edgeperf_workload::WorkloadConfig;
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
/// let plan = WorkloadConfig::default().generate(&mut rng);
/// assert!(!plan.transactions.is_empty());
/// assert!(plan.duration >= plan.transactions.last().unwrap().offset);
/// ```
/// Tunables for the generator. Defaults reproduce §2.3.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Fraction of sessions using HTTP/2.
    pub h2_fraction: f64,
    /// Median API/dynamic response size (bytes).
    pub api_median_bytes: f64,
    /// Median media response size (bytes; the paper reports ≈19 kB).
    pub media_median_bytes: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            h2_fraction: 0.55,
            api_median_bytes: 2_500.0,
            media_median_bytes: 19_000.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Archetype {
    Quick,
    Interactive,
    MediaBrowse,
    VideoStream,
}

impl WorkloadConfig {
    /// Generate one session plan.
    pub fn generate(&self, rng: &mut ChaCha12Rng) -> SessionPlan {
        let http =
            if rng.gen::<f64>() < self.h2_fraction { HttpVersion::H2 } else { HttpVersion::H1 };
        let archetype = self.pick_archetype(http, rng);
        match archetype {
            Archetype::Quick => self.quick(http, rng),
            Archetype::Interactive => self.interactive(http, rng),
            Archetype::MediaBrowse => self.media_browse(http, rng),
            Archetype::VideoStream => self.video_stream(http, rng),
        }
    }

    fn pick_archetype(&self, http: HttpVersion, rng: &mut ChaCha12Rng) -> Archetype {
        let u = rng.gen::<f64>();
        match http {
            // H1: several parallel short connections per page.
            HttpVersion::H1 => {
                if u < 0.45 {
                    Archetype::Quick
                } else if u < 0.95 {
                    Archetype::Interactive
                } else if u < 0.998 {
                    Archetype::MediaBrowse
                } else {
                    Archetype::VideoStream
                }
            }
            // H2: one multiplexed, longer-lived connection.
            HttpVersion::H2 => {
                if u < 0.24 {
                    Archetype::Quick
                } else if u < 0.82 {
                    Archetype::Interactive
                } else if u < 0.983 {
                    Archetype::MediaBrowse
                } else {
                    Archetype::VideoStream
                }
            }
        }
    }

    fn api_size(&self, rng: &mut ChaCha12Rng) -> u64 {
        let d = LogNormal::from_median(self.api_median_bytes, 1.1);
        (d.sample(rng).clamp(120.0, 2e6)) as u64
    }

    fn media_size(&self, rng: &mut ChaCha12Rng) -> u64 {
        let d = LogNormal::from_median(self.media_median_bytes, 1.3);
        (d.sample(rng).clamp(500.0, 8e6)) as u64
    }

    fn video_chunk(&self, rng: &mut ChaCha12Rng) -> u64 {
        // ~2 s segments at 0.5–4 Mbps → roughly 80 kB median chunks.
        let d = LogNormal::from_median(80_000.0, 0.8);
        (d.sample(rng).clamp(15_000.0, 2e6)) as u64
    }

    fn quick(&self, http: HttpVersion, rng: &mut ChaCha12Rng) -> SessionPlan {
        let n = if rng.gen::<f64>() < 0.75 { 1 } else { 2 };
        let mut txns = Vec::with_capacity(n);
        let mut t = (20.0 * MILLISECOND as f64) as Nanos;
        for _ in 0..n {
            txns.push(TxnPlan { offset: t, bytes: self.api_size(rng) });
            t += exponential(rng, 0.15 * SECOND as f64) as Nanos;
        }
        // Many quick sessions close almost immediately; some linger.
        let tail = if rng.gen::<f64>() < 0.4 {
            exponential(rng, 0.4 * SECOND as f64) as Nanos
        } else {
            exponential(rng, 120.0 * SECOND as f64) as Nanos
        };
        SessionPlan { http, endpoint: EndpointKind::Api, duration: t + tail, transactions: txns }
    }

    fn interactive(&self, http: HttpVersion, rng: &mut ChaCha12Rng) -> SessionPlan {
        let n = 2 + (Pareto::new(1.0, 1.4).sample(rng) as usize).min(10);
        let mut txns = Vec::with_capacity(n);
        let mut t = (30.0 * MILLISECOND as f64) as Nanos;
        for i in 0..n {
            let bytes =
                if rng.gen::<f64>() < 0.15 { self.media_size(rng) } else { self.api_size(rng) };
            txns.push(TxnPlan { offset: t, bytes });
            // Bursts within a page view, think time between views.
            let gap = if i % 3 == 2 {
                exponential(rng, 45.0 * SECOND as f64)
            } else {
                exponential(rng, 0.8 * SECOND as f64)
            };
            t += gap as Nanos;
        }
        let tail = exponential(rng, 100.0 * SECOND as f64) as Nanos;
        SessionPlan { http, endpoint: EndpointKind::Api, duration: t + tail, transactions: txns }
    }

    fn media_browse(&self, http: HttpVersion, rng: &mut ChaCha12Rng) -> SessionPlan {
        let n = 5 + (Pareto::new(2.0, 1.3).sample(rng) as usize).min(20);
        let mut txns = Vec::with_capacity(n);
        let mut t = (30.0 * MILLISECOND as f64) as Nanos;
        for i in 0..n {
            txns.push(TxnPlan { offset: t, bytes: self.media_size(rng) });
            // Images load in bursts (scrolling), pauses between.
            let gap = if i % 4 == 3 {
                exponential(rng, 12.0 * SECOND as f64)
            } else {
                exponential(rng, 0.12 * SECOND as f64)
            };
            t += gap as Nanos;
        }
        let tail = exponential(rng, 20.0 * SECOND as f64) as Nanos;
        SessionPlan { http, endpoint: EndpointKind::Media, duration: t + tail, transactions: txns }
    }

    fn video_stream(&self, http: HttpVersion, rng: &mut ChaCha12Rng) -> SessionPlan {
        let n = 40 + (Pareto::new(10.0, 1.1).sample(rng) as usize).min(200);
        let mut txns = Vec::with_capacity(n);
        let mut t = (50.0 * MILLISECOND as f64) as Nanos;
        for _ in 0..n {
            txns.push(TxnPlan { offset: t, bytes: self.video_chunk(rng) });
            // Steady chunk cadence (player buffer refill).
            t += (2.0 * SECOND as f64 + exponential(rng, 1.5 * SECOND as f64)) as Nanos;
        }
        SessionPlan {
            http,
            endpoint: EndpointKind::Video,
            duration: t + (5 * SECOND),
            transactions: txns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sessions(n: usize) -> Vec<SessionPlan> {
        let cfg = WorkloadConfig::default();
        let mut rng = ChaCha12Rng::seed_from_u64(2024);
        (0..n).map(|_| cfg.generate(&mut rng)).collect()
    }

    #[test]
    fn median_response_size_is_small() {
        // §2.3: over 50% of responses are fewer than 6 kB.
        let ss = sessions(5_000);
        let mut sizes: Vec<u64> =
            ss.iter().flat_map(|s| s.transactions.iter().map(|t| t.bytes)).collect();
        sizes.sort_unstable();
        let med = sizes[sizes.len() / 2];
        assert!(med < 10_000, "median response = {med}");
        assert!(med > 1_000, "median response = {med}");
    }

    #[test]
    fn most_sessions_transfer_little() {
        // §2.3: over 58% of sessions transfer fewer than 10 kB — allow a
        // loose band around that.
        let ss = sessions(5_000);
        let small = ss.iter().filter(|s| s.total_bytes() < 10_000).count();
        let frac = small as f64 / ss.len() as f64;
        assert!(frac > 0.35 && frac < 0.75, "frac small sessions = {frac}");
    }

    #[test]
    fn heavy_sessions_carry_most_bytes() {
        // §2.3: sessions with ≥50 transactions carry >half of traffic.
        let ss = sessions(5_000);
        let total: u64 = ss.iter().map(|s| s.total_bytes()).sum();
        let heavy: u64 =
            ss.iter().filter(|s| s.transactions.len() >= 50).map(|s| s.total_bytes()).sum();
        let frac = heavy as f64 / total as f64;
        assert!(frac > 0.4, "heavy-session byte share = {frac}");
    }

    #[test]
    fn most_sessions_have_few_transactions() {
        // Fig 3: >80% of sessions have fewer than 5 transactions… loosely.
        let ss = sessions(5_000);
        let few = ss.iter().filter(|s| s.transactions.len() < 5).count();
        let frac = few as f64 / ss.len() as f64;
        assert!(frac > 0.55, "few-txn fraction = {frac}");
    }

    #[test]
    fn h2_sessions_have_more_transactions_on_average() {
        let ss = sessions(10_000);
        let avg = |v: Vec<usize>| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
        let h1: Vec<usize> =
            ss.iter().filter(|s| s.http == HttpVersion::H1).map(|s| s.transactions.len()).collect();
        let h2: Vec<usize> =
            ss.iter().filter(|s| s.http == HttpVersion::H2).map(|s| s.transactions.len()).collect();
        assert!(avg(h2) > avg(h1));
    }

    #[test]
    fn h1_sessions_end_sooner() {
        // Fig 1a: 44% of HTTP/1.1 sessions end within a minute vs 26% of
        // HTTP/2 — check the ordering, not the exact numbers.
        let ss = sessions(10_000);
        let under_min = |v: HttpVersion| {
            let (n, tot) = ss
                .iter()
                .filter(|s| s.http == v)
                .fold((0, 0), |(n, t), s| (n + usize::from(s.duration < 60 * SECOND), t + 1));
            n as f64 / tot as f64
        };
        assert!(under_min(HttpVersion::H1) > under_min(HttpVersion::H2));
    }

    #[test]
    fn some_sessions_are_subsecond_and_some_long() {
        let ss = sessions(10_000);
        let sub = ss.iter().filter(|s| s.duration < SECOND).count() as f64 / ss.len() as f64;
        let long = ss.iter().filter(|s| s.duration > 180 * SECOND).count() as f64 / ss.len() as f64;
        assert!(sub > 0.02 && sub < 0.25, "sub-second fraction = {sub}");
        assert!(long > 0.05 && long < 0.45, "3-minute fraction = {long}");
    }

    #[test]
    fn transactions_are_time_ordered_within_duration() {
        for s in sessions(500) {
            let mut prev = 0;
            for t in &s.transactions {
                assert!(t.offset >= prev);
                prev = t.offset;
            }
            assert!(s.duration >= prev, "duration covers all transactions");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig::default();
        let gen = |seed| {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let s = cfg.generate(&mut rng);
            (s.transactions.len(), s.total_bytes(), s.duration)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn media_sessions_have_media_sizes() {
        let ss = sessions(5_000);
        let media: Vec<&SessionPlan> =
            ss.iter().filter(|s| s.endpoint == EndpointKind::Media).collect();
        assert!(!media.is_empty());
        let mut sizes: Vec<u64> =
            media.iter().flat_map(|s| s.transactions.iter().map(|t| t.bytes)).collect();
        sizes.sort_unstable();
        let med = sizes[sizes.len() / 2];
        // Paper: media median ≈ 19 kB.
        assert!(med > 10_000 && med < 35_000, "media median = {med}");
    }
}
