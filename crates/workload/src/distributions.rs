//! Parametric distributions for workload synthesis.
//!
//! Implemented locally (Box–Muller normal, inverse-CDF Pareto and
//! exponential) to keep the dependency surface at `rand` itself.

use rand::Rng;

/// Log-normal distribution parameterized by its *median* and the σ of the
/// underlying normal — the natural way to express "median response size
/// 19 kB with a heavy tail".
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the distribution median (`exp(μ)`) and shape σ.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0 && sigma >= 0.0);
        LogNormal { mu: median.ln(), sigma }
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// The distribution median.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

/// Pareto (power-law) distribution with scale `xm` and shape `alpha` —
/// used for heavy-tailed object sizes and transaction counts.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Scale (minimum value) and shape (smaller α ⇒ heavier tail).
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && alpha > 0.0);
        Pareto { xm, alpha }
    }

    /// Draw one sample via inverse CDF.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.xm / u.powf(1.0 / self.alpha)
    }
}

/// Exponential sample with the given mean.
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Standard normal via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A weighted mixture of samplers.
#[derive(Debug, Clone)]
pub struct Mixture<T> {
    components: Vec<(f64, T)>,
    total: f64,
}

impl<T> Mixture<T> {
    /// Components as (weight, sampler) pairs.
    pub fn new(components: Vec<(f64, T)>) -> Self {
        assert!(!components.is_empty());
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0);
        Mixture { components, total }
    }

    /// Pick one component by weight.
    pub fn pick<R: Rng>(&self, rng: &mut R) -> &T {
        let mut target = rng.gen::<f64>() * self.total;
        for (w, t) in &self.components {
            if target < *w {
                return t;
            }
            target -= w;
        }
        &self.components.last().unwrap().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(11)
    }

    #[test]
    fn lognormal_median_is_respected() {
        let d = LogNormal::from_median(19_000.0, 1.2);
        let mut r = rng();
        let mut v: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        v.sort_unstable_by(f64::total_cmp);
        let med = v[v.len() / 2];
        assert!((med / 19_000.0 - 1.0).abs() < 0.05, "median = {med}");
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let d = LogNormal::from_median(100.0, 0.0);
        let mut r = rng();
        for _ in 0..10 {
            assert!((d.sample(&mut r) - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let d = Pareto::new(10.0, 1.5);
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= 10.0));
        // Median of Pareto = xm * 2^(1/alpha).
        let mut v = samples.clone();
        v.sort_unstable_by(f64::total_cmp);
        let med = v[v.len() / 2];
        let expect = 10.0 * 2f64.powf(1.0 / 1.5);
        assert!((med / expect - 1.0).abs() < 0.05, "median = {med}");
        // Tail: some samples far above the median.
        assert!(v.last().unwrap() > &200.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let mean: f64 = (0..50_000).map(|_| exponential(&mut r, 7.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 7.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn mixture_picks_by_weight() {
        let m = Mixture::new(vec![(0.8, "a"), (0.2, "b")]);
        let mut r = rng();
        let picks_a = (0..10_000).filter(|_| *m.pick(&mut r) == "a").count();
        let f = picks_a as f64 / 10_000.0;
        assert!((f - 0.8).abs() < 0.02, "f = {f}");
    }
}
