//! Property tests over the statistics crate's public API.

use edgeperf_stats::cdf::CdfBuilder;
use edgeperf_stats::{quantile_sorted, weighted_quantile, TDigest};
use proptest::prelude::*;

proptest! {
    /// t-digest quantiles stay within the true order-statistic envelope
    /// (± a small rank tolerance) for arbitrary inputs.
    #[test]
    fn tdigest_quantiles_are_rank_accurate(
        mut values in prop::collection::vec(-1.0e6f64..1.0e6, 100..2_000),
        q in 0.05f64..0.95,
    ) {
        let mut d = TDigest::new(100.0);
        for &v in &values {
            d.insert(v);
        }
        let est = d.quantile(q);
        values.sort_unstable_by(f64::total_cmp);
        // The estimate must sit between the order statistics 5% of rank
        // on either side of q.
        let n = values.len();
        let lo_idx = ((q - 0.05) * n as f64).floor().max(0.0) as usize;
        let hi_idx = (((q + 0.05) * n as f64).ceil() as usize).min(n - 1);
        prop_assert!(est >= values[lo_idx], "q={q}: {est} < {}", values[lo_idx]);
        prop_assert!(est <= values[hi_idx], "q={q}: {est} > {}", values[hi_idx]);
    }

    /// Weighted quantile with unit weights equals the rank-based
    /// definition on sorted data.
    #[test]
    fn weighted_quantile_degenerates_to_rank(
        mut values in prop::collection::vec(-1.0e3f64..1.0e3, 5..200),
        q in 0.0f64..=1.0,
    ) {
        values.sort_unstable_by(f64::total_cmp);
        let items: Vec<(f64, f64)> = values.iter().map(|&v| (v, 1.0)).collect();
        let wq = weighted_quantile(&items, q);
        // Rank definition: smallest v with cum count >= q*n.
        let n = values.len() as f64;
        let target = (q * n).ceil().max(1.0) as usize;
        let expect = values[(target - 1).min(values.len() - 1)];
        prop_assert_eq!(wq, expect);
    }

    /// CDF quantile and fraction_leq are mutually consistent:
    /// fraction_leq(quantile(q)) ≥ q.
    #[test]
    fn cdf_quantile_fraction_consistency(
        values in prop::collection::vec(-50.0f64..50.0, 2..300),
        q in 0.0f64..=1.0,
    ) {
        let mut b = CdfBuilder::new();
        for &v in &values {
            b.push(v);
        }
        let cdf = b.build();
        let x = cdf.quantile(q);
        prop_assert!(cdf.fraction_leq(x) >= q - 1e-9);
    }

    /// Querying a digest with a dirty insert buffer gives the same answer
    /// as flushing that digest first, across arbitrary interleavings of
    /// inserts, merges, and queries — and the query itself never mutates
    /// observable state. The lazy view compresses through the same
    /// routine as `flush`, so the match is exact; 1e-9 is safety margin.
    #[test]
    fn buffered_tdigest_queries_match_flushed(
        ops in prop::collection::vec(
            (0u8..3, -1.0e4f64..1.0e4, 0.01f64..0.99),
            1..120,
        ),
    ) {
        let mut d = TDigest::new(100.0);
        for &(op, v, q) in &ops {
            match op {
                0 => d.insert(v),
                1 => {
                    // Merge a small digest with its own dirty buffer.
                    let mut other = TDigest::new(100.0);
                    for i in 0..7 {
                        other.insert(v + i as f64);
                    }
                    d.merge(&other);
                }
                _ if d.is_empty() => {} // quantile of an empty digest panics
                _ => {
                    // Query through the buffered view, then flush a copy
                    // and re-query: identical answers required.
                    let dirty_q = d.quantile(q);
                    let dirty_c = d.cdf(v);
                    let mut flushed = d.clone();
                    flushed.flush();
                    let (fq, fc) = (flushed.quantile(q), flushed.cdf(v));
                    prop_assert!(
                        (dirty_q - fq).abs() <= 1e-9 || (dirty_q.is_nan() && fq.is_nan()),
                        "quantile({q}): dirty {dirty_q} vs flushed {fq}"
                    );
                    prop_assert!(
                        (dirty_c - fc).abs() <= 1e-9,
                        "cdf({v}): dirty {dirty_c} vs flushed {fc}"
                    );
                    // The dirty query must not have changed the answer a
                    // later identical query sees.
                    let again = d.quantile(q);
                    prop_assert!(
                        again.to_bits() == dirty_q.to_bits()
                            || (again.is_nan() && dirty_q.is_nan()),
                        "query mutated state: {dirty_q} then {again}"
                    );
                }
            }
        }
        // Settle and spot-check the full quantile range one last time.
        if !d.is_empty() {
            let mut flushed = d.clone();
            flushed.flush();
            for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
                let (a, b) = (d.quantile(q), flushed.quantile(q));
                prop_assert!(
                    (a - b).abs() <= 1e-9 || (a.is_nan() && b.is_nan()),
                    "final quantile({q}): {a} vs {b}"
                );
            }
        }
    }

    /// quantile_sorted is monotone in q.
    #[test]
    fn quantile_monotone_in_q(
        mut values in prop::collection::vec(-1.0e3f64..1.0e3, 2..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        values.sort_unstable_by(f64::total_cmp);
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&values, qa) <= quantile_sorted(&values, qb) + 1e-12);
    }
}
