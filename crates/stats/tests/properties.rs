//! Property tests over the statistics crate's public API.

use edgeperf_stats::cdf::CdfBuilder;
use edgeperf_stats::{quantile_sorted, weighted_quantile, TDigest};
use proptest::prelude::*;

proptest! {
    /// t-digest quantiles stay within the true order-statistic envelope
    /// (± a small rank tolerance) for arbitrary inputs.
    #[test]
    fn tdigest_quantiles_are_rank_accurate(
        mut values in prop::collection::vec(-1.0e6f64..1.0e6, 100..2_000),
        q in 0.05f64..0.95,
    ) {
        let mut d = TDigest::new(100.0);
        for &v in &values {
            d.insert(v);
        }
        let est = d.quantile(q);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // The estimate must sit between the order statistics 5% of rank
        // on either side of q.
        let n = values.len();
        let lo_idx = ((q - 0.05) * n as f64).floor().max(0.0) as usize;
        let hi_idx = (((q + 0.05) * n as f64).ceil() as usize).min(n - 1);
        prop_assert!(est >= values[lo_idx], "q={q}: {est} < {}", values[lo_idx]);
        prop_assert!(est <= values[hi_idx], "q={q}: {est} > {}", values[hi_idx]);
    }

    /// Weighted quantile with unit weights equals the rank-based
    /// definition on sorted data.
    #[test]
    fn weighted_quantile_degenerates_to_rank(
        mut values in prop::collection::vec(-1.0e3f64..1.0e3, 5..200),
        q in 0.0f64..=1.0,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let items: Vec<(f64, f64)> = values.iter().map(|&v| (v, 1.0)).collect();
        let wq = weighted_quantile(&items, q);
        // Rank definition: smallest v with cum count >= q*n.
        let n = values.len() as f64;
        let target = (q * n).ceil().max(1.0) as usize;
        let expect = values[(target - 1).min(values.len() - 1)];
        prop_assert_eq!(wq, expect);
    }

    /// CDF quantile and fraction_leq are mutually consistent:
    /// fraction_leq(quantile(q)) ≥ q.
    #[test]
    fn cdf_quantile_fraction_consistency(
        values in prop::collection::vec(-50.0f64..50.0, 2..300),
        q in 0.0f64..=1.0,
    ) {
        let mut b = CdfBuilder::new();
        for &v in &values {
            b.push(v);
        }
        let cdf = b.build();
        let x = cdf.quantile(q);
        prop_assert!(cdf.fraction_leq(x) >= q - 1e-9);
    }

    /// quantile_sorted is monotone in q.
    #[test]
    fn quantile_monotone_in_q(
        mut values in prop::collection::vec(-1.0e3f64..1.0e3, 2..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&values, qa) <= quantile_sorted(&values, qb) + 1e-12);
    }
}
