//! Distribution-free confidence intervals for medians and for the
//! difference of two medians (Price & Bonett, *Journal of Statistical
//! Computation and Simulation*, 2002) — the technique the paper cites in
//! §3.4.1 for comparing aggregations without a normality assumption.
//!
//! The construction:
//!
//! 1. For a sorted sample `y_1 ≤ … ≤ y_n`, the order-statistic interval
//!    `(y_c, y_{n-c+1})` covers the population median with probability
//!    `1 − 2·P[Bin(n, ½) ≤ c−1]`.
//! 2. Price & Bonett invert that into a variance estimate for the sample
//!    median: `Var ≈ ((y_{n-c+1} − y_c) / (2 z_c))²` where
//!    `z_c = Φ⁻¹(1 − α_c/2)` matches the interval's exact coverage.
//! 3. Two independent medians then combine normally:
//!    `(M₁ − M₂) ± z_{α/2} · √(Var₁ + Var₂)`.

use crate::dist::{binom_half_cdf, norm_inv_cdf};
use crate::quantile::median_sorted;

/// A median point estimate with its Price–Bonett variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MedianCi {
    /// Sample median.
    pub median: f64,
    /// Estimated variance of the sample median.
    pub variance: f64,
    /// Lower CI bound at the confidence level requested.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
}

/// Confidence interval for the difference of two medians, `a − b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffCi {
    /// Point estimate: `median(a) − median(b)`.
    pub diff: f64,
    /// Lower bound of the CI on the difference.
    pub lo: f64,
    /// Upper bound of the CI on the difference.
    pub hi: f64,
}

impl DiffCi {
    /// CI width; the paper's "tight CI" validity rule bounds this
    /// (10 ms for MinRTT_P50, 0.1 for HDratio_P50).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Index `c` (1-based) of the lower order statistic to use for a sample of
/// size `n`, per the Price–Bonett recommendation `c ≈ (n+1)/2 − √n`.
///
/// Public so that approximating pipelines (e.g. the t-digest streaming
/// aggregation) read the *same* ranks as the exact computation.
pub fn order_stat_c(n: usize) -> usize {
    let c = ((n as f64 + 1.0) / 2.0 - (n as f64).sqrt()).round() as i64;
    c.max(1) as usize
}

/// Price–Bonett variance of the sample median given the two order
/// statistics `y_c` and `y_{n−c+1}` (from [`order_stat_c`]) of a sample of
/// size `n`. This is the single shared implementation of the variance
/// inversion; both the exact sorted-sample path and the streaming
/// digest-quantile path feed it their order statistics.
pub fn median_variance_from_order_stats(n: usize, y_lo: f64, y_hi: f64) -> f64 {
    let c = order_stat_c(n);
    // Exact coverage of (y_c, y_{n-c+1}): 1 - 2 P[Bin(n, 1/2) <= c-1].
    let alpha_half = binom_half_cdf(n as u64, (c - 1) as u64);
    // Guard: for tiny n the tail can exceed the target; clamp into (0, 0.5).
    let alpha_half = alpha_half.clamp(1e-12, 0.4999);
    let z_c = norm_inv_cdf(1.0 - alpha_half);
    ((y_hi - y_lo) / (2.0 * z_c)).powi(2)
}

/// Price–Bonett variance of the sample median of a **sorted** sample.
///
/// Returns `(median, variance)`. Requires `n ≥ 5` so the order statistics
/// are distinct from the extremes often enough to be meaningful.
pub fn median_variance_sorted(sorted: &[f64]) -> (f64, f64) {
    let n = sorted.len();
    assert!(n >= 5, "median variance needs n >= 5, got {n}");
    let c = order_stat_c(n);
    let y_lo = sorted[c - 1];
    let y_hi = sorted[n - c];
    let var = median_variance_from_order_stats(n, y_lo, y_hi);
    (median_sorted(sorted), var)
}

/// Distribution-free CI for a single median at confidence `conf`
/// (e.g. 0.95). Input need not be sorted.
pub fn median_ci(values: &[f64], conf: f64) -> MedianCi {
    let mut v = values.to_vec();
    v.sort_unstable_by(f64::total_cmp);
    let (m, var) = median_variance_sorted(&v);
    let z = norm_inv_cdf(0.5 + conf / 2.0);
    let half = z * var.sqrt();
    MedianCi { median: m, variance: var, lo: m - half, hi: m + half }
}

/// Distribution-free CI for the difference of medians `a − b` at
/// confidence `conf` (the paper uses α = 0.95). Inputs need not be sorted;
/// both must have ≥ 5 samples (the pipeline requires ≥ 30 anyway).
/// # Example
///
/// ```
/// use edgeperf_stats::diff_of_medians_ci;
/// let a: Vec<f64> = (0..100).map(|i| 50.0 + i as f64 * 0.1).collect();
/// let b: Vec<f64> = (0..100).map(|i| 40.0 + i as f64 * 0.1).collect();
/// let ci = diff_of_medians_ci(&a, &b, 0.95);
/// assert!((ci.diff - 10.0).abs() < 1e-9);
/// assert!(ci.lo > 5.0); // confidently positive
/// ```
pub fn diff_of_medians_ci(a: &[f64], b: &[f64], conf: f64) -> DiffCi {
    let mut av = a.to_vec();
    av.sort_unstable_by(f64::total_cmp);
    let mut bv = b.to_vec();
    bv.sort_unstable_by(f64::total_cmp);
    diff_of_medians_ci_sorted(&av, &bv, conf)
}

/// As [`diff_of_medians_ci`] but for pre-sorted inputs (the aggregation
/// pipeline keeps its samples sorted).
pub fn diff_of_medians_ci_sorted(a_sorted: &[f64], b_sorted: &[f64], conf: f64) -> DiffCi {
    let (ma, va) = median_variance_sorted(a_sorted);
    let (mb, vb) = median_variance_sorted(b_sorted);
    let z = norm_inv_cdf(0.5 + conf / 2.0);
    let diff = ma - mb;
    let half = z * (va + vb).sqrt();
    DiffCi { diff, lo: diff - half, hi: diff + half }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect()
    }

    #[test]
    fn identical_samples_have_zero_centered_diff() {
        let a = linspace(0.0, 10.0, 101);
        let ci = diff_of_medians_ci(&a, &a, 0.95);
        assert!(ci.diff.abs() < 1e-12);
        assert!(ci.lo <= 0.0 && ci.hi >= 0.0);
    }

    #[test]
    fn shifted_samples_detect_difference() {
        let a = linspace(0.0, 10.0, 201);
        let b: Vec<f64> = a.iter().map(|x| x + 50.0).collect();
        let ci = diff_of_medians_ci(&b, &a, 0.95);
        assert!((ci.diff - 50.0).abs() < 1e-9);
        // The shift dwarfs the spread: the CI must exclude zero.
        assert!(ci.lo > 0.0, "lo = {}", ci.lo);
    }

    #[test]
    fn ci_width_shrinks_with_sample_size() {
        let small = linspace(0.0, 10.0, 31);
        let large = linspace(0.0, 10.0, 3001);
        let ci_s = median_ci(&small, 0.95);
        let ci_l = median_ci(&large, 0.95);
        assert!(ci_l.hi - ci_l.lo < ci_s.hi - ci_s.lo);
    }

    #[test]
    fn degenerate_constant_sample_has_zero_variance() {
        let a = vec![3.0; 50];
        let ci = median_ci(&a, 0.95);
        assert_eq!(ci.median, 3.0);
        assert_eq!(ci.variance, 0.0);
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let a = vec![9.0, 1.0, 5.0, 7.0, 3.0, 2.0, 8.0, 4.0, 6.0, 0.0];
        let ci = median_ci(&a, 0.95);
        assert!((ci.median - 4.5).abs() < 1e-12);
        assert!(ci.lo < ci.median && ci.median < ci.hi);
    }

    /// Monte-Carlo coverage check: the nominal 95% CI for the median of a
    /// skewed (exponential-ish) distribution should cover the true median
    /// roughly 95% of the time. We use a deterministic low-discrepancy
    /// driver rather than a seeded RNG to keep the test exact.
    #[test]
    fn coverage_is_close_to_nominal() {
        let true_median = (2.0f64).ln(); // median of Exp(1)
        let mut covered = 0;
        let trials = 400;
        let n = 61;
        for t in 0..trials {
            // Deterministic pseudo-random uniforms via a Weyl sequence.
            let mut sample: Vec<f64> = (0..n)
                .map(|i| {
                    let u = (((t * n + i) as f64) * 0.6180339887498949).fract();
                    let u = u.clamp(1e-9, 1.0 - 1e-9);
                    -(1.0 - u).ln() // Exp(1) via inverse CDF
                })
                .collect();
            sample.sort_unstable_by(f64::total_cmp);
            let ci = median_ci(&sample, 0.95);
            if ci.lo <= true_median && true_median <= ci.hi {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate > 0.88, "coverage {rate} too low");
    }

    #[test]
    fn diff_ci_width_matches_component_variances() {
        let a = linspace(0.0, 1.0, 101);
        let b = linspace(0.0, 1.0, 101);
        let d = diff_of_medians_ci(&a, &b, 0.95);
        let m = median_ci(&a, 0.95);
        // Var(diff) = 2 Var(median) here, so width ratio is sqrt(2).
        let expected = (m.hi - m.lo) * std::f64::consts::SQRT_2;
        assert!((d.width() - expected).abs() < 1e-9);
    }
}
