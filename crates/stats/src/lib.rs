//! Statistical substrate for edgeperf.
//!
//! Implements the statistical machinery §3.3–3.4 of the paper relies on:
//!
//! - [`TDigest`]: the streaming quantile sketch the paper cites (Dunning &
//!   Ertl) for production use in near-real-time comparisons.
//! - [`median_ci`]: distribution-free confidence intervals for a median and
//!   for the *difference* of two medians (Price & Bonett 2002), used to
//!   separate measurement noise from statistically significant degradation
//!   or routing opportunity.
//! - [`quantile`]: exact and weighted quantiles on finite samples.
//! - [`cdf`]: traffic-weighted empirical CDFs used to render the paper's
//!   figures.
//! - [`dist`]: the normal/binomial helper functions the above need.

pub mod cdf;
pub mod dist;
pub mod median_ci;
pub mod quantile;
pub mod summary;
pub mod tdigest;

pub use cdf::WeightedCdf;
pub use median_ci::{
    diff_of_medians_ci, median_ci, median_variance_from_order_stats, order_stat_c, DiffCi, MedianCi,
};
pub use quantile::{quantile_sorted, quantile_unsorted, weighted_quantile};
pub use summary::Summary;
pub use tdigest::{Centroid, DigestParts, TDigest};
