//! Distribution helpers: standard normal CDF/inverse-CDF and binomial tails.
//!
//! These are the primitives the distribution-free median confidence
//! intervals (Price & Bonett 2002) are built from. They are implemented
//! here rather than pulled from a crate to keep the workspace dependency
//! surface small; accuracy is more than sufficient for CI construction
//! (|error| < 1.2e-9 for the inverse normal over (0, 1)).

/// Standard normal cumulative distribution function Φ(x).
///
/// Uses the relation Φ(x) = erfc(-x/√2)/2 with a high-accuracy rational
/// `erfc` approximation (from Numerical Recipes; relative error < 1.2e-7,
/// which is far below what order-statistic CIs can resolve).
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function.
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Inverse of the standard normal CDF (quantile function), Φ⁻¹(p).
///
/// Acklam's rational approximation with one step of Halley refinement;
/// absolute error below 1e-9 across (0, 1).
///
/// # Panics
/// Panics if `p` is not in the open interval (0, 1).
#[allow(clippy::excessive_precision)] // Acklam's published coefficients, kept verbatim
pub fn norm_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_inv_cdf requires p in (0,1), got {p}");

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the forward CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// ln C(n, k) via ln-gamma, stable for large n.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n);
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// ln(n!) using Stirling's series for large n and a small lookup otherwise.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 32 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    let x = n as f64 + 1.0;
    // Stirling series for ln Γ(x).
    (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

/// P[Bin(n, 1/2) ≤ k]: the lower tail of a fair binomial.
///
/// Order-statistic confidence intervals for medians need exactly this tail.
pub fn binom_half_cdf(n: u64, k: u64) -> f64 {
    if k >= n {
        return 1.0;
    }
    let ln_half_n = -(n as f64) * std::f64::consts::LN_2;
    let mut acc = 0.0;
    for i in 0..=k {
        acc += (ln_choose(n, i) + ln_half_n).exp();
    }
    acc.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_cdf_known_points() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.959963985) - 0.975).abs() < 1e-6);
        assert!((norm_cdf(-1.959963985) - 0.025).abs() < 1e-6);
        assert!((norm_cdf(3.0) - 0.9986501).abs() < 1e-6);
    }

    #[test]
    fn norm_inv_cdf_round_trips() {
        for &p in &[0.001, 0.01, 0.025, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.99, 0.999] {
            let x = norm_inv_cdf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-7, "p={p} x={x}");
        }
    }

    #[test]
    fn norm_inv_cdf_median_is_zero() {
        assert!(norm_inv_cdf(0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn norm_inv_cdf_rejects_zero() {
        norm_inv_cdf(0.0);
    }

    #[test]
    fn ln_factorial_matches_direct() {
        let direct: f64 = (2..=40u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(40) - direct).abs() < 1e-8);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2) - (10f64).ln()).abs() < 1e-9);
        assert!((ln_choose(10, 5) - (252f64).ln()).abs() < 1e-9);
        assert_eq!(ln_choose(7, 0), 0.0);
    }

    #[test]
    fn binom_half_cdf_symmetry_and_bounds() {
        // P[Bin(10, 1/2) <= 4] + P[Bin(10, 1/2) <= 5] = 1 + P[X == 5]... use
        // direct known values instead: P[Bin(4,1/2) <= 1] = (1+4)/16.
        assert!((binom_half_cdf(4, 1) - 5.0 / 16.0).abs() < 1e-9);
        assert!((binom_half_cdf(4, 4) - 1.0).abs() < 1e-12);
        // Large n stays within [0,1].
        let v = binom_half_cdf(10_000, 4_900);
        assert!(v > 0.0 && v < 0.5);
    }
}
