//! A merging t-digest (Dunning & Ertl, "Computing Extremely Accurate
//! Quantiles Using t-Digests") — the streaming sketch the paper's §3.4.1
//! footnote recommends for production traffic-engineering systems that must
//! compare route performance in near real time.
//!
//! This implementation uses the `k1` scale function
//! `k(q) = δ/(2π)·asin(2q−1)`, buffered inserts, and merge-based
//! compression. It is deterministic: the same insertion order always yields
//! the same digest.

/// A single centroid: a weighted point approximating nearby samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Centroid {
    /// Mean of the samples merged into this centroid.
    pub mean: f64,
    /// Number of samples (or total weight) merged.
    pub weight: f64,
}

/// # Example
///
/// ```
/// use edgeperf_stats::TDigest;
/// let mut d = TDigest::new(100.0);
/// for i in 0..10_000 {
///     d.insert(i as f64);
/// }
/// let p99 = d.quantile(0.99);
/// assert!((p99 - 9_900.0).abs() < 100.0);
/// ```
/// Streaming quantile sketch with bounded memory.
#[derive(Debug, Clone)]
pub struct TDigest {
    compression: f64,
    centroids: Vec<Centroid>,
    buffer: Vec<Centroid>,
    total_weight: f64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// Create a digest with the given compression δ (typical: 100).
    /// Larger δ means more centroids and better accuracy.
    pub fn new(compression: f64) -> Self {
        assert!(compression >= 10.0, "compression too small: {compression}");
        TDigest {
            compression,
            centroids: Vec::new(),
            buffer: Vec::with_capacity(512),
            total_weight: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of samples inserted (total weight).
    pub fn count(&self) -> f64 {
        self.total_weight + self.buffer.iter().map(|c| c.weight).sum::<f64>()
    }

    /// True if no samples have been inserted.
    pub fn is_empty(&self) -> bool {
        self.count() == 0.0
    }

    /// Insert a sample with weight 1.
    pub fn insert(&mut self, value: f64) {
        self.insert_weighted(value, 1.0);
    }

    /// Insert a sample with an arbitrary positive weight.
    pub fn insert_weighted(&mut self, value: f64, weight: f64) {
        assert!(value.is_finite(), "non-finite sample {value}");
        assert!(weight > 0.0, "non-positive weight {weight}");
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buffer.push(Centroid { mean: value, weight });
        if self.buffer.len() >= 512 {
            self.compress();
        }
    }

    /// Merge another digest into this one.
    pub fn merge(&mut self, other: &TDigest) {
        if other.is_empty() {
            return;
        }
        // Take the extremes from the other digest's tracked min/max, not
        // from its centroid means: interior centroids are averages that
        // have already pulled away from the true sample extremes.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for c in other.centroids.iter().chain(other.buffer.iter()) {
            self.buffer.push(*c);
            if self.buffer.len() >= 512 {
                self.compress();
            }
        }
    }

    /// Scale function k1.
    fn k(&self, q: f64) -> f64 {
        self.compression / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).asin()
    }

    fn compress(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut all = std::mem::take(&mut self.centroids);
        all.append(&mut self.buffer);
        all.sort_by(|a, b| a.mean.partial_cmp(&b.mean).unwrap());
        let total: f64 = all.iter().map(|c| c.weight).sum();

        let mut merged: Vec<Centroid> = Vec::with_capacity(all.len() / 2 + 1);
        let mut acc = all[0];
        let mut w_before = 0.0; // weight strictly before `acc`
        for c in all.into_iter().skip(1) {
            let q_lo = w_before / total;
            let q_hi = (w_before + acc.weight + c.weight) / total;
            if self.k(q_hi.min(1.0)) - self.k(q_lo) <= 1.0 {
                // Merge c into acc.
                let w = acc.weight + c.weight;
                acc.mean += (c.mean - acc.mean) * c.weight / w;
                acc.weight = w;
            } else {
                w_before += acc.weight;
                merged.push(acc);
                acc = c;
            }
        }
        merged.push(acc);
        self.centroids = merged;
        self.total_weight = total;
    }

    /// Estimate the quantile `q` ∈ [0, 1].
    ///
    /// # Panics
    /// Panics if the digest is empty or q outside [0, 1].
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q out of range: {q}");
        self.compress();
        assert!(!self.centroids.is_empty(), "quantile of empty digest");
        if self.centroids.len() == 1 {
            return self.centroids[0].mean;
        }
        let total = self.total_weight;
        let target = q * total;

        // Walk centroids accumulating weight; interpolate between centroid
        // midpoints, honoring exact min/max at the extremes.
        let mut cum = 0.0;
        for (i, c) in self.centroids.iter().enumerate() {
            let mid = cum + c.weight / 2.0;
            if target < mid {
                if i == 0 {
                    // Between min and first centroid mean.
                    let frac = (target / c.weight * 2.0).clamp(0.0, 1.0);
                    return self.min + (c.mean - self.min) * frac;
                }
                let prev = &self.centroids[i - 1];
                let prev_mid = cum - prev.weight / 2.0;
                let span = mid - prev_mid;
                let frac = if span > 0.0 { (target - prev_mid) / span } else { 0.5 };
                return prev.mean + (c.mean - prev.mean) * frac;
            }
            cum += c.weight;
        }
        self.max
    }

    /// Estimate the fraction of samples ≤ `x` (the empirical CDF).
    pub fn cdf(&mut self, x: f64) -> f64 {
        self.compress();
        assert!(!self.centroids.is_empty(), "cdf of empty digest");
        if x < self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        let total = self.total_weight;
        let mut cum = 0.0;
        for (i, c) in self.centroids.iter().enumerate() {
            if x < c.mean {
                if i == 0 {
                    let span = c.mean - self.min;
                    let frac = if span > 0.0 { (x - self.min) / span } else { 0.0 };
                    return (c.weight / 2.0) * frac / total;
                }
                let prev = &self.centroids[i - 1];
                let span = c.mean - prev.mean;
                let frac = if span > 0.0 { (x - prev.mean) / span } else { 0.0 };
                let prev_mid = cum - prev.weight / 2.0;
                let mid = cum + c.weight / 2.0;
                return (prev_mid + (mid - prev_mid) * frac) / total;
            }
            cum += c.weight;
        }
        1.0
    }

    /// Smallest sample seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of centroids currently held (after compressing).
    pub fn centroid_count(&mut self) -> usize {
        self.compress();
        self.centroids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_digest(n: usize) -> TDigest {
        let mut d = TDigest::new(100.0);
        for i in 0..n {
            // Golden-ratio Weyl sequence: deterministic, well spread.
            d.insert((i as f64 * 0.6180339887498949).fract());
        }
        d
    }

    #[test]
    fn quantiles_of_uniform_are_accurate() {
        let mut d = uniform_digest(100_000);
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = d.quantile(q);
            assert!((est - q).abs() < 0.01, "q={q} est={est}");
        }
    }

    #[test]
    fn extreme_quantiles_hit_min_max() {
        let mut d = TDigest::new(100.0);
        for i in 1..=1000 {
            d.insert(i as f64);
        }
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 1000.0);
    }

    #[test]
    fn memory_is_bounded() {
        let mut d = uniform_digest(1_000_000);
        assert!(d.centroid_count() < 200, "centroids = {}", d.centroid_count());
    }

    #[test]
    fn cdf_and_quantile_are_inverse_ish() {
        let mut d = uniform_digest(50_000);
        for &q in &[0.1, 0.5, 0.9] {
            let x = d.quantile(q);
            let back = d.cdf(x);
            assert!((back - q).abs() < 0.02, "q={q} back={back}");
        }
    }

    #[test]
    fn merge_preserves_distribution() {
        let mut a = TDigest::new(100.0);
        let mut b = TDigest::new(100.0);
        let mut true_min = f64::INFINITY;
        let mut true_max = f64::NEG_INFINITY;
        for i in 0..10_000 {
            let v = (i as f64 * 0.6180339887498949).fract();
            true_min = true_min.min(v);
            true_max = true_max.max(v);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
        }
        // Force both digests through compression so the merge sees
        // centroids (whose means sit strictly inside the extremes), not
        // just raw buffered samples.
        a.compress();
        b.compress();
        a.merge(&b);
        assert!((a.count() - 10_000.0).abs() < 1e-9);
        assert!((a.quantile(0.5) - 0.5).abs() < 0.02);
        // The sample extremes must survive the merge exactly: quantile 0
        // and 1 are defined to be the true min/max, and the b-side extremes
        // must not be replaced by interior centroid means.
        assert_eq!(a.quantile(0.0), true_min);
        assert_eq!(a.quantile(1.0), true_max);
        assert_eq!(a.min(), true_min);
        assert_eq!(a.max(), true_max);
    }

    #[test]
    fn merge_takes_extremes_from_other_digest() {
        // `b` holds both global extremes; after compression its centroid
        // means are interior averages, so a merge that looked at means
        // would lose them.
        let mut a = TDigest::new(100.0);
        for i in 400..600 {
            a.insert(i as f64);
        }
        let mut b = TDigest::new(100.0);
        for i in 0..1000 {
            b.insert(i as f64);
        }
        b.compress();
        a.merge(&b);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 999.0);
        assert_eq!(a.quantile(0.0), 0.0);
        assert_eq!(a.quantile(1.0), 999.0);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = TDigest::new(100.0);
        a.insert(5.0);
        let b = TDigest::new(100.0);
        a.merge(&b);
        assert_eq!(a.min(), 5.0);
        assert_eq!(a.max(), 5.0);
        assert_eq!(a.count(), 1.0);
        // Merging into an empty digest adopts the other's extremes.
        let mut c = TDigest::new(100.0);
        c.merge(&a);
        assert_eq!(c.min(), 5.0);
        assert_eq!(c.max(), 5.0);
    }

    #[test]
    fn weighted_inserts_shift_quantiles() {
        let mut d = TDigest::new(100.0);
        d.insert_weighted(0.0, 90.0);
        d.insert_weighted(10.0, 10.0);
        assert!(d.quantile(0.5) <= 1.0);
        assert!(d.quantile(0.99) > 5.0);
    }

    #[test]
    fn single_value_digest() {
        let mut d = TDigest::new(100.0);
        d.insert(7.0);
        assert_eq!(d.quantile(0.5), 7.0);
        assert_eq!(d.cdf(8.0), 1.0);
        assert_eq!(d.cdf(6.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_digest_quantile_panics() {
        let mut d = TDigest::new(100.0);
        d.quantile(0.5);
    }

    #[test]
    #[should_panic]
    fn non_finite_insert_panics() {
        let mut d = TDigest::new(100.0);
        d.insert(f64::NAN);
    }

    #[test]
    fn normal_ish_distribution_median() {
        // Sum of 4 uniforms ≈ bell curve centered at 2.
        let mut d = TDigest::new(100.0);
        for i in 0..40_000usize {
            let u = |k: usize| ((i * 4 + k) as f64 * 0.6180339887498949).fract();
            d.insert(u(0) + u(1) + u(2) + u(3));
        }
        assert!((d.quantile(0.5) - 2.0).abs() < 0.02);
    }
}
