//! A merging t-digest (Dunning & Ertl, "Computing Extremely Accurate
//! Quantiles Using t-Digests") — the streaming sketch the paper's §3.4.1
//! footnote recommends for production traffic-engineering systems that must
//! compare route performance in near real time.
//!
//! This implementation uses the `k1` scale function
//! `k(q) = δ/(2π)·asin(2q−1)`, buffered inserts, and merge-based
//! compression. It is deterministic: the same insertion order always yields
//! the same digest.
//!
//! Ingestion is buffered: inserts accumulate raw samples and merge into the
//! compressed centroid list in batches of [`BUFFER_LEN`], so the per-insert
//! cost is a bounds check and a push. Queries never mutate the digest:
//! [`TDigest::quantile`]/[`TDigest::cdf`] take `&self` and, when buffered
//! samples are pending, compress into a temporary view. Call
//! [`TDigest::flush`] once after the last insert (the record sinks do this
//! at finalize time) to make every subsequent query allocation-free.

/// Buffered inserts per compression batch.
const BUFFER_LEN: usize = 512;

/// A single centroid: a weighted point approximating nearby samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Centroid {
    /// Mean of the samples merged into this centroid.
    pub mean: f64,
    /// Number of samples (or total weight) merged.
    pub weight: f64,
}

/// # Example
///
/// ```
/// use edgeperf_stats::TDigest;
/// let mut d = TDigest::new(100.0);
/// for i in 0..10_000 {
///     d.insert(i as f64);
/// }
/// let p99 = d.quantile(0.99);
/// assert!((p99 - 9_900.0).abs() < 100.0);
/// ```
/// Streaming quantile sketch with bounded memory.
#[derive(Debug, Clone)]
pub struct TDigest {
    compression: f64,
    centroids: Vec<Centroid>,
    buffer: Vec<Centroid>,
    total_weight: f64,
    min: f64,
    max: f64,
    compressions: u64,
}

/// Scale function k1.
fn k1(compression: f64, q: f64) -> f64 {
    compression / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).asin()
}

/// Sort `all` by mean and merge adjacent centroids under the `k1` size
/// bound. The single compression routine shared by the mutating flush and
/// the non-mutating query view, so both produce identical centroids.
fn compress_centroids(all: &mut Vec<Centroid>, compression: f64) -> f64 {
    debug_assert!(!all.is_empty());
    all.sort_unstable_by(|a, b| a.mean.total_cmp(&b.mean));
    let total: f64 = all.iter().map(|c| c.weight).sum();

    let mut merged: Vec<Centroid> = Vec::with_capacity(all.len() / 2 + 1);
    let mut acc = all[0];
    let mut w_before = 0.0; // weight strictly before `acc`
    for c in all.drain(..).skip(1) {
        let q_lo = w_before / total;
        let q_hi = (w_before + acc.weight + c.weight) / total;
        if k1(compression, q_hi.min(1.0)) - k1(compression, q_lo) <= 1.0 {
            // Merge c into acc.
            let w = acc.weight + c.weight;
            acc.mean += (c.mean - acc.mean) * c.weight / w;
            acc.weight = w;
        } else {
            w_before += acc.weight;
            merged.push(acc);
            acc = c;
        }
    }
    merged.push(acc);
    *all = merged;
    total
}

/// Walk a compressed centroid list accumulating weight; interpolate
/// between centroid midpoints, honoring exact min/max at the extremes.
fn quantile_over(centroids: &[Centroid], total: f64, min: f64, max: f64, q: f64) -> f64 {
    assert!(!centroids.is_empty(), "quantile of empty digest");
    if centroids.len() == 1 {
        return centroids[0].mean;
    }
    let target = q * total;
    let mut cum = 0.0;
    for (i, c) in centroids.iter().enumerate() {
        let mid = cum + c.weight / 2.0;
        if target < mid {
            if i == 0 {
                // Between min and first centroid mean.
                let frac = (target / c.weight * 2.0).clamp(0.0, 1.0);
                return min + (centroids[0].mean - min) * frac;
            }
            let prev = &centroids[i - 1];
            let prev_mid = cum - prev.weight / 2.0;
            let span = mid - prev_mid;
            let frac = if span > 0.0 { (target - prev_mid) / span } else { 0.5 };
            return prev.mean + (c.mean - prev.mean) * frac;
        }
        cum += c.weight;
    }
    max
}

fn cdf_over(centroids: &[Centroid], total: f64, min: f64, max: f64, x: f64) -> f64 {
    assert!(!centroids.is_empty(), "cdf of empty digest");
    if x < min {
        return 0.0;
    }
    if x >= max {
        return 1.0;
    }
    let mut cum = 0.0;
    for (i, c) in centroids.iter().enumerate() {
        if x < c.mean {
            if i == 0 {
                let span = c.mean - min;
                let frac = if span > 0.0 { (x - min) / span } else { 0.0 };
                return (c.weight / 2.0) * frac / total;
            }
            let prev = &centroids[i - 1];
            let span = c.mean - prev.mean;
            let frac = if span > 0.0 { (x - prev.mean) / span } else { 0.0 };
            let prev_mid = cum - prev.weight / 2.0;
            let mid = cum + c.weight / 2.0;
            return (prev_mid + (mid - prev_mid) * frac) / total;
        }
        cum += c.weight;
    }
    1.0
}

impl TDigest {
    /// Create a digest with the given compression δ (typical: 100).
    /// Larger δ means more centroids and better accuracy.
    pub fn new(compression: f64) -> Self {
        assert!(compression >= 10.0, "compression too small: {compression}");
        TDigest {
            compression,
            centroids: Vec::new(),
            buffer: Vec::with_capacity(BUFFER_LEN),
            total_weight: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            compressions: 0,
        }
    }

    /// Number of samples inserted (total weight).
    pub fn count(&self) -> f64 {
        self.total_weight + self.buffer.iter().map(|c| c.weight).sum::<f64>()
    }

    /// True if no samples have been inserted.
    pub fn is_empty(&self) -> bool {
        self.count() == 0.0
    }

    /// Insert a sample with weight 1.
    #[inline]
    pub fn insert(&mut self, value: f64) {
        self.insert_weighted(value, 1.0);
    }

    /// Insert a sample with an arbitrary positive weight.
    #[inline]
    pub fn insert_weighted(&mut self, value: f64, weight: f64) {
        assert!(value.is_finite(), "non-finite sample {value}");
        assert!(weight > 0.0, "non-positive weight {weight}");
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buffer.push(Centroid { mean: value, weight });
        if self.buffer.len() >= BUFFER_LEN {
            self.flush();
        }
    }

    /// Merge another digest into this one.
    pub fn merge(&mut self, other: &TDigest) {
        if other.is_empty() {
            return;
        }
        // Take the extremes from the other digest's tracked min/max, not
        // from its centroid means: interior centroids are averages that
        // have already pulled away from the true sample extremes.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for c in other.centroids.iter().chain(other.buffer.iter()) {
            self.buffer.push(*c);
            if self.buffer.len() >= BUFFER_LEN {
                self.flush();
            }
        }
    }

    /// Merge buffered samples into the compressed centroid list. Called
    /// automatically every [`BUFFER_LEN`] inserts; call it once after the
    /// last insert to make subsequent queries allocation-free.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut all = std::mem::take(&mut self.centroids);
        all.append(&mut self.buffer);
        self.total_weight = compress_centroids(&mut all, self.compression);
        self.centroids = all;
        self.compressions += 1;
    }

    /// Run `f` over the compressed view of this digest. When the buffer is
    /// clean this borrows the centroid list directly; otherwise it
    /// compresses into a temporary using the same routine as [`flush`],
    /// so the view is bit-identical to the post-flush state.
    fn with_view<R>(&self, f: impl FnOnce(&[Centroid], f64) -> R) -> R {
        if self.buffer.is_empty() {
            f(&self.centroids, self.total_weight)
        } else {
            let mut all = Vec::with_capacity(self.centroids.len() + self.buffer.len());
            all.extend_from_slice(&self.centroids);
            all.extend_from_slice(&self.buffer);
            let total = compress_centroids(&mut all, self.compression);
            f(&all, total)
        }
    }

    /// Estimate the quantile `q` ∈ [0, 1]. Non-mutating: pending buffered
    /// samples are folded in through a temporary view (see [`flush`]).
    ///
    /// # Panics
    /// Panics if the digest is empty or q outside [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q out of range: {q}");
        self.with_view(|cs, total| quantile_over(cs, total, self.min, self.max, q))
    }

    /// Estimate the fraction of samples ≤ `x` (the empirical CDF).
    /// Non-mutating, like [`quantile`].
    pub fn cdf(&self, x: f64) -> f64 {
        self.with_view(|cs, total| cdf_over(cs, total, self.min, self.max, x))
    }

    /// Smallest sample seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// How many buffer-compression passes this digest has run (automatic
    /// batch flushes plus explicit [`flush`] calls) — the signal behind
    /// the sinks' digest-flush metrics. Non-mutating queries over a dirty
    /// buffer compress a temporary and do not count.
    pub fn compressions(&self) -> u64 {
        self.compressions
    }

    /// Number of centroids the compressed digest holds (buffered samples
    /// are counted through the same compression as [`flush`]).
    pub fn centroid_count(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        self.with_view(|cs, _| cs.len())
    }

    /// Flatten the digest into plain data for persistence. The centroid
    /// list is the compressed view (identical to the post-[`flush`]
    /// state), so `from_parts(d.to_parts())` reproduces a flushed `d`
    /// bit-for-bit — including the tracked extremes and the compression
    /// counter. This crate stays serialization-agnostic; callers own the
    /// encoding.
    pub fn to_parts(&self) -> DigestParts {
        let centroids =
            if self.is_empty() { Vec::new() } else { self.with_view(|cs, _| cs.to_vec()) };
        DigestParts {
            compression: self.compression,
            min: self.min,
            max: self.max,
            compressions: self.compressions,
            centroids,
        }
    }

    /// Rebuild a digest from [`to_parts`] output.
    ///
    /// # Panics
    /// Panics on the same invalid inputs `insert_weighted` rejects
    /// (non-finite means, non-positive weights) or a compression < 10.
    ///
    /// [`to_parts`]: TDigest::to_parts
    pub fn from_parts(parts: DigestParts) -> Self {
        assert!(parts.compression >= 10.0, "compression too small: {}", parts.compression);
        let mut total_weight = 0.0;
        for c in &parts.centroids {
            assert!(c.mean.is_finite(), "non-finite centroid mean {}", c.mean);
            assert!(c.weight > 0.0, "non-positive centroid weight {}", c.weight);
            total_weight += c.weight;
        }
        let (min, max) = if parts.centroids.is_empty() {
            (f64::INFINITY, f64::NEG_INFINITY)
        } else {
            (parts.min, parts.max)
        };
        TDigest {
            compression: parts.compression,
            centroids: parts.centroids,
            buffer: Vec::with_capacity(BUFFER_LEN),
            total_weight,
            min,
            max,
            compressions: parts.compressions,
        }
    }
}

/// Plain-data snapshot of a [`TDigest`] (see [`TDigest::to_parts`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DigestParts {
    /// The digest's compression δ.
    pub compression: f64,
    /// Tracked exact minimum (ignored when `centroids` is empty).
    pub min: f64,
    /// Tracked exact maximum (ignored when `centroids` is empty).
    pub max: f64,
    /// Lifetime compression-pass counter.
    pub compressions: u64,
    /// The compressed centroid list, in mean order.
    pub centroids: Vec<Centroid>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_digest(n: usize) -> TDigest {
        let mut d = TDigest::new(100.0);
        for i in 0..n {
            // Golden-ratio Weyl sequence: deterministic, well spread.
            d.insert((i as f64 * 0.6180339887498949).fract());
        }
        d
    }

    #[test]
    fn quantiles_of_uniform_are_accurate() {
        let d = uniform_digest(100_000);
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = d.quantile(q);
            assert!((est - q).abs() < 0.01, "q={q} est={est}");
        }
    }

    #[test]
    fn extreme_quantiles_hit_min_max() {
        let mut d = TDigest::new(100.0);
        for i in 1..=1000 {
            d.insert(i as f64);
        }
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 1000.0);
    }

    #[test]
    fn compressions_count_batch_flushes_but_not_queries() {
        let mut d = TDigest::new(100.0);
        for i in 0..(BUFFER_LEN * 3) {
            d.insert(i as f64);
        }
        // 3 full batches auto-flushed; the buffer is clean again.
        assert_eq!(d.compressions(), 3);
        d.insert(-1.0);
        let _ = d.quantile(0.5); // query over a dirty buffer: a temp view
        assert_eq!(d.compressions(), 3);
        d.flush();
        assert_eq!(d.compressions(), 4);
        d.flush(); // empty buffer: no work, no count
        assert_eq!(d.compressions(), 4);
    }

    #[test]
    fn memory_is_bounded() {
        let d = uniform_digest(1_000_000);
        assert!(d.centroid_count() < 200, "centroids = {}", d.centroid_count());
    }

    #[test]
    fn cdf_and_quantile_are_inverse_ish() {
        let d = uniform_digest(50_000);
        for &q in &[0.1, 0.5, 0.9] {
            let x = d.quantile(q);
            let back = d.cdf(x);
            assert!((back - q).abs() < 0.02, "q={q} back={back}");
        }
    }

    #[test]
    fn queries_do_not_mutate_and_match_flushed_state() {
        // A digest with a dirty buffer must answer exactly what it would
        // answer after flushing, without flushing.
        let mut d = TDigest::new(100.0);
        for i in 0..10_000 {
            d.insert((i as f64 * 0.7548776662466927).fract() * 50.0);
        }
        assert!(
            !d.buffer.is_empty(),
            "test needs a dirty buffer; adjust the sample count off the batch size"
        );
        let before: Vec<f64> = [0.0, 0.1, 0.5, 0.9, 1.0].iter().map(|&q| d.quantile(q)).collect();
        let centroids_before = d.centroid_count();
        d.flush();
        assert!(d.buffer.is_empty());
        let after: Vec<f64> = [0.0, 0.1, 0.5, 0.9, 1.0].iter().map(|&q| d.quantile(q)).collect();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.to_bits(), a.to_bits(), "{b} vs {a}");
        }
        assert_eq!(centroids_before, d.centroid_count());
    }

    #[test]
    fn merge_preserves_distribution() {
        let mut a = TDigest::new(100.0);
        let mut b = TDigest::new(100.0);
        let mut true_min = f64::INFINITY;
        let mut true_max = f64::NEG_INFINITY;
        for i in 0..10_000 {
            let v = (i as f64 * 0.6180339887498949).fract();
            true_min = true_min.min(v);
            true_max = true_max.max(v);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
        }
        // Force both digests through compression so the merge sees
        // centroids (whose means sit strictly inside the extremes), not
        // just raw buffered samples.
        a.flush();
        b.flush();
        a.merge(&b);
        assert!((a.count() - 10_000.0).abs() < 1e-9);
        assert!((a.quantile(0.5) - 0.5).abs() < 0.02);
        // The sample extremes must survive the merge exactly: quantile 0
        // and 1 are defined to be the true min/max, and the b-side extremes
        // must not be replaced by interior centroid means.
        assert_eq!(a.quantile(0.0), true_min);
        assert_eq!(a.quantile(1.0), true_max);
        assert_eq!(a.min(), true_min);
        assert_eq!(a.max(), true_max);
    }

    #[test]
    fn merge_takes_extremes_from_other_digest() {
        // `b` holds both global extremes; after compression its centroid
        // means are interior averages, so a merge that looked at means
        // would lose them.
        let mut a = TDigest::new(100.0);
        for i in 400..600 {
            a.insert(i as f64);
        }
        let mut b = TDigest::new(100.0);
        for i in 0..1000 {
            b.insert(i as f64);
        }
        b.flush();
        a.merge(&b);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 999.0);
        assert_eq!(a.quantile(0.0), 0.0);
        assert_eq!(a.quantile(1.0), 999.0);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = TDigest::new(100.0);
        a.insert(5.0);
        let b = TDigest::new(100.0);
        a.merge(&b);
        assert_eq!(a.min(), 5.0);
        assert_eq!(a.max(), 5.0);
        assert_eq!(a.count(), 1.0);
        // Merging into an empty digest adopts the other's extremes.
        let mut c = TDigest::new(100.0);
        c.merge(&a);
        assert_eq!(c.min(), 5.0);
        assert_eq!(c.max(), 5.0);
    }

    #[test]
    fn weighted_inserts_shift_quantiles() {
        let mut d = TDigest::new(100.0);
        d.insert_weighted(0.0, 90.0);
        d.insert_weighted(10.0, 10.0);
        assert!(d.quantile(0.5) <= 1.0);
        assert!(d.quantile(0.99) > 5.0);
    }

    #[test]
    fn single_value_digest() {
        let mut d = TDigest::new(100.0);
        d.insert(7.0);
        assert_eq!(d.quantile(0.5), 7.0);
        assert_eq!(d.cdf(8.0), 1.0);
        assert_eq!(d.cdf(6.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_digest_quantile_panics() {
        let d = TDigest::new(100.0);
        d.quantile(0.5);
    }

    #[test]
    #[should_panic]
    fn non_finite_insert_panics() {
        let mut d = TDigest::new(100.0);
        d.insert(f64::NAN);
    }

    #[test]
    fn parts_round_trip_is_bit_identical_to_flushed_state() {
        let mut d = uniform_digest(10_000);
        // Parts taken over a dirty buffer equal the flushed state (same
        // compression routine) except the pass counter, which only counts
        // real flushes.
        let dirty = TDigest::from_parts(d.to_parts());
        d.flush();
        assert_eq!(dirty.quantile(0.5).to_bits(), d.quantile(0.5).to_bits());
        let restored = TDigest::from_parts(d.to_parts());
        assert_eq!(restored.centroids, d.centroids);
        assert_eq!(restored.total_weight.to_bits(), d.total_weight.to_bits());
        assert_eq!(restored.min.to_bits(), d.min.to_bits());
        assert_eq!(restored.max.to_bits(), d.max.to_bits());
        assert_eq!(restored.compressions, d.compressions);
        for &q in &[0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(restored.quantile(q).to_bits(), d.quantile(q).to_bits());
        }
        // Continued inserts behave identically on both sides.
        let (mut x, mut y) = (restored, d);
        for i in 0..2_000 {
            let v = (i as f64 * 0.7548776662466927).fract();
            x.insert(v);
            y.insert(v);
        }
        assert_eq!(x.quantile(0.5).to_bits(), y.quantile(0.5).to_bits());
    }

    #[test]
    fn empty_digest_parts_round_trip() {
        let d = TDigest::new(100.0);
        let restored = TDigest::from_parts(d.to_parts());
        assert!(restored.is_empty());
        assert_eq!(restored.centroid_count(), 0);
    }

    #[test]
    fn normal_ish_distribution_median() {
        // Sum of 4 uniforms ≈ bell curve centered at 2.
        let mut d = TDigest::new(100.0);
        for i in 0..40_000usize {
            let u = |k: usize| ((i * 4 + k) as f64 * 0.6180339887498949).fract();
            d.insert(u(0) + u(1) + u(2) + u(3));
        }
        assert!((d.quantile(0.5) - 2.0).abs() < 0.02);
    }
}
