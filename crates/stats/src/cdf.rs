//! Traffic-weighted empirical CDFs.
//!
//! Every distribution figure in the paper ("Cumulative Fraction of
//! Sessions", "Cum. Fraction of Traffic") is a weighted empirical CDF; this
//! module builds them and renders evenly spaced series suitable for
//! plotting or table output.

/// A finalized weighted empirical CDF.
#[derive(Debug, Clone)]
pub struct WeightedCdf {
    /// (value, cumulative weight through this value), sorted by value.
    points: Vec<(f64, f64)>,
    total: f64,
}

/// Builder: accumulate (value, weight) pairs, then [`CdfBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct CdfBuilder {
    items: Vec<(f64, f64)>,
}

impl CdfBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample with weight 1.
    pub fn push(&mut self, value: f64) {
        self.push_weighted(value, 1.0);
    }

    /// Add a sample with a traffic weight.
    pub fn push_weighted(&mut self, value: f64, weight: f64) {
        assert!(value.is_finite() && weight >= 0.0, "bad cdf point ({value}, {weight})");
        if weight > 0.0 {
            self.items.push((value, weight));
        }
    }

    /// Number of samples added so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no samples were added.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sort and accumulate into a queryable CDF.
    ///
    /// # Panics
    /// Panics if no samples were added.
    pub fn build(mut self) -> WeightedCdf {
        assert!(!self.items.is_empty(), "CDF of no samples");
        self.items.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut points = Vec::with_capacity(self.items.len());
        let mut acc = 0.0;
        for (v, w) in self.items {
            acc += w;
            // Collapse duplicate values to the last cumulative weight.
            match points.last_mut() {
                Some((pv, pw)) if *pv == v => *pw = acc,
                _ => points.push((v, acc)),
            }
        }
        WeightedCdf { total: acc, points }
    }
}

impl WeightedCdf {
    /// Fraction of weight at values ≤ `x`.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        match self.points.binary_search_by(|p| p.0.total_cmp(&x)) {
            Ok(i) => self.points[i].1 / self.total,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1 / self.total,
        }
    }

    /// Smallest value whose cumulative fraction reaches `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let target = q * self.total;
        let idx = self.points.partition_point(|p| p.1 < target);
        self.points[idx.min(self.points.len() - 1)].0
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Render `n` evenly spaced (value, fraction) pairs across the value
    /// range — the series a figure plots.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        let lo = self.points.first().unwrap().0;
        let hi = self.points.last().unwrap().0;
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.fraction_leq(x))
            })
            .collect()
    }

    /// Render (quantile value) pairs at the given cumulative fractions —
    /// useful for "p50/p80/p99" style table rows.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<(f64, f64)> {
        qs.iter().map(|&q| (q, self.quantile(q))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> WeightedCdf {
        let mut b = CdfBuilder::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            b.push(v);
        }
        b.build()
    }

    #[test]
    fn fraction_leq_basic() {
        let c = simple();
        assert_eq!(c.fraction_leq(0.5), 0.0);
        assert_eq!(c.fraction_leq(1.0), 0.25);
        assert_eq!(c.fraction_leq(2.5), 0.5);
        assert_eq!(c.fraction_leq(4.0), 1.0);
        assert_eq!(c.fraction_leq(99.0), 1.0);
    }

    #[test]
    fn quantile_is_left_continuous_inverse() {
        let c = simple();
        assert_eq!(c.quantile(0.25), 1.0);
        assert_eq!(c.quantile(0.26), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.quantile(0.0), 1.0);
    }

    #[test]
    fn weights_shift_mass() {
        let mut b = CdfBuilder::new();
        b.push_weighted(1.0, 99.0);
        b.push_weighted(100.0, 1.0);
        let c = b.build();
        assert_eq!(c.quantile(0.5), 1.0);
        assert!((c.fraction_leq(1.0) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn duplicate_values_collapse() {
        let mut b = CdfBuilder::new();
        for _ in 0..10 {
            b.push(5.0);
        }
        b.push(6.0);
        let c = b.build();
        assert!((c.fraction_leq(5.0) - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn series_is_monotone() {
        let mut b = CdfBuilder::new();
        for i in 0..100 {
            b.push((i as f64 * 0.37).sin() * 10.0);
        }
        let s = b.build().series(50);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(s.first().unwrap().1, s[0].1);
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_points_are_dropped() {
        let mut b = CdfBuilder::new();
        b.push_weighted(1.0, 0.0);
        b.push(2.0);
        let c = b.build();
        assert_eq!(c.total_weight(), 1.0);
        assert_eq!(c.fraction_leq(1.5), 0.0);
    }
}
