//! Exact and weighted quantiles on finite samples.
//!
//! The analysis pipeline aggregates at most a few thousand sessions per
//! (user group, window) aggregation, so exact order statistics are cheap;
//! t-digests are reserved for the global, streaming figures.

/// Linear-interpolated quantile of an already **sorted** slice.
///
/// Uses the common "type 7" (R default) definition: the quantile at rank
/// `q * (n - 1)` with linear interpolation between neighbours.
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside [0, 1].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1], got {q}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Quantile of an unsorted slice.
///
/// Copies the input, then selects the one or two order statistics the
/// type-7 definition needs via `select_nth_unstable_by` — O(n) expected
/// instead of a full O(n log n) sort. NaN inputs order last under
/// `total_cmp` rather than panicking.
pub fn quantile_unsorted(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1], got {q}");
    let n = values.len();
    if n == 1 {
        return values[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    let mut v = values.to_vec();
    let (_, &mut lo_val, above) = v.select_nth_unstable_by(lo, f64::total_cmp);
    if frac == 0.0 {
        return lo_val;
    }
    // The rank-(lo+1) statistic is the minimum of the right partition.
    let hi_val = above.iter().copied().min_by(f64::total_cmp).expect("rank lo+1 in bounds");
    lo_val * (1.0 - frac) + hi_val * frac
}

/// Median convenience wrapper.
pub fn median_sorted(sorted: &[f64]) -> f64 {
    quantile_sorted(sorted, 0.5)
}

/// Weighted quantile: the smallest value v such that the cumulative weight
/// of samples ≤ v reaches `q` of the total weight.
///
/// `items` need not be sorted; weights must be non-negative with a positive
/// sum. This is the primitive behind "X% of *traffic*" statements, where a
/// sample's weight is its traffic volume.
pub fn weighted_quantile(items: &[(f64, f64)], q: f64) -> f64 {
    assert!(!items.is_empty(), "weighted quantile of empty input");
    assert!((0.0..=1.0).contains(&q));
    let mut v: Vec<(f64, f64)> = items
        .iter()
        .copied()
        .inspect(|&(x, w)| {
            assert!(w >= 0.0 && x.is_finite(), "bad item ({x}, {w})");
        })
        .collect();
    v.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = v.iter().map(|&(_, w)| w).sum();
    assert!(total > 0.0, "weighted quantile needs positive total weight");
    let target = q * total;
    let mut acc = 0.0;
    for &(x, w) in &v {
        acc += w;
        if acc >= target {
            return x;
        }
    }
    v.last().unwrap().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element() {
        assert_eq!(quantile_sorted(&[42.0], 0.0), 42.0);
        assert_eq!(quantile_sorted(&[42.0], 0.5), 42.0);
        assert_eq!(quantile_sorted(&[42.0], 1.0), 42.0);
    }

    #[test]
    fn interpolates_between_points() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
    }

    #[test]
    fn median_odd_is_middle() {
        assert_eq!(median_sorted(&[1.0, 5.0, 9.0]), 5.0);
    }

    #[test]
    fn unsorted_matches_sorted() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile_unsorted(&v, 0.5), 2.0);
    }

    #[test]
    fn selection_path_matches_full_sort() {
        // Deterministic scramble with duplicates; the select-based path
        // must agree bit-for-bit with sort + interpolate at every rank.
        let vals: Vec<f64> =
            (0..257).map(|i| (((i * 7919) % 997) as f64 / 31.0).floor() * 0.5).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            assert_eq!(
                quantile_unsorted(&vals, q).to_bits(),
                quantile_sorted(&sorted, q).to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn weighted_quantile_respects_weights() {
        // 1.0 carries 90% of weight: every quantile up to 0.9 is 1.0.
        let items = [(1.0, 9.0), (100.0, 1.0)];
        assert_eq!(weighted_quantile(&items, 0.5), 1.0);
        assert_eq!(weighted_quantile(&items, 0.89), 1.0);
        assert_eq!(weighted_quantile(&items, 0.95), 100.0);
    }

    #[test]
    fn weighted_quantile_uniform_weights_match_unweighted_rank() {
        let items: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64, 1.0)).collect();
        assert_eq!(weighted_quantile(&items, 0.5), 50.0);
        assert_eq!(weighted_quantile(&items, 0.9), 90.0);
    }

    #[test]
    #[should_panic]
    fn empty_input_panics() {
        quantile_sorted(&[], 0.5);
    }
}
