//! Streaming scalar summaries (count / mean / min / max / variance).
//!
//! Used for dataset characterization and for sanity assertions in tests and
//! experiment harnesses. Variance uses Welford's online algorithm.

/// Online summary of a stream of f64 samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample {x}");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample; +inf for an empty summary.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; -inf for an empty summary.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance; 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another summary into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean = (self.mean * n1 + other.mean * n2) / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in data.iter().enumerate() {
            if i < 37 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.push(1.0);
        s.push(2.0);
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.push(3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 3.5);
    }
}
