//! Property tests over the simulators' public API.

use edgeperf_netsim::{FastFlow, FlowSim, PathConfig, PathState};
use edgeperf_tcp::{TcpConfig, MILLISECOND, SECOND};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Packet-level flows deliver every byte on loss-free paths, and the
    /// transfer time is bounded below by both serialization and one RTT.
    #[test]
    fn clean_flow_conserves_bytes_and_respects_floors(
        bytes in 1_000u64..300_000,
        bw_mbps in 1u64..50,
        rtt_ms in 5u64..150,
        iw in 2u32..20,
    ) {
        let bw = bw_mbps * 1_000_000;
        let mut sim = FlowSim::new(
            TcpConfig::ns3_validation(iw),
            PathConfig::ideal(bw, rtt_ms * MILLISECOND),
            1,
        );
        sim.schedule_write(0, bytes);
        let res = sim.run(3_600 * SECOND);
        prop_assert_eq!(res.info.bytes_acked, bytes);
        let t = res.writes[0].t_full_ack.unwrap();
        prop_assert!(t >= rtt_ms * MILLISECOND);
        // Serialization floor (payload only; headers make it strictly larger).
        let ser_floor = bytes * 8 * SECOND / bw;
        prop_assert!(t + MILLISECOND >= ser_floor, "t={t} ser_floor={ser_floor}");
    }

    /// Fast-model transfer time is monotone in transfer size on clean
    /// paths, and Wnic equals the pre-transfer window.
    #[test]
    fn fastsim_monotone_in_bytes(
        b1 in 1_000u64..500_000,
        extra in 1u64..500_000,
        bw_mbps in 1u64..50,
        rtt_ms in 5u64..150,
    ) {
        let st = PathState {
            base_rtt: rtt_ms * MILLISECOND,
            standing_queue: 0,
            jitter_max: 0,
            bottleneck_bps: bw_mbps * 1_000_000,
            loss: 0.0,
        };
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut f1 = FastFlow::new(TcpConfig::default());
        let w = f1.cwnd();
        let t1 = f1.transfer(b1, &st, &mut rng);
        prop_assert_eq!(t1.wnic, w);
        let mut f2 = FastFlow::new(TcpConfig::default());
        let t2 = f2.transfer(b1 + extra, &st, &mut rng);
        prop_assert!(t2.ttotal >= t1.ttotal, "{} vs {}", t2.ttotal, t1.ttotal);
    }

    /// The fast model's MinRTT sample never dips below the path floor.
    #[test]
    fn fastsim_min_rtt_at_least_floor(
        bytes in 1_000u64..200_000,
        rtt_ms in 5u64..150,
        queue_ms in 0u64..40,
        jitter_ms in 0u64..20,
    ) {
        let st = PathState {
            base_rtt: rtt_ms * MILLISECOND,
            standing_queue: queue_ms * MILLISECOND,
            jitter_max: jitter_ms * MILLISECOND,
            bottleneck_bps: 10_000_000,
            loss: 0.0,
        };
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut f = FastFlow::new(TcpConfig::default());
        let tr = f.transfer(bytes, &st, &mut rng);
        prop_assert!(tr.min_rtt_sample >= st.rtt_floor());
        prop_assert!(tr.min_rtt_sample <= st.rtt_floor() + jitter_ms * MILLISECOND);
    }
}
