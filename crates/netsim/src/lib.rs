//! Deterministic discrete-event network simulation for edgeperf.
//!
//! This crate plays the role NS3 plays in the paper's §3.2.3 validation and
//! the role the production Internet plays for the fleet-scale studies:
//!
//! - [`engine`]: a minimal, deterministic event queue (integer-nanosecond
//!   timestamps, stable FIFO tie-breaking).
//! - [`path`]: a one-bottleneck network path — FIFO drop-tail queue at a
//!   configurable rate, propagation delay, random loss, jitter, and an
//!   optional token-bucket policer (the paper cites policing as a major
//!   cause of failing to sustain goodput at high RTT).
//! - [`fault`]: loss processes (Bernoulli and Gilbert–Elliott bursts).
//! - [`flow`]: packet-level simulation of one TCP connection carrying a
//!   sequence of application writes (HTTP responses), built on
//!   `edgeperf-tcp`. Produces the per-write instrumentation records the
//!   estimator consumes.
//! - [`fastsim`]: a round-based approximation of the same transfer used
//!   for fleet-scale studies (millions of sessions); an ablation bench
//!   compares its agreement with the packet-level mode.
//!
//! Determinism: all randomness flows through a caller-provided seeded RNG;
//! no wall-clock time is read anywhere.

pub mod engine;
pub mod fastsim;
pub mod fault;
pub mod flow;
pub mod path;
pub mod trace;

pub use engine::EventQueue;
pub use fastsim::{FastFlow, FastTransfer, PathState};
pub use fault::LossModel;
pub use flow::{FlowResult, FlowSim, WriteRecord};
pub use path::{Path, PathConfig};
pub use trace::{FlowTrace, TraceEvent};
