//! Packet-level simulation of one TCP connection carrying a sequence of
//! application writes (HTTP responses).
//!
//! This is the substrate for the paper's §3.2.3 validation and for
//! high-fidelity session simulation: it wires an `edgeperf-tcp` sender and
//! delayed-ACK receiver across a [`Path`] and records, per application
//! write, exactly the quantities the load-balancer instrumentation captures
//! in production:
//!
//! - `Wnic`: the congestion window when the write's first byte reaches the
//!   NIC (first transmission of the segment containing that byte),
//! - the time the first byte reached the NIC,
//! - the time an ACK covering the *second-to-last* packet arrived (the
//!   delayed-ACK-immune endpoint of §3.2.5),
//! - the time the write was fully acknowledged,
//! - the bytes in flight when the write was issued (for the
//!   bytes-in-flight eligibility rule).

use crate::engine::EventQueue;
use crate::path::{Path, PathConfig};
use crate::trace::{FlowTrace, TraceEvent};
use edgeperf_tcp::receiver::AckAction;
use edgeperf_tcp::{DelayedAckReceiver, Nanos, TcpConfig, TcpInfo, TcpSender};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Instrumentation record for one application write (one HTTP response).
#[derive(Debug, Clone, Copy)]
pub struct WriteRecord {
    /// Response size in bytes.
    pub bytes: u64,
    /// When the application issued the write.
    pub scheduled_at: Nanos,
    /// First sequence number of the write in the connection's byte stream.
    pub seq_start: u64,
    /// One past the last sequence number.
    pub seq_end: u64,
    /// Bytes still unacknowledged when the write was issued.
    pub bytes_in_flight_at_write: u64,
    /// Whether earlier writes still had unsent bytes when this write was
    /// issued (triggers coalescing in the instrumentation).
    pub prev_unsent_at_write: bool,
    /// (time, cwnd) when the write's first byte was first transmitted.
    pub first_tx: Option<(Nanos, u32)>,
    /// Sequence number of the first byte of the write's final packet.
    pub last_seg_start: Option<u64>,
    /// Length of the final packet in bytes.
    pub last_packet_bytes: Option<u32>,
    /// Arrival time of the first ACK covering the second-to-last packet.
    pub t_second_last_ack: Option<Nanos>,
    /// Arrival time of the first ACK covering the whole write.
    pub t_full_ack: Option<Nanos>,
}

/// Result of a completed flow simulation.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Per-write instrumentation records, in write order.
    pub writes: Vec<WriteRecord>,
    /// Final sender state snapshot (MinRTT, retransmits, …).
    pub info: TcpInfo,
    /// Virtual time when the simulation went idle.
    pub finished_at: Nanos,
    /// Path delivery/drop counters.
    pub path_stats: crate::path::PathStats,
    /// Wire-level transcript, if tracing was enabled.
    pub trace: Option<FlowTrace>,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    AppWrite { idx: usize },
    Arrive { seq: u64, len: u32 },
    AckArrive { cum: u64 },
    AckTimer { deadline: Nanos },
    Rto { deadline: Nanos },
    PacedSend,
}

/// # Example
///
/// ```
/// use edgeperf_netsim::{FlowSim, PathConfig};
/// use edgeperf_tcp::{TcpConfig, MILLISECOND, SECOND};
///
/// let mut sim = FlowSim::new(
///     TcpConfig::ns3_validation(10),
///     PathConfig::ideal(5_000_000, 60 * MILLISECOND),
///     42,
/// );
/// sim.schedule_write(0, 50_000);
/// let res = sim.run(60 * SECOND);
/// assert!(res.writes[0].t_full_ack.is_some());
/// assert_eq!(res.info.bytes_acked, 50_000);
/// ```
/// One TCP connection over one path, driven by scheduled writes.
pub struct FlowSim {
    q: EventQueue<Event>,
    sender: TcpSender,
    receiver: DelayedAckReceiver,
    path: Path,
    rng: ChaCha12Rng,
    writes: Vec<WriteRecord>,
    pending_writes: usize,
    /// Index of the first write not yet fully ACKed (monotone cursor).
    ack_cursor: usize,
    trace: Option<FlowTrace>,
    pacing: bool,
    /// Earliest time the next paced segment may leave.
    next_send_at: Nanos,
}

impl FlowSim {
    /// Create a flow with the given TCP and path configuration. `seed`
    /// drives every random decision (loss, jitter) for this flow.
    pub fn new(tcp: TcpConfig, path: PathConfig, seed: u64) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut path = Path::new(path);
        let mut sender = TcpSender::new(tcp);
        // Connection establishment: the SYN/SYN-ACK exchange seeds the
        // RTT estimator with a header-sized sample at the propagation
        // floor (as the Linux kernel does). The SYN occupies the
        // bottleneck momentarily, which the path state reflects.
        if let Some(delivery) = path.transmit(0, 0, &mut rng) {
            sender.seed_handshake_rtt(delivery + path.ack_delay());
        }
        FlowSim {
            q: EventQueue::new(),
            sender,
            receiver: DelayedAckReceiver::new(tcp.delayed_ack_timeout, tcp.delayed_ack_disabled),
            path,
            rng,
            writes: Vec::new(),
            pending_writes: 0,
            ack_cursor: 0,
            trace: None,
            pacing: tcp.pacing,
            next_send_at: 0,
        }
    }

    /// Record a wire-level transcript of this flow (off by default; the
    /// transcript is returned in [`FlowResult::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(FlowTrace::new());
    }

    /// Schedule an application write of `bytes` at virtual time `at`.
    /// Must be called before [`FlowSim::run`]; writes may be scheduled in
    /// any order but are sequenced into the byte stream in event order.
    pub fn schedule_write(&mut self, at: Nanos, bytes: u64) {
        assert!(bytes > 0, "zero-byte write");
        let idx = self.writes.len();
        self.writes.push(WriteRecord {
            bytes,
            scheduled_at: at,
            seq_start: 0,
            seq_end: 0,
            bytes_in_flight_at_write: 0,
            prev_unsent_at_write: false,
            first_tx: None,
            last_seg_start: None,
            last_packet_bytes: None,
            t_second_last_ack: None,
            t_full_ack: None,
        });
        self.pending_writes += 1;
        self.q.schedule(at, Event::AppWrite { idx });
    }

    /// Run until every write is delivered and acknowledged, or until
    /// virtual time exceeds `limit`. Returns the instrumentation records.
    pub fn run(mut self, limit: Nanos) -> FlowResult {
        while let Some(t) = self.q.peek_time() {
            if t > limit {
                break;
            }
            let (now, ev) = self.q.pop().expect("peeked event");
            match ev {
                Event::AppWrite { idx } => self.on_app_write(now, idx),
                Event::Arrive { seq, len } => self.on_arrive(now, seq, len),
                Event::AckArrive { cum } => self.on_ack_arrive(now, cum),
                Event::AckTimer { deadline } => {
                    if let Some(cum) = self.receiver.on_ack_timer(deadline) {
                        let at = now + self.path.ack_delay();
                        self.q.schedule(at, Event::AckArrive { cum });
                    }
                }
                Event::Rto { deadline } => {
                    if self.sender.rto_deadline() == Some(deadline) {
                        self.sender.on_rto(now);
                        self.try_send(now);
                    }
                }
                Event::PacedSend => self.try_send(now),
            }
            if self.pending_writes == 0 && self.sender.all_acked() {
                break;
            }
        }
        FlowResult {
            info: self.sender.info(),
            finished_at: self.q.now(),
            path_stats: self.path.stats,
            writes: self.writes,
            trace: self.trace,
        }
    }

    fn on_app_write(&mut self, now: Nanos, idx: usize) {
        let seq_start = self.sender.app_limit();
        let w = &mut self.writes[idx];
        w.seq_start = seq_start;
        w.seq_end = seq_start + w.bytes;
        w.bytes_in_flight_at_write = self.sender.bytes_in_flight();
        w.prev_unsent_at_write = self.sender.has_unsent_data();
        self.sender.enqueue(w.bytes);
        self.try_send(now);
    }

    fn try_send(&mut self, now: Nanos) {
        loop {
            if self.pacing && now < self.next_send_at {
                // Not our turn yet; wake up when it is.
                self.q.schedule(self.next_send_at, Event::PacedSend);
                break;
            }
            let Some(seg) = self.sender.next_segment(now) else { break };
            if !seg.retx {
                self.note_departure(now, seg.seq, seg.len);
            }
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent::Send { t: now, seq: seg.seq, len: seg.len, retx: seg.retx });
            }
            match self.path.transmit(now, seg.len, &mut self.rng) {
                Some(delivery) => {
                    self.q.schedule(delivery, Event::Arrive { seq: seg.seq, len: seg.len });
                }
                None => {
                    if let Some(tr) = &mut self.trace {
                        tr.push(TraceEvent::Drop { t: now, seq: seg.seq });
                    }
                }
            }
            if self.pacing {
                // Linux-style pacing: 2×cwnd per sRTT.
                let srtt = self.sender.rtt().srtt().unwrap_or(50 * 1_000_000).max(1);
                let rate = 2.0 * self.sender.cwnd() as f64 / srtt as f64; // bytes/ns
                let interval = (seg.len as f64 / rate) as Nanos;
                self.next_send_at = now + interval;
            }
        }
        if let Some(d) = self.sender.rto_deadline() {
            self.q.schedule(d.max(now), Event::Rto { deadline: d });
        }
    }

    /// Record instrumentation for a first-transmission segment departure.
    fn note_departure(&mut self, now: Nanos, seq: u64, len: u32) {
        let end = seq + len as u64;
        for w in &mut self.writes {
            if w.seq_end == 0 {
                continue; // not yet issued
            }
            // First byte of the write inside this segment → Wnic snapshot.
            if w.first_tx.is_none() && seq <= w.seq_start && w.seq_start < end {
                w.first_tx = Some((now, self.sender.cwnd()));
            }
            // Final byte of the write inside this segment → last packet.
            if w.last_seg_start.is_none() && seq < w.seq_end && w.seq_end <= end {
                w.last_seg_start = Some(seq);
                w.last_packet_bytes = Some((w.seq_end - seq) as u32);
            }
        }
    }

    fn on_arrive(&mut self, now: Nanos, seq: u64, len: u32) {
        if let Some(tr) = &mut self.trace {
            tr.push(TraceEvent::Deliver { t: now, seq });
        }
        match self.receiver.on_segment(now, seq, len) {
            AckAction::Now { cum_seq } => {
                let at = now + self.path.ack_delay();
                self.q.schedule(at, Event::AckArrive { cum: cum_seq });
            }
            AckAction::Delayed { deadline } => {
                self.q.schedule(deadline, Event::AckTimer { deadline });
            }
        }
    }

    fn on_ack_arrive(&mut self, now: Nanos, cum: u64) {
        if let Some(tr) = &mut self.trace {
            tr.push(TraceEvent::Ack { t: now, cum });
        }
        // Update write records before the sender mutates state.
        for i in self.ack_cursor..self.writes.len() {
            let w = &mut self.writes[i];
            if w.seq_end == 0 || w.seq_end > 0 && w.first_tx.is_none() {
                break; // not yet issued/transmitted; later writes aren't either
            }
            if let Some(ls) = w.last_seg_start {
                if w.t_second_last_ack.is_none() && cum >= ls {
                    w.t_second_last_ack = Some(now);
                }
            }
            if w.t_full_ack.is_none() && cum >= w.seq_end {
                w.t_full_ack = Some(now);
                self.pending_writes -= 1;
                if i == self.ack_cursor {
                    self.ack_cursor += 1;
                }
            }
        }
        self.sender.on_ack(now, cum.min(self.sender.snd_nxt()));
        self.try_send(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LossModel;
    use edgeperf_tcp::{MILLISECOND, SECOND};

    fn ideal_path(bps: u64, rtt_ms: u64) -> PathConfig {
        PathConfig::ideal(bps, rtt_ms * MILLISECOND)
    }

    fn tcp() -> TcpConfig {
        TcpConfig::ns3_validation(10)
    }

    #[test]
    fn single_small_write_completes_in_one_rtt_ish() {
        let mut sim = FlowSim::new(tcp(), ideal_path(1_000_000_000, 60), 1);
        sim.schedule_write(0, 1_000);
        let res = sim.run(10 * SECOND);
        let w = res.writes[0];
        assert!(w.t_full_ack.is_some());
        // One packet over a fat pipe: done in ~RTT (+serialization).
        let t = w.t_full_ack.unwrap();
        assert!((60 * MILLISECOND..62 * MILLISECOND).contains(&t), "t = {t}");
        assert_eq!(w.first_tx.unwrap().1, tcp().initial_cwnd_bytes());
    }

    #[test]
    fn all_bytes_delivered_and_acked() {
        let mut sim = FlowSim::new(tcp(), ideal_path(10_000_000, 40), 2);
        sim.schedule_write(0, 300_000);
        let res = sim.run(60 * SECOND);
        assert!(res.writes[0].t_full_ack.is_some(), "did not finish");
        assert_eq!(res.info.bytes_acked, 300_000);
        assert_eq!(res.path_stats.lost_random, 0);
        assert_eq!(res.path_stats.lost_overflow, 0);
    }

    #[test]
    fn long_transfer_goodput_approaches_bottleneck() {
        let bw = 5_000_000u64;
        let mut sim = FlowSim::new(tcp(), ideal_path(bw, 40), 3);
        let bytes = 2_000_000u64;
        sim.schedule_write(0, bytes);
        let res = sim.run(120 * SECOND);
        let w = res.writes[0];
        let t = w.t_full_ack.expect("finished") - w.first_tx.unwrap().0;
        let goodput = bytes as f64 * 8.0 * SECOND as f64 / t as f64;
        // Should reach within 15% of the bottleneck (headers + slow start).
        assert!(goodput > bw as f64 * 0.85, "goodput = {goodput}");
        assert!(goodput < bw as f64 * 1.01, "goodput = {goodput} exceeds bottleneck");
    }

    #[test]
    fn min_rtt_close_to_propagation() {
        let mut sim = FlowSim::new(tcp(), ideal_path(10_000_000, 80), 4);
        sim.schedule_write(0, 50_000);
        let res = sim.run(60 * SECOND);
        let mr = res.info.min_rtt.expect("rtt sampled");
        assert!(mr >= 80 * MILLISECOND, "{mr}");
        assert!(mr < 95 * MILLISECOND, "{mr}");
    }

    #[test]
    fn second_to_last_ack_precedes_full_ack() {
        let mut sim = FlowSim::new(tcp(), ideal_path(2_000_000, 50), 5);
        sim.schedule_write(0, 100_000);
        let res = sim.run(60 * SECOND);
        let w = res.writes[0];
        let t2 = w.t_second_last_ack.unwrap();
        let tf = w.t_full_ack.unwrap();
        assert!(t2 <= tf);
        assert!(w.last_packet_bytes.unwrap() > 0);
        assert!(w.last_packet_bytes.unwrap() <= 1460);
    }

    #[test]
    fn writes_share_the_connection_window() {
        // Second write starts with the cwnd grown by the first.
        let mut sim = FlowSim::new(tcp(), ideal_path(50_000_000, 60), 6);
        sim.schedule_write(0, 30_000); // grows cwnd
        sim.schedule_write(2 * SECOND, 30_000);
        let res = sim.run(60 * SECOND);
        let w0 = res.writes[0].first_tx.unwrap().1;
        let w1 = res.writes[1].first_tx.unwrap().1;
        assert!(w1 > w0, "cwnd should persist and grow: {w0} → {w1}");
    }

    #[test]
    fn loss_triggers_retransmissions_and_recovery() {
        let path = PathConfig {
            bottleneck_bps: 10_000_000,
            one_way_propagation: 25 * MILLISECOND,
            queue_capacity_bytes: 1 << 24,
            loss: LossModel::bernoulli(0.02),
            ..Default::default()
        };
        let mut sim = FlowSim::new(tcp(), path, 7);
        sim.schedule_write(0, 500_000);
        let res = sim.run(300 * SECOND);
        assert!(res.writes[0].t_full_ack.is_some(), "flow must complete despite loss");
        assert!(res.info.retransmits > 0);
        assert_eq!(res.info.bytes_acked, 500_000);
    }

    #[test]
    fn heavy_loss_still_completes_via_rto() {
        let path = PathConfig {
            bottleneck_bps: 2_000_000,
            one_way_propagation: 50 * MILLISECOND,
            queue_capacity_bytes: 1 << 24,
            loss: LossModel::bernoulli(0.25),
            ..Default::default()
        };
        let mut sim = FlowSim::new(tcp(), path, 8);
        sim.schedule_write(0, 20_000);
        let res = sim.run(600 * SECOND);
        assert!(res.writes[0].t_full_ack.is_some(), "must complete under 25% loss");
    }

    #[test]
    fn shallow_queue_causes_overflow_drops() {
        let path = PathConfig {
            bottleneck_bps: 2_000_000,
            one_way_propagation: 40 * MILLISECOND,
            queue_capacity_bytes: 8_000, // ~5 packets
            loss: LossModel::None,
            ..Default::default()
        };
        let mut sim = FlowSim::new(tcp(), path, 9);
        sim.schedule_write(0, 400_000);
        let res = sim.run(600 * SECOND);
        assert!(res.writes[0].t_full_ack.is_some());
        assert!(res.path_stats.lost_overflow > 0, "burst must overflow the shallow queue");
    }

    #[test]
    fn back_to_back_writes_are_flagged() {
        let mut sim = FlowSim::new(tcp(), ideal_path(1_000_000, 100), 10);
        sim.schedule_write(0, 100_000);
        sim.schedule_write(MILLISECOND, 5_000); // while first still sending
        let res = sim.run(120 * SECOND);
        assert!(res.writes[1].prev_unsent_at_write);
        assert!(res.writes[1].bytes_in_flight_at_write > 0);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let path = PathConfig {
                loss: LossModel::bernoulli(0.05),
                jitter_max: 3 * MILLISECOND,
                ..Default::default()
            };
            let mut sim = FlowSim::new(tcp(), path, seed);
            sim.schedule_write(0, 123_456);
            let r = sim.run(300 * SECOND);
            (r.finished_at, r.info.retransmits, r.writes[0].t_full_ack)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn time_limit_stops_runaway() {
        let path = PathConfig {
            loss: LossModel::bernoulli(0.95), // nearly everything lost
            ..Default::default()
        };
        let mut sim = FlowSim::new(tcp(), path, 11);
        sim.schedule_write(0, 1_000_000);
        let res = sim.run(5 * SECOND);
        assert!(res.finished_at <= 6 * SECOND);
    }

    #[test]
    fn delayed_acks_inflate_small_write_completion() {
        // With delayed ACKs on and a single packet, the final ACK waits for
        // the delayed-ACK timer — exactly the distortion §3.2.5 corrects.
        let mut cfg = tcp();
        cfg.delayed_ack_disabled = false;
        let mut sim = FlowSim::new(cfg, ideal_path(1_000_000_000, 20), 12);
        sim.schedule_write(0, 500);
        let res = sim.run(10 * SECOND);
        let t = res.writes[0].t_full_ack.unwrap();
        assert!(t >= 20 * MILLISECOND + cfg.delayed_ack_timeout, "t = {t}");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::fault::LossModel;
    use edgeperf_tcp::{MILLISECOND, SECOND};

    #[test]
    fn trace_captures_full_exchange() {
        let mut sim = FlowSim::new(
            TcpConfig::ns3_validation(10),
            PathConfig::ideal(10_000_000, 40 * MILLISECOND),
            1,
        );
        sim.enable_trace();
        sim.schedule_write(0, 10_000);
        let res = sim.run(60 * SECOND);
        let trace = res.trace.expect("trace enabled");
        // 7 segments out, 7 delivered, ACKs back, no drops.
        let sends = trace.count(|e| matches!(e, TraceEvent::Send { .. }));
        let delivers = trace.count(|e| matches!(e, TraceEvent::Deliver { .. }));
        assert_eq!(sends, 7);
        assert_eq!(delivers, 7);
        assert_eq!(trace.drops(), 0);
        assert!(trace.count(|e| matches!(e, TraceEvent::Ack { .. })) >= 4);
        // The transcript renders and mentions the final cumulative ACK.
        assert!(trace.render().contains("cum=10000"));
    }

    #[test]
    fn trace_records_drops_and_retransmissions() {
        let mut cfg = PathConfig::ideal(5_000_000, 40 * MILLISECOND);
        cfg.loss = LossModel::bernoulli(0.08);
        let mut sim = FlowSim::new(TcpConfig::ns3_validation(10), cfg, 7);
        sim.enable_trace();
        sim.schedule_write(0, 200_000);
        let res = sim.run(300 * SECOND);
        let trace = res.trace.unwrap();
        assert!(trace.drops() > 0, "8% loss must drop something");
        assert_eq!(trace.retransmissions() as u64, res.info.retransmits);
        // Conservation: every delivered segment was sent.
        let sends = trace.count(|e| matches!(e, TraceEvent::Send { .. }));
        let delivers = trace.count(|e| matches!(e, TraceEvent::Deliver { .. }));
        assert_eq!(sends, delivers + trace.drops());
    }

    #[test]
    fn tracing_off_by_default() {
        let mut sim = FlowSim::new(
            TcpConfig::ns3_validation(10),
            PathConfig::ideal(10_000_000, 40 * MILLISECOND),
            1,
        );
        sim.schedule_write(0, 1_000);
        assert!(sim.run(60 * SECOND).trace.is_none());
    }
}

#[cfg(test)]
mod pacing_tests {
    use super::*;
    use crate::fault::LossModel;
    use edgeperf_tcp::{MILLISECOND, SECOND};

    fn shallow_queue(pacing: bool, seed: u64) -> crate::path::PathStats {
        let tcp = TcpConfig { pacing, ..TcpConfig::ns3_validation(10) };
        let path = PathConfig {
            bottleneck_bps: 4_000_000,
            one_way_propagation: 30 * MILLISECOND,
            queue_capacity_bytes: 10_000, // ~6 packets
            loss: LossModel::None,
            ..Default::default()
        };
        let mut sim = FlowSim::new(tcp, path, seed);
        // A short, slow-start-dominated transfer: the IW10 burst alone
        // overflows the 6-packet queue; pacing spreads it across the RTT.
        sim.schedule_write(0, 30_000);
        let res = sim.run(600 * SECOND);
        assert!(res.writes[0].t_full_ack.is_some(), "must complete");
        res.path_stats
    }

    #[test]
    fn pacing_reduces_burst_overflow_drops() {
        let burst = shallow_queue(false, 1);
        let paced = shallow_queue(true, 1);
        assert!(
            paced.lost_overflow < burst.lost_overflow,
            "paced {} vs burst {}",
            paced.lost_overflow,
            burst.lost_overflow
        );
    }

    #[test]
    fn pacing_spreads_departures_in_time() {
        let run = |pacing: bool| {
            let tcp = TcpConfig { pacing, ..TcpConfig::ns3_validation(10) };
            let mut sim = FlowSim::new(tcp, PathConfig::ideal(50_000_000, 60 * MILLISECOND), 2);
            sim.enable_trace();
            sim.schedule_write(0, 14_600); // exactly one initial window
            let res = sim.run(60 * SECOND);
            let trace = res.trace.unwrap();
            let sends: Vec<u64> = trace
                .events()
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Send { t, .. } => Some(*t),
                    _ => None,
                })
                .collect();
            (sends.first().copied().unwrap(), sends.last().copied().unwrap())
        };
        let (b0, b9) = run(false);
        assert_eq!(b0, b9, "burst mode sends the window at one instant");
        let (p0, p9) = run(true);
        assert!(p9 > p0 + 10 * MILLISECOND, "paced sends spread out: {p0}..{p9}");
    }

    #[test]
    fn paced_flow_still_delivers_everything() {
        let tcp = TcpConfig { pacing: true, ..TcpConfig::ns3_validation(10) };
        let mut cfg = PathConfig::ideal(5_000_000, 40 * MILLISECOND);
        cfg.loss = LossModel::bernoulli(0.01);
        let mut sim = FlowSim::new(tcp, cfg, 3);
        sim.schedule_write(0, 400_000);
        let res = sim.run(600 * SECOND);
        assert_eq!(res.info.bytes_acked, 400_000);
    }
}
