//! A deterministic event queue.
//!
//! Events are `(time, payload)` pairs; pops are ordered by time with a
//! monotone sequence number breaking ties, so two events scheduled for the
//! same instant dequeue in scheduling order. This makes simulation runs
//! bit-for-bit reproducible regardless of payload type.

use edgeperf_tcp::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-heap event queue over an arbitrary payload type.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Nanos,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Nanos, u64)>,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0 }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time (time travel).
    pub fn schedule(&mut self, at: Nanos, payload: E) {
        assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        self.seq += 1;
        self.heap.push(Entry { key: Reverse((at, self.seq)), payload });
    }

    /// Pop the earliest event, advancing virtual time to it.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| {
            let (t, _) = e.key.0;
            self.now = t;
            (t, e.payload)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(50, ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.now(), 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
