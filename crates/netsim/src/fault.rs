//! Fault injection: packet-loss processes.
//!
//! Two models cover the study's needs: independent (Bernoulli) loss for the
//! NS3-style validation sweeps, and Gilbert–Elliott two-state bursts for
//! realistic congestion-episode loss (losses on the Internet cluster).

use rand::Rng;

/// A packet-loss process. Stateful: call [`LossModel::is_lost`] once per
/// packet in transmission order.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// No loss ever.
    None,
    /// Each packet lost independently with probability `p`.
    Bernoulli {
        /// Loss probability in [0, 1].
        p: f64,
    },
    /// Gilbert–Elliott: a hidden good/bad channel state; packets are lost
    /// with probability `loss_bad` while in the bad state.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_enter_bad: f64,
        /// P(bad → good) per packet.
        p_exit_bad: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
        /// Current state (true = bad).
        in_bad: bool,
    },
}

impl LossModel {
    /// Independent loss with probability `p`.
    pub fn bernoulli(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability {p}");
        if p == 0.0 {
            LossModel::None
        } else {
            LossModel::Bernoulli { p }
        }
    }

    /// Bursty loss. With defaults `p_enter_bad` small and `p_exit_bad`
    /// moderate, average loss ≈ `loss_bad · p_enter/(p_enter+p_exit)`.
    pub fn gilbert_elliott(p_enter_bad: f64, p_exit_bad: f64, loss_bad: f64) -> Self {
        for p in [p_enter_bad, p_exit_bad, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability {p}");
        }
        LossModel::GilbertElliott { p_enter_bad, p_exit_bad, loss_bad, in_bad: false }
    }

    /// Decide the fate of the next packet.
    pub fn is_lost<R: Rng>(&mut self, rng: &mut R) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.gen::<f64>() < *p,
            LossModel::GilbertElliott { p_enter_bad, p_exit_bad, loss_bad, in_bad } => {
                if *in_bad {
                    if rng.gen::<f64>() < *p_exit_bad {
                        *in_bad = false;
                    }
                } else if rng.gen::<f64>() < *p_enter_bad {
                    *in_bad = true;
                }
                *in_bad && rng.gen::<f64>() < *loss_bad
            }
        }
    }

    /// Long-run expected loss rate of the process.
    pub fn expected_rate(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott { p_enter_bad, p_exit_bad, loss_bad, .. } => {
                if *p_enter_bad + *p_exit_bad == 0.0 {
                    0.0
                } else {
                    loss_bad * p_enter_bad / (p_enter_bad + p_exit_bad)
                }
            }
        }
    }
}

/// Token-bucket policer: packets that arrive with an empty bucket are
/// dropped (hard policing, not shaping). Rates in bits/second, burst in
/// bytes. The paper identifies policing as a key reason high-RTT clients
/// fail to sustain goodput.
#[derive(Debug, Clone)]
pub struct Policer {
    rate_bps: u64,
    burst_bytes: u64,
    tokens: f64,
    last_refill: edgeperf_tcp::Nanos,
}

impl Policer {
    /// New policer with a full bucket.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        assert!(rate_bps > 0 && burst_bytes > 0);
        Policer { rate_bps, burst_bytes, tokens: burst_bytes as f64, last_refill: 0 }
    }

    /// Offer a packet of `bytes` at time `now`; true = pass, false = drop.
    pub fn admit(&mut self, now: edgeperf_tcp::Nanos, bytes: u32) -> bool {
        let elapsed = now.saturating_sub(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens
            + elapsed as f64 * self.rate_bps as f64 / 8.0 / edgeperf_tcp::SECOND as f64)
            .min(self.burst_bytes as f64);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_tcp::{MILLISECOND, SECOND};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng as SmallRng;

    #[test]
    fn none_never_loses() {
        let mut m = LossModel::None;
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..1000).all(|_| !m.is_lost(&mut rng)));
    }

    #[test]
    fn bernoulli_rate_is_approximately_p() {
        let mut m = LossModel::bernoulli(0.1);
        let mut rng = SmallRng::seed_from_u64(42);
        let lost = (0..100_000).filter(|_| m.is_lost(&mut rng)).count();
        let rate = lost as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn bernoulli_zero_collapses_to_none() {
        assert!(matches!(LossModel::bernoulli(0.0), LossModel::None));
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let mut m = LossModel::gilbert_elliott(0.01, 0.2, 0.5);
        let expect = m.expected_rate();
        let mut rng = SmallRng::seed_from_u64(7);
        let lost = (0..400_000).filter(|_| m.is_lost(&mut rng)).count();
        let rate = lost as f64 / 400_000.0;
        assert!((rate - expect).abs() < 0.005, "rate = {rate}, expect = {expect}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare the number of loss "runs" with Bernoulli at equal rate:
        // bursty loss has fewer, longer runs.
        let mut ge = LossModel::gilbert_elliott(0.01, 0.2, 0.9);
        let rate = ge.expected_rate();
        let mut be = LossModel::bernoulli(rate);
        let mut rng1 = SmallRng::seed_from_u64(3);
        let mut rng2 = SmallRng::seed_from_u64(3);
        let runs = |seq: Vec<bool>| seq.windows(2).filter(|w| !w[0] && w[1]).count();
        let ge_seq: Vec<bool> = (0..200_000).map(|_| ge.is_lost(&mut rng1)).collect();
        let be_seq: Vec<bool> = (0..200_000).map(|_| be.is_lost(&mut rng2)).collect();
        let (ge_losses, be_losses) =
            (ge_seq.iter().filter(|&&l| l).count(), be_seq.iter().filter(|&&l| l).count());
        // Rates should be in the same ballpark…
        assert!((ge_losses as f64 / be_losses as f64 - 1.0).abs() < 0.25);
        // …but GE loss events cluster into fewer runs.
        assert!(runs(ge_seq) < runs(be_seq) / 2);
    }

    #[test]
    fn policer_admits_within_rate() {
        // 1 Mbps, 10 kB burst. Initial burst passes, sustained overload drops.
        let mut p = Policer::new(1_000_000, 10_000);
        assert!(p.admit(0, 5_000));
        assert!(p.admit(0, 5_000));
        assert!(!p.admit(0, 1_500)); // bucket empty
                                     // After 100 ms, 12.5 kB accrued (capped at 10 kB burst).
        assert!(p.admit(100 * MILLISECOND, 10_000));
        assert!(!p.admit(100 * MILLISECOND, 1));
    }

    #[test]
    fn policer_steady_state_rate() {
        let mut p = Policer::new(8_000_000, 2_000); // 1 MB/s
        let mut admitted = 0u64;
        for i in 0..10_000 {
            let t = i * (SECOND / 1000); // one packet per ms for 10 s
            if p.admit(t, 1_500) {
                admitted += 1_500;
            }
        }
        let rate = admitted as f64 / 10.0; // bytes/sec
        assert!((rate - 1_000_000.0).abs() < 50_000.0, "rate = {rate}");
    }
}
