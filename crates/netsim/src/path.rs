//! A one-bottleneck network path.
//!
//! Data direction: sender → [policer?] → bottleneck (FIFO drop-tail queue,
//! fixed service rate) → propagation (+ optional jitter) → receiver.
//! ACK direction: fixed propagation delay (ACKs are tiny and rarely the
//! constraint; the paper's model makes the same simplification — MinRTT
//! captures header transmission, §3.2.3 footnote 5).
//!
//! FIFO order is preserved even under jitter: a delivery is never scheduled
//! before the previous one, matching real single-path behaviour where
//! reordering is rare.

use crate::fault::{LossModel, Policer};
use edgeperf_tcp::time::transmission_time;
use edgeperf_tcp::Nanos;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// Static configuration of a path.
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// Bottleneck service rate, bits/second.
    pub bottleneck_bps: u64,
    /// One-way propagation delay (each direction); RTT = 2× this plus
    /// queueing and serialization.
    pub one_way_propagation: Nanos,
    /// Drop-tail queue capacity in bytes at the bottleneck.
    pub queue_capacity_bytes: u64,
    /// Loss process applied before the queue (random/bursty loss on the
    /// wire, distinct from queue overflow drops).
    pub loss: LossModel,
    /// Max extra per-packet delay (uniform in [0, jitter_max]).
    pub jitter_max: Nanos,
    /// Optional token-bucket policer in front of the queue.
    pub policer: Option<(u64, u64)>,
    /// Per-packet wire overhead (headers) in bytes, counted toward
    /// serialization at the bottleneck but not toward goodput.
    pub header_bytes: u32,
    /// Fraction of the bottleneck consumed by background cross-traffic
    /// (0 = dedicated link). The flow sees a proportionally slower
    /// service rate — the standing effect of sharing a saturated link.
    pub background_utilization: f64,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            bottleneck_bps: 10_000_000,
            one_way_propagation: 25 * edgeperf_tcp::MILLISECOND,
            queue_capacity_bytes: 64 * 1024,
            loss: LossModel::None,
            jitter_max: 0,
            policer: None,
            header_bytes: 40,
            background_utilization: 0.0,
        }
    }
}

impl PathConfig {
    /// The paper's §3.2.3 validation grid point: a clean path with the
    /// given bottleneck and symmetric propagation RTT, no loss, no jitter,
    /// and a queue deep enough to never overflow (BDP-scaled) — "ideal
    /// network conditions".
    pub fn ideal(bottleneck_bps: u64, rtt: Nanos) -> Self {
        PathConfig {
            bottleneck_bps,
            one_way_propagation: rtt / 2,
            // Deep queue: ideal conditions must not drop.
            queue_capacity_bytes: 64 * 1024 * 1024,
            loss: LossModel::None,
            jitter_max: 0,
            policer: None,
            header_bytes: 40,
            background_utilization: 0.0,
        }
    }

    /// Effective service rate after background cross-traffic.
    pub fn effective_bps(&self) -> u64 {
        assert!(
            (0.0..1.0).contains(&self.background_utilization),
            "background utilization must be in [0, 1): {}",
            self.background_utilization
        );
        ((self.bottleneck_bps as f64) * (1.0 - self.background_utilization)).max(1.0) as u64
    }
}

/// Runtime state of a path (queue occupancy, policer bucket, loss state).
#[derive(Debug)]
pub struct Path {
    cfg: PathConfig,
    loss: LossModel,
    policer: Option<Policer>,
    /// Time the bottleneck server frees up.
    busy_until: Nanos,
    /// FIFO guard: no delivery earlier than the previous one.
    last_delivery: Nanos,
    /// Counters for diagnostics.
    pub stats: PathStats,
}

/// Per-path counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct PathStats {
    /// Packets offered to the path.
    pub offered: u64,
    /// Packets dropped by the random-loss process.
    pub lost_random: u64,
    /// Packets dropped by queue overflow.
    pub lost_overflow: u64,
    /// Packets dropped by the policer.
    pub lost_policed: u64,
    /// Packets delivered.
    pub delivered: u64,
}

impl Path {
    /// Instantiate a path from its configuration.
    pub fn new(cfg: PathConfig) -> Self {
        let policer = cfg.policer.map(|(rate, burst)| Policer::new(rate, burst));
        Path {
            loss: cfg.loss.clone(),
            policer,
            busy_until: 0,
            last_delivery: 0,
            stats: PathStats::default(),
            cfg,
        }
    }

    /// Offer a data packet of `payload` bytes at `now`. Returns the
    /// delivery time at the receiver, or `None` if dropped.
    pub fn transmit(&mut self, now: Nanos, payload: u32, rng: &mut ChaCha12Rng) -> Option<Nanos> {
        self.stats.offered += 1;
        let wire_bytes = payload + self.cfg.header_bytes;

        if let Some(p) = &mut self.policer {
            if !p.admit(now, wire_bytes) {
                self.stats.lost_policed += 1;
                return None;
            }
        }
        if self.loss.is_lost(rng) {
            self.stats.lost_random += 1;
            return None;
        }

        // Queue occupancy is implied by how far ahead busy_until runs.
        let rate = self.cfg.effective_bps();
        let backlog_time = self.busy_until.saturating_sub(now);
        let backlog_bytes = backlog_time as u128 * rate as u128 / 8 / edgeperf_tcp::SECOND as u128;
        if backlog_bytes + wire_bytes as u128 > self.cfg.queue_capacity_bytes as u128 {
            self.stats.lost_overflow += 1;
            return None;
        }

        let start = self.busy_until.max(now);
        let done = start + transmission_time(wire_bytes as u64, rate);
        self.busy_until = done;

        let jitter =
            if self.cfg.jitter_max > 0 { rng.gen_range(0..=self.cfg.jitter_max) } else { 0 };
        let delivery = (done + self.cfg.one_way_propagation + jitter).max(self.last_delivery);
        self.last_delivery = delivery;
        self.stats.delivered += 1;
        Some(delivery)
    }

    /// Delay for an ACK travelling receiver → sender.
    pub fn ack_delay(&self) -> Nanos {
        self.cfg.one_way_propagation
    }

    /// The static configuration.
    pub fn config(&self) -> &PathConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_tcp::{MILLISECOND, SECOND};
    use rand::SeedableRng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(1)
    }

    #[test]
    fn lone_packet_takes_serialization_plus_propagation() {
        let mut p = Path::new(PathConfig {
            bottleneck_bps: 3_000_000,
            one_way_propagation: 30 * MILLISECOND,
            header_bytes: 0,
            ..Default::default()
        });
        // 1500 B at 3 Mbps = 4 ms serialization.
        let d = p.transmit(0, 1500, &mut rng()).unwrap();
        assert_eq!(d, 4 * MILLISECOND + 30 * MILLISECOND);
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut p = Path::new(PathConfig {
            bottleneck_bps: 3_000_000,
            one_way_propagation: 0,
            header_bytes: 0,
            ..Default::default()
        });
        let mut r = rng();
        let d1 = p.transmit(0, 1500, &mut r).unwrap();
        let d2 = p.transmit(0, 1500, &mut r).unwrap();
        assert_eq!(d1, 4 * MILLISECOND);
        assert_eq!(d2, 8 * MILLISECOND);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut p = Path::new(PathConfig {
            bottleneck_bps: 1_000_000,
            one_way_propagation: 0,
            queue_capacity_bytes: 3_000,
            header_bytes: 0,
            ..Default::default()
        });
        let mut r = rng();
        // Capacity covers the in-service packet plus one queued packet.
        assert!(p.transmit(0, 1_500, &mut r).is_some()); // in service (backlog 1500)
        assert!(p.transmit(0, 1_500, &mut r).is_some()); // queued (backlog 3000)
        assert!(p.transmit(0, 1_500, &mut r).is_none()); // overflow
        assert_eq!(p.stats.lost_overflow, 1);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut p = Path::new(PathConfig {
            bottleneck_bps: 1_000_000,
            one_way_propagation: 0,
            queue_capacity_bytes: 3_000,
            header_bytes: 0,
            ..Default::default()
        });
        let mut r = rng();
        for _ in 0..3 {
            p.transmit(0, 1_500, &mut r);
        }
        assert!(p.transmit(0, 1_500, &mut r).is_none());
        // 1500 B at 1 Mbps = 12 ms per packet; after 2 service times
        // there's room again.
        assert!(p.transmit(24 * MILLISECOND, 1_500, &mut r).is_some());
    }

    #[test]
    fn long_flow_throughput_matches_bottleneck() {
        let bw = 5_000_000u64;
        let mut p = Path::new(PathConfig {
            bottleneck_bps: bw,
            one_way_propagation: 10 * MILLISECOND,
            queue_capacity_bytes: 1 << 30,
            header_bytes: 0,
            ..Default::default()
        });
        let mut r = rng();
        let n = 10_000u64;
        let mut last = 0;
        for _ in 0..n {
            last = p.transmit(0, 1500, &mut r).unwrap();
        }
        let goodput = n as f64 * 1500.0 * 8.0 * SECOND as f64 / (last - 10 * MILLISECOND) as f64;
        assert!((goodput - bw as f64).abs() / (bw as f64) < 0.001, "goodput = {goodput}");
    }

    #[test]
    fn jitter_preserves_fifo() {
        let mut p = Path::new(PathConfig {
            bottleneck_bps: 1_000_000_000,
            one_way_propagation: MILLISECOND,
            jitter_max: 5 * MILLISECOND,
            header_bytes: 0,
            ..Default::default()
        });
        let mut r = rng();
        let mut prev = 0;
        for i in 0..500 {
            let d = p.transmit(i * 10_000, 100, &mut r).unwrap();
            assert!(d >= prev, "reordered: {d} < {prev}");
            prev = d;
        }
    }

    #[test]
    fn headers_count_toward_serialization() {
        let mut with = Path::new(PathConfig {
            bottleneck_bps: 1_000_000,
            one_way_propagation: 0,
            header_bytes: 40,
            ..Default::default()
        });
        let mut without = Path::new(PathConfig {
            bottleneck_bps: 1_000_000,
            one_way_propagation: 0,
            header_bytes: 0,
            ..Default::default()
        });
        let mut r = rng();
        let d_with = with.transmit(0, 1460, &mut r).unwrap();
        let d_without = without.transmit(0, 1460, &mut r).unwrap();
        assert!(d_with > d_without);
    }

    #[test]
    fn random_loss_is_counted() {
        let mut p = Path::new(PathConfig { loss: LossModel::bernoulli(0.5), ..Default::default() });
        let mut r = rng();
        let mut delivered = 0;
        for i in 0..1000 {
            if p.transmit(i * MILLISECOND, 100, &mut r).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(p.stats.offered, 1000);
        assert_eq!(p.stats.delivered, delivered);
        assert!(p.stats.lost_random > 300 && p.stats.lost_random < 700);
    }

    #[test]
    fn policer_drops_excess() {
        let mut p = Path::new(PathConfig {
            bottleneck_bps: 100_000_000,
            policer: Some((1_000_000, 3_000)),
            header_bytes: 0,
            ..Default::default()
        });
        let mut r = rng();
        let mut passed = 0;
        for _ in 0..10 {
            if p.transmit(0, 1_500, &mut r).is_some() {
                passed += 1;
            }
        }
        assert_eq!(passed, 2); // only the burst allowance
        assert_eq!(p.stats.lost_policed, 8);
    }
}

#[cfg(test)]
mod cross_traffic_tests {
    use super::*;
    use edgeperf_tcp::MILLISECOND;
    use rand::SeedableRng;

    #[test]
    fn background_utilization_slows_service() {
        let mk = |u: f64| PathConfig {
            bottleneck_bps: 8_000_000,
            one_way_propagation: 0,
            header_bytes: 0,
            background_utilization: u,
            ..Default::default()
        };
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let d_free = Path::new(mk(0.0)).transmit(0, 1_000, &mut rng).unwrap();
        let d_half = Path::new(mk(0.5)).transmit(0, 1_000, &mut rng).unwrap();
        assert_eq!(d_half, d_free * 2, "50% cross-traffic halves the service rate");
    }

    #[test]
    fn effective_rate_never_hits_zero() {
        let cfg = PathConfig { background_utilization: 0.999, ..Default::default() };
        assert!(cfg.effective_bps() >= 1);
    }

    #[test]
    fn whole_flow_sees_reduced_goodput() {
        use crate::flow::FlowSim;
        use edgeperf_tcp::{TcpConfig, SECOND};
        let run = |u: f64| {
            let mut cfg = PathConfig::ideal(10_000_000, 40 * MILLISECOND);
            cfg.background_utilization = u;
            let mut sim = FlowSim::new(TcpConfig::ns3_validation(10), cfg, 5);
            sim.schedule_write(0, 500_000);
            let res = sim.run(120 * SECOND);
            res.writes[0].t_full_ack.unwrap()
        };
        let t_free = run(0.0);
        let t_busy = run(0.6);
        assert!(
            t_busy as f64 > t_free as f64 * 1.6,
            "cross traffic must slow the transfer: {t_free} -> {t_busy}"
        );
    }
}
