//! Round-based fast TCP transfer model for fleet-scale studies.
//!
//! Simulating hundreds of thousands of sessions packet-by-packet is
//! possible but slow; the global study (§§4–6 analogues) instead uses this
//! round-granularity model: each congestion-window round of a transfer is
//! one step. The model captures exactly the effects the estimator is
//! sensitive to — slow-start doubling by bytes ACKed, bottleneck
//! serialization, per-round RTT jitter, loss-triggered window reductions,
//! RTO on tail loss, and cwnd persistence across transactions — while
//! costing O(rounds) per transaction. An ablation bench
//! (`benches/simulator.rs`) and an integration test compare its agreement
//! with the packet-level [`crate::flow::FlowSim`].

use edgeperf_tcp::time::transmission_time;
use edgeperf_tcp::{Nanos, TcpConfig};
use rand::{Rng, RngCore};
use rand_chacha::ChaCha12Rng;

/// Ground-truth condition of a path for the duration of one transfer.
///
/// The world model re-samples these per 15-minute window (diurnal
/// congestion moves `standing_queue` and `loss`).
#[derive(Debug, Clone, Copy)]
pub struct PathState {
    /// Propagation RTT (both directions, no queueing).
    pub base_rtt: Nanos,
    /// Persistent queueing delay added to every round's RTT (congestion
    /// in the backbone creates a standing queue, §3.1).
    pub standing_queue: Nanos,
    /// Max extra per-round delay, uniform in [0, jitter_max].
    pub jitter_max: Nanos,
    /// Bottleneck bandwidth, bits/second.
    pub bottleneck_bps: u64,
    /// Per-packet loss probability.
    pub loss: f64,
}

impl PathState {
    /// The RTT floor this path can exhibit (what MinRTT converges to).
    pub fn rtt_floor(&self) -> Nanos {
        self.base_rtt + self.standing_queue
    }
}

/// Result of one fast-model transfer: the same instrumentation quantities
/// the packet-level [`crate::flow::WriteRecord`] yields.
#[derive(Debug, Clone, Copy)]
pub struct FastTransfer {
    /// Response bytes.
    pub bytes: u64,
    /// cwnd (bytes) when the first byte hit the wire.
    pub wnic: u32,
    /// First byte on wire → ACK of last byte.
    pub ttotal: Nanos,
    /// First byte on wire → ACK covering the second-to-last packet
    /// (the delayed-ACK-immune measurement endpoint).
    pub ttotal_second_last: Nanos,
    /// Bytes in the final packet.
    pub last_packet_bytes: u32,
    /// Smallest RTT sampled during the transfer.
    pub min_rtt_sample: Nanos,
    /// Number of window rounds used.
    pub rounds: u32,
    /// Rounds that experienced loss.
    pub loss_rounds: u32,
}

/// Per-connection state persisted across transactions in a session.
#[derive(Debug, Clone)]
pub struct FastFlow {
    cfg: TcpConfig,
    cwnd: u32,
    ssthresh: u32,
    /// Minimum RTT seen over the connection (the kernel MinRTT analogue).
    min_rtt: Option<Nanos>,
}

impl FastFlow {
    /// Fresh connection with the configured initial window.
    pub fn new(cfg: TcpConfig) -> Self {
        FastFlow { cwnd: cfg.initial_cwnd_bytes(), ssthresh: u32::MAX, cfg, min_rtt: None }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Connection-lifetime MinRTT, if any transfer has run.
    pub fn min_rtt(&self) -> Option<Nanos> {
        self.min_rtt
    }

    /// The connection sat idle for `gap`; with `slow_start_after_idle`
    /// configured, an idle period beyond the minimum RTO collapses the
    /// window back to the initial cwnd (Linux behaviour).
    pub fn on_idle(&mut self, gap: Nanos) {
        if self.cfg.slow_start_after_idle && gap > self.cfg.min_rto {
            self.cwnd = self.cwnd.min(self.cfg.initial_cwnd_bytes());
        }
    }

    /// Transfer `bytes` over a path in condition `st`, advancing the
    /// connection's congestion state.
    pub fn transfer(&mut self, bytes: u64, st: &PathState, rng: &mut ChaCha12Rng) -> FastTransfer {
        assert!(bytes > 0);
        let mss = self.cfg.mss as u64;
        let hdr = 40u64;
        let wnic = self.cwnd;

        // Per-transfer constants, hoisted out of the round loop. The RNG
        // draw sequence below must stay bit-identical to the original
        // per-round code — determinism tests and every recorded experiment
        // depend on the stream.
        let floor = st.rtt_floor();
        let jitter_span = st.jitter_max.checked_add(1).expect("jitter_max overflows span");
        let one_minus_loss = 1.0 - st.loss;
        let lossy = st.loss > 0.0;
        // Multiplicative-decrease factor per algorithm: Reno 0.5,
        // CUBIC 0.7, BBR-lite none (model-based, loss-blind).
        let beta = match self.cfg.cc {
            edgeperf_tcp::CcAlgorithm::Reno => 0.5,
            edgeperf_tcp::CcAlgorithm::Cubic => 0.7,
            edgeperf_tcp::CcAlgorithm::BbrLite => 1.0,
        };

        let mut sent = 0u64;
        let mut t: Nanos = 0;
        let mut min_rtt = Nanos::MAX;
        let mut rounds = 0u32;
        let mut loss_rounds = 0u32;
        // Completion time of the final round (set on the last iteration).
        let mut t_done: Nanos = 0;

        while sent < bytes {
            rounds += 1;
            let chunk = (self.cwnd as u64).min(bytes - sent);
            let npkts = chunk.div_ceil(mss);
            // Uniform jitter by direct modulo: the same single `next_u64`
            // draw and value as `gen_range(0..=jitter_max)`, without the
            // generic path's u128 widening.
            let rtt = floor + if st.jitter_max > 0 { rng.next_u64() % jitter_span } else { 0 };
            min_rtt = min_rtt.min(rtt);
            let serialization = transmission_time(chunk + npkts * hdr, st.bottleneck_bps);

            // Loss-free paths skip both the powi and the draw (the draw
            // was already skipped before: `&&` short-circuited it).
            let lost = lossy && {
                let p_round_loss = 1.0 - one_minus_loss.powi(npkts as i32);
                rng.gen::<f64>() < p_round_loss
            };

            let cwnd_limited = chunk * 2 > self.cwnd as u64;
            if lost {
                loss_rounds += 1;
                let recovery = if npkts <= 3 {
                    // Too few packets for dup-ACK recovery: RTO path
                    // (even BBR restarts after a tail timeout).
                    self.ssthresh = ((self.cwnd as f64 * beta) as u32).max(2 * self.cfg.mss);
                    self.cwnd = self.cfg.mss;
                    self.cfg.min_rto.max(rtt)
                } else {
                    // Fast retransmit: one extra round, beta decrease.
                    self.ssthresh = ((self.cwnd as f64 * beta) as u32).max(2 * self.cfg.mss);
                    self.cwnd = self.ssthresh;
                    rtt
                };
                t_done = t + serialization + rtt + recovery;
                t += rtt.max(serialization) + recovery;
            } else {
                t_done = t + serialization + rtt;
                t += rtt.max(serialization);
                if cwnd_limited {
                    if self.cwnd < self.ssthresh {
                        // Byte-counted slow start, clamped at ssthresh.
                        let grown = (self.cwnd as u64 + chunk).min(self.ssthresh as u64);
                        self.cwnd = grown as u32;
                    } else {
                        // Congestion avoidance: +MSS per cwnd of ACKed data.
                        let inc = (mss * chunk / self.cwnd as u64) as u32;
                        self.cwnd = self.cwnd.saturating_add(inc);
                    }
                }
            }
            sent += chunk;
        }

        let last_packet_bytes = (((bytes - 1) % mss) + 1) as u32;
        let last_pkt_ser = transmission_time(last_packet_bytes as u64 + hdr, st.bottleneck_bps);
        let min_rtt = if min_rtt == Nanos::MAX { floor } else { min_rtt };
        self.min_rtt = Some(self.min_rtt.map_or(min_rtt, |m| m.min(min_rtt)));

        FastTransfer {
            bytes,
            wnic,
            ttotal: t_done,
            ttotal_second_last: t_done.saturating_sub(last_pkt_ser),
            last_packet_bytes,
            min_rtt_sample: min_rtt,
            rounds,
            loss_rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_tcp::{MILLISECOND, SECOND};
    use rand::SeedableRng;

    fn clean(bps: u64, rtt_ms: u64) -> PathState {
        PathState {
            base_rtt: rtt_ms * MILLISECOND,
            standing_queue: 0,
            jitter_max: 0,
            bottleneck_bps: bps,
            loss: 0.0,
        }
    }

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(9)
    }

    #[test]
    fn single_round_transfer_takes_one_rtt() {
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        let tr = f.transfer(1_000, &clean(1_000_000_000, 60), &mut rng());
        assert_eq!(tr.rounds, 1);
        assert!(tr.ttotal >= 60 * MILLISECOND && tr.ttotal < 61 * MILLISECOND);
        assert_eq!(tr.wnic, 14_600);
    }

    #[test]
    fn slow_start_round_count_matches_formula() {
        // 100 kB with IW10 (14.6 kB): rounds 14.6 + 29.2 + 58.4 → 3 rounds
        // would carry 102 kB, so expect 3 rounds.
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        let tr = f.transfer(100_000, &clean(1_000_000_000, 50), &mut rng());
        assert_eq!(tr.rounds, 3);
    }

    #[test]
    fn cwnd_persists_across_transactions() {
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        let st = clean(100_000_000, 40);
        let w0 = f.cwnd();
        f.transfer(100_000, &st, &mut rng());
        assert!(f.cwnd() > w0);
        let tr2 = f.transfer(1_000, &st, &mut rng());
        assert_eq!(tr2.wnic, f.cwnd(), "wnic reflects grown window");
    }

    #[test]
    fn app_limited_transfer_does_not_grow_cwnd() {
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        let w0 = f.cwnd();
        f.transfer(1_000, &clean(100_000_000, 40), &mut rng());
        assert_eq!(f.cwnd(), w0);
    }

    #[test]
    fn long_transfer_goodput_near_bottleneck() {
        let bw = 5_000_000u64;
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        let bytes = 3_000_000u64;
        let tr = f.transfer(bytes, &clean(bw, 40), &mut rng());
        let goodput = bytes as f64 * 8.0 * SECOND as f64 / tr.ttotal as f64;
        assert!(goodput > bw as f64 * 0.80, "goodput = {goodput}");
        assert!(goodput <= bw as f64 * 1.0, "goodput = {goodput}");
    }

    #[test]
    fn loss_slows_transfers_down() {
        let st_clean = clean(10_000_000, 50);
        let st_lossy = PathState { loss: 0.02, ..st_clean };
        let mut sum_clean = 0u128;
        let mut sum_lossy = 0u128;
        for seed in 0..50 {
            let mut r = ChaCha12Rng::seed_from_u64(seed);
            let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
            sum_clean += f.transfer(500_000, &st_clean, &mut r).ttotal as u128;
            let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
            sum_lossy += f.transfer(500_000, &st_lossy, &mut r).ttotal as u128;
        }
        assert!(sum_lossy > sum_clean * 5 / 4, "loss must cost ≥25%: {sum_lossy} vs {sum_clean}");
    }

    #[test]
    fn tail_loss_on_tiny_transfer_costs_an_rto() {
        // Force certain loss on a 2-packet transfer → RTO (≥ 200 ms).
        let st = PathState { loss: 1.0, ..clean(10_000_000, 20) };
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        let tr = f.transfer(2_000, &st, &mut rng());
        assert!(tr.ttotal >= 200 * MILLISECOND, "ttotal = {}", tr.ttotal);
        assert_eq!(tr.loss_rounds, 1);
        assert_eq!(f.cwnd(), 1460, "window collapses after RTO");
    }

    #[test]
    fn standing_queue_raises_min_rtt() {
        let st = PathState { standing_queue: 30 * MILLISECOND, ..clean(10_000_000, 40) };
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        let tr = f.transfer(10_000, &st, &mut rng());
        assert_eq!(tr.min_rtt_sample, 70 * MILLISECOND);
    }

    #[test]
    fn jitter_never_reduces_below_floor() {
        let st = PathState { jitter_max: 20 * MILLISECOND, ..clean(10_000_000, 40) };
        let mut r = rng();
        for _ in 0..100 {
            let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
            let tr = f.transfer(50_000, &st, &mut r);
            assert!(tr.min_rtt_sample >= 40 * MILLISECOND);
            assert!(tr.min_rtt_sample <= 60 * MILLISECOND);
        }
    }

    #[test]
    fn second_last_endpoint_is_earlier_by_one_serialization() {
        let st = clean(2_000_000, 50);
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        let tr = f.transfer(100_000, &st, &mut rng());
        assert!(tr.ttotal_second_last < tr.ttotal);
        let gap = tr.ttotal - tr.ttotal_second_last;
        // Gap = serialization of the final packet (+ header) at 2 Mbps.
        let expect = transmission_time(tr.last_packet_bytes as u64 + 40, 2_000_000);
        assert_eq!(gap, expect);
    }

    #[test]
    fn deterministic_per_seed() {
        let st = PathState { loss: 0.05, jitter_max: 5 * MILLISECOND, ..clean(8_000_000, 45) };
        let run = |seed| {
            let mut r = ChaCha12Rng::seed_from_u64(seed);
            let mut f = FastFlow::new(TcpConfig::default());
            f.transfer(200_000, &st, &mut r).ttotal
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn last_packet_bytes_is_exact() {
        let st = clean(10_000_000, 30);
        let mut f = FastFlow::new(TcpConfig::ns3_validation(10));
        // 3000 bytes = 1460 + 1460 + 80.
        let tr = f.transfer(3_000, &st, &mut rng());
        assert_eq!(tr.last_packet_bytes, 80);
        // Exactly 2 MSS → last packet is a full MSS.
        let tr = f.transfer(2_920, &st, &mut rng());
        assert_eq!(tr.last_packet_bytes, 1460);
    }
}

#[cfg(test)]
mod cc_tests {
    use super::*;
    use edgeperf_tcp::{CcAlgorithm, MILLISECOND};
    use rand::SeedableRng;

    fn lossy_total(cc: CcAlgorithm) -> u128 {
        let st = PathState {
            base_rtt: 50 * MILLISECOND,
            standing_queue: 0,
            jitter_max: 0,
            bottleneck_bps: 10_000_000,
            loss: 0.015,
        };
        let mut sum = 0u128;
        for seed in 0..40 {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut f = FastFlow::new(TcpConfig { cc, ..TcpConfig::default() });
            sum += f.transfer(600_000, &st, &mut rng).ttotal as u128;
        }
        sum
    }

    #[test]
    fn loss_response_ordering_matches_algorithms() {
        let reno = lossy_total(CcAlgorithm::Reno);
        let cubic = lossy_total(CcAlgorithm::Cubic);
        let bbr = lossy_total(CcAlgorithm::BbrLite);
        assert!(bbr < reno, "BBR must beat Reno under loss: {bbr} vs {reno}");
        assert!(cubic <= reno, "CUBIC must not be slower than Reno: {cubic} vs {reno}");
    }

    #[test]
    fn clean_paths_are_cc_agnostic() {
        let st = PathState {
            base_rtt: 50 * MILLISECOND,
            standing_queue: 0,
            jitter_max: 0,
            bottleneck_bps: 10_000_000,
            loss: 0.0,
        };
        let mut times = Vec::new();
        for cc in [CcAlgorithm::Reno, CcAlgorithm::Cubic, CcAlgorithm::BbrLite] {
            let mut rng = ChaCha12Rng::seed_from_u64(1);
            let mut f = FastFlow::new(TcpConfig { cc, ..TcpConfig::default() });
            times.push(f.transfer(200_000, &st, &mut rng).ttotal);
        }
        assert_eq!(times[0], times[1]);
        assert_eq!(times[1], times[2]);
    }
}
