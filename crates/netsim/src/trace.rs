//! Packet-level flow transcripts (tcpdump-style, but structured).
//!
//! Optional per-flow tracing for debugging simulations and for tests that
//! assert on wire-level behaviour: every segment send/delivery/drop and
//! every ACK arrival, with virtual-time stamps. Rendering produces a
//! compact, grep-able text transcript.

use edgeperf_tcp::Nanos;

/// One traced wire event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Sender put a segment on the path.
    Send {
        /// Virtual time.
        t: Nanos,
        /// First sequence number.
        seq: u64,
        /// Payload length.
        len: u32,
        /// Retransmission?
        retx: bool,
    },
    /// Segment reached the receiver.
    Deliver {
        /// Virtual time.
        t: Nanos,
        /// First sequence number.
        seq: u64,
    },
    /// Segment was dropped by the path.
    Drop {
        /// Virtual time.
        t: Nanos,
        /// First sequence number.
        seq: u64,
    },
    /// Cumulative ACK arrived back at the sender.
    Ack {
        /// Virtual time.
        t: Nanos,
        /// Cumulative sequence acknowledged.
        cum: u64,
    },
}

impl TraceEvent {
    /// Event timestamp.
    pub fn time(&self) -> Nanos {
        match *self {
            TraceEvent::Send { t, .. }
            | TraceEvent::Deliver { t, .. }
            | TraceEvent::Drop { t, .. }
            | TraceEvent::Ack { t, .. } => t,
        }
    }
}

/// A flow's collected events.
#[derive(Debug, Clone, Default)]
pub struct FlowTrace {
    events: Vec<TraceEvent>,
}

impl FlowTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (called by the simulator).
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events, in occurrence order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Retransmitted-segment count.
    pub fn retransmissions(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Send { retx: true, .. }))
    }

    /// Dropped-segment count.
    pub fn drops(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Drop { .. }))
    }

    /// Render a text transcript (`ms  EVENT  details`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.events.len() * 32);
        for e in &self.events {
            let ms = e.time() as f64 / 1e6;
            match *e {
                TraceEvent::Send { seq, len, retx, .. } => {
                    let _ = writeln!(
                        out,
                        "{ms:10.3}  SEND  seq={seq} len={len}{}",
                        if retx { " RETX" } else { "" }
                    );
                }
                TraceEvent::Deliver { seq, .. } => {
                    let _ = writeln!(out, "{ms:10.3}  RECV  seq={seq}");
                }
                TraceEvent::Drop { seq, .. } => {
                    let _ = writeln!(out, "{ms:10.3}  DROP  seq={seq}");
                }
                TraceEvent::Ack { cum, .. } => {
                    let _ = writeln!(out, "{ms:10.3}  ACK   cum={cum}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_counts() {
        let mut t = FlowTrace::new();
        t.push(TraceEvent::Send { t: 0, seq: 0, len: 1460, retx: false });
        t.push(TraceEvent::Drop { t: 1_000_000, seq: 0 });
        t.push(TraceEvent::Send { t: 2_000_000, seq: 0, len: 1460, retx: true });
        t.push(TraceEvent::Deliver { t: 3_000_000, seq: 0 });
        t.push(TraceEvent::Ack { t: 4_000_000, cum: 1460 });
        assert_eq!(t.events().len(), 5);
        assert_eq!(t.retransmissions(), 1);
        assert_eq!(t.drops(), 1);
    }

    #[test]
    fn renders_readable_transcript() {
        let mut t = FlowTrace::new();
        t.push(TraceEvent::Send { t: 500_000, seq: 0, len: 100, retx: false });
        t.push(TraceEvent::Ack { t: 60_500_000, cum: 100 });
        let s = t.render();
        assert!(s.contains("SEND  seq=0 len=100"));
        assert!(s.contains("ACK   cum=100"));
        assert!(s.contains("0.500"));
        assert!(s.contains("60.500"));
    }

    #[test]
    fn event_times_are_accessible() {
        let e = TraceEvent::Deliver { t: 42, seq: 7 };
        assert_eq!(e.time(), 42);
    }
}
