//! Property tests: the optimized ingestion paths (FxHash maps, last-cell
//! memo, unstable sorts, columnar shards) are observationally identical
//! to a straightforward std-`HashMap` baseline over randomized record
//! streams — including streams that defeat the memo (interleaved cells)
//! and streams split across worker shards.

use edgeperf_analysis::sink::{RecordShard, RecordSink};
use edgeperf_analysis::{ColumnarShard, ColumnarSink, Dataset, GroupKey, SessionRecord};
use edgeperf_routing::{PopId, Prefix, Relationship};
use proptest::prelude::*;
use std::collections::HashMap;

const N_WINDOWS: usize = 6;

/// Deterministic pool of group keys; index selects one.
fn group(i: u8) -> GroupKey {
    GroupKey {
        pop: PopId((i % 3) as u16),
        prefix: Prefix::new(((i / 3) as u32) << 16, 16),
        country: (i % 5) as u16,
        continent: (i % 6),
    }
}

/// Relationship as a pure function of (group, rank) so that cell
/// metadata is independent of record order and shard assignment.
fn relationship(g: u8, rank: u8) -> Relationship {
    match (g as usize + rank as usize) % 3 {
        0 => Relationship::PrivatePeer,
        1 => Relationship::PublicPeer,
        _ => Relationship::Transit,
    }
}

type RawRecord = (u8, u32, u8, f64, Option<f64>, u64);

fn materialize(raw: &[RawRecord]) -> Vec<SessionRecord> {
    raw.iter()
        .map(|&(g, w, rank, rtt, hd, bytes)| SessionRecord {
            group: group(g),
            window: w % N_WINDOWS as u32,
            route_rank: rank % 3,
            relationship: relationship(g, rank % 3),
            longer_path: (rank % 3) > 0,
            more_prepended: g % 2 == 0,
            min_rtt_ms: rtt,
            hdratio: hd,
            bytes,
        })
        .collect()
}

/// (sorted minrtt, sorted hdratio, bytes, relationship, longer, prepended).
type RefCell = (Vec<f64>, Vec<f64>, u64, Relationship, bool, bool);

/// The reference implementation: std `HashMap` (SipHash), one entry
/// lookup per record, no memo. Mirrors the original `from_records`.
#[derive(Debug, Default)]
struct RefGroup {
    cells: HashMap<(u8, u32), RefCell>,
    total_bytes: u64,
}

fn reference_ingest(records: &[SessionRecord]) -> HashMap<GroupKey, RefGroup> {
    let mut groups: HashMap<GroupKey, RefGroup> = HashMap::new();
    for r in records {
        let g = groups.entry(r.group).or_default();
        let cell = g
            .cells
            .entry((r.route_rank, r.window))
            .or_insert_with(|| (Vec::new(), Vec::new(), 0, r.relationship, false, false));
        cell.0.push(r.min_rtt_ms);
        if let Some(h) = r.hdratio {
            cell.1.push(h);
        }
        cell.2 += r.bytes;
        cell.4 |= r.longer_path;
        cell.5 |= r.more_prepended;
        g.total_bytes += r.bytes;
    }
    for g in groups.values_mut() {
        for cell in g.cells.values_mut() {
            cell.0.sort_by(f64::total_cmp);
            cell.1.sort_by(f64::total_cmp);
        }
    }
    groups
}

/// Assert a `Dataset` matches the reference bit-for-bit.
fn assert_matches_reference(ds: &Dataset, reference: &HashMap<GroupKey, RefGroup>) {
    assert_eq!(ds.groups.len(), reference.len(), "group count");
    for (key, rg) in reference {
        let g = ds.groups.get(key).unwrap_or_else(|| panic!("missing group {key:?}"));
        assert_eq!(g.total_bytes, rg.total_bytes, "total_bytes of {key:?}");
        let ds_cells: usize =
            g.ranks.iter().map(|ws| ws.iter().filter(|c| c.is_some()).count()).sum();
        assert_eq!(ds_cells, rg.cells.len(), "cell count of {key:?}");
        for (&(rank, window), expect) in &rg.cells {
            let cell = g
                .cell(rank as usize, window as usize)
                .unwrap_or_else(|| panic!("missing cell ({rank},{window}) of {key:?}"));
            let same = cell.min_rtt_ms.len() == expect.0.len()
                && cell.min_rtt_ms.iter().zip(&expect.0).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "minrtt mismatch at ({rank},{window}) of {key:?}");
            let same_hd = cell.hdratio.len() == expect.1.len()
                && cell.hdratio.iter().zip(&expect.1).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_hd, "hdratio mismatch at ({rank},{window}) of {key:?}");
            assert_eq!(cell.bytes, expect.2, "bytes at ({rank},{window})");
            assert_eq!(cell.relationship, expect.3, "relationship at ({rank},{window})");
            assert_eq!(cell.longer_path, expect.4, "longer_path at ({rank},{window})");
            assert_eq!(cell.more_prepended, expect.5, "more_prepended at ({rank},{window})");
        }
    }
}

fn raw_stream() -> impl Strategy<Value = Vec<RawRecord>> {
    prop::collection::vec(
        (
            0u8..12,
            0u32..(N_WINDOWS as u32),
            0u8..3,
            1.0f64..500.0,
            prop::option::of(0.0f64..=1.0),
            1u64..50_000,
        ),
        0..400,
    )
}

proptest! {
    /// `Dataset::from_records` (FxHash + last-cell memo) over an arbitrary
    /// record stream — duplicates, interleavings, memo-friendly runs, and
    /// memo-hostile alternations alike — equals the std-HashMap baseline.
    #[test]
    fn from_records_matches_std_hashmap_baseline(raw in raw_stream()) {
        let records = materialize(&raw);
        let reference = reference_ingest(&records);
        let ds = Dataset::from_records(&records, N_WINDOWS);
        assert_matches_reference(&ds, &reference);
    }

    /// Columnar shards assembled from an arbitrary by-group split of the
    /// stream produce the same dataset as a single `from_records` pass.
    #[test]
    fn columnar_shard_split_matches_baseline(raw in raw_stream(), n_shards in 1usize..5) {
        let records = materialize(&raw);
        let reference = reference_ingest(&records);
        // Split by group, as the runner does per-prefix: cells stay
        // disjoint across shards and the merge is zero-copy.
        let mut shards: Vec<ColumnarShard> = Vec::new();
        shards.resize_with(n_shards, ColumnarShard::default);
        for (&r, &(g, ..)) in records.iter().zip(&raw) {
            shards[g as usize % n_shards].push(r);
        }
        let mut sink = ColumnarSink::new(N_WINDOWS);
        for shard in shards {
            sink.merge_shard(shard);
        }
        sink.finalize();
        assert_matches_reference(&sink.into_dataset(), &reference);
    }

    /// A memo-hostile split (round-robin over shards, so the same cell
    /// lands in several shards) still assembles to the same dataset via
    /// the defensive cross-shard merge.
    #[test]
    fn columnar_round_robin_split_matches_baseline(raw in raw_stream(), n_shards in 2usize..4) {
        let records = materialize(&raw);
        let reference = reference_ingest(&records);
        let mut shards: Vec<ColumnarShard> = Vec::new();
        shards.resize_with(n_shards, ColumnarShard::default);
        for (i, &r) in records.iter().enumerate() {
            shards[i % n_shards].push(r);
        }
        let mut sink = ColumnarSink::new(N_WINDOWS);
        for shard in shards {
            sink.merge_shard(shard);
        }
        assert_matches_reference(&sink.into_dataset(), &reference);
    }
}
