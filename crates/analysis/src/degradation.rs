//! Per-window performance degradation vs a per-group baseline (§§3.4, 5).
//!
//! The baseline of a user group is the 10th percentile of its preferred
//! route's MinRTT_P50 across all windows (90th percentile for
//! HDratio_P50) — "how good does this group get". Each window is then
//! compared against the baseline *aggregation* (the window that attains
//! the baseline), and degradation is declared only when the CI lower
//! bound of the difference clears the threshold.

use crate::compare::{compare_medians, CompareOutcome};
use crate::config::AnalysisConfig;
use crate::dataset::GroupData;
use edgeperf_stats::quantile::quantile_unsorted;

/// Which metric a degradation/opportunity analysis runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationMetric {
    /// Median of session MinRTTs (ms); degradation = increase.
    MinRtt,
    /// Median of session HDratios; degradation = decrease.
    HdRatio,
}

/// Status of one window in a degradation or opportunity series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowStatus {
    /// The group had no traffic in the window.
    NoTraffic,
    /// Traffic, but the comparison failed the validity rules.
    Invalid,
    /// Valid comparison, no event at the threshold.
    Quiet,
    /// Valid comparison, confident event at the threshold.
    Event,
}

/// Assessment of one window.
#[derive(Debug, Clone, Copy)]
pub struct WindowAssessment {
    /// The window's status.
    pub status: WindowStatus,
    /// (diff, lo, hi) of the comparison when valid; the sign convention
    /// makes positive = worse (degradation) / better-on-alternate
    /// (opportunity).
    pub diff: Option<(f64, f64, f64)>,
    /// Traffic bytes in the window (preferred route).
    pub bytes: u64,
}

/// Assess every window of a group for degradation of `metric` at
/// `threshold` (ms for MinRTT, ratio units for HDratio).
///
/// Returns one assessment per window. Groups whose preferred route never
/// has a valid aggregation yield all-`Invalid`/`NoTraffic`.
pub fn degradation_events(
    cfg: &AnalysisConfig,
    group: &GroupData,
    metric: DegradationMetric,
    threshold: f64,
) -> Vec<WindowAssessment> {
    let n_windows = group.ranks.first().map(|w| w.len()).unwrap_or(0);
    let empty = |status| WindowAssessment { status, diff: None, bytes: 0 };

    // Candidate baseline: valid preferred-route windows and their p50s.
    let mut p50s: Vec<(usize, f64)> = Vec::new();
    for w in 0..n_windows {
        if let Some(cell) = group.cell(0, w) {
            if cell.n() >= cfg.min_samples {
                let v = match metric {
                    DegradationMetric::MinRtt => Some(cell.min_rtt_p50()),
                    DegradationMetric::HdRatio => cell.hdratio_p50(),
                };
                if let Some(v) = v {
                    p50s.push((w, v));
                }
            }
        }
    }
    if p50s.is_empty() {
        return (0..n_windows)
            .map(|w| {
                empty(if group.cell(0, w).is_some() {
                    WindowStatus::Invalid
                } else {
                    WindowStatus::NoTraffic
                })
            })
            .collect();
    }

    // Baseline value and the window attaining it.
    let values: Vec<f64> = p50s.iter().map(|&(_, v)| v).collect();
    let target = match metric {
        DegradationMetric::MinRtt => quantile_unsorted(&values, 0.10),
        DegradationMetric::HdRatio => quantile_unsorted(&values, 0.90),
    };
    let (baseline_w, _) = p50s
        .iter()
        .copied()
        .min_by(|a, b| (a.1 - target).abs().total_cmp(&(b.1 - target).abs()))
        .unwrap();
    let baseline = group.cell(0, baseline_w).expect("baseline cell");

    (0..n_windows)
        .map(|w| {
            let cell = match group.cell(0, w) {
                None => return empty(WindowStatus::NoTraffic),
                Some(c) => c,
            };
            let outcome = match metric {
                // Degradation in latency: current − baseline.
                DegradationMetric::MinRtt => compare_medians(
                    cfg,
                    &cell.min_rtt_ms,
                    &baseline.min_rtt_ms,
                    cfg.max_ci_width_minrtt_ms,
                ),
                // Degradation in goodput: baseline − current.
                DegradationMetric::HdRatio => {
                    compare_medians(cfg, &baseline.hdratio, &cell.hdratio, cfg.max_ci_width_hdratio)
                }
            };
            match outcome {
                CompareOutcome::Invalid => WindowAssessment {
                    status: WindowStatus::Invalid,
                    diff: None,
                    bytes: cell.bytes,
                },
                CompareOutcome::Valid { diff, lo, hi } => WindowAssessment {
                    status: if lo > threshold { WindowStatus::Event } else { WindowStatus::Quiet },
                    diff: Some((diff, lo, hi)),
                    bytes: cell.bytes,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::record::{GroupKey, SessionRecord};
    use edgeperf_routing::{PopId, Prefix, Relationship};

    fn records_with_rtts(per_window: &[f64]) -> Vec<SessionRecord> {
        let group = GroupKey {
            pop: PopId(0),
            prefix: Prefix::new(0x0A000000, 16),
            country: 0,
            continent: 0,
        };
        let mut out = Vec::new();
        for (w, &center) in per_window.iter().enumerate() {
            for i in 0..60 {
                out.push(SessionRecord {
                    group,
                    window: w as u32,
                    route_rank: 0,
                    relationship: Relationship::PrivatePeer,
                    longer_path: false,
                    more_prepended: false,
                    min_rtt_ms: center + (i as f64 - 30.0) * 0.05, // ±1.5 ms spread
                    hdratio: Some(1.0),
                    bytes: 1000,
                });
            }
        }
        out
    }

    fn group_of(ds: &Dataset) -> &GroupData {
        ds.groups.values().next().unwrap()
    }

    #[test]
    fn stable_group_has_no_degradation() {
        let recs = records_with_rtts(&[40.0; 10]);
        let ds = Dataset::from_records(&recs, 10);
        let cfg = AnalysisConfig::default();
        let a = degradation_events(&cfg, group_of(&ds), DegradationMetric::MinRtt, 5.0);
        assert!(a.iter().all(|x| x.status == WindowStatus::Quiet), "{a:?}");
    }

    #[test]
    fn spike_is_detected() {
        let mut rtts = vec![40.0; 10];
        rtts[6] = 70.0;
        let ds = Dataset::from_records(&records_with_rtts(&rtts), 10);
        let cfg = AnalysisConfig::default();
        let a = degradation_events(&cfg, group_of(&ds), DegradationMetric::MinRtt, 5.0);
        assert_eq!(a[6].status, WindowStatus::Event);
        assert_eq!(a[5].status, WindowStatus::Quiet);
        let (diff, lo, hi) = a[6].diff.unwrap();
        assert!((diff - 30.0).abs() < 2.0, "diff = {diff}");
        assert!(lo > 5.0 && hi > diff);
    }

    #[test]
    fn spike_below_threshold_is_quiet() {
        let mut rtts = vec![40.0; 10];
        rtts[3] = 43.0;
        let ds = Dataset::from_records(&records_with_rtts(&rtts), 10);
        let cfg = AnalysisConfig::default();
        let a = degradation_events(&cfg, group_of(&ds), DegradationMetric::MinRtt, 5.0);
        assert_eq!(a[3].status, WindowStatus::Quiet);
    }

    #[test]
    fn missing_windows_are_no_traffic() {
        let mut recs = records_with_rtts(&[40.0; 4]);
        // Remove window 2 entirely.
        recs.retain(|r| r.window != 2);
        let ds = Dataset::from_records(&recs, 4);
        let cfg = AnalysisConfig::default();
        let a = degradation_events(&cfg, group_of(&ds), DegradationMetric::MinRtt, 5.0);
        assert_eq!(a[2].status, WindowStatus::NoTraffic);
    }

    #[test]
    fn hdratio_degradation_detected() {
        let group = GroupKey {
            pop: PopId(0),
            prefix: Prefix::new(0x0A000000, 16),
            country: 0,
            continent: 0,
        };
        let mut recs = Vec::new();
        for w in 0..6u32 {
            let center: f64 = if w == 4 { 0.3 } else { 0.95 };
            for i in 0..60 {
                recs.push(SessionRecord {
                    group,
                    window: w,
                    route_rank: 0,
                    relationship: Relationship::PrivatePeer,
                    longer_path: false,
                    more_prepended: false,
                    min_rtt_ms: 40.0,
                    hdratio: Some((center + (i as f64 - 30.0) * 0.001).clamp(0.0, 1.0)),
                    bytes: 500,
                });
            }
        }
        let ds = Dataset::from_records(&recs, 6);
        let cfg = AnalysisConfig::default();
        let a = degradation_events(&cfg, group_of(&ds), DegradationMetric::HdRatio, 0.05);
        assert_eq!(a[4].status, WindowStatus::Event, "{:?}", a[4]);
        assert_eq!(a[1].status, WindowStatus::Quiet);
    }

    #[test]
    fn sparse_samples_are_invalid() {
        let group = GroupKey {
            pop: PopId(0),
            prefix: Prefix::new(0x0A000000, 16),
            country: 0,
            continent: 0,
        };
        let mut recs = records_with_rtts(&[40.0; 3]);
        // Window 3 exists but with only 5 samples.
        for i in 0..5 {
            recs.push(SessionRecord {
                group,
                window: 3,
                route_rank: 0,
                relationship: Relationship::PrivatePeer,
                longer_path: false,
                more_prepended: false,
                min_rtt_ms: 40.0 + i as f64,
                hdratio: None,
                bytes: 10,
            });
        }
        let ds = Dataset::from_records(&recs, 4);
        let cfg = AnalysisConfig::default();
        let a = degradation_events(&cfg, group_of(&ds), DegradationMetric::MinRtt, 5.0);
        assert_eq!(a[3].status, WindowStatus::Invalid);
    }
}
