//! Record sinks: where the study runner puts each measured session.
//!
//! The runner is generic over a [`RecordSink`]. Each parallel worker owns
//! a thread-local [`RecordSink::Shard`], pushes records into it as
//! sessions complete, and the runner merges finished shards back into the
//! sink at join time. Because every prefix — and therefore every
//! (group, window, route-rank) cell — is processed by exactly one worker,
//! per-cell contents are independent of how the scheduler distributed
//! prefixes across workers.
//!
//! Three implementations cover the analysis modes:
//!
//! - `Vec<SessionRecord>` — the exact path: collect every record, then
//!   build a [`crate::Dataset`]. Memory grows linearly with session count.
//! - [`crate::ColumnarSink`] — the fast exact path: workers accumulate
//!   columnar (SoA) shards that merge zero-copy at join time.
//! - [`StreamingDataset`] — the production path (§3.4.1): bounded-memory
//!   t-digest cells keyed exactly like the exact dataset's; the full
//!   record vector is never materialized.
//!
//! Tuple sinks `(A, B)` tee every record into both members, letting one
//! parallel pass feed two destinations (e.g. records + columnar dataset).
//!
//! This module is the one entry point for sinks: the traits, the
//! [`SinkStats`] summary, and every implementation ([`ColumnarSink`] and
//! [`ColumnarShard`] are re-exported here from their implementation
//! module) — import from `edgeperf_analysis::sink` rather than reaching
//! into `columnar`/`streaming` directly.

pub use crate::columnar::{ColumnarShard, ColumnarSink};

use crate::config::AnalysisConfig;
use crate::figures::{build_diff_cdfs, DiffCdfs, RelPair};
use crate::hash::FxHashMap;
use crate::record::{GroupKey, SessionRecord};
use crate::streaming::{compare_minrtt_streaming, StreamingAggregation};
use edgeperf_routing::Relationship;
use edgeperf_stats::TDigest;
use std::collections::BTreeMap;

/// Concrete summary counters every sink reports through
/// [`RecordSink::stats`] — the bridge from sink internals to metrics
/// gauges (`sink.records`, `sink.cells`, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Session records ingested.
    pub records: u64,
    /// Materialized (group, window, route-rank) cells.
    pub cells: u64,
    /// Centroids currently held across every cell digest (streaming
    /// sinks; 0 elsewhere) — the sink's bounded-memory footprint.
    pub digest_centroids: u64,
    /// Digest buffer-compression passes run (streaming sinks; 0 elsewhere).
    pub digest_compressions: u64,
}

impl SinkStats {
    /// Combine the two members of a tee. Both ingest the same record
    /// stream, so `records` is the larger of the two (not the sum);
    /// structural state (cells, digests) is disjoint per member and adds.
    pub fn tee(self, other: SinkStats) -> SinkStats {
        SinkStats {
            records: self.records.max(other.records),
            cells: self.cells + other.cells,
            digest_centroids: self.digest_centroids + other.digest_centroids,
            digest_compressions: self.digest_compressions + other.digest_compressions,
        }
    }
}

/// A per-worker accumulator of session records.
pub trait RecordShard: Send {
    /// Record one measured session.
    fn push(&mut self, record: SessionRecord);
}

/// A destination for study records, assembled from per-worker shards.
pub trait RecordSink {
    /// The thread-local accumulator handed to each worker.
    type Shard: RecordShard;

    /// The finished artifact this sink is turned into once the run ends
    /// (e.g. [`crate::Dataset`] for [`ColumnarSink`]). Sinks whose working
    /// state *is* the artifact use `Self`.
    type Snapshot;

    /// Per-impl summary type, convertible into the concrete [`SinkStats`].
    type Stats: Into<SinkStats>;

    /// Short label for metrics and log lines (`"vec"`, `"columnar"`, …).
    fn name(&self) -> &'static str {
        "sink"
    }

    /// Create an empty shard for one worker.
    fn new_shard(&self) -> Self::Shard;

    /// Fold a finished worker's shard into the sink.
    fn merge_shard(&mut self, shard: Self::Shard);

    /// Called once by the runner after every shard has been merged.
    /// Sinks with deferred state (digest insert buffers) settle it here
    /// so post-run queries borrow `&self` without hidden work.
    fn finalize(&mut self) {}

    /// Summary counters (record/cell/digest totals) for observability.
    fn stats(&self) -> Self::Stats;

    /// Consume the sink, yielding its end product.
    fn into_snapshot(self) -> Self::Snapshot
    where
        Self: Sized;
}

impl RecordShard for Vec<SessionRecord> {
    fn push(&mut self, record: SessionRecord) {
        Vec::push(self, record);
    }
}

impl RecordSink for Vec<SessionRecord> {
    type Shard = Vec<SessionRecord>;
    type Snapshot = Vec<SessionRecord>;
    type Stats = SinkStats;

    fn name(&self) -> &'static str {
        "vec"
    }

    fn new_shard(&self) -> Vec<SessionRecord> {
        Vec::new()
    }

    fn merge_shard(&mut self, shard: Vec<SessionRecord>) {
        self.extend(shard);
    }

    fn stats(&self) -> SinkStats {
        SinkStats { records: self.len() as u64, ..SinkStats::default() }
    }

    fn into_snapshot(self) -> Vec<SessionRecord> {
        self
    }
}

impl<A: RecordShard, B: RecordShard> RecordShard for (A, B) {
    fn push(&mut self, record: SessionRecord) {
        self.0.push(record);
        self.1.push(record);
    }
}

impl<A: RecordSink, B: RecordSink> RecordSink for (A, B) {
    type Shard = (A::Shard, B::Shard);
    type Snapshot = (A::Snapshot, B::Snapshot);
    type Stats = SinkStats;

    fn name(&self) -> &'static str {
        "tee"
    }

    fn new_shard(&self) -> Self::Shard {
        (self.0.new_shard(), self.1.new_shard())
    }

    fn merge_shard(&mut self, shard: Self::Shard) {
        self.0.merge_shard(shard.0);
        self.1.merge_shard(shard.1);
    }

    fn finalize(&mut self) {
        self.0.finalize();
        self.1.finalize();
    }

    fn stats(&self) -> SinkStats {
        self.0.stats().into().tee(self.1.stats().into())
    }

    fn into_snapshot(self) -> Self::Snapshot {
        (self.0.into_snapshot(), self.1.into_snapshot())
    }
}

/// Bounded-memory measurements for one (group, window, route-rank) cell —
/// the streaming analogue of [`crate::Aggregation`].
#[derive(Debug, Clone)]
pub struct StreamingCell {
    /// Metric sketches (MinRTT / HDratio digests + traffic bytes).
    pub agg: StreamingAggregation,
    /// Relationship of the route measured by this cell.
    pub relationship: Relationship,
    /// This route's AS path is longer than the preferred route's.
    pub longer_path: bool,
    /// This route is prepended more than the preferred route.
    pub more_prepended: bool,
}

impl StreamingCell {
    fn new(relationship: Relationship) -> Self {
        StreamingCell {
            agg: StreamingAggregation::new(),
            relationship,
            longer_path: false,
            more_prepended: false,
        }
    }

    fn push(&mut self, r: &SessionRecord) {
        self.agg.push(r.min_rtt_ms, r.hdratio, r.bytes);
        self.longer_path |= r.longer_path;
        self.more_prepended |= r.more_prepended;
    }

    fn merge(&mut self, other: &StreamingCell) {
        self.agg.merge(&other.agg);
        self.longer_path |= other.longer_path;
        self.more_prepended |= other.more_prepended;
    }
}

/// All streaming cells of one user group: `ranks[r][w]`, mirroring
/// [`crate::GroupData`].
#[derive(Debug, Clone, Default)]
pub struct StreamingGroupData {
    /// Per route rank (0 = preferred), per window.
    pub ranks: Vec<Vec<Option<StreamingCell>>>,
    /// Total traffic bytes across every cell (the group weight).
    pub total_bytes: u64,
}

impl StreamingGroupData {
    /// Cell for (rank, window) if present.
    pub fn cell(&self, rank: usize, window: usize) -> Option<&StreamingCell> {
        self.ranks.get(rank)?.get(window)?.as_ref()
    }
}

/// The streaming study dataset: the same (group → rank → window) cell
/// layout as [`crate::Dataset`], but each cell is a pair of t-digests
/// instead of sorted sample vectors. Memory is bounded by the number of
/// *cells*, not the number of sessions.
///
/// Groups live in a dense `Vec` addressed through an FxHash index map,
/// with a last-group memo so the consecutive same-group records the
/// runner produces skip hashing entirely.
#[derive(Debug, Clone)]
pub struct StreamingDataset {
    n_windows: usize,
    index: FxHashMap<GroupKey, u32>,
    keys: Vec<GroupKey>,
    groups: Vec<StreamingGroupData>,
    memo: Option<(GroupKey, u32)>,
}

impl StreamingDataset {
    /// Empty dataset over a fixed number of 15-minute windows.
    pub fn new(n_windows: usize) -> Self {
        StreamingDataset {
            n_windows,
            index: FxHashMap::default(),
            keys: Vec::new(),
            groups: Vec::new(),
            memo: None,
        }
    }

    /// Number of windows in the study.
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    /// Number of user groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no record has been inserted.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterate groups in insertion order (first record wins the slot).
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &StreamingGroupData)> {
        self.keys.iter().zip(self.groups.iter())
    }

    /// Data for one group, if present.
    pub fn get(&self, key: &GroupKey) -> Option<&StreamingGroupData> {
        self.index.get(key).map(|&i| &self.groups[i as usize])
    }

    /// Dense slot of `key`, allocating if new; memoized on the last key.
    fn group_slot(&mut self, key: GroupKey) -> usize {
        match self.memo {
            Some((k, i)) if k == key => i as usize,
            _ => {
                let i = *self.index.entry(key).or_insert_with(|| {
                    self.keys.push(key);
                    self.groups.push(StreamingGroupData::default());
                    (self.groups.len() - 1) as u32
                });
                self.memo = Some((key, i));
                i as usize
            }
        }
    }

    fn insert(&mut self, r: SessionRecord) {
        assert!((r.window as usize) < self.n_windows, "window {} out of range", r.window);
        assert!(r.route_rank < 8, "suspicious route rank {}", r.route_rank);
        let n_windows = self.n_windows;
        let slot = self.group_slot(r.group);
        let g = &mut self.groups[slot];
        let rank = r.route_rank as usize;
        while g.ranks.len() <= rank {
            g.ranks.push(vec![None; n_windows]);
        }
        g.ranks[rank][r.window as usize]
            .get_or_insert_with(|| StreamingCell::new(r.relationship))
            .push(&r);
        g.total_bytes += r.bytes;
    }

    /// Install a fully-built group under `key` (checkpoint restore path).
    /// The key must not be present yet; insertion order is preserved, so
    /// restoring groups in their saved order reproduces [`iter`] order.
    ///
    /// [`iter`]: StreamingDataset::iter
    pub(crate) fn insert_group(&mut self, key: GroupKey, group: StreamingGroupData) {
        let prev = self.index.insert(key, self.groups.len() as u32);
        assert!(prev.is_none(), "duplicate group in checkpoint");
        self.keys.push(key);
        self.groups.push(group);
    }

    /// Fold another dataset (typically a worker shard) into this one.
    /// Cells present on both sides merge via [`TDigest::merge`].
    pub fn merge(&mut self, other: StreamingDataset) {
        assert_eq!(self.n_windows, other.n_windows, "window-count mismatch");
        let n_windows = self.n_windows;
        for (key, g) in other.keys.into_iter().zip(other.groups) {
            let slot = self.group_slot(key);
            let dst = &mut self.groups[slot];
            dst.total_bytes += g.total_bytes;
            for (rank, windows) in g.ranks.into_iter().enumerate() {
                while dst.ranks.len() <= rank {
                    dst.ranks.push(vec![None; n_windows]);
                }
                for (w, cell) in windows.into_iter().enumerate() {
                    let Some(cell) = cell else { continue };
                    match &mut dst.ranks[rank][w] {
                        Some(existing) => existing.merge(&cell),
                        slot @ None => *slot = Some(cell),
                    }
                }
            }
        }
    }

    /// Flush every cell digest's insert buffer so subsequent queries are
    /// allocation-free. The runner calls this through
    /// [`RecordSink::finalize`].
    pub fn flush(&mut self) {
        for g in &mut self.groups {
            for ws in &mut g.ranks {
                for cell in ws.iter_mut().flatten() {
                    cell.agg.flush();
                }
            }
        }
    }

    /// Total traffic across the dataset.
    pub fn total_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.total_bytes).sum()
    }

    /// Traffic carried on preferred routes only (rank 0).
    pub fn preferred_bytes(&self) -> u64 {
        self.groups
            .iter()
            .flat_map(|g| g.ranks.first())
            .flat_map(|ws| ws.iter().flatten())
            .map(|c| c.agg.bytes())
            .sum()
    }

    /// Number of materialized (group, window, route-rank) cells.
    pub fn cell_count(&self) -> usize {
        self.groups.iter().flat_map(|g| g.ranks.iter()).map(|ws| ws.iter().flatten().count()).sum()
    }

    /// Sessions recorded across every cell.
    pub fn record_count(&self) -> usize {
        self.cells().map(|c| c.agg.n()).sum()
    }

    fn cells(&self) -> impl Iterator<Item = &StreamingCell> {
        self.groups.iter().flat_map(|g| g.ranks.iter()).flat_map(|ws| ws.iter().flatten())
    }

    /// Total centroids held across every cell digest — the dataset's
    /// memory footprint, bounded by cell count rather than session count.
    pub fn state_centroids(&self) -> usize {
        self.groups
            .iter()
            .flat_map(|g| g.ranks.iter())
            .flat_map(|ws| ws.iter().flatten())
            .map(|c| c.agg.state_centroids())
            .sum()
    }

    /// Per-session MinRTT digests over preferred-route cells: overall and
    /// per continent — the streaming analogue of
    /// [`crate::figures::fig6_minrtt`], obtained by merging rank-0 cell
    /// digests (each session contributes weight 1, as in the exact path).
    pub fn minrtt_rollup(&self) -> (TDigest, BTreeMap<u8, TDigest>) {
        self.rank0_rollup(|c| c.agg.minrtt_digest())
    }

    /// Per-session HDratio digests over preferred-route cells, overall and
    /// per continent (streaming analogue of [`crate::figures::fig6_hdratio`]).
    pub fn hdratio_rollup(&self) -> (TDigest, BTreeMap<u8, TDigest>) {
        self.rank0_rollup(|c| c.agg.hdratio_digest())
    }

    fn rank0_rollup(
        &self,
        digest: impl Fn(&StreamingCell) -> &TDigest,
    ) -> (TDigest, BTreeMap<u8, TDigest>) {
        let mut overall = TDigest::new(100.0);
        let mut per: BTreeMap<u8, TDigest> = BTreeMap::new();
        for (key, g) in self.iter() {
            for cell in g.ranks.first().into_iter().flatten().flatten() {
                let d = digest(cell);
                if d.is_empty() {
                    continue;
                }
                overall.merge(d);
                per.entry(key.continent).or_insert_with(|| TDigest::new(100.0)).merge(d);
            }
        }
        (overall, per)
    }
}

impl RecordShard for StreamingDataset {
    fn push(&mut self, record: SessionRecord) {
        self.insert(record);
    }
}

impl RecordSink for StreamingDataset {
    type Shard = StreamingDataset;
    type Snapshot = StreamingDataset;
    type Stats = SinkStats;

    fn name(&self) -> &'static str {
        "streaming"
    }

    fn new_shard(&self) -> StreamingDataset {
        StreamingDataset::new(self.n_windows)
    }

    fn merge_shard(&mut self, shard: StreamingDataset) {
        self.merge(shard);
    }

    fn finalize(&mut self) {
        self.flush();
    }

    fn stats(&self) -> SinkStats {
        SinkStats {
            records: self.record_count() as u64,
            cells: self.cell_count() as u64,
            digest_centroids: self.state_centroids() as u64,
            digest_compressions: self.cells().map(|c| c.agg.compressions()).sum(),
        }
    }

    fn into_snapshot(self) -> StreamingDataset {
        self
    }
}

/// Figure 10 on streaming cells: MinRTT_P50 difference (preferred −
/// alternate) by relationship pair, with the Price–Bonett CI read from
/// digest order statistics. Mirrors
/// [`crate::figures::fig10_by_relationship`] cell for cell.
pub fn fig10_by_relationship_streaming(
    cfg: &AnalysisConfig,
    ds: &StreamingDataset,
    pair: RelPair,
) -> Option<DiffCdfs> {
    let mut points = Vec::new();
    let mut covered = 0u64;
    for (_, g) in ds.iter() {
        let n_windows = g.ranks.first().map(|w| w.len()).unwrap_or(0);
        for w in 0..n_windows {
            let pref = match g.cell(0, w) {
                Some(c) if c.agg.n() >= cfg.min_samples => c,
                _ => continue,
            };
            let alt = (1..g.ranks.len()).filter_map(|r| g.cell(r, w)).find(|c| {
                c.agg.n() >= cfg.min_samples && pair.matches(pref.relationship, c.relationship)
            });
            let Some(alt) = alt else { continue };
            match compare_minrtt_streaming(cfg, &pref.agg, &alt.agg) {
                crate::compare::CompareOutcome::Valid { diff, lo, hi } => {
                    points.push((diff, lo, hi, pref.agg.bytes()));
                    covered += pref.agg.bytes();
                }
                crate::compare::CompareOutcome::Invalid => {}
            }
        }
    }
    build_diff_cdfs(points, covered, ds.preferred_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use edgeperf_routing::{PopId, Prefix};

    fn rec(prefix: u32, window: u32, rank: u8, rtt: f64, hdr: Option<f64>) -> SessionRecord {
        SessionRecord {
            group: GroupKey {
                pop: PopId(0),
                prefix: Prefix::new(prefix << 16, 16),
                country: (prefix % 7) as u16,
                continent: (prefix % 5) as u8,
            },
            window,
            route_rank: rank,
            relationship: if rank == 0 { Relationship::PrivatePeer } else { Relationship::Transit },
            longer_path: rank > 0,
            more_prepended: false,
            min_rtt_ms: rtt,
            hdratio: hdr,
            bytes: 100,
        }
    }

    fn synthetic(n: usize) -> Vec<SessionRecord> {
        (0..n)
            .map(|i| {
                let u = (i as f64 * 0.618_033_988_749).fract();
                rec(
                    (i % 13) as u32,
                    (i % 4) as u32,
                    (i % 2) as u8,
                    20.0 + 60.0 * u,
                    (i % 3 != 0).then_some(u),
                )
            })
            .collect()
    }

    #[test]
    fn vec_sink_collects_across_shards() {
        let mut sink: Vec<SessionRecord> = Vec::new();
        let mut s1 = sink.new_shard();
        let mut s2 = sink.new_shard();
        for (i, r) in synthetic(100).into_iter().enumerate() {
            if i % 2 == 0 {
                s1.push(r);
            } else {
                s2.push(r);
            }
        }
        sink.merge_shard(s1);
        sink.merge_shard(s2);
        sink.finalize();
        assert_eq!(sink.len(), 100);
    }

    #[test]
    fn tee_sink_feeds_both_members() {
        let mut sink: (Vec<SessionRecord>, StreamingDataset) =
            (Vec::new(), StreamingDataset::new(4));
        let mut shard = sink.new_shard();
        for r in synthetic(500) {
            shard.push(r);
        }
        sink.merge_shard(shard);
        sink.finalize();
        assert_eq!(sink.0.len(), 500);
        assert_eq!(sink.1.total_bytes(), 500 * 100);
        assert_eq!(sink.1.len(), Dataset::from_records(&sink.0, 4).groups.len());
    }

    #[test]
    fn sink_stats_report_records_cells_and_digest_state() {
        let records = synthetic(2_000);

        let mut vec_sink: Vec<SessionRecord> = Vec::new();
        let mut columnar = ColumnarSink::new(4);
        let mut stream = StreamingDataset::new(4);
        let (mut vs, mut cs, mut ss) =
            (vec_sink.new_shard(), columnar.new_shard(), stream.new_shard());
        for r in &records {
            vs.push(*r);
            cs.push(*r);
            ss.push(*r);
        }
        vec_sink.merge_shard(vs);
        columnar.merge_shard(cs);
        stream.merge_shard(ss);
        stream.finalize();

        assert_eq!(vec_sink.name(), "vec");
        assert_eq!(vec_sink.stats().records, 2_000);

        assert_eq!(columnar.name(), "columnar");
        let c = columnar.stats();
        assert_eq!(c.records, 2_000);
        assert!(c.cells > 0);

        assert_eq!(stream.name(), "streaming");
        let s = stream.stats();
        assert_eq!(s.records, 2_000);
        assert_eq!(s.cells, c.cells, "both sinks saw the same cells");
        assert!(s.digest_centroids > 0);
        assert!(s.digest_compressions > 0, "finalize flushed every digest");
    }

    #[test]
    fn tee_stats_max_records_and_add_structure() {
        let mut sink: (Vec<SessionRecord>, StreamingDataset) =
            (Vec::new(), StreamingDataset::new(4));
        let mut shard = sink.new_shard();
        for r in synthetic(300) {
            shard.push(r);
        }
        sink.merge_shard(shard);
        sink.finalize();
        assert_eq!(sink.name(), "tee");
        let stats: SinkStats = sink.stats();
        // Both members saw the same 300 records: max, not 600.
        assert_eq!(stats.records, 300);
        assert_eq!(stats.cells, sink.1.cell_count() as u64);
        let (records, ds) = sink.into_snapshot();
        assert_eq!(records.len(), 300);
        assert_eq!(ds.record_count(), 300);
    }

    #[test]
    fn streaming_dataset_mirrors_exact_dataset() {
        let records = synthetic(4_000);
        let exact = Dataset::from_records(&records, 4);
        let mut stream = StreamingDataset::new(4);
        for r in &records {
            RecordShard::push(&mut stream, *r);
        }
        stream.flush();
        assert_eq!(stream.len(), exact.groups.len());
        assert_eq!(stream.total_bytes(), exact.total_bytes());
        assert_eq!(stream.preferred_bytes(), exact.preferred_bytes());
        for (key, g) in &exact.groups {
            let sg = stream.get(key).expect("group present");
            for (rank, ws) in g.ranks.iter().enumerate() {
                for (w, cell) in ws.iter().enumerate() {
                    let Some(cell) = cell else {
                        assert!(sg.cell(rank, w).is_none());
                        continue;
                    };
                    let s = &sg.cell(rank, w).unwrap().agg;
                    assert_eq!(s.n(), cell.n());
                    assert_eq!(s.bytes(), cell.bytes);
                    assert!((s.min_rtt_p50() - cell.min_rtt_p50()).abs() < 0.5);
                    match (s.hdratio_p50(), cell.hdratio_p50()) {
                        (Some(a), Some(b)) => assert!((a - b).abs() < 0.02, "{a} vs {b}"),
                        (a, b) => assert_eq!(a.is_none(), b.is_none()),
                    }
                    // Extremes are exact, not approximate.
                    assert_eq!(s.min_rtt_quantile(0.0), cell.min_rtt_ms[0]);
                    assert_eq!(s.min_rtt_quantile(1.0), *cell.min_rtt_ms.last().unwrap());
                }
            }
        }
    }

    #[test]
    fn sharded_merge_matches_single_shard() {
        let records = synthetic(3_000);
        let mut single = StreamingDataset::new(4);
        for r in &records {
            RecordShard::push(&mut single, *r);
        }
        // Shard by prefix (as the runner does: one prefix → one worker),
        // in arbitrary worker order.
        let mut sink = StreamingDataset::new(4);
        let mut shards: Vec<StreamingDataset> = (0..3).map(|_| sink.new_shard()).collect();
        for r in &records {
            RecordShard::push(&mut shards[(r.group.prefix.base >> 16) as usize % 3], *r);
        }
        for s in shards.into_iter().rev() {
            sink.merge_shard(s);
        }
        sink.finalize();
        assert_eq!(sink.len(), single.len());
        for (key, g) in single.iter() {
            let sg = sink.get(key).expect("group present");
            for (rank, ws) in g.ranks.iter().enumerate() {
                for (w, cell) in ws.iter().enumerate() {
                    let (Some(a), Some(b)) = (cell.as_ref(), sg.cell(rank, w)) else {
                        assert!(cell.is_none() && sg.cell(rank, w).is_none());
                        continue;
                    };
                    // One prefix lands in exactly one shard, so cells are
                    // bit-identical, not merely close.
                    assert_eq!(a.agg.n(), b.agg.n());
                    assert_eq!(a.agg.min_rtt_p50().to_bits(), b.agg.min_rtt_p50().to_bits());
                }
            }
        }
    }

    #[test]
    fn merged_cells_keep_exact_extremes() {
        // The satellite t-digest fix, observed at the sink level: a cell
        // split across two compressed shards still reports the true
        // sample extremes after the join-time merge.
        let mut lo_shard = StreamingDataset::new(1);
        let mut hi_shard = StreamingDataset::new(1);
        for i in 0..2_000 {
            let r = rec(1, 0, 0, 10.0 + i as f64 * 0.1, None);
            if i < 1_000 {
                RecordShard::push(&mut lo_shard, r);
            } else {
                RecordShard::push(&mut hi_shard, r);
            }
        }
        let mut sink = StreamingDataset::new(1);
        sink.merge_shard(hi_shard);
        sink.merge_shard(lo_shard);
        let (_, g) = sink.iter().next().unwrap();
        let agg = &g.cell(0, 0).unwrap().agg;
        assert_eq!(agg.min_rtt_quantile(0.0), 10.0);
        assert_eq!(agg.min_rtt_quantile(1.0), 10.0 + 1_999.0 * 0.1);
    }

    #[test]
    fn one_million_records_bounded_state() {
        // The streaming sink must not materialize the record vector: a
        // million sessions across 64 cells leave only digest state behind,
        // orders of magnitude below one slot per record.
        let mut ds = StreamingDataset::new(4);
        for i in 0..1_000_000usize {
            let u = (i as f64 * 0.618_033_988_749).fract();
            RecordShard::push(
                &mut ds,
                rec((i % 8) as u32, (i % 4) as u32, ((i / 8) % 2) as u8, 10.0 + 90.0 * u, Some(u)),
            );
        }
        ds.flush();
        let cells = 64;
        let centroids = ds.state_centroids();
        assert!(centroids < cells * 2 * 400, "state = {centroids} centroids");
        // And the data is still queryable.
        let (overall, per) = ds.minrtt_rollup();
        assert!((overall.quantile(0.5) - 55.0).abs() < 2.0);
        assert!(!per.is_empty());
    }

    #[test]
    fn fig10_streaming_finds_peering_vs_transit() {
        // Preferred private peer at ~50 ms, transit alternate at ~45 ms,
        // 40 sessions per cell: a clean, valid comparison.
        let mut ds = StreamingDataset::new(1);
        for i in 0..40 {
            let jitter = (i as f64 - 20.0) * 0.05;
            RecordShard::push(&mut ds, rec(3, 0, 0, 50.0 + jitter, None));
            RecordShard::push(&mut ds, rec(3, 0, 1, 45.0 + jitter, None));
        }
        let cfg = AnalysisConfig::default();
        let out = fig10_by_relationship_streaming(&cfg, &ds, RelPair::PeeringVsTransit)
            .expect("valid comparison");
        assert!((out.diff.quantile(0.5) - 5.0).abs() < 1.0);
        assert!(out.traffic_covered > 0.9);
        assert!(fig10_by_relationship_streaming(&cfg, &ds, RelPair::TransitVsTransit).is_none());
    }
}
