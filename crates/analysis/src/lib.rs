//! Aggregation and comparison pipeline (paper §§3.3–3.4, 5 and 6).
//!
//! Consumes per-session measurement records (from the production-style
//! instrumentation over simulated or real traffic) and produces the
//! paper's analyses:
//!
//! - [`record`]/[`dataset`]: user groups (PoP × BGP prefix × country),
//!   15-minute windows, per-route aggregations with MinRTT_P50 and
//!   HDratio_P50.
//! - [`compare`]: statistically sound aggregation comparisons — the
//!   ≥30-sample rule and the "tight confidence interval" validity rule
//!   built on the Price–Bonett distribution-free CI for the difference of
//!   medians.
//! - [`degradation`]: per-window degradation vs a per-group baseline
//!   (p10 of MinRTT_P50 / p90 of HDratio_P50 across windows).
//! - [`opportunity`]: preferred route vs best alternate, with HDratio
//!   given priority over MinRTT.
//! - [`classify`]: temporal behaviour classes — uneventful, continuous,
//!   diurnal, episodic.
//! - [`figures`]/[`tables`]: traffic-weighted rollups reproducing the
//!   paper's Figures 6–10 and Tables 1–2.
//! - [`sink`]: the one entry point for the runner-facing [`RecordSink`]
//!   abstraction and every implementation — exact record collection into
//!   a `Vec`, the columnar fast path, or the bounded-memory
//!   [`StreamingDataset`] of per-cell t-digests (§3.4.1) — plus the
//!   [`SinkStats`] summary the observability layer exports as gauges.
//! - [`columnar`]: struct-of-arrays worker shards for the exact path,
//!   merged zero-copy into the sink at join time.
//! - [`checkpoint`]: [`PersistentSink`] — sinks that can flatten their
//!   complete state to JSON and rebuild it, the substrate of the study
//!   supervisor's checkpoint/resume.
//! - [`hash`]: the fast deterministic FxHash-style hasher behind every
//!   hot-path map.

pub mod checkpoint;
pub mod classify;
pub mod columnar;
pub mod compare;
pub mod config;
pub mod dataset;
pub mod degradation;
pub mod figures;
pub mod hash;
pub mod opportunity;
pub mod record;
pub mod segment;
pub mod sink;
pub mod streaming;
pub mod tables;

pub use checkpoint::PersistentSink;
pub use classify::{classify_group, TemporalClass};
pub use columnar::{CellKey, ColumnarShard, ColumnarSink};
pub use compare::{compare_medians, CompareOutcome};
pub use config::AnalysisConfig;
pub use dataset::{Aggregation, Dataset, GroupData};
pub use degradation::{degradation_events, DegradationMetric, WindowAssessment, WindowStatus};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use opportunity::{opportunity_events, OpportunityMetric};
pub use record::{GroupKey, SessionRecord};
pub use segment::{
    atomic_write, cell_sort_key, decode_segment, encode_segment, sort_cells, stage, staging_path,
    window_span, WindowCell, SEGMENT_MAGIC, SEGMENT_VERSION,
};
pub use sink::{
    RecordShard, RecordSink, SinkStats, StreamingCell, StreamingDataset, StreamingGroupData,
};
pub use streaming::{compare_minrtt_streaming, StreamingAggregation};
