//! Measurement records: the interface between data collection and
//! analysis.

use edgeperf_routing::{PopId, Prefix, Relationship};

/// A user group: clients likely to share fate — same serving PoP, same
/// BGP prefix (hence same route options), same country (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupKey {
    /// Serving PoP.
    pub pop: PopId,
    /// Client BGP prefix.
    pub prefix: Prefix,
    /// Client country (opaque id; the world model provides names).
    pub country: u16,
    /// Client continent (opaque id; 0..6 in the world model).
    pub continent: u8,
}

/// One sampled HTTP session's measurements, annotated with its routing.
#[derive(Debug, Clone, Copy)]
pub struct SessionRecord {
    /// The user group the session belongs to.
    pub group: GroupKey,
    /// 15-minute window index since the start of the study.
    pub window: u32,
    /// Rank of the pinned egress route (0 = policy-preferred).
    pub route_rank: u8,
    /// Relationship type of the pinned route.
    pub relationship: Relationship,
    /// The pinned route's AS path is longer than the preferred route's.
    pub longer_path: bool,
    /// The pinned route is prepended more than the preferred route.
    pub more_prepended: bool,
    /// Session MinRTT in milliseconds.
    pub min_rtt_ms: f64,
    /// Session HDratio, if any transaction could test for HD goodput.
    pub hdratio: Option<f64>,
    /// Response bytes carried (the session's traffic weight).
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_key_equality_and_hash() {
        use std::collections::HashSet;
        let k1 = GroupKey {
            pop: PopId(1),
            prefix: Prefix::new(0x0A000000, 16),
            country: 3,
            continent: 2,
        };
        let k2 = GroupKey {
            pop: PopId(1),
            prefix: Prefix::new(0x0A000000, 16),
            country: 3,
            continent: 2,
        };
        let k3 = GroupKey { pop: PopId(2), ..k1 };
        let mut set = HashSet::new();
        set.insert(k1);
        assert!(set.contains(&k2));
        assert!(!set.contains(&k3));
    }
}
