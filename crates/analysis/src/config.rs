//! Analysis parameters (§3.4 defaults).

use edgeperf_core::EdgeperfError;

/// Tunables for the comparison pipeline. Defaults are the paper's.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Confidence level for difference-of-medians CIs (α = 0.95).
    pub confidence: f64,
    /// Minimum samples per aggregation side.
    pub min_samples: usize,
    /// Max CI width for a valid MinRTT_P50 comparison (ms).
    pub max_ci_width_minrtt_ms: f64,
    /// Max CI width for a valid HDratio_P50 comparison.
    pub max_ci_width_hdratio: f64,
    /// 15-minute windows per day (96).
    pub windows_per_day: u32,
    /// A group must have traffic in at least this fraction of windows to
    /// be classified (§3.4.2).
    pub min_coverage: f64,
    /// Eventful-fraction threshold for the continuous class.
    pub continuous_fraction: f64,
    /// Days a fixed slot must be eventful for the diurnal class.
    pub diurnal_days: u32,
}

impl AnalysisConfig {
    /// Reject parameter combinations the pipeline cannot work with.
    ///
    /// Call after constructing a non-default config (e.g. from CLI flags);
    /// every limit below would otherwise surface later as a panic or a
    /// silently empty analysis.
    pub fn validate(&self) -> Result<(), EdgeperfError> {
        fn bad(field: &'static str, message: String) -> Result<(), EdgeperfError> {
            Err(EdgeperfError::InvalidConfig { field, message })
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return bad("confidence", format!("must be in (0, 1), got {}", self.confidence));
        }
        if self.min_samples < 2 {
            return bad("min_samples", format!("must be at least 2, got {}", self.min_samples));
        }
        if self.max_ci_width_minrtt_ms <= 0.0 || self.max_ci_width_minrtt_ms.is_nan() {
            return bad(
                "max_ci_width_minrtt_ms",
                format!("must be positive, got {}", self.max_ci_width_minrtt_ms),
            );
        }
        if self.max_ci_width_hdratio <= 0.0 || self.max_ci_width_hdratio.is_nan() {
            return bad(
                "max_ci_width_hdratio",
                format!("must be positive, got {}", self.max_ci_width_hdratio),
            );
        }
        if self.windows_per_day == 0 {
            return bad("windows_per_day", "must be positive, got 0".to_string());
        }
        if !(self.min_coverage > 0.0 && self.min_coverage <= 1.0) {
            return bad("min_coverage", format!("must be in (0, 1], got {}", self.min_coverage));
        }
        if !(self.continuous_fraction > 0.0 && self.continuous_fraction <= 1.0) {
            return bad(
                "continuous_fraction",
                format!("must be in (0, 1], got {}", self.continuous_fraction),
            );
        }
        if self.diurnal_days == 0 {
            return bad("diurnal_days", "must be positive, got 0".to_string());
        }
        Ok(())
    }
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            confidence: 0.95,
            min_samples: 30,
            max_ci_width_minrtt_ms: 10.0,
            max_ci_width_hdratio: 0.1,
            windows_per_day: 96,
            min_coverage: 0.6,
            continuous_fraction: 0.75,
            diurnal_days: 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AnalysisConfig::default();
        assert_eq!(c.min_samples, 30);
        assert_eq!(c.windows_per_day, 96);
        assert!((c.max_ci_width_minrtt_ms - 10.0).abs() < f64::EPSILON);
        assert!((c.max_ci_width_hdratio - 0.1).abs() < f64::EPSILON);
        assert!((c.min_coverage - 0.6).abs() < f64::EPSILON);
    }

    #[test]
    fn defaults_validate() {
        AnalysisConfig::default().validate().expect("paper defaults are valid");
    }

    #[test]
    fn out_of_range_parameters_are_rejected_with_field_context() {
        type Case = (fn(&mut AnalysisConfig), &'static str);
        let cases: Vec<Case> = vec![
            (|c| c.confidence = 1.0, "confidence"),
            (|c| c.confidence = f64::NAN, "confidence"),
            (|c| c.min_samples = 1, "min_samples"),
            (|c| c.max_ci_width_minrtt_ms = 0.0, "max_ci_width_minrtt_ms"),
            (|c| c.max_ci_width_hdratio = -0.1, "max_ci_width_hdratio"),
            (|c| c.windows_per_day = 0, "windows_per_day"),
            (|c| c.min_coverage = 0.0, "min_coverage"),
            (|c| c.continuous_fraction = 1.5, "continuous_fraction"),
            (|c| c.diurnal_days = 0, "diurnal_days"),
        ];
        for (mutate, field) in cases {
            let mut c = AnalysisConfig::default();
            mutate(&mut c);
            let err = c.validate().expect_err(field);
            match &err {
                EdgeperfError::InvalidConfig { field: f, .. } => assert_eq!(*f, field),
                other => panic!("unexpected error for {field}: {other}"),
            }
            assert!(err.to_string().contains(field), "message lacks field: {err}");
        }
    }
}
