//! Analysis parameters (§3.4 defaults).

/// Tunables for the comparison pipeline. Defaults are the paper's.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Confidence level for difference-of-medians CIs (α = 0.95).
    pub confidence: f64,
    /// Minimum samples per aggregation side.
    pub min_samples: usize,
    /// Max CI width for a valid MinRTT_P50 comparison (ms).
    pub max_ci_width_minrtt_ms: f64,
    /// Max CI width for a valid HDratio_P50 comparison.
    pub max_ci_width_hdratio: f64,
    /// 15-minute windows per day (96).
    pub windows_per_day: u32,
    /// A group must have traffic in at least this fraction of windows to
    /// be classified (§3.4.2).
    pub min_coverage: f64,
    /// Eventful-fraction threshold for the continuous class.
    pub continuous_fraction: f64,
    /// Days a fixed slot must be eventful for the diurnal class.
    pub diurnal_days: u32,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            confidence: 0.95,
            min_samples: 30,
            max_ci_width_minrtt_ms: 10.0,
            max_ci_width_hdratio: 0.1,
            windows_per_day: 96,
            min_coverage: 0.6,
            continuous_fraction: 0.75,
            diurnal_days: 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AnalysisConfig::default();
        assert_eq!(c.min_samples, 30);
        assert_eq!(c.windows_per_day, 96);
        assert!((c.max_ci_width_minrtt_ms - 10.0).abs() < f64::EPSILON);
        assert!((c.max_ci_width_hdratio - 0.1).abs() < f64::EPSILON);
        assert!((c.min_coverage - 0.6).abs() < f64::EPSILON);
    }
}
