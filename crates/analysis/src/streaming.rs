//! Production-style streaming aggregation (paper §3.4.1, footnote 11).
//!
//! Traffic-engineering systems must compare route performance in near
//! real time; they cannot buffer every session. The paper points at
//! t-digests for exactly this. This module provides a bounded-memory
//! [`StreamingAggregation`] that mirrors the exact [`crate::dataset::Aggregation`]:
//! medians come from the digest, and the Price–Bonett order statistics are
//! approximated by digest quantiles at the same ranks, giving an on-line
//! approximation of the difference-of-medians CI.
//!
//! Tests quantify the approximation against the exact pipeline.

use crate::config::AnalysisConfig;
use edgeperf_stats::dist::norm_inv_cdf;
use edgeperf_stats::{median_variance_from_order_stats, order_stat_c, TDigest};

/// Bounded-memory aggregation of one (group, window, route) cell.
#[derive(Debug, Clone)]
pub struct StreamingAggregation {
    minrtt: TDigest,
    hdratio: TDigest,
    bytes: u64,
}

impl Default for StreamingAggregation {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingAggregation {
    /// Empty aggregation (t-digest compression 100, a few kB of state).
    pub fn new() -> Self {
        StreamingAggregation { minrtt: TDigest::new(100.0), hdratio: TDigest::new(100.0), bytes: 0 }
    }

    /// Record one session's measurements.
    pub fn push(&mut self, min_rtt_ms: f64, hdratio: Option<f64>, bytes: u64) {
        self.minrtt.insert(min_rtt_ms);
        if let Some(h) = hdratio {
            self.hdratio.insert(h);
        }
        self.bytes += bytes;
    }

    /// Merge another aggregation of the same cell into this one. Built on
    /// [`TDigest::merge`], so the true sample extremes survive: after a
    /// merge, `quantile(0.0)`/`quantile(1.0)` are exactly the min/max over
    /// both inputs.
    pub fn merge(&mut self, other: &StreamingAggregation) {
        self.minrtt.merge(&other.minrtt);
        self.hdratio.merge(&other.hdratio);
        self.bytes += other.bytes;
    }

    /// Flush both digests' insert buffers so subsequent queries are
    /// allocation-free. Sinks call this once at finalize time.
    pub fn flush(&mut self) {
        self.minrtt.flush();
        self.hdratio.flush();
    }

    /// MinRTT quantile estimate (exact at q = 0 and q = 1).
    pub fn min_rtt_quantile(&self, q: f64) -> f64 {
        self.minrtt.quantile(q)
    }

    /// HDratio quantile estimate, if any session tested.
    pub fn hdratio_quantile(&self, q: f64) -> Option<f64> {
        if self.hdratio.is_empty() {
            None
        } else {
            Some(self.hdratio.quantile(q))
        }
    }

    /// The underlying MinRTT digest (for rollups that merge across cells).
    pub fn minrtt_digest(&self) -> &TDigest {
        &self.minrtt
    }

    /// The underlying HDratio digest.
    pub fn hdratio_digest(&self) -> &TDigest {
        &self.hdratio
    }

    /// Centroids currently held across both digests — the aggregation's
    /// memory footprint, which stays bounded regardless of session count.
    pub fn state_centroids(&self) -> usize {
        let hd = if self.hdratio.is_empty() { 0 } else { self.hdratio.centroid_count() };
        self.minrtt.centroid_count() + hd
    }

    /// Digest compression passes run across both digests (see
    /// [`TDigest::compressions`]).
    pub fn compressions(&self) -> u64 {
        self.minrtt.compressions() + self.hdratio.compressions()
    }

    /// Sessions recorded.
    pub fn n(&self) -> usize {
        self.minrtt.count() as usize
    }

    /// Sessions with an HDratio.
    pub fn n_tested(&self) -> usize {
        self.hdratio.count() as usize
    }

    /// Traffic weight.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Median MinRTT (ms).
    pub fn min_rtt_p50(&self) -> f64 {
        self.minrtt.quantile(0.5)
    }

    /// Median HDratio, if any session tested.
    pub fn hdratio_p50(&self) -> Option<f64> {
        if self.hdratio.is_empty() {
            None
        } else {
            Some(self.hdratio.quantile(0.5))
        }
    }

    /// Approximate Price–Bonett variance of the MinRTT median: the exact
    /// method reads order statistics `y_c` and `y_{n−c+1}`; here they are
    /// approximated by digest quantiles at ranks `c/n` and `(n−c+1)/n`.
    pub fn min_rtt_median_variance(&self) -> Option<f64> {
        median_variance(&self.minrtt)
    }

    /// Approximate variance of the HDratio median.
    pub fn hdratio_median_variance(&self) -> Option<f64> {
        median_variance(&self.hdratio)
    }

    /// Flatten into plain data for checkpointing: both digests as
    /// [`edgeperf_stats::DigestParts`] plus the byte weight. Like
    /// [`TDigest::to_parts`], the parts describe the flushed state.
    pub fn to_parts(&self) -> (edgeperf_stats::DigestParts, edgeperf_stats::DigestParts, u64) {
        (self.minrtt.to_parts(), self.hdratio.to_parts(), self.bytes)
    }

    /// Rebuild from [`to_parts`] output.
    ///
    /// [`to_parts`]: StreamingAggregation::to_parts
    pub fn from_parts(
        minrtt: edgeperf_stats::DigestParts,
        hdratio: edgeperf_stats::DigestParts,
        bytes: u64,
    ) -> Self {
        StreamingAggregation {
            minrtt: TDigest::from_parts(minrtt),
            hdratio: TDigest::from_parts(hdratio),
            bytes,
        }
    }
}

fn median_variance(d: &TDigest) -> Option<f64> {
    let n = d.count() as usize;
    if n < 5 {
        return None;
    }
    // Same ranks as the exact pipeline (edgeperf_stats::order_stat_c),
    // read from the digest instead of the sorted sample; the variance
    // inversion itself is the shared implementation in edgeperf-stats.
    let c = order_stat_c(n);
    let y_lo = d.quantile((c as f64 - 0.5) / n as f64);
    let y_hi = d.quantile((n as f64 - c as f64 + 0.5) / n as f64);
    Some(median_variance_from_order_stats(n, y_lo, y_hi))
}

/// Streaming analogue of [`crate::compare::compare_medians`] for MinRTT:
/// difference of digest medians with the approximate CI, under the same
/// validity rules.
pub fn compare_minrtt_streaming(
    cfg: &AnalysisConfig,
    a: &StreamingAggregation,
    b: &StreamingAggregation,
) -> crate::compare::CompareOutcome {
    use crate::compare::CompareOutcome;
    if a.n() < cfg.min_samples || b.n() < cfg.min_samples {
        return CompareOutcome::Invalid;
    }
    let (Some(va), Some(vb)) = (a.min_rtt_median_variance(), b.min_rtt_median_variance()) else {
        return CompareOutcome::Invalid;
    };
    let diff = a.min_rtt_p50() - b.min_rtt_p50();
    let z = norm_inv_cdf(0.5 + cfg.confidence / 2.0);
    let half = z * (va + vb).sqrt();
    if 2.0 * half >= cfg.max_ci_width_minrtt_ms {
        return CompareOutcome::Invalid;
    }
    CompareOutcome::Valid { diff, lo: diff - half, hi: diff + half }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare_medians, CompareOutcome};

    fn samples(center: f64, spread: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 * 0.618_033_988_749).fract() - 0.5;
                center + spread * u
            })
            .collect()
    }

    fn stream_of(v: &[f64]) -> StreamingAggregation {
        let mut s = StreamingAggregation::new();
        for &x in v {
            s.push(x, Some((x / 100.0).clamp(0.0, 1.0)), 100);
        }
        s
    }

    #[test]
    fn medians_match_exact_pipeline() {
        let v = samples(42.0, 12.0, 5_000);
        let s = stream_of(&v);
        let mut sorted = v.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let exact = edgeperf_stats::quantile::median_sorted(&sorted);
        assert!((s.min_rtt_p50() - exact).abs() < 0.2, "{} vs {exact}", s.min_rtt_p50());
        assert_eq!(s.n(), 5_000);
        assert_eq!(s.n_tested(), 5_000);
        assert_eq!(s.bytes(), 500_000);
    }

    #[test]
    fn streaming_ci_tracks_exact_ci() {
        let a = samples(50.0, 8.0, 400);
        let b = samples(44.0, 8.0, 400);
        let cfg = AnalysisConfig::default();
        let exact = compare_medians(
            &cfg,
            &{
                let mut v = a.clone();
                v.sort_unstable_by(f64::total_cmp);
                v
            },
            &{
                let mut v = b.clone();
                v.sort_unstable_by(f64::total_cmp);
                v
            },
            cfg.max_ci_width_minrtt_ms,
        );
        let stream = compare_minrtt_streaming(&cfg, &stream_of(&a), &stream_of(&b));
        match (exact, stream) {
            (
                CompareOutcome::Valid { diff: d1, lo: l1, hi: h1 },
                CompareOutcome::Valid { diff: d2, lo: l2, hi: h2 },
            ) => {
                assert!((d1 - d2).abs() < 0.5, "diff {d1} vs {d2}");
                assert!((l1 - l2).abs() < 1.5, "lo {l1} vs {l2}");
                assert!((h1 - h2).abs() < 1.5, "hi {h1} vs {h2}");
            }
            other => panic!("expected both valid, got {other:?}"),
        }
    }

    #[test]
    fn event_decisions_agree_with_exact() {
        // Across a range of true differences, the streaming comparison
        // should reach the same event verdict as the exact one.
        let cfg = AnalysisConfig::default();
        let mut agreements = 0;
        let mut total = 0;
        for shift in [0.0, 1.0, 3.0, 6.0, 12.0, 25.0] {
            let a = samples(40.0 + shift, 6.0, 300);
            let b = samples(40.0, 6.0, 300);
            let mut sa = a.clone();
            sa.sort_unstable_by(f64::total_cmp);
            let mut sb = b.clone();
            sb.sort_unstable_by(f64::total_cmp);
            let exact = compare_medians(&cfg, &sa, &sb, cfg.max_ci_width_minrtt_ms);
            let stream = compare_minrtt_streaming(&cfg, &stream_of(&a), &stream_of(&b));
            total += 1;
            if exact.event_at(5.0) == stream.event_at(5.0) {
                agreements += 1;
            }
        }
        assert!(agreements >= total - 1, "only {agreements}/{total} verdicts agree");
    }

    #[test]
    fn small_samples_are_invalid() {
        let cfg = AnalysisConfig::default();
        let a = samples(50.0, 5.0, 10);
        let b = samples(40.0, 5.0, 100);
        assert_eq!(
            compare_minrtt_streaming(&cfg, &stream_of(&a), &stream_of(&b)),
            CompareOutcome::Invalid
        );
    }

    #[test]
    fn memory_is_bounded() {
        // A million samples must not grow the aggregation unboundedly.
        let mut s = StreamingAggregation::new();
        for i in 0..1_000_000u64 {
            s.push(30.0 + (i % 37) as f64, Some(1.0), 1);
        }
        assert_eq!(s.n(), 1_000_000);
        // The digest holds bounded centroids; just verify quantiles work.
        let p50 = s.min_rtt_p50();
        assert!(p50 > 30.0 && p50 < 67.0);
    }
}
