//! Columnar (SoA) worker shards for the exact analysis path.
//!
//! The original exact pipeline had each worker append `SessionRecord`s to
//! a `Vec`, then rebuilt every aggregation serially after the join by
//! re-hashing all records into a map of cells. At fleet scale that is the
//! wrong shape twice over: the AoS record vector is written once and read
//! once, and the post-join rebuild is a second serial pass over data the
//! workers already had grouped.
//!
//! A [`ColumnarShard`] instead aggregates *during* the parallel pass into
//! struct-of-arrays columns. Samples append to flat per-metric logs — a
//! `Vec<u32>` of dense cell ids alongside a `Vec<f64>` of values — so the
//! steady-state cost per record is one memo equality check, two array
//! indexings, and a few unconditional pushes. The group → cell-table map
//! is only consulted when the group changes, which the runner's
//! per-prefix record order makes rare; within a group, (rank, window) →
//! cell id resolves through a dense table with no hashing at all. This
//! matters because the runner interleaves ranks record-by-record (each
//! session emits preferred + alternates back-to-back), so a cell-keyed
//! memo would miss on almost every record.
//!
//! At join time [`ColumnarSink`] takes ownership of whole shards without
//! touching their samples: the scheduler hands each prefix to exactly one
//! worker, so cells never collide across shards and the merge is a
//! `Vec::push` of the shard itself. [`ColumnarSink::into_dataset`] then
//! scatters each log into per-cell vectors preallocated at their exact
//! final length (each cell's sample count was tracked during the pass, so
//! there is no growth-doubling churn) and sorts each cell once.

use crate::dataset::{Aggregation, Dataset, GroupData};
use crate::hash::FxHashMap;
use crate::record::{GroupKey, SessionRecord};
use crate::sink::{RecordShard, RecordSink, SinkStats};
use edgeperf_routing::Relationship;

/// Identity of one (group, window, route-rank) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// User group (PoP × prefix × country).
    pub group: GroupKey,
    /// 15-minute window index.
    pub window: u32,
    /// Route rank (0 = preferred).
    pub rank: u8,
}

/// Per-cell scalar metadata, updated in place on every record.
#[derive(Debug, Clone)]
struct CellMeta {
    key: CellKey,
    relationship: Relationship,
    longer_path: bool,
    more_prepended: bool,
    bytes: u64,
    n_rtt: u32,
    n_hd: u32,
}

/// One group's dense (rank, window) → cell-id table. Entries store
/// `cell id + 1` so zero means "no cell yet"; rows grow lazily to the
/// highest window seen.
#[derive(Debug)]
struct ShardGroup {
    ranks: Vec<Vec<u32>>,
}

/// One worker's columnar accumulator: flat per-metric sample logs keyed
/// by a dense per-shard cell id, plus one metadata slot per cell.
#[derive(Debug, Default)]
pub struct ColumnarShard {
    group_index: FxHashMap<GroupKey, u32>,
    memo: Option<(GroupKey, u32)>,
    groups: Vec<ShardGroup>,
    cells: Vec<CellMeta>,
    rtt_cell: Vec<u32>,
    rtt_val: Vec<f64>,
    hd_cell: Vec<u32>,
    hd_val: Vec<f64>,
}

impl ColumnarShard {
    /// Number of distinct cells this shard has seen.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// MinRTT samples recorded (one per session).
    pub fn sample_count(&self) -> usize {
        self.rtt_val.len()
    }
}

impl RecordShard for ColumnarShard {
    fn push(&mut self, r: SessionRecord) {
        assert!(r.route_rank < 8, "suspicious route rank {}", r.route_rank);
        let gi = match self.memo {
            Some((k, i)) if k == r.group => i as usize,
            _ => {
                let i = *self.group_index.entry(r.group).or_insert_with(|| {
                    self.groups.push(ShardGroup { ranks: Vec::new() });
                    (self.groups.len() - 1) as u32
                });
                self.memo = Some((r.group, i));
                i as usize
            }
        };
        let (rank, window) = (r.route_rank as usize, r.window as usize);
        let ranks = &mut self.groups[gi].ranks;
        if ranks.len() <= rank {
            ranks.resize_with(rank + 1, Vec::new);
        }
        let row = &mut ranks[rank];
        if row.len() <= window {
            row.resize(window + 1, 0);
        }
        let ci = match row[window] {
            0 => {
                let id = self.cells.len() as u32;
                self.cells.push(CellMeta {
                    key: CellKey { group: r.group, window: r.window, rank: r.route_rank },
                    relationship: r.relationship,
                    longer_path: false,
                    more_prepended: false,
                    bytes: 0,
                    n_rtt: 0,
                    n_hd: 0,
                });
                row[window] = id + 1;
                id as usize
            }
            id_plus_1 => (id_plus_1 - 1) as usize,
        };
        let cell = &mut self.cells[ci];
        cell.bytes += r.bytes;
        cell.longer_path |= r.longer_path;
        cell.more_prepended |= r.more_prepended;
        cell.n_rtt += 1;
        self.rtt_cell.push(ci as u32);
        self.rtt_val.push(r.min_rtt_ms);
        if let Some(h) = r.hdratio {
            cell.n_hd += 1;
            self.hd_cell.push(ci as u32);
            self.hd_val.push(h);
        }
    }
}

/// Exact-path sink that keeps worker shards whole until the study ends.
#[derive(Debug, Default)]
pub struct ColumnarSink {
    n_windows: usize,
    shards: Vec<ColumnarShard>,
}

impl ColumnarSink {
    /// Empty sink over a fixed number of 15-minute windows.
    pub fn new(n_windows: usize) -> Self {
        ColumnarSink { n_windows, shards: Vec::new() }
    }

    /// Distinct cells across all shards (the peak cell count of the run,
    /// since the scheduler never sends one cell to two workers).
    pub fn cell_count(&self) -> usize {
        self.shards.iter().map(ColumnarShard::cell_count).sum()
    }

    /// Assemble the exact [`Dataset`]. Each shard's sample logs scatter
    /// once into per-cell vectors preallocated at their exact final
    /// length, then each cell is sorted once.
    pub fn into_dataset(self) -> Dataset {
        let n_windows = self.n_windows;
        let mut index: FxHashMap<GroupKey, u32> = FxHashMap::default();
        let mut slots: Vec<(GroupKey, GroupData)> = Vec::new();
        let mut memo: Option<(GroupKey, u32)> = None;
        for shard in self.shards {
            let ColumnarShard { cells, rtt_cell, rtt_val, hd_cell, hd_val, .. } = shard;
            let mut min_rtt: Vec<Vec<f64>> =
                cells.iter().map(|c| Vec::with_capacity(c.n_rtt as usize)).collect();
            for (&ci, &v) in rtt_cell.iter().zip(&rtt_val) {
                min_rtt[ci as usize].push(v);
            }
            let mut hdratio: Vec<Vec<f64>> =
                cells.iter().map(|c| Vec::with_capacity(c.n_hd as usize)).collect();
            for (&ci, &v) in hd_cell.iter().zip(&hd_val) {
                hdratio[ci as usize].push(v);
            }
            for (ci, meta) in cells.into_iter().enumerate() {
                let key = meta.key;
                assert!((key.window as usize) < n_windows, "window {} out of range", key.window);
                let mut mr = std::mem::take(&mut min_rtt[ci]);
                let mut hd = std::mem::take(&mut hdratio[ci]);
                mr.sort_unstable_by(f64::total_cmp);
                hd.sort_unstable_by(f64::total_cmp);
                let gi = match memo {
                    Some((k, i)) if k == key.group => i,
                    _ => {
                        let i = *index.entry(key.group).or_insert_with(|| {
                            slots.push((key.group, GroupData::default()));
                            (slots.len() - 1) as u32
                        });
                        memo = Some((key.group, i));
                        i
                    }
                };
                let g = &mut slots[gi as usize].1;
                let rank = key.rank as usize;
                while g.ranks.len() <= rank {
                    g.ranks.push(vec![None; n_windows]);
                }
                g.total_bytes += meta.bytes;
                match &mut g.ranks[rank][key.window as usize] {
                    Some(cell) => {
                        // Two shards produced the same cell — impossible
                        // from the study runner, but merge defensively so
                        // hand-built shard splits stay correct.
                        cell.min_rtt_ms.extend_from_slice(&mr);
                        cell.hdratio.extend_from_slice(&hd);
                        cell.min_rtt_ms.sort_unstable_by(f64::total_cmp);
                        cell.hdratio.sort_unstable_by(f64::total_cmp);
                        cell.bytes += meta.bytes;
                        cell.longer_path |= meta.longer_path;
                        cell.more_prepended |= meta.more_prepended;
                    }
                    slot @ None => {
                        let mut cell = Aggregation::new(meta.relationship);
                        cell.min_rtt_ms = mr;
                        cell.hdratio = hd;
                        cell.bytes = meta.bytes;
                        cell.longer_path = meta.longer_path;
                        cell.more_prepended = meta.more_prepended;
                        *slot = Some(cell);
                    }
                }
            }
        }
        Dataset { n_windows, groups: slots.into_iter().collect() }
    }
}

impl RecordSink for ColumnarSink {
    type Shard = ColumnarShard;
    type Snapshot = Dataset;
    type Stats = SinkStats;

    fn name(&self) -> &'static str {
        "columnar"
    }

    fn new_shard(&self) -> ColumnarShard {
        ColumnarShard::default()
    }

    fn merge_shard(&mut self, shard: ColumnarShard) {
        // Zero-copy: adopt the shard whole; samples stay where the worker
        // wrote them until `into_dataset` moves each column into its cell.
        self.shards.push(shard);
    }

    fn stats(&self) -> SinkStats {
        SinkStats {
            records: self.shards.iter().map(|s| s.sample_count() as u64).sum(),
            cells: self.cell_count() as u64,
            ..SinkStats::default()
        }
    }

    fn into_snapshot(self) -> Dataset {
        self.into_dataset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_routing::{PopId, Prefix};

    fn rec(prefix: u32, window: u32, rank: u8, rtt: f64, hdr: Option<f64>) -> SessionRecord {
        SessionRecord {
            group: GroupKey {
                pop: PopId((prefix % 3) as u16),
                prefix: Prefix::new(prefix << 16, 16),
                country: (prefix % 7) as u16,
                continent: (prefix % 5) as u8,
            },
            window,
            route_rank: rank,
            relationship: if rank == 0 { Relationship::PrivatePeer } else { Relationship::Transit },
            longer_path: rank > 0,
            more_prepended: prefix.is_multiple_of(11),
            min_rtt_ms: rtt,
            hdratio: hdr,
            bytes: 50 + u64::from(prefix),
        }
    }

    fn synthetic(n: usize) -> Vec<SessionRecord> {
        (0..n)
            .map(|i| {
                let u = (i as f64 * 0.618_033_988_749).fract();
                rec(
                    (i % 13) as u32,
                    (i % 4) as u32,
                    (i % 2) as u8,
                    20.0 + 60.0 * u,
                    (i % 3 != 0).then_some(u),
                )
            })
            .collect()
    }

    /// Cell-by-cell bit equality of two datasets.
    fn assert_identical(a: &Dataset, b: &Dataset) {
        assert_eq!(a.n_windows, b.n_windows);
        assert_eq!(a.groups.len(), b.groups.len());
        for (key, ga) in &a.groups {
            let gb = b.groups.get(key).expect("group present in both");
            assert_eq!(ga.total_bytes, gb.total_bytes);
            assert_eq!(ga.ranks.len(), gb.ranks.len());
            for (rank, ws) in ga.ranks.iter().enumerate() {
                for (w, ca) in ws.iter().enumerate() {
                    let cb = &gb.ranks[rank][w];
                    match (ca, cb) {
                        (Some(x), Some(y)) => {
                            let bits =
                                |v: &[f64]| v.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
                            assert_eq!(bits(&x.min_rtt_ms), bits(&y.min_rtt_ms));
                            assert_eq!(bits(&x.hdratio), bits(&y.hdratio));
                            assert_eq!(x.bytes, y.bytes);
                            assert_eq!(x.relationship, y.relationship);
                            assert_eq!(x.longer_path, y.longer_path);
                            assert_eq!(x.more_prepended, y.more_prepended);
                        }
                        (None, None) => {}
                        other => panic!("cell presence differs at rank {rank} w {w}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_matches_from_records() {
        let records = synthetic(5_000);
        let mut sink = ColumnarSink::new(4);
        let mut shard = sink.new_shard();
        for r in &records {
            shard.push(*r);
        }
        sink.merge_shard(shard);
        assert_eq!(sink.cell_count(), Dataset::from_records(&records, 4).cell_count());
        assert_identical(&sink.into_dataset(), &Dataset::from_records(&records, 4));
    }

    #[test]
    fn prefix_split_shards_match_from_records() {
        // Split records by prefix across 4 shards merged in reverse order
        // — the runner's contract (one prefix → one worker, any order).
        let records = synthetic(5_000);
        let mut sink = ColumnarSink::new(4);
        let mut shards: Vec<ColumnarShard> = (0..4).map(|_| sink.new_shard()).collect();
        for r in &records {
            shards[(r.group.prefix.base >> 16) as usize % 4].push(*r);
        }
        for s in shards.into_iter().rev() {
            sink.merge_shard(s);
        }
        assert_identical(&sink.into_dataset(), &Dataset::from_records(&records, 4));
    }

    #[test]
    fn cross_shard_cell_collision_merges() {
        // Not produced by the runner, but the merge must stay correct if a
        // cell's records land in two shards: samples union, flags OR.
        let records = synthetic(2_000);
        let mut sink = ColumnarSink::new(4);
        let mut a = sink.new_shard();
        let mut b = sink.new_shard();
        for (i, r) in records.iter().enumerate() {
            if i % 2 == 0 {
                a.push(*r);
            } else {
                b.push(*r);
            }
        }
        sink.merge_shard(b);
        sink.merge_shard(a);
        let ds = sink.into_dataset();
        // Relationship is keyed to rank in `rec`, so first-wins across
        // shards cannot differ here; everything else must be exact.
        assert_identical(&ds, &Dataset::from_records(&records, 4));
    }

    #[test]
    fn memo_handles_interleaved_cells() {
        // Alternating cells defeat the memo every push; correctness must
        // not depend on the memo hitting.
        let mut records = Vec::new();
        for i in 0..500 {
            records.push(rec(1, 0, 0, 30.0 + i as f64, None));
            records.push(rec(2, 3, 1, 60.0 + i as f64, Some(0.5)));
        }
        let mut sink = ColumnarSink::new(4);
        let mut shard = sink.new_shard();
        for r in &records {
            shard.push(*r);
        }
        assert_eq!(shard.cell_count(), 2);
        assert_eq!(shard.sample_count(), 1_000);
        sink.merge_shard(shard);
        assert_identical(&sink.into_dataset(), &Dataset::from_records(&records, 4));
    }

    #[test]
    #[should_panic]
    fn window_out_of_range_panics_at_assembly() {
        let mut sink = ColumnarSink::new(1);
        let mut shard = sink.new_shard();
        shard.push(rec(1, 3, 0, 30.0, None));
        sink.merge_shard(shard);
        let _ = sink.into_dataset();
    }
}
