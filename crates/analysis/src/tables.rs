//! Table builders: the paper's Table 1 (temporal behaviour classes ×
//! thresholds × continents) and Table 2 (opportunity by relationship
//! type of preferred and alternate routes).

use crate::classify::{classify_group, TemporalClass};
use crate::config::AnalysisConfig;
use crate::dataset::Dataset;
use crate::degradation::{degradation_events, DegradationMetric, WindowStatus};
use crate::opportunity::opportunity_events;
use edgeperf_routing::Relationship;
use std::collections::BTreeMap;

/// Which analysis a Table-1 column describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisKind {
    /// Degradation vs baseline (§5).
    Degradation,
    /// Opportunity vs best alternate (§6).
    Opportunity,
}

/// One Table-1 cell: traffic shares for a (class, continent) bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Share {
    /// Fraction of traffic on groups assigned to this class
    /// (the paper's blue column).
    pub group_share: f64,
    /// Fraction of traffic sent *during* eventful windows
    /// (the orange column).
    pub event_share: f64,
}

/// Table 1 for one metric/threshold: shares per class, overall and per
/// continent.
#[derive(Debug, Clone, Default)]
pub struct Table1 {
    /// Overall shares per class (normalized by total traffic).
    pub overall: BTreeMap<TemporalClass, Share>,
    /// Per-continent shares (normalized by the continent's traffic).
    pub per_continent: BTreeMap<(TemporalClass, u8), Share>,
}

/// Compute Table 1 for a metric at a threshold.
pub fn table1(
    cfg: &AnalysisConfig,
    ds: &Dataset,
    kind: AnalysisKind,
    metric: DegradationMetric,
    threshold: f64,
) -> Table1 {
    let mut class_bytes: BTreeMap<TemporalClass, u64> = BTreeMap::new();
    let mut event_bytes: BTreeMap<TemporalClass, u64> = BTreeMap::new();
    let mut cont_bytes: BTreeMap<(TemporalClass, u8), u64> = BTreeMap::new();
    let mut cont_event: BTreeMap<(TemporalClass, u8), u64> = BTreeMap::new();
    let mut cont_total: BTreeMap<u8, u64> = BTreeMap::new();
    let mut total = 0u64;

    for (key, g) in &ds.groups {
        let (statuses, bytes_per_window): (Vec<WindowStatus>, Vec<u64>) = match kind {
            AnalysisKind::Degradation => {
                let a = degradation_events(cfg, g, metric, threshold);
                (a.iter().map(|x| x.status).collect(), a.iter().map(|x| x.bytes).collect())
            }
            AnalysisKind::Opportunity => {
                let a = opportunity_events(cfg, g, metric, threshold);
                (a.iter().map(|x| x.status).collect(), a.iter().map(|x| x.bytes).collect())
            }
        };
        let class = classify_group(cfg, &statuses);
        let gbytes = g.total_bytes;
        let ebytes: u64 = statuses
            .iter()
            .zip(&bytes_per_window)
            .filter(|(s, _)| **s == WindowStatus::Event)
            .map(|(_, b)| *b)
            .sum();

        total += gbytes;
        *class_bytes.entry(class).or_default() += gbytes;
        *event_bytes.entry(class).or_default() += ebytes;
        *cont_bytes.entry((class, key.continent)).or_default() += gbytes;
        *cont_event.entry((class, key.continent)).or_default() += ebytes;
        *cont_total.entry(key.continent).or_default() += gbytes;
    }

    let mut t = Table1::default();
    for (class, b) in &class_bytes {
        t.overall.insert(
            *class,
            Share {
                group_share: *b as f64 / total.max(1) as f64,
                event_share: event_bytes[class] as f64 / total.max(1) as f64,
            },
        );
    }
    for ((class, cont), b) in &cont_bytes {
        let ct = cont_total[cont].max(1) as f64;
        t.per_continent.insert(
            (*class, *cont),
            Share {
                group_share: *b as f64 / ct,
                event_share: cont_event[&(*class, *cont)] as f64 / ct,
            },
        );
    }
    t
}

/// One Table-2 row: opportunity traffic for a (preferred, alternate)
/// relationship pair.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Table2Row {
    /// Fraction of total traffic with opportunity on this pair.
    pub absolute: f64,
    /// Fraction of all opportunity on this pair (sums to 1).
    pub relative: f64,
    /// Of this pair's opportunity, fraction where the alternate's AS
    /// path was longer than the preferred route's.
    pub longer: f64,
    /// Of this pair's opportunity, fraction where the alternate was
    /// prepended more.
    pub prepended: f64,
}

/// Table 2: opportunity broken down by relationship pair.
pub fn table2(
    cfg: &AnalysisConfig,
    ds: &Dataset,
    metric: DegradationMetric,
    threshold: f64,
) -> BTreeMap<(Relationship, Relationship), Table2Row> {
    let mut opp_bytes: BTreeMap<(Relationship, Relationship), u64> = BTreeMap::new();
    let mut longer_bytes: BTreeMap<(Relationship, Relationship), u64> = BTreeMap::new();
    let mut prepended_bytes: BTreeMap<(Relationship, Relationship), u64> = BTreeMap::new();
    let mut total = 0u64;
    let mut total_opp = 0u64;

    for g in ds.groups.values() {
        total += g.total_bytes;
        for a in opportunity_events(cfg, g, metric, threshold) {
            if a.status != WindowStatus::Event {
                continue;
            }
            let key = (a.pref_relationship.unwrap(), a.alt_relationship.unwrap());
            *opp_bytes.entry(key).or_default() += a.bytes;
            if a.alt_longer {
                *longer_bytes.entry(key).or_default() += a.bytes;
            }
            if a.alt_prepended {
                *prepended_bytes.entry(key).or_default() += a.bytes;
            }
            total_opp += a.bytes;
        }
    }

    opp_bytes
        .iter()
        .map(|(&key, &b)| {
            (
                key,
                Table2Row {
                    absolute: b as f64 / total.max(1) as f64,
                    relative: b as f64 / total_opp.max(1) as f64,
                    longer: longer_bytes.get(&key).copied().unwrap_or(0) as f64 / b.max(1) as f64,
                    prepended: prepended_bytes.get(&key).copied().unwrap_or(0) as f64
                        / b.max(1) as f64,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GroupKey, SessionRecord};
    use edgeperf_routing::{PopId, Prefix};

    /// One group with a persistent 20 ms opportunity, another stable.
    fn dataset() -> Dataset {
        let mut records = Vec::new();
        for (gidx, alt_rtt) in [(0u32, 40.0f64), (1, 60.0)] {
            let group = GroupKey {
                pop: PopId(0),
                prefix: Prefix::new(gidx << 24, 16),
                country: gidx as u16,
                continent: gidx as u8,
            };
            for w in 0..10u32 {
                for (rank, rtt, rel) in
                    [(0u8, 60.0, Relationship::PublicPeer), (1u8, alt_rtt, Relationship::Transit)]
                {
                    for i in 0..40 {
                        records.push(SessionRecord {
                            group,
                            window: w,
                            route_rank: rank,
                            relationship: rel,
                            longer_path: rank == 1,
                            more_prepended: rank == 1 && gidx == 0,
                            min_rtt_ms: rtt + (i as f64 - 20.0) * 0.05,
                            hdratio: Some(0.9),
                            bytes: 100,
                        });
                    }
                }
            }
        }
        Dataset::from_records(&records, 10)
    }

    fn cfg() -> AnalysisConfig {
        AnalysisConfig { windows_per_day: 2, ..Default::default() }
    }

    #[test]
    fn table1_splits_classes_by_continent() {
        let ds = dataset();
        let t = table1(&cfg(), &ds, AnalysisKind::Opportunity, DegradationMetric::MinRtt, 5.0);
        // Group 0 (continent 0) has continuous opportunity; group 1 none.
        let cont = t.per_continent.get(&(TemporalClass::Continuous, 0)).unwrap();
        assert!((cont.group_share - 1.0).abs() < 1e-9);
        let unev = t.per_continent.get(&(TemporalClass::Uneventful, 1)).unwrap();
        assert!((unev.group_share - 1.0).abs() < 1e-9);
        // Overall: both groups have equal traffic.
        assert!((t.overall[&TemporalClass::Continuous].group_share - 0.5).abs() < 1e-9);
        // Events cover only rank-0 bytes of group 0 (half its traffic).
        assert!(t.overall[&TemporalClass::Continuous].event_share > 0.2);
    }

    #[test]
    fn table1_degradation_on_stable_data_is_uneventful() {
        let ds = dataset();
        let t = table1(&cfg(), &ds, AnalysisKind::Degradation, DegradationMetric::MinRtt, 5.0);
        assert!((t.overall[&TemporalClass::Uneventful].group_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_attributes_opportunity_to_pair() {
        let ds = dataset();
        let t = table2(&cfg(), &ds, DegradationMetric::MinRtt, 5.0);
        assert_eq!(t.len(), 1);
        let row = t[&(Relationship::PublicPeer, Relationship::Transit)];
        assert!(row.absolute > 0.0 && row.absolute < 0.5);
        assert!((row.relative - 1.0).abs() < 1e-9);
        assert!((row.longer - 1.0).abs() < 1e-9);
        assert!((row.prepended - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_empty_when_no_opportunity() {
        let mut records = Vec::new();
        let group =
            GroupKey { pop: PopId(0), prefix: Prefix::new(0, 16), country: 0, continent: 0 };
        for w in 0..4u32 {
            for rank in 0..2u8 {
                for i in 0..40 {
                    records.push(SessionRecord {
                        group,
                        window: w,
                        route_rank: rank,
                        relationship: Relationship::Transit,
                        longer_path: false,
                        more_prepended: false,
                        min_rtt_ms: 50.0 + (i as f64 - 20.0) * 0.05,
                        hdratio: Some(0.9),
                        bytes: 100,
                    });
                }
            }
        }
        let ds = Dataset::from_records(&records, 4);
        assert!(table2(&cfg(), &ds, DegradationMetric::MinRtt, 5.0).is_empty());
    }
}
