//! Temporal behaviour classification (§3.4.2).
//!
//! Given a per-window event series (degradation or opportunity), a user
//! group is classified, checking in order:
//!
//! 1. **Ignored** — traffic in fewer than 60% of windows (no
//!    representative view).
//! 2. **Uneventful** — no valid window has an event.
//! 3. **Continuous** — events in ≥ 75% of valid windows.
//! 4. **Diurnal** — some fixed 15-minute slot is eventful on ≥ 5 days.
//! 5. **Episodic** — everything else.

use crate::config::AnalysisConfig;
use crate::degradation::WindowStatus;

/// The paper's temporal behaviour classes (plus the ignored bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TemporalClass {
    /// Insufficient coverage to classify.
    Ignored,
    /// No eventful valid window.
    Uneventful,
    /// Eventful in at least 75% of valid windows ("continuous" /
    /// "persistent" in the paper).
    Continuous,
    /// A fixed time-of-day slot eventful on ≥ 5 days.
    Diurnal,
    /// Some events, no clear pattern.
    Episodic,
}

impl TemporalClass {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            TemporalClass::Ignored => "ignored",
            TemporalClass::Uneventful => "uneventful",
            TemporalClass::Continuous => "continuous",
            TemporalClass::Diurnal => "diurnal",
            TemporalClass::Episodic => "episodic",
        }
    }
}

/// Classify a group's event series.
pub fn classify_group(cfg: &AnalysisConfig, statuses: &[WindowStatus]) -> TemporalClass {
    let n = statuses.len();
    if n == 0 {
        return TemporalClass::Ignored;
    }
    let covered = statuses.iter().filter(|s| **s != WindowStatus::NoTraffic).count();
    if (covered as f64) < cfg.min_coverage * n as f64 {
        return TemporalClass::Ignored;
    }
    let valid: Vec<bool> = statuses
        .iter()
        .filter(|s| matches!(s, WindowStatus::Quiet | WindowStatus::Event))
        .map(|s| *s == WindowStatus::Event)
        .collect();
    let events = valid.iter().filter(|&&e| e).count();
    if events == 0 {
        return TemporalClass::Uneventful;
    }
    if !valid.is_empty() && events as f64 >= cfg.continuous_fraction * valid.len() as f64 {
        return TemporalClass::Continuous;
    }
    // Diurnal: same slot-of-day eventful on ≥ diurnal_days distinct days.
    let wpd = cfg.windows_per_day as usize;
    let days = n.div_ceil(wpd);
    if days >= cfg.diurnal_days as usize {
        for slot in 0..wpd {
            let mut eventful_days = 0;
            for day in 0..days {
                let idx = day * wpd + slot;
                if idx < n && statuses[idx] == WindowStatus::Event {
                    eventful_days += 1;
                }
            }
            if eventful_days >= cfg.diurnal_days {
                return TemporalClass::Diurnal;
            }
        }
    }
    TemporalClass::Episodic
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AnalysisConfig {
        // 4 windows/day for compact tests; diurnal needs 5 days.
        AnalysisConfig { windows_per_day: 4, ..Default::default() }
    }

    fn series(pattern: &[(WindowStatus, usize)]) -> Vec<WindowStatus> {
        pattern.iter().flat_map(|&(s, n)| std::iter::repeat_n(s, n)).collect()
    }

    use WindowStatus::*;

    #[test]
    fn sparse_coverage_is_ignored() {
        let s = series(&[(Quiet, 10), (NoTraffic, 30)]);
        assert_eq!(classify_group(&cfg(), &s), TemporalClass::Ignored);
    }

    #[test]
    fn all_quiet_is_uneventful() {
        let s = series(&[(Quiet, 40)]);
        assert_eq!(classify_group(&cfg(), &s), TemporalClass::Uneventful);
    }

    #[test]
    fn invalid_windows_dont_make_events() {
        let s = series(&[(Quiet, 30), (Invalid, 10)]);
        assert_eq!(classify_group(&cfg(), &s), TemporalClass::Uneventful);
    }

    #[test]
    fn mostly_eventful_is_continuous() {
        let s = series(&[(Event, 32), (Quiet, 8)]);
        assert_eq!(classify_group(&cfg(), &s), TemporalClass::Continuous);
    }

    #[test]
    fn diurnal_pattern_detected() {
        // 10 days × 4 windows; slot 2 eventful every day.
        let mut s = Vec::new();
        for _day in 0..10 {
            s.extend_from_slice(&[Quiet, Quiet, Event, Quiet]);
        }
        assert_eq!(classify_group(&cfg(), &s), TemporalClass::Diurnal);
    }

    #[test]
    fn diurnal_needs_five_days() {
        // Slot 2 eventful on only 4 of 10 days → episodic.
        let mut s = Vec::new();
        for day in 0..10 {
            if day < 4 {
                s.extend_from_slice(&[Quiet, Quiet, Event, Quiet]);
            } else {
                s.extend_from_slice(&[Quiet, Quiet, Quiet, Quiet]);
            }
        }
        assert_eq!(classify_group(&cfg(), &s), TemporalClass::Episodic);
    }

    #[test]
    fn scattered_events_are_episodic() {
        // Events at varying slots on different days, ~20% of windows.
        let mut s = vec![Quiet; 40];
        for (day, slot) in [(0, 1), (2, 3), (4, 0), (6, 2), (8, 1)] {
            s[day * 4 + slot] = Event;
        }
        assert_eq!(classify_group(&cfg(), &s), TemporalClass::Episodic);
    }

    #[test]
    fn empty_series_is_ignored() {
        assert_eq!(classify_group(&cfg(), &[]), TemporalClass::Ignored);
    }

    #[test]
    fn continuous_checked_before_diurnal() {
        // Eventful everywhere also matches diurnal; continuous must win.
        let mut s = Vec::new();
        for _ in 0..10 {
            s.extend_from_slice(&[Event, Event, Event, Event]);
        }
        assert_eq!(classify_group(&cfg(), &s), TemporalClass::Continuous);
    }
}
