//! Columnar on-disk segment codec for the tiered window store, plus the
//! atomic-write discipline every durable artifact in the tree shares.
//!
//! A *segment* is the unit the live tier spills closed windows into: a
//! flat run of [`WindowCell`] rows — one per (window, group, route-rank)
//! cell, exactly the plain-data summary a closed live window carries —
//! encoded column-major like [`crate::columnar::ColumnarShard`] keeps its
//! in-memory cells (all windows, then all pops, then all prefixes, …).
//! Columnar order makes the common time-range scan a few contiguous
//! reads and compresses trivially if a transport wants to.
//!
//! Float statistics are stored as raw little-endian `f64` bit patterns,
//! so a decode → merge → query path is **bit-identical** to the
//! never-spilled in-RAM cells: spilling is a change of address, not of
//! value. Optional statistics (Price–Bonett variances, HDratio medians)
//! are a presence bitmap followed by the present values only.
//!
//! Every segment ends with an FxHash checksum over the preceding bytes;
//! decode verifies magic, version, length arithmetic and checksum before
//! trusting any row, and reports problems as the typed
//! [`EdgeperfError::Segment`]. Writers must go through [`atomic_write`]
//! (write `<path>.tmp`, then rename) — the same tmp + rename discipline
//! the supervisor checkpoint uses — so a crash mid-write can only ever
//! leave an orphan temp file, never a torn segment at a live path.

use crate::record::GroupKey;
use edgeperf_core::EdgeperfError;
use edgeperf_routing::{PopId, Prefix, Relationship};
use std::hash::Hasher;
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"EPSG";

/// Current segment format version.
pub const SEGMENT_VERSION: u8 = 1;

/// One spilled cell: the flat, storage-neutral form of a closed live
/// window's ((group, rank), summary) entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowCell {
    /// Window index (`floor(ts / window_ms)`).
    pub window: u32,
    /// The cell's user group.
    pub group: GroupKey,
    /// Route rank (0 = preferred).
    pub rank: u8,
    /// Relationship of the route measured by this cell.
    pub relationship: Relationship,
    /// This route's AS path is longer than the preferred route's.
    pub longer_path: bool,
    /// This route is prepended more than the preferred route.
    pub more_prepended: bool,
    /// Sessions recorded.
    pub n: u64,
    /// Sessions with an HDratio.
    pub n_tested: u64,
    /// Traffic bytes.
    pub bytes: u64,
    /// Median MinRTT (ms).
    pub min_rtt_p50: f64,
    /// Price–Bonett variance of the MinRTT median.
    pub min_rtt_var: Option<f64>,
    /// Median HDratio.
    pub hdratio_p50: Option<f64>,
    /// Price–Bonett variance of the HDratio median.
    pub hdratio_var: Option<f64>,
}

/// Canonical query/compaction order: (window, group fields, rank). Two
/// distinct cells can never tie — (window, group, rank) addresses a cell
/// uniquely — so the order is total and merge output is deterministic.
pub fn cell_sort_key(c: &WindowCell) -> (u32, u16, u32, u8, u16, u8, u8) {
    (
        c.window,
        c.group.pop.0,
        c.group.prefix.base,
        c.group.prefix.len,
        c.group.country,
        c.group.continent,
        c.rank,
    )
}

/// Sort cells into the canonical time-sorted order (see [`cell_sort_key`]).
pub fn sort_cells(cells: &mut [WindowCell]) {
    cells.sort_by_key(cell_sort_key);
}

fn rel_code(r: Relationship) -> u8 {
    match r {
        Relationship::PrivatePeer => 0,
        Relationship::PublicPeer => 1,
        Relationship::Transit => 2,
    }
}

fn rel_from_code(code: u8) -> Result<Relationship, EdgeperfError> {
    match code {
        0 => Ok(Relationship::PrivatePeer),
        1 => Ok(Relationship::PublicPeer),
        2 => Ok(Relationship::Transit),
        other => Err(corrupt(format!("unknown relationship code {other}"))),
    }
}

fn corrupt(message: String) -> EdgeperfError {
    EdgeperfError::Segment { message }
}

const FLAG_LONGER_PATH: u8 = 1;
const FLAG_MORE_PREPENDED: u8 = 2;

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = crate::hash::FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Encode `cells` into a self-checking columnar segment image.
pub fn encode_segment(cells: &[WindowCell]) -> Vec<u8> {
    let n = cells.len();
    // Fixed columns: 4+2+4+1+2+1+1+1+1 + 8*3 + 8 = 49 bytes/cell, plus
    // three optional-column bitmaps and up to three more f64s.
    let mut out = Vec::with_capacity(16 + n * 80);
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.push(SEGMENT_VERSION);
    out.extend_from_slice(&u32::try_from(n).expect("segment cell count fits u32").to_le_bytes());
    for c in cells {
        out.extend_from_slice(&c.window.to_le_bytes());
    }
    for c in cells {
        out.extend_from_slice(&c.group.pop.0.to_le_bytes());
    }
    for c in cells {
        out.extend_from_slice(&c.group.prefix.base.to_le_bytes());
    }
    for c in cells {
        out.push(c.group.prefix.len);
    }
    for c in cells {
        out.extend_from_slice(&c.group.country.to_le_bytes());
    }
    for c in cells {
        out.push(c.group.continent);
    }
    for c in cells {
        out.push(c.rank);
    }
    for c in cells {
        out.push(rel_code(c.relationship));
    }
    for c in cells {
        let mut flags = 0u8;
        if c.longer_path {
            flags |= FLAG_LONGER_PATH;
        }
        if c.more_prepended {
            flags |= FLAG_MORE_PREPENDED;
        }
        out.push(flags);
    }
    for c in cells {
        out.extend_from_slice(&c.n.to_le_bytes());
    }
    for c in cells {
        out.extend_from_slice(&c.n_tested.to_le_bytes());
    }
    for c in cells {
        out.extend_from_slice(&c.bytes.to_le_bytes());
    }
    for c in cells {
        out.extend_from_slice(&c.min_rtt_p50.to_bits().to_le_bytes());
    }
    encode_optional(&mut out, cells, |c| c.min_rtt_var);
    encode_optional(&mut out, cells, |c| c.hdratio_p50);
    encode_optional(&mut out, cells, |c| c.hdratio_var);
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Presence bitmap (LSB-first within each byte) then the present values'
/// raw bits, in row order.
fn encode_optional(
    out: &mut Vec<u8>,
    cells: &[WindowCell],
    get: impl Fn(&WindowCell) -> Option<f64>,
) {
    let mut bitmap = vec![0u8; cells.len().div_ceil(8)];
    for (i, c) in cells.iter().enumerate() {
        if get(c).is_some() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);
    for c in cells {
        if let Some(v) = get(c) {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// A bounds-checked little-endian reader over the segment image.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], EdgeperfError> {
        let end =
            self.at.checked_add(n).filter(|&end| end <= self.bytes.len()).ok_or_else(|| {
                corrupt(format!("truncated at byte {} (wanted {n} more)", self.at))
            })?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8s(&mut self, n: usize) -> Result<&'a [u8], EdgeperfError> {
        self.take(n)
    }

    fn u16(&mut self) -> Result<u16, EdgeperfError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, EdgeperfError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, EdgeperfError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Decode a segment image, verifying magic, version, length arithmetic
/// and the trailing checksum before any row is surfaced.
pub fn decode_segment(bytes: &[u8]) -> Result<Vec<WindowCell>, EdgeperfError> {
    if bytes.len() < SEGMENT_MAGIC.len() + 1 + 4 + 8 {
        return Err(corrupt(format!("{} bytes is too short for a segment", bytes.len())));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    let computed = checksum(body);
    if stored != computed {
        return Err(corrupt(format!(
            "checksum mismatch (stored {stored:#x}, computed {computed:#x})"
        )));
    }
    let mut r = Reader { bytes: body, at: 0 };
    let magic = r.take(SEGMENT_MAGIC.len())?;
    if magic != SEGMENT_MAGIC {
        return Err(corrupt(format!("bad magic {magic:02x?}")));
    }
    let version = r.u8s(1)?[0];
    if version != SEGMENT_VERSION {
        return Err(corrupt(format!("unsupported segment version {version}")));
    }
    let n = r.u32()? as usize;
    let mut cells = vec![
        WindowCell {
            window: 0,
            group: GroupKey {
                pop: PopId(0),
                prefix: Prefix { base: 0, len: 0 },
                country: 0,
                continent: 0,
            },
            rank: 0,
            relationship: Relationship::PrivatePeer,
            longer_path: false,
            more_prepended: false,
            n: 0,
            n_tested: 0,
            bytes: 0,
            min_rtt_p50: 0.0,
            min_rtt_var: None,
            hdratio_p50: None,
            hdratio_var: None,
        };
        n
    ];
    for c in &mut cells {
        c.window = r.u32()?;
    }
    for c in &mut cells {
        c.group.pop = PopId(r.u16()?);
    }
    for c in &mut cells {
        c.group.prefix.base = r.u32()?;
    }
    for c in &mut cells {
        c.group.prefix.len = r.u8s(1)?[0];
    }
    for c in &mut cells {
        c.group.country = r.u16()?;
    }
    for c in &mut cells {
        c.group.continent = r.u8s(1)?[0];
    }
    for c in &mut cells {
        c.rank = r.u8s(1)?[0];
    }
    for c in &mut cells {
        c.relationship = rel_from_code(r.u8s(1)?[0])?;
    }
    for c in &mut cells {
        let flags = r.u8s(1)?[0];
        if flags & !(FLAG_LONGER_PATH | FLAG_MORE_PREPENDED) != 0 {
            return Err(corrupt(format!("unknown flag bits {flags:#04x}")));
        }
        c.longer_path = flags & FLAG_LONGER_PATH != 0;
        c.more_prepended = flags & FLAG_MORE_PREPENDED != 0;
    }
    for c in &mut cells {
        c.n = r.u64()?;
    }
    for c in &mut cells {
        c.n_tested = r.u64()?;
    }
    for c in &mut cells {
        c.bytes = r.u64()?;
    }
    for c in &mut cells {
        c.min_rtt_p50 = f64::from_bits(r.u64()?);
    }
    decode_optional(&mut r, &mut cells, |c, v| c.min_rtt_var = v)?;
    decode_optional(&mut r, &mut cells, |c, v| c.hdratio_p50 = v)?;
    decode_optional(&mut r, &mut cells, |c, v| c.hdratio_var = v)?;
    if r.at != body.len() {
        return Err(corrupt(format!("{} trailing bytes after the last column", body.len() - r.at)));
    }
    Ok(cells)
}

fn decode_optional(
    r: &mut Reader<'_>,
    cells: &mut [WindowCell],
    set: impl Fn(&mut WindowCell, Option<f64>),
) -> Result<(), EdgeperfError> {
    let bitmap = r.u8s(cells.len().div_ceil(8))?.to_vec();
    for (i, c) in cells.iter_mut().enumerate() {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            set(c, Some(f64::from_bits(r.u64()?)));
        } else {
            set(c, None);
        }
    }
    Ok(())
}

/// The `(first, last)` window span of a run of cells, `None` when empty.
pub fn window_span(cells: &[WindowCell]) -> Option<(u32, u32)> {
    let mut it = cells.iter().map(|c| c.window);
    let first = it.next()?;
    Some(it.fold((first, first), |(lo, hi), w| (lo.min(w), hi.max(w))))
}

/// The path a writer stages bytes at before renaming over `path`.
pub fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Stage `bytes` at [`staging_path`] and return that path — the first
/// half of [`atomic_write`], exposed on its own so the tiered store's
/// crash-injection tests can stop between stage and rename.
pub fn stage(path: &Path, bytes: &[u8]) -> io::Result<PathBuf> {
    let tmp = staging_path(path);
    std::fs::write(&tmp, bytes)?;
    Ok(tmp)
}

/// Write `bytes` to `path` atomically: stage at [`staging_path`], then
/// rename. A crash between the two steps leaves an orphan `.tmp` file; a
/// reader can never observe a torn file at `path` itself. This is the
/// one sanctioned way to write durable artifacts (segments, manifests,
/// checkpoints) — CI greps direct `std::fs::write` out of `crates/live`.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = stage(path, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cell(i: u32) -> WindowCell {
        WindowCell {
            window: i / 3,
            group: GroupKey {
                pop: PopId(u16::try_from(i % 5).unwrap()),
                prefix: Prefix { base: 0x0A00_0000 + (i << 8), len: 24 },
                country: u16::try_from(i % 40).unwrap(),
                continent: u8::try_from(i % 6).unwrap(),
            },
            rank: u8::try_from(i % 2).unwrap(),
            relationship: match i % 3 {
                0 => Relationship::PrivatePeer,
                1 => Relationship::PublicPeer,
                _ => Relationship::Transit,
            },
            longer_path: i.is_multiple_of(5),
            more_prepended: i.is_multiple_of(7),
            n: u64::from(i) * 31 + 1,
            n_tested: u64::from(i) * 17,
            bytes: u64::from(i) * 100_003,
            min_rtt_p50: 15.0 + f64::from(i) * 0.37,
            min_rtt_var: (!i.is_multiple_of(4)).then(|| 0.01 + f64::from(i) * 1e-4),
            hdratio_p50: (i % 3 != 1).then(|| (f64::from(i % 100)) / 100.0),
            hdratio_var: (i % 6 == 2).then(|| 3e-5 * f64::from(i + 1)),
        }
    }

    fn assert_bits_equal(a: &WindowCell, b: &WindowCell) {
        assert_eq!(a.window, b.window);
        assert_eq!(a.group, b.group);
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.relationship, b.relationship);
        assert_eq!(a.longer_path, b.longer_path);
        assert_eq!(a.more_prepended, b.more_prepended);
        assert_eq!(a.n, b.n);
        assert_eq!(a.n_tested, b.n_tested);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.min_rtt_p50.to_bits(), b.min_rtt_p50.to_bits());
        assert_eq!(a.min_rtt_var.map(f64::to_bits), b.min_rtt_var.map(f64::to_bits));
        assert_eq!(a.hdratio_p50.map(f64::to_bits), b.hdratio_p50.map(f64::to_bits));
        assert_eq!(a.hdratio_var.map(f64::to_bits), b.hdratio_var.map(f64::to_bits));
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let cells: Vec<WindowCell> = (0..257).map(cell).collect();
        let image = encode_segment(&cells);
        let back = decode_segment(&image).expect("decodes");
        assert_eq!(back.len(), cells.len());
        for (a, b) in cells.iter().zip(&back) {
            assert_bits_equal(a, b);
        }
    }

    #[test]
    fn empty_segment_roundtrips() {
        let image = encode_segment(&[]);
        assert!(decode_segment(&image).expect("decodes").is_empty());
        assert_eq!(window_span(&[]), None);
    }

    #[test]
    fn any_corrupted_byte_is_detected() {
        let cells: Vec<WindowCell> = (0..40).map(cell).collect();
        let image = encode_segment(&cells);
        // Flip one byte at a spread of offsets (including inside the
        // checksum itself) — every single flip must surface as a typed
        // segment error, never as silently different cells.
        for at in (0..image.len()).step_by(7) {
            let mut bad = image.clone();
            bad[at] ^= 0x40;
            let err = decode_segment(&bad).expect_err("corruption detected");
            assert_eq!(err.reason(), "segment", "byte {at}: {err}");
        }
        // Truncation too.
        assert!(decode_segment(&image[..image.len() - 3]).is_err());
        assert!(decode_segment(&[]).is_err());
    }

    #[test]
    fn sort_is_total_over_distinct_cells() {
        let mut cells: Vec<WindowCell> = (0..100).map(cell).collect();
        sort_cells(&mut cells);
        for pair in cells.windows(2) {
            assert!(cell_sort_key(&pair[0]) <= cell_sort_key(&pair[1]));
        }
        assert_eq!(window_span(&cells), Some((0, 33)));
    }

    #[test]
    fn staging_path_appends_tmp() {
        assert_eq!(
            staging_path(Path::new("/x/seg-00000007.seg")),
            PathBuf::from("/x/seg-00000007.seg.tmp")
        );
    }

    proptest! {
        /// Arbitrary f64 bit patterns (including NaNs, infinities, -0.0
        /// and subnormals) survive the codec bit-exactly, and presence
        /// of the optional statistics is preserved per row.
        #[test]
        fn prop_roundtrip_preserves_arbitrary_bits(
            rows in prop::collection::vec(
                (
                    any::<u32>(),
                    any::<u64>(),
                    any::<u64>(),
                    prop::option::of(any::<u64>()),
                    prop::option::of(any::<u64>()),
                ),
                0..64,
            )
        ) {
            let cells: Vec<WindowCell> = rows
                .iter()
                .enumerate()
                .map(|(i, &(window, nbits, p50bits, varbits, hdbits))| {
                    let mut c = cell(u32::try_from(i).unwrap());
                    c.window = window;
                    c.n = nbits;
                    c.min_rtt_p50 = f64::from_bits(p50bits);
                    c.min_rtt_var = varbits.map(f64::from_bits);
                    c.hdratio_var = hdbits.map(f64::from_bits);
                    c
                })
                .collect();
            let back = decode_segment(&encode_segment(&cells)).expect("decodes");
            prop_assert_eq!(back.len(), cells.len());
            for (a, b) in cells.iter().zip(&back) {
                assert_bits_equal(a, b);
            }
        }
    }
}
