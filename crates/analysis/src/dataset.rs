//! Dataset assembly: records → per-(group, window, route-rank)
//! aggregations (§3.3).

use crate::hash::FxHashMap;
use crate::record::{GroupKey, SessionRecord};
use edgeperf_routing::Relationship;

/// Measurements for one (group, window, route-rank) cell.
#[derive(Debug, Clone)]
pub struct Aggregation {
    /// Session MinRTTs in milliseconds, sorted ascending.
    pub min_rtt_ms: Vec<f64>,
    /// Session HDratios (only sessions that tested), sorted ascending.
    pub hdratio: Vec<f64>,
    /// Total response bytes (traffic weight of the cell).
    pub bytes: u64,
    /// Relationship of the route measured by this cell.
    pub relationship: Relationship,
    /// This route's AS path is longer than the preferred route's.
    pub longer_path: bool,
    /// This route is prepended more than the preferred route.
    pub more_prepended: bool,
}

impl Aggregation {
    pub(crate) fn new(relationship: Relationship) -> Self {
        Aggregation {
            min_rtt_ms: Vec::new(),
            hdratio: Vec::new(),
            bytes: 0,
            relationship,
            longer_path: false,
            more_prepended: false,
        }
    }

    /// Median MinRTT of the aggregation (requires non-empty).
    pub fn min_rtt_p50(&self) -> f64 {
        edgeperf_stats::quantile::median_sorted(&self.min_rtt_ms)
    }

    /// Median HDratio, if any session tested.
    pub fn hdratio_p50(&self) -> Option<f64> {
        if self.hdratio.is_empty() {
            None
        } else {
            Some(edgeperf_stats::quantile::median_sorted(&self.hdratio))
        }
    }

    /// Number of MinRTT samples.
    pub fn n(&self) -> usize {
        self.min_rtt_ms.len()
    }
}

/// All aggregations of one user group: `ranks[r].windows[w]`.
#[derive(Debug, Clone, Default)]
pub struct GroupData {
    /// Per route rank (0 = preferred), per window.
    pub ranks: Vec<Vec<Option<Aggregation>>>,
    /// Total traffic bytes across every cell (the group weight).
    pub total_bytes: u64,
}

impl GroupData {
    /// Aggregation for (rank, window) if present.
    pub fn cell(&self, rank: usize, window: usize) -> Option<&Aggregation> {
        self.ranks.get(rank)?.get(window)?.as_ref()
    }

    /// Windows where the preferred route has any traffic.
    pub fn covered_windows(&self) -> usize {
        self.ranks.first().map(|ws| ws.iter().filter(|c| c.is_some()).count()).unwrap_or(0)
    }
}

/// # Example
///
/// ```
/// use edgeperf_analysis::{Dataset, GroupKey, SessionRecord};
/// use edgeperf_routing::{PopId, Prefix, Relationship};
/// let group = GroupKey { pop: PopId(0), prefix: Prefix::new(0x0A000000, 16),
///     country: 0, continent: 2 };
/// let records: Vec<SessionRecord> = (0..40).map(|i| SessionRecord {
///     group, window: 0, route_rank: 0, relationship: Relationship::PrivatePeer,
///     longer_path: false, more_prepended: false,
///     min_rtt_ms: 30.0 + i as f64 * 0.1, hdratio: Some(1.0), bytes: 1_000,
/// }).collect();
/// let ds = Dataset::from_records(&records, 1);
/// let cell = ds.groups[&group].cell(0, 0).unwrap();
/// assert_eq!(cell.n(), 40);
/// assert!((cell.min_rtt_p50() - 31.95).abs() < 0.1);
/// ```
/// The study dataset: all groups over a fixed number of windows.
#[derive(Debug, Default)]
pub struct Dataset {
    /// Number of 15-minute windows in the study.
    pub n_windows: usize,
    /// Per-group data, keyed with the fast deterministic hasher.
    pub groups: FxHashMap<GroupKey, GroupData>,
}

impl Dataset {
    /// Assemble from raw records. Records beyond `n_windows` or with
    /// rank ≥ 8 are rejected (defensive: they indicate runner bugs).
    ///
    /// Record streams arrive grouped by prefix (each prefix is simulated
    /// by exactly one worker), so a last-group memo short-circuits the
    /// hash lookup for nearly every record; the map itself uses the
    /// FxHash hasher from [`crate::hash`].
    pub fn from_records(records: &[SessionRecord], n_windows: usize) -> Self {
        let mut index: FxHashMap<GroupKey, u32> = FxHashMap::default();
        let mut slots: Vec<(GroupKey, GroupData)> = Vec::new();
        let mut memo: Option<(GroupKey, u32)> = None;
        for r in records {
            assert!((r.window as usize) < n_windows, "window {} out of range", r.window);
            assert!(r.route_rank < 8, "suspicious route rank {}", r.route_rank);
            let gi = match memo {
                Some((k, i)) if k == r.group => i,
                _ => {
                    let i = *index.entry(r.group).or_insert_with(|| {
                        slots.push((r.group, GroupData::default()));
                        (slots.len() - 1) as u32
                    });
                    memo = Some((r.group, i));
                    i
                }
            };
            let g = &mut slots[gi as usize].1;
            let rank = r.route_rank as usize;
            while g.ranks.len() <= rank {
                g.ranks.push(vec![None; n_windows]);
            }
            let cell = g.ranks[rank][r.window as usize]
                .get_or_insert_with(|| Aggregation::new(r.relationship));
            cell.min_rtt_ms.push(r.min_rtt_ms);
            if let Some(h) = r.hdratio {
                cell.hdratio.push(h);
            }
            cell.bytes += r.bytes;
            cell.longer_path |= r.longer_path;
            cell.more_prepended |= r.more_prepended;
            g.total_bytes += r.bytes;
        }
        // Sort sample vectors once. `total_cmp` is a total order, so no
        // NaN panic path; unstable sort is fine (and faster) because equal
        // f64 samples are indistinguishable.
        for (_, g) in &mut slots {
            for ws in &mut g.ranks {
                for cell in ws.iter_mut().flatten() {
                    cell.min_rtt_ms.sort_unstable_by(f64::total_cmp);
                    cell.hdratio.sort_unstable_by(f64::total_cmp);
                }
            }
        }
        Dataset { n_windows, groups: slots.into_iter().collect() }
    }

    /// Number of populated (group, window, rank) cells.
    pub fn cell_count(&self) -> usize {
        self.groups.values().flat_map(|g| &g.ranks).map(|ws| ws.iter().flatten().count()).sum()
    }

    /// Total traffic across the dataset.
    pub fn total_bytes(&self) -> u64 {
        self.groups.values().map(|g| g.total_bytes).sum()
    }

    /// Traffic carried on preferred routes only (rank 0) — the natural
    /// denominator for "fraction of traffic" statements, since rank > 0
    /// records exist purely to measure alternates.
    pub fn preferred_bytes(&self) -> u64 {
        self.groups
            .values()
            .flat_map(|g| g.ranks.first())
            .flat_map(|ws| ws.iter().flatten())
            .map(|c| c.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_routing::{PopId, Prefix};

    fn rec(window: u32, rank: u8, rtt: f64, hdr: Option<f64>, bytes: u64) -> SessionRecord {
        SessionRecord {
            group: GroupKey {
                pop: PopId(1),
                prefix: Prefix::new(0x0A000000, 16),
                country: 1,
                continent: 3,
            },
            window,
            route_rank: rank,
            relationship: Relationship::PrivatePeer,
            longer_path: rank > 0,
            more_prepended: false,
            min_rtt_ms: rtt,
            hdratio: hdr,
            bytes,
        }
    }

    #[test]
    fn builds_cells_and_medians() {
        let records = vec![
            rec(0, 0, 30.0, Some(1.0), 100),
            rec(0, 0, 40.0, Some(0.5), 100),
            rec(0, 0, 50.0, None, 100),
            rec(1, 0, 90.0, Some(0.0), 50),
            rec(0, 1, 35.0, Some(1.0), 10),
        ];
        let ds = Dataset::from_records(&records, 4);
        assert_eq!(ds.groups.len(), 1);
        let g = ds.groups.values().next().unwrap();
        let c = g.cell(0, 0).unwrap();
        assert_eq!(c.n(), 3);
        assert_eq!(c.min_rtt_p50(), 40.0);
        assert_eq!(c.hdratio_p50(), Some(0.75));
        assert_eq!(c.bytes, 300);
        assert!(g.cell(1, 0).unwrap().longer_path);
        assert!(g.cell(0, 2).is_none());
        assert_eq!(g.covered_windows(), 2);
        assert_eq!(ds.total_bytes(), 360);
    }

    #[test]
    fn hdratio_p50_none_when_no_tested_sessions() {
        let ds = Dataset::from_records(&[rec(0, 0, 20.0, None, 1)], 1);
        let g = ds.groups.values().next().unwrap();
        assert_eq!(g.cell(0, 0).unwrap().hdratio_p50(), None);
    }

    #[test]
    #[should_panic]
    fn window_out_of_range_panics() {
        Dataset::from_records(&[rec(5, 0, 20.0, None, 1)], 4);
    }

    #[test]
    fn samples_are_sorted() {
        let records =
            vec![rec(0, 0, 50.0, None, 1), rec(0, 0, 10.0, None, 1), rec(0, 0, 30.0, None, 1)];
        let ds = Dataset::from_records(&records, 1);
        let g = ds.groups.values().next().unwrap();
        assert_eq!(g.cell(0, 0).unwrap().min_rtt_ms, vec![10.0, 30.0, 50.0]);
    }
}
