//! Figure-series builders: the distributions behind the paper's Figures
//! 6–10 as queryable weighted CDFs.

use crate::config::AnalysisConfig;
use crate::dataset::Dataset;
use crate::degradation::{degradation_events, DegradationMetric};
use crate::opportunity::{opportunity_events, OpportunityMetric};
use crate::record::SessionRecord;
use edgeperf_routing::Relationship;
use edgeperf_stats::cdf::{CdfBuilder, WeightedCdf};
use std::collections::BTreeMap;

/// Per-session MinRTT CDFs: overall and per continent (Figure 6a/6b).
/// Only preferred-route sessions contribute (the §4 view).
pub fn fig6_minrtt(records: &[SessionRecord]) -> (WeightedCdf, BTreeMap<u8, WeightedCdf>) {
    per_continent_cdf(records, |r| Some(r.min_rtt_ms))
}

/// Per-session HDratio CDFs: overall and per continent (Figure 6a/6c).
pub fn fig6_hdratio(records: &[SessionRecord]) -> (WeightedCdf, BTreeMap<u8, WeightedCdf>) {
    per_continent_cdf(records, |r| r.hdratio)
}

fn per_continent_cdf(
    records: &[SessionRecord],
    metric: impl Fn(&SessionRecord) -> Option<f64>,
) -> (WeightedCdf, BTreeMap<u8, WeightedCdf>) {
    let mut overall = CdfBuilder::new();
    let mut per: BTreeMap<u8, CdfBuilder> = BTreeMap::new();
    for r in records.iter().filter(|r| r.route_rank == 0) {
        if let Some(v) = metric(r) {
            overall.push(v);
            per.entry(r.group.continent).or_default().push(v);
        }
    }
    (
        overall.build(),
        per.into_iter().filter(|(_, b)| !b.is_empty()).map(|(k, b)| (k, b.build())).collect(),
    )
}

/// HDratio CDFs per MinRTT bucket (Figure 7). Buckets follow the paper:
/// 0–30, 31–50, 51–80, 81+ ms.
pub fn fig7_hdratio_by_minrtt(records: &[SessionRecord]) -> Vec<(&'static str, WeightedCdf)> {
    let buckets: [(&str, f64, f64); 4] = [
        ("0-30", 0.0, 30.0),
        ("31-50", 30.0, 50.0),
        ("51-80", 50.0, 80.0),
        ("81+", 80.0, f64::INFINITY),
    ];
    buckets
        .iter()
        .filter_map(|&(label, lo, hi)| {
            let mut b = CdfBuilder::new();
            for r in records.iter().filter(|r| r.route_rank == 0) {
                if r.min_rtt_ms > lo && r.min_rtt_ms <= hi {
                    if let Some(h) = r.hdratio {
                        b.push(h);
                    }
                }
            }
            if b.is_empty() {
                None
            } else {
                Some((label, b.build()))
            }
        })
        .collect()
}

/// Traffic-weighted CDFs of a comparison series: point estimate plus the
/// lower/upper CI-bound distributions (the shaded bands of Figs 8 and 9).
#[derive(Debug, Clone)]
pub struct DiffCdfs {
    /// CDF of the point differences.
    pub diff: WeightedCdf,
    /// CDF of the CI lower bounds.
    pub lo: WeightedCdf,
    /// CDF of the CI upper bounds.
    pub hi: WeightedCdf,
    /// Fraction of dataset traffic contributing valid comparisons.
    pub traffic_covered: f64,
}

pub(crate) fn build_diff_cdfs(
    points: Vec<(f64, f64, f64, u64)>,
    covered_bytes: u64,
    total_bytes: u64,
) -> Option<DiffCdfs> {
    if points.is_empty() {
        return None;
    }
    let mut d = CdfBuilder::new();
    let mut l = CdfBuilder::new();
    let mut h = CdfBuilder::new();
    for (diff, lo, hi, bytes) in points {
        let w = bytes as f64;
        d.push_weighted(diff, w);
        l.push_weighted(lo, w);
        h.push_weighted(hi, w);
    }
    Some(DiffCdfs {
        diff: d.build(),
        lo: l.build(),
        hi: h.build(),
        traffic_covered: covered_bytes as f64 / total_bytes.max(1) as f64,
    })
}

/// Figure 8: degradation of each valid window vs the group baseline,
/// weighted by window traffic.
pub fn fig8_degradation(
    cfg: &AnalysisConfig,
    ds: &Dataset,
    metric: DegradationMetric,
) -> Option<DiffCdfs> {
    let mut points = Vec::new();
    let mut covered = 0u64;
    for g in ds.groups.values() {
        for a in degradation_events(cfg, g, metric, f64::INFINITY) {
            if let Some((diff, lo, hi)) = a.diff {
                points.push((diff, lo, hi, a.bytes));
                covered += a.bytes;
            }
        }
    }
    build_diff_cdfs(points, covered, ds.preferred_bytes())
}

/// Figure 9: preferred vs best alternate difference per valid window,
/// weighted by traffic. Positive = alternate better.
pub fn fig9_opportunity(
    cfg: &AnalysisConfig,
    ds: &Dataset,
    metric: OpportunityMetric,
) -> Option<DiffCdfs> {
    let mut points = Vec::new();
    let mut covered = 0u64;
    for g in ds.groups.values() {
        for a in opportunity_events(cfg, g, metric, f64::INFINITY) {
            if let Some((diff, lo, hi)) = a.diff {
                points.push((diff, lo, hi, a.bytes));
                covered += a.bytes;
            }
        }
    }
    build_diff_cdfs(points, covered, ds.preferred_bytes())
}

/// The relationship pairs Figure 10 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelPair {
    /// Preferred is a peer (private or public), alternate is a transit.
    PeeringVsTransit,
    /// Preferred and alternate are both transits.
    TransitVsTransit,
    /// Preferred is a private peer, alternate a public peer.
    PrivateVsPublic,
}

impl RelPair {
    pub(crate) fn matches(&self, pref: Relationship, alt: Relationship) -> bool {
        match self {
            RelPair::PeeringVsTransit => pref.is_peer() && alt == Relationship::Transit,
            RelPair::TransitVsTransit => {
                pref == Relationship::Transit && alt == Relationship::Transit
            }
            RelPair::PrivateVsPublic => {
                pref == Relationship::PrivatePeer && alt == Relationship::PublicPeer
            }
        }
    }

    /// Label used in figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            RelPair::PeeringVsTransit => "Peering vs Transit",
            RelPair::TransitVsTransit => "Transit vs Transit",
            RelPair::PrivateVsPublic => "Private vs Public",
        }
    }
}

/// Figure 10: MinRTT_P50 difference (preferred − alternate) by
/// relationship pair, weighted by traffic. Positive = alternate better.
/// Unlike Fig 9 this compares against the most *policy-preferred*
/// alternate of the pair's type, not the best performer.
pub fn fig10_by_relationship(
    cfg: &AnalysisConfig,
    ds: &Dataset,
    pair: RelPair,
) -> Option<DiffCdfs> {
    let mut points = Vec::new();
    let mut covered = 0u64;
    for g in ds.groups.values() {
        let n_windows = g.ranks.first().map(|w| w.len()).unwrap_or(0);
        for w in 0..n_windows {
            let pref = match g.cell(0, w) {
                Some(c) if c.n() >= cfg.min_samples => c,
                _ => continue,
            };
            // First (most preferred) alternate with the matching type.
            let alt = (1..g.ranks.len()).filter_map(|r| g.cell(r, w)).find(|c| {
                c.n() >= cfg.min_samples && pair.matches(pref.relationship, c.relationship)
            });
            let alt = match alt {
                None => continue,
                Some(a) => a,
            };
            match crate::compare::compare_medians(
                cfg,
                &pref.min_rtt_ms,
                &alt.min_rtt_ms,
                cfg.max_ci_width_minrtt_ms,
            ) {
                crate::compare::CompareOutcome::Valid { diff, lo, hi } => {
                    points.push((diff, lo, hi, pref.bytes));
                    covered += pref.bytes;
                }
                crate::compare::CompareOutcome::Invalid => {}
            }
        }
    }
    build_diff_cdfs(points, covered, ds.preferred_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::GroupKey;
    use edgeperf_routing::{PopId, Prefix};

    fn rec(continent: u8, rank: u8, rtt: f64, hdr: Option<f64>) -> SessionRecord {
        SessionRecord {
            group: GroupKey {
                pop: PopId(0),
                prefix: Prefix::new((continent as u32) << 24, 16),
                country: continent as u16,
                continent,
            },
            window: 0,
            route_rank: rank,
            relationship: if rank == 0 { Relationship::PrivatePeer } else { Relationship::Transit },
            longer_path: false,
            more_prepended: false,
            min_rtt_ms: rtt,
            hdratio: hdr,
            bytes: 100,
        }
    }

    #[test]
    fn fig6_splits_by_continent() {
        let records = vec![
            rec(0, 0, 20.0, Some(1.0)),
            rec(0, 0, 30.0, Some(1.0)),
            rec(1, 0, 80.0, Some(0.2)),
            rec(1, 0, 90.0, None),
            rec(1, 1, 10.0, Some(1.0)), // alternate: excluded from fig6
        ];
        let (overall, per) = fig6_minrtt(&records);
        assert_eq!(overall.total_weight(), 4.0);
        assert_eq!(per.len(), 2);
        assert!(per[&0].quantile(0.5) < per[&1].quantile(0.5));
        let (hdr_overall, hdr_per) = fig6_hdratio(&records);
        assert_eq!(hdr_overall.total_weight(), 3.0);
        assert_eq!(hdr_per[&1].total_weight(), 1.0);
    }

    #[test]
    fn fig7_buckets_split_on_minrtt() {
        let records = vec![
            rec(0, 0, 10.0, Some(1.0)),
            rec(0, 0, 40.0, Some(0.8)),
            rec(0, 0, 70.0, Some(0.5)),
            rec(0, 0, 120.0, Some(0.1)),
        ];
        let buckets = fig7_hdratio_by_minrtt(&records);
        assert_eq!(buckets.len(), 4);
        // Lower-latency buckets have higher HDratio.
        assert!(buckets[0].1.quantile(0.5) > buckets[3].1.quantile(0.5));
    }

    #[test]
    fn fig8_and_fig9_produce_cdfs_on_synthetic_data() {
        // Two routes, alternate clearly better in every window.
        let mut records = Vec::new();
        for w in 0..3u32 {
            for rank in 0..2u8 {
                for i in 0..40 {
                    let mut r = rec(0, rank, 0.0, Some(0.9));
                    r.window = w;
                    r.min_rtt_ms = if rank == 0 { 55.0 } else { 40.0 } + (i as f64 - 20.0) * 0.05;
                    records.push(r);
                }
            }
        }
        let ds = Dataset::from_records(&records, 3);
        let cfg = AnalysisConfig::default();
        let deg = fig8_degradation(&cfg, &ds, DegradationMetric::MinRtt).unwrap();
        // Stable series: degradation concentrated at ~0.
        assert!(deg.diff.quantile(0.9) < 2.0);
        let opp = fig9_opportunity(&cfg, &ds, OpportunityMetric::MinRtt).unwrap();
        assert!((opp.diff.quantile(0.5) - 15.0).abs() < 2.0);
        assert!(opp.traffic_covered > 0.0);
    }

    #[test]
    fn fig10_filters_by_pair() {
        let mut records = Vec::new();
        for rank in 0..2u8 {
            for i in 0..40 {
                let mut r = rec(0, rank, 0.0, Some(0.9));
                r.min_rtt_ms = if rank == 0 { 50.0 } else { 48.0 } + (i as f64 - 20.0) * 0.05;
                records.push(r);
            }
        }
        let ds = Dataset::from_records(&records, 1);
        let cfg = AnalysisConfig::default();
        assert!(fig10_by_relationship(&cfg, &ds, RelPair::PeeringVsTransit).is_some());
        // No transit-preferred groups in this dataset.
        assert!(fig10_by_relationship(&cfg, &ds, RelPair::TransitVsTransit).is_none());
        assert!(fig10_by_relationship(&cfg, &ds, RelPair::PrivateVsPublic).is_none());
    }
}
