//! Opportunity for performance-aware routing (§6.2): within each window,
//! compare the preferred route against the best-performing alternate.
//!
//! Sign convention: positive difference = the alternate is better
//! (opportunity). HDratio takes priority: a MinRTT opportunity only
//! counts if the alternate's HDratio_P50 is statistically equal to or
//! better than the preferred route's (§3.4).

use crate::compare::{compare_medians, CompareOutcome};
use crate::config::AnalysisConfig;
use crate::dataset::{Aggregation, GroupData};
use crate::degradation::{DegradationMetric, WindowStatus};
use edgeperf_routing::Relationship;

/// Metric for opportunity analysis (alias of the degradation metric).
pub type OpportunityMetric = DegradationMetric;

/// Assessment of one window's routing opportunity.
#[derive(Debug, Clone, Copy)]
pub struct OpportunityAssessment {
    /// Status of the comparison.
    pub status: WindowStatus,
    /// (diff, lo, hi); positive = alternate better.
    pub diff: Option<(f64, f64, f64)>,
    /// Rank of the compared alternate route.
    pub alt_rank: Option<u8>,
    /// Relationship of the alternate route.
    pub alt_relationship: Option<Relationship>,
    /// Relationship of the preferred route.
    pub pref_relationship: Option<Relationship>,
    /// The alternate's AS path was longer than the preferred route's.
    pub alt_longer: bool,
    /// The alternate was prepended more than the preferred route.
    pub alt_prepended: bool,
    /// Traffic bytes on the preferred route in this window.
    pub bytes: u64,
}

impl OpportunityAssessment {
    fn no_traffic() -> Self {
        OpportunityAssessment {
            status: WindowStatus::NoTraffic,
            diff: None,
            alt_rank: None,
            alt_relationship: None,
            pref_relationship: None,
            alt_longer: false,
            alt_prepended: false,
            bytes: 0,
        }
    }
}

/// Select the best alternate cell for this window by the metric's point
/// estimate (lowest MinRTT_P50 / highest HDratio_P50) among alternates
/// with enough samples.
fn best_alternate<'a>(
    cfg: &AnalysisConfig,
    group: &'a GroupData,
    window: usize,
    metric: OpportunityMetric,
) -> Option<(u8, &'a Aggregation)> {
    let mut best: Option<(u8, &Aggregation, f64)> = None;
    for rank in 1..group.ranks.len() {
        let cell = match group.cell(rank, window) {
            Some(c) if c.n() >= cfg.min_samples => c,
            _ => continue,
        };
        let score = match metric {
            OpportunityMetric::MinRtt => -cell.min_rtt_p50(),
            OpportunityMetric::HdRatio => match cell.hdratio_p50() {
                Some(h) => h,
                None => continue,
            },
        };
        if best.is_none_or(|(_, _, s)| score > s) {
            best = Some((rank as u8, cell, score));
        }
    }
    best.map(|(r, c, _)| (r, c))
}

/// Assess every window of a group for routing opportunity on `metric` at
/// `threshold`.
pub fn opportunity_events(
    cfg: &AnalysisConfig,
    group: &GroupData,
    metric: OpportunityMetric,
    threshold: f64,
) -> Vec<OpportunityAssessment> {
    let n_windows = group.ranks.first().map(|w| w.len()).unwrap_or(0);
    (0..n_windows)
        .map(|w| {
            let pref = match group.cell(0, w) {
                None => return OpportunityAssessment::no_traffic(),
                Some(c) => c,
            };
            let invalid = |bytes| OpportunityAssessment {
                status: WindowStatus::Invalid,
                diff: None,
                alt_rank: None,
                alt_relationship: None,
                pref_relationship: Some(pref.relationship),
                alt_longer: false,
                alt_prepended: false,
                bytes,
            };
            let (alt_rank, alt) = match best_alternate(cfg, group, w, metric) {
                None => return invalid(pref.bytes),
                Some(x) => x,
            };
            let outcome = match metric {
                // Positive = alternate has lower latency.
                OpportunityMetric::MinRtt => compare_medians(
                    cfg,
                    &pref.min_rtt_ms,
                    &alt.min_rtt_ms,
                    cfg.max_ci_width_minrtt_ms,
                ),
                // Positive = alternate has higher HDratio.
                OpportunityMetric::HdRatio => {
                    compare_medians(cfg, &alt.hdratio, &pref.hdratio, cfg.max_ci_width_hdratio)
                }
            };
            let (diff, lo, hi) = match outcome {
                CompareOutcome::Invalid => return invalid(pref.bytes),
                CompareOutcome::Valid { diff, lo, hi } => (diff, lo, hi),
            };

            let mut event = lo > threshold;
            if event && metric == OpportunityMetric::MinRtt {
                // HDratio priority: the alternate must not be
                // statistically worse on HDratio.
                match compare_medians(cfg, &alt.hdratio, &pref.hdratio, cfg.max_ci_width_hdratio) {
                    CompareOutcome::Valid { hi: h_hi, .. } if h_hi < 0.0 => event = false,
                    _ => {}
                }
            }

            OpportunityAssessment {
                status: if event { WindowStatus::Event } else { WindowStatus::Quiet },
                diff: Some((diff, lo, hi)),
                alt_rank: Some(alt_rank),
                alt_relationship: Some(alt.relationship),
                pref_relationship: Some(pref.relationship),
                alt_longer: alt.longer_path,
                alt_prepended: alt.more_prepended,
                bytes: pref.bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::record::{GroupKey, SessionRecord};
    use edgeperf_routing::{PopId, Prefix};

    /// Build a group where rank 0 has `pref_rtt` and rank 1 `alt_rtt`.
    fn two_route_records(pref_rtt: f64, alt_rtt: f64, windows: u32) -> Vec<SessionRecord> {
        let group = GroupKey {
            pop: PopId(0),
            prefix: Prefix::new(0x0A000000, 16),
            country: 0,
            continent: 0,
        };
        let mut out = Vec::new();
        for w in 0..windows {
            for (rank, center, rel) in
                [(0u8, pref_rtt, Relationship::PrivatePeer), (1u8, alt_rtt, Relationship::Transit)]
            {
                for i in 0..60 {
                    out.push(SessionRecord {
                        group,
                        window: w,
                        route_rank: rank,
                        relationship: rel,
                        longer_path: rank == 1,
                        more_prepended: false,
                        min_rtt_ms: center + (i as f64 - 30.0) * 0.05,
                        hdratio: Some(0.9 + (i % 10) as f64 * 0.01),
                        bytes: 800,
                    });
                }
            }
        }
        out
    }

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn better_alternate_is_opportunity() {
        let ds = Dataset::from_records(&two_route_records(60.0, 45.0, 3), 3);
        let g = ds.groups.values().next().unwrap();
        let a = opportunity_events(&cfg(), g, OpportunityMetric::MinRtt, 5.0);
        for w in &a {
            assert_eq!(w.status, WindowStatus::Event, "{w:?}");
            assert_eq!(w.alt_rank, Some(1));
            assert_eq!(w.alt_relationship, Some(Relationship::Transit));
            assert_eq!(w.pref_relationship, Some(Relationship::PrivatePeer));
            assert!(w.alt_longer);
            let (diff, _, _) = w.diff.unwrap();
            assert!((diff - 15.0).abs() < 2.0);
        }
    }

    #[test]
    fn equal_routes_are_quiet() {
        let ds = Dataset::from_records(&two_route_records(50.0, 50.0, 3), 3);
        let g = ds.groups.values().next().unwrap();
        let a = opportunity_events(&cfg(), g, OpportunityMetric::MinRtt, 5.0);
        assert!(a.iter().all(|w| w.status == WindowStatus::Quiet));
    }

    #[test]
    fn worse_alternate_is_quiet_with_negative_diff() {
        let ds = Dataset::from_records(&two_route_records(40.0, 55.0, 2), 2);
        let g = ds.groups.values().next().unwrap();
        let a = opportunity_events(&cfg(), g, OpportunityMetric::MinRtt, 5.0);
        for w in &a {
            assert_eq!(w.status, WindowStatus::Quiet);
            assert!(w.diff.unwrap().0 < -10.0);
        }
    }

    #[test]
    fn no_alternate_measurements_is_invalid() {
        let mut recs = two_route_records(50.0, 45.0, 2);
        recs.retain(|r| r.route_rank == 0);
        let ds = Dataset::from_records(&recs, 2);
        let g = ds.groups.values().next().unwrap();
        let a = opportunity_events(&cfg(), g, OpportunityMetric::MinRtt, 5.0);
        assert!(a.iter().all(|w| w.status == WindowStatus::Invalid));
    }

    #[test]
    fn minrtt_opportunity_vetoed_by_bad_alt_hdratio() {
        let group = GroupKey {
            pop: PopId(0),
            prefix: Prefix::new(0x0A000000, 16),
            country: 0,
            continent: 0,
        };
        let mut recs = Vec::new();
        for (rank, rtt, hdr, rel) in [
            (0u8, 60.0, 0.95, Relationship::PrivatePeer),
            (1u8, 45.0, 0.30, Relationship::Transit), // faster but can't sustain HD
        ] {
            for i in 0..60 {
                recs.push(SessionRecord {
                    group,
                    window: 0,
                    route_rank: rank,
                    relationship: rel,
                    longer_path: false,
                    more_prepended: false,
                    min_rtt_ms: rtt + (i as f64 - 30.0) * 0.05,
                    hdratio: Some((hdr + (i % 10) as f64 * 0.005).clamp(0.0, 1.0)),
                    bytes: 100,
                });
            }
        }
        let ds = Dataset::from_records(&recs, 1);
        let g = ds.groups.values().next().unwrap();
        let a = opportunity_events(&cfg(), g, OpportunityMetric::MinRtt, 5.0);
        assert_eq!(a[0].status, WindowStatus::Quiet, "HDratio veto must apply: {:?}", a[0]);
    }

    #[test]
    fn hdratio_opportunity_detected() {
        let group = GroupKey {
            pop: PopId(0),
            prefix: Prefix::new(0x0A000000, 16),
            country: 0,
            continent: 0,
        };
        let mut recs = Vec::new();
        for (rank, hdr, rel) in
            [(0u8, 0.4, Relationship::PublicPeer), (1u8, 0.9, Relationship::Transit)]
        {
            for i in 0..60 {
                recs.push(SessionRecord {
                    group,
                    window: 0,
                    route_rank: rank,
                    relationship: rel,
                    longer_path: false,
                    more_prepended: true,
                    min_rtt_ms: 50.0,
                    hdratio: Some((hdr + (i % 10) as f64 * 0.005).clamp(0.0, 1.0)),
                    bytes: 100,
                });
            }
        }
        let ds = Dataset::from_records(&recs, 1);
        let g = ds.groups.values().next().unwrap();
        let a = opportunity_events(&cfg(), g, OpportunityMetric::HdRatio, 0.05);
        assert_eq!(a[0].status, WindowStatus::Event);
        assert!(a[0].alt_prepended);
        assert!(a[0].diff.unwrap().0 > 0.4);
    }
}
