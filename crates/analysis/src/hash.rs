//! A fast, deterministic, non-cryptographic hasher for the hot record path.
//!
//! The per-session pipeline looks up a `GroupKey` (and, in the columnar
//! sink, a (group, window, rank) cell key) for every record. The standard
//! library `HashMap` defaults to SipHash-1-3, which is DoS-resistant but
//! costs tens of nanoseconds per key — the single most expensive step of
//! ingesting a record. Keys here are small structs of trusted, simulator
//! generated integers, so we use an FxHash-style multiply-xor hasher
//! (the scheme rustc itself uses for interning tables): one rotate, one
//! xor, one multiply per 8-byte word.
//!
//! Determinism matters beyond speed: the hasher is seedless, so map
//! iteration order — and therefore any figure that iterates a map without
//! sorting — is reproducible across runs and across processes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (a 64-bit prime close to 2^64/φ).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher: `h = (rotl5(h) ^ word) * SEED` per word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Tag with the length so "\0x" and "x" hash differently.
            self.add(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Zero-sized builder: `HashMap::default()` with this hasher needs no RNG.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast deterministic hasher.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::GroupKey;
    use edgeperf_routing::{PopId, Prefix};
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let k = GroupKey {
            pop: PopId(3),
            prefix: Prefix { base: 0x0a00_0000, len: 24 },
            country: 7,
            continent: 2,
        };
        assert_eq!(hash_of(&k), hash_of(&k.clone()));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let base = GroupKey {
            pop: PopId(0),
            prefix: Prefix { base: 0, len: 24 },
            country: 0,
            continent: 0,
        };
        let mut seen = FxHashSet::default();
        for pop in 0..16u16 {
            for b in 0..64u32 {
                let k =
                    GroupKey { pop: PopId(pop), prefix: Prefix { base: b << 8, len: 24 }, ..base };
                seen.insert(hash_of(&k));
            }
        }
        // All 1024 nearby keys must hash distinctly — the map degrades to
        // a linked scan otherwise.
        assert_eq!(seen.len(), 16 * 64);
    }

    #[test]
    fn byte_slices_length_tagged() {
        let mut a = FxHasher::default();
        a.write(b"x");
        let mut b = FxHasher::default();
        b.write(b"x\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_behaves_like_std() {
        let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
        let mut std_map: HashMap<u64, u64> = HashMap::new();
        for i in 0..10_000u64 {
            let k = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            fx.insert(k, i);
            std_map.insert(k, i);
        }
        assert_eq!(fx.len(), std_map.len());
        for (k, v) in &std_map {
            assert_eq!(fx.get(k), Some(v));
        }
    }
}
