//! Statistically valid aggregation comparisons (§3.4.1).
//!
//! A comparison of two aggregations is *valid* only when both sides have
//! at least 30 samples and the confidence interval of the difference of
//! medians is tight (< 10 ms for MinRTT_P50, < 0.1 for HDratio_P50).
//! Events (degradation / opportunity) are declared on the *lower bound*
//! of the CI exceeding the threshold, so noise cannot manufacture events.

use crate::config::AnalysisConfig;
use edgeperf_stats::median_ci::diff_of_medians_ci_sorted;

/// Result of comparing two aggregations on one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompareOutcome {
    /// Not enough samples or CI too wide — the window is excluded.
    Invalid,
    /// Valid comparison.
    Valid {
        /// Point difference of the medians (a − b).
        diff: f64,
        /// Lower CI bound of the difference.
        lo: f64,
        /// Upper CI bound of the difference.
        hi: f64,
    },
}

impl CompareOutcome {
    /// Is the difference confidently above `threshold`?
    /// (Lower-bound rule; `Invalid` is never an event.)
    pub fn event_at(&self, threshold: f64) -> bool {
        matches!(self, CompareOutcome::Valid { lo, .. } if *lo > threshold)
    }

    /// The point estimate, if valid.
    pub fn diff(&self) -> Option<f64> {
        match self {
            CompareOutcome::Valid { diff, .. } => Some(*diff),
            CompareOutcome::Invalid => None,
        }
    }
}

/// Compare medians of two **sorted** sample sets `a − b` under the
/// validity rules. `max_ci_width` selects the metric's tightness rule.
pub fn compare_medians(
    cfg: &AnalysisConfig,
    a_sorted: &[f64],
    b_sorted: &[f64],
    max_ci_width: f64,
) -> CompareOutcome {
    if a_sorted.len() < cfg.min_samples || b_sorted.len() < cfg.min_samples {
        return CompareOutcome::Invalid;
    }
    let ci = diff_of_medians_ci_sorted(a_sorted, b_sorted, cfg.confidence);
    if ci.width() >= max_ci_width {
        return CompareOutcome::Invalid;
    }
    CompareOutcome::Valid { diff: ci.diff, lo: ci.lo, hi: ci.hi }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(center: f64, spread: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| center + spread * (i as f64 / (n - 1) as f64 - 0.5)).collect()
    }

    #[test]
    fn too_few_samples_is_invalid() {
        let cfg = AnalysisConfig::default();
        let a = samples(50.0, 5.0, 10);
        let b = samples(40.0, 5.0, 100);
        assert_eq!(compare_medians(&cfg, &a, &b, 10.0), CompareOutcome::Invalid);
    }

    #[test]
    fn wide_ci_is_invalid() {
        let cfg = AnalysisConfig::default();
        // Very high variance, few samples → CI wider than 10 ms.
        let a = samples(50.0, 500.0, 30);
        let b = samples(40.0, 500.0, 30);
        assert_eq!(compare_medians(&cfg, &a, &b, 10.0), CompareOutcome::Invalid);
    }

    #[test]
    fn clear_difference_is_event() {
        let cfg = AnalysisConfig::default();
        let a = samples(60.0, 4.0, 200);
        let b = samples(40.0, 4.0, 200);
        let o = compare_medians(&cfg, &a, &b, 10.0);
        assert!(o.event_at(5.0), "{o:?}");
        assert!(!o.event_at(25.0));
        assert!((o.diff().unwrap() - 20.0).abs() < 0.5);
    }

    #[test]
    fn marginal_difference_is_not_event() {
        let cfg = AnalysisConfig::default();
        // True diff 6 ms but noisy: the lower bound should not clear 5 ms.
        let a = samples(46.0, 30.0, 40);
        let b = samples(40.0, 30.0, 40);
        let o = compare_medians(&cfg, &a, &b, 10.0);
        if let CompareOutcome::Valid { lo, .. } = o {
            assert!(lo < 5.0, "lo = {lo}");
        }
        assert!(!o.event_at(5.0));
    }

    #[test]
    fn invalid_never_events() {
        assert!(!CompareOutcome::Invalid.event_at(-100.0));
        assert_eq!(CompareOutcome::Invalid.diff(), None);
    }
}
