//! Sink persistence for checkpoint/resume.
//!
//! The study supervisor periodically snapshots its sink to disk so a
//! killed study can restart without recomputing merged prefixes. A sink
//! opts in by implementing [`PersistentSink`]: flatten the complete sink
//! state into a [`Value`] tree (encoded by the caller with the in-repo
//! `serde_json`) and rebuild it bit-for-bit from that tree.
//!
//! Round-trip contracts, each proven by tests here:
//!
//! - `Vec<SessionRecord>` — exact: every field of every record survives,
//!   including the `f64` bit patterns (the JSON layer prints shortest
//!   round-trip representations). This is the sink the supervised study
//!   path uses, and the basis of its bit-identical-resume guarantee.
//! - [`StreamingDataset`] — exact *state* round-trip: cells are stored as
//!   compressed digest centroids ([`TDigest::to_parts`]), so
//!   `load(save(ds))` equals `ds` post-flush — the same state every query
//!   already observes. Note the digest's *future* is path-dependent
//!   (compression points shift), so resuming a streaming study is
//!   statistically equivalent, not bit-identical; see DESIGN.md §10.
//!
//! [`TDigest::to_parts`]: edgeperf_stats::TDigest::to_parts

use crate::record::{GroupKey, SessionRecord};
use crate::sink::{RecordSink, StreamingCell, StreamingDataset, StreamingGroupData};
use crate::streaming::StreamingAggregation;
use edgeperf_routing::{PopId, Prefix, Relationship};
use edgeperf_stats::{Centroid, DigestParts};
use serde::{DeError, Value};

/// A [`RecordSink`] whose complete state can be written to and rebuilt
/// from a JSON value tree.
pub trait PersistentSink: RecordSink {
    /// Stable label stored in the checkpoint and checked on load, so a
    /// checkpoint written by one sink kind cannot restore another.
    fn kind() -> &'static str;

    /// Flatten the sink into a JSON value tree.
    fn save(&self) -> Value;

    /// Rebuild a sink from [`save`] output.
    ///
    /// [`save`]: PersistentSink::save
    fn load(value: &Value) -> Result<Self, DeError>
    where
        Self: Sized;
}

fn num(v: &Value, what: &str) -> Result<f64, DeError> {
    match v {
        Value::Num(n) => Ok(*n),
        other => Err(DeError::expected(what, other)),
    }
}

fn int(v: &Value, what: &str) -> Result<u64, DeError> {
    let n = num(v, what)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(DeError(format!("{what}: expected non-negative integer, got {n}")));
    }
    Ok(n as u64)
}

fn boolean(v: &Value, what: &str) -> Result<bool, DeError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(DeError::expected(what, other)),
    }
}

fn array<'v>(v: &'v Value, what: &str) -> Result<&'v [Value], DeError> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(DeError::expected(what, other)),
    }
}

fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    v.get(name).ok_or_else(|| DeError::missing(name))
}

fn rel_code(r: Relationship) -> f64 {
    match r {
        Relationship::PrivatePeer => 0.0,
        Relationship::PublicPeer => 1.0,
        Relationship::Transit => 2.0,
    }
}

fn rel_from_code(code: u64) -> Result<Relationship, DeError> {
    match code {
        0 => Ok(Relationship::PrivatePeer),
        1 => Ok(Relationship::PublicPeer),
        2 => Ok(Relationship::Transit),
        other => Err(DeError(format!("unknown relationship code {other}"))),
    }
}

fn key_value(k: &GroupKey) -> Value {
    Value::Array(vec![
        Value::Num(k.pop.0 as f64),
        Value::Num(k.prefix.base as f64),
        Value::Num(k.prefix.len as f64),
        Value::Num(k.country as f64),
        Value::Num(k.continent as f64),
    ])
}

fn key_from_value(v: &Value) -> Result<GroupKey, DeError> {
    let items = array(v, "group key")?;
    if items.len() != 5 {
        return Err(DeError(format!("group key: expected 5 fields, got {}", items.len())));
    }
    Ok(GroupKey {
        pop: PopId(int(&items[0], "pop")? as u16),
        prefix: Prefix::new(
            int(&items[1], "prefix.base")? as u32,
            int(&items[2], "prefix.len")? as u8,
        ),
        country: int(&items[3], "country")? as u16,
        continent: int(&items[4], "continent")? as u8,
    })
}

/// Exact record persistence, stored column-wise: one array per field,
/// index-aligned. `f64` columns round-trip bit-exactly through the JSON
/// layer's shortest-repr printing; `hdratio` uses `null` for untested
/// sessions.
impl PersistentSink for Vec<SessionRecord> {
    fn kind() -> &'static str {
        "records"
    }

    fn save(&self) -> Value {
        let col = |f: &dyn Fn(&SessionRecord) -> Value| Value::Array(self.iter().map(f).collect());
        Value::Object(vec![
            ("pop".into(), col(&|r| Value::Num(r.group.pop.0 as f64))),
            ("base".into(), col(&|r| Value::Num(r.group.prefix.base as f64))),
            ("plen".into(), col(&|r| Value::Num(r.group.prefix.len as f64))),
            ("country".into(), col(&|r| Value::Num(r.group.country as f64))),
            ("continent".into(), col(&|r| Value::Num(r.group.continent as f64))),
            ("window".into(), col(&|r| Value::Num(r.window as f64))),
            ("rank".into(), col(&|r| Value::Num(r.route_rank as f64))),
            ("rel".into(), col(&|r| Value::Num(rel_code(r.relationship)))),
            ("longer".into(), col(&|r| Value::Bool(r.longer_path))),
            ("prepended".into(), col(&|r| Value::Bool(r.more_prepended))),
            ("min_rtt".into(), col(&|r| Value::Num(r.min_rtt_ms))),
            ("hdratio".into(), col(&|r| r.hdratio.map_or(Value::Null, Value::Num))),
            ("bytes".into(), col(&|r| Value::Num(r.bytes as f64))),
        ])
    }

    fn load(value: &Value) -> Result<Self, DeError> {
        let col = |name: &str| -> Result<&[Value], DeError> { array(field(value, name)?, name) };
        let pop = col("pop")?;
        let base = col("base")?;
        let plen = col("plen")?;
        let country = col("country")?;
        let continent = col("continent")?;
        let window = col("window")?;
        let rank = col("rank")?;
        let rel = col("rel")?;
        let longer = col("longer")?;
        let prepended = col("prepended")?;
        let min_rtt = col("min_rtt")?;
        let hdratio = col("hdratio")?;
        let bytes = col("bytes")?;
        let n = pop.len();
        for (name, c) in [
            ("base", base),
            ("plen", plen),
            ("country", country),
            ("continent", continent),
            ("window", window),
            ("rank", rank),
            ("rel", rel),
            ("longer", longer),
            ("prepended", prepended),
            ("min_rtt", min_rtt),
            ("hdratio", hdratio),
            ("bytes", bytes),
        ] {
            if c.len() != n {
                return Err(DeError(format!("column {name}: length {} != {n}", c.len())));
            }
        }
        (0..n)
            .map(|i| {
                Ok(SessionRecord {
                    group: GroupKey {
                        pop: PopId(int(&pop[i], "pop")? as u16),
                        prefix: Prefix::new(
                            int(&base[i], "base")? as u32,
                            int(&plen[i], "plen")? as u8,
                        ),
                        country: int(&country[i], "country")? as u16,
                        continent: int(&continent[i], "continent")? as u8,
                    },
                    window: int(&window[i], "window")? as u32,
                    route_rank: int(&rank[i], "rank")? as u8,
                    relationship: rel_from_code(int(&rel[i], "rel")?)?,
                    longer_path: boolean(&longer[i], "longer")?,
                    more_prepended: boolean(&prepended[i], "prepended")?,
                    min_rtt_ms: num(&min_rtt[i], "min_rtt")?,
                    hdratio: match &hdratio[i] {
                        Value::Null => None,
                        v => Some(num(v, "hdratio")?),
                    },
                    bytes: int(&bytes[i], "bytes")?,
                })
            })
            .collect()
    }
}

fn digest_value(parts: &DigestParts) -> Value {
    Value::Object(vec![
        ("compression".into(), Value::Num(parts.compression)),
        ("min".into(), Value::Num(if parts.centroids.is_empty() { 0.0 } else { parts.min })),
        ("max".into(), Value::Num(if parts.centroids.is_empty() { 0.0 } else { parts.max })),
        ("compressions".into(), Value::Num(parts.compressions as f64)),
        (
            "c".into(),
            Value::Array(
                parts
                    .centroids
                    .iter()
                    .flat_map(|c| [Value::Num(c.mean), Value::Num(c.weight)])
                    .collect(),
            ),
        ),
    ])
}

fn digest_from_value(v: &Value) -> Result<DigestParts, DeError> {
    let flat = array(field(v, "c")?, "centroids")?;
    if flat.len() % 2 != 0 {
        return Err(DeError(format!("centroid array has odd length {}", flat.len())));
    }
    let centroids = flat
        .chunks(2)
        .map(|pair| Ok(Centroid { mean: num(&pair[0], "mean")?, weight: num(&pair[1], "weight")? }))
        .collect::<Result<Vec<_>, DeError>>()?;
    let (min, max) = if centroids.is_empty() {
        (f64::INFINITY, f64::NEG_INFINITY)
    } else {
        (num(field(v, "min")?, "min")?, num(field(v, "max")?, "max")?)
    };
    Ok(DigestParts {
        compression: num(field(v, "compression")?, "compression")?,
        min,
        max,
        compressions: int(field(v, "compressions")?, "compressions")?,
        centroids,
    })
}

fn cell_value(cell: &StreamingCell) -> Value {
    let (minrtt, hdratio, bytes) = cell.agg.to_parts();
    Value::Object(vec![
        ("rel".into(), Value::Num(rel_code(cell.relationship))),
        ("longer".into(), Value::Bool(cell.longer_path)),
        ("prepended".into(), Value::Bool(cell.more_prepended)),
        ("bytes".into(), Value::Num(bytes as f64)),
        ("minrtt".into(), digest_value(&minrtt)),
        ("hdratio".into(), digest_value(&hdratio)),
    ])
}

fn cell_from_value(v: &Value) -> Result<StreamingCell, DeError> {
    Ok(StreamingCell {
        agg: StreamingAggregation::from_parts(
            digest_from_value(field(v, "minrtt")?)?,
            digest_from_value(field(v, "hdratio")?)?,
            int(field(v, "bytes")?, "bytes")?,
        ),
        relationship: rel_from_code(int(field(v, "rel")?, "rel")?)?,
        longer_path: boolean(field(v, "longer")?, "longer")?,
        more_prepended: boolean(field(v, "prepended")?, "prepended")?,
    })
}

/// Bounded-memory persistence: groups in insertion order, each cell as
/// its compressed digest parts. See the module docs for the exact
/// round-trip contract.
impl PersistentSink for StreamingDataset {
    fn kind() -> &'static str {
        "streaming"
    }

    fn save(&self) -> Value {
        let groups = self
            .iter()
            .map(|(key, g)| {
                let ranks = g
                    .ranks
                    .iter()
                    .map(|ws| {
                        Value::Array(
                            ws.iter()
                                .map(|cell| cell.as_ref().map_or(Value::Null, cell_value))
                                .collect(),
                        )
                    })
                    .collect();
                Value::Object(vec![
                    ("key".into(), key_value(key)),
                    ("total_bytes".into(), Value::Num(g.total_bytes as f64)),
                    ("ranks".into(), Value::Array(ranks)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("n_windows".into(), Value::Num(self.n_windows() as f64)),
            ("groups".into(), Value::Array(groups)),
        ])
    }

    fn load(value: &Value) -> Result<Self, DeError> {
        let n_windows = int(field(value, "n_windows")?, "n_windows")? as usize;
        let mut ds = StreamingDataset::new(n_windows);
        for gv in array(field(value, "groups")?, "groups")? {
            let key = key_from_value(field(gv, "key")?)?;
            let mut group = StreamingGroupData {
                ranks: Vec::new(),
                total_bytes: int(field(gv, "total_bytes")?, "total_bytes")?,
            };
            for rv in array(field(gv, "ranks")?, "ranks")? {
                let ws = array(rv, "windows")?;
                if ws.len() != n_windows {
                    return Err(DeError(format!(
                        "rank has {} windows, dataset has {n_windows}",
                        ws.len()
                    )));
                }
                group.ranks.push(
                    ws.iter()
                        .map(
                            |cv| {
                                if cv.is_null() {
                                    Ok(None)
                                } else {
                                    cell_from_value(cv).map(Some)
                                }
                            },
                        )
                        .collect::<Result<Vec<_>, DeError>>()?,
                );
            }
            ds.insert_group(key, group);
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecordShard;

    fn rec(prefix: u32, window: u32, rank: u8, rtt: f64, hdr: Option<f64>) -> SessionRecord {
        SessionRecord {
            group: GroupKey {
                pop: PopId((prefix % 3) as u16),
                prefix: Prefix::new(prefix << 16, 16),
                country: (prefix % 7) as u16,
                continent: (prefix % 5) as u8,
            },
            window,
            route_rank: rank,
            relationship: match prefix % 3 {
                0 => Relationship::PrivatePeer,
                1 => Relationship::PublicPeer,
                _ => Relationship::Transit,
            },
            longer_path: rank > 0,
            more_prepended: prefix.is_multiple_of(2),
            min_rtt_ms: rtt,
            hdratio: hdr,
            bytes: 100 + prefix as u64,
        }
    }

    fn synthetic(n: usize) -> Vec<SessionRecord> {
        (0..n)
            .map(|i| {
                let u = (i as f64 * 0.618_033_988_749).fract();
                rec(
                    (i % 13) as u32,
                    (i % 4) as u32,
                    (i % 2) as u8,
                    20.0 + 60.0 * u,
                    (i % 3 != 0).then_some(u),
                )
            })
            .collect()
    }

    #[test]
    fn vec_round_trip_is_bit_identical_through_json_text() {
        let records = synthetic(1_500);
        let text = serde_json::to_string(&records.save()).unwrap();
        let restored = <Vec<SessionRecord>>::load(&serde_json::parse(&text).unwrap()).unwrap();
        assert_eq!(restored.len(), records.len());
        for (a, b) in records.iter().zip(&restored) {
            assert_eq!(a.group, b.group);
            assert_eq!(a.window, b.window);
            assert_eq!(a.route_rank, b.route_rank);
            assert_eq!(a.relationship, b.relationship);
            assert_eq!(a.longer_path, b.longer_path);
            assert_eq!(a.more_prepended, b.more_prepended);
            assert_eq!(a.min_rtt_ms.to_bits(), b.min_rtt_ms.to_bits());
            assert_eq!(a.hdratio.map(f64::to_bits), b.hdratio.map(f64::to_bits));
            assert_eq!(a.bytes, b.bytes);
        }
    }

    #[test]
    fn empty_vec_round_trips() {
        let empty: Vec<SessionRecord> = Vec::new();
        let restored = <Vec<SessionRecord>>::load(&empty.save()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn streaming_round_trip_preserves_query_state() {
        let mut ds = StreamingDataset::new(4);
        for r in synthetic(3_000) {
            RecordShard::push(&mut ds, r);
        }
        ds.flush();
        let text = serde_json::to_string(&ds.save()).unwrap();
        let restored = StreamingDataset::load(&serde_json::parse(&text).unwrap()).unwrap();
        assert_eq!(restored.len(), ds.len());
        assert_eq!(restored.n_windows(), ds.n_windows());
        assert_eq!(restored.total_bytes(), ds.total_bytes());
        assert_eq!(restored.cell_count(), ds.cell_count());
        assert_eq!(restored.record_count(), ds.record_count());
        for ((ka, ga), (kb, gb)) in ds.iter().zip(restored.iter()) {
            assert_eq!(ka, kb, "group order preserved");
            assert_eq!(ga.total_bytes, gb.total_bytes);
            for (rank, ws) in ga.ranks.iter().enumerate() {
                for (w, cell) in ws.iter().enumerate() {
                    let (Some(a), Some(b)) = (cell.as_ref(), gb.cell(rank, w)) else {
                        assert!(cell.is_none() && gb.cell(rank, w).is_none());
                        continue;
                    };
                    assert_eq!(a.relationship, b.relationship);
                    assert_eq!(a.agg.n(), b.agg.n());
                    assert_eq!(a.agg.bytes(), b.agg.bytes());
                    for &q in &[0.0, 0.1, 0.5, 0.9, 1.0] {
                        assert_eq!(
                            a.agg.min_rtt_quantile(q).to_bits(),
                            b.agg.min_rtt_quantile(q).to_bits(),
                            "rank {rank} window {w} q {q}"
                        );
                    }
                    assert_eq!(
                        a.agg.hdratio_quantile(0.5).map(f64::to_bits),
                        b.agg.hdratio_quantile(0.5).map(f64::to_bits)
                    );
                }
            }
        }
    }

    #[test]
    fn restored_streaming_sink_accepts_further_pushes() {
        let records = synthetic(2_000);
        let mut ds = StreamingDataset::new(4);
        for r in &records[..1_000] {
            RecordShard::push(&mut ds, *r);
        }
        ds.flush();
        let mut restored = StreamingDataset::load(&ds.save()).unwrap();
        for r in &records[1_000..] {
            RecordShard::push(&mut ds, *r);
            RecordShard::push(&mut restored, *r);
        }
        ds.flush();
        restored.flush();
        assert_eq!(restored.record_count(), ds.record_count());
        assert_eq!(restored.total_bytes(), ds.total_bytes());
    }

    #[test]
    fn load_rejects_malformed_trees() {
        assert!(<Vec<SessionRecord>>::load(&Value::Null).is_err());
        assert!(StreamingDataset::load(&Value::Object(vec![])).is_err());
        // Mismatched column lengths.
        let mut v = synthetic(10).save();
        if let Value::Object(members) = &mut v {
            for (k, col) in members.iter_mut() {
                if k == "window" {
                    *col = Value::Array(vec![]);
                }
            }
        }
        assert!(<Vec<SessionRecord>>::load(&v).is_err());
        // Unknown relationship code.
        let mut v = synthetic(3).save();
        if let Value::Object(members) = &mut v {
            for (k, col) in members.iter_mut() {
                if k == "rel" {
                    *col = Value::Array(vec![Value::Num(9.0); 3]);
                }
            }
        }
        assert!(<Vec<SessionRecord>>::load(&v).is_err());
    }
}
