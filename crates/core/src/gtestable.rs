//! `Gtestable` — the maximum goodput a transaction can test for
//! (paper §3.2.2, equations 1–3).
//!
//! Under ideal conditions (no loss, fixed RTT, exponential slow-start
//! growth whenever cwnd-limited) a response of `Btotal` bytes starting
//! with window `Wstart` transfers in
//!
//! > m = ⌈log₂(Btotal/Wstart + 1)⌉                         (eq. 1)
//!
//! round trips, with the window at the start of round n being
//!
//! > WSS(n) = 2^(n−1) · Wstart                              (eq. 2)
//!
//! The most bytes the transfer moves in any single round trip — and hence
//! the highest goodput it can demonstrate — is the larger of the
//! penultimate round's window and the final round's remaining bytes:
//!
//! > Gtestable = max(WSS(m−1), Btotal − Σᵢ₌₁^(m−1) WSS(i)) / MinRTT  (eq. 3)
//!
//! `Wstart` intentionally models *ideal* growth across a session's
//! transactions (never the possibly-collapsed real window): a transaction
//! that would have had a big window under good conditions but measured
//! slow is exactly the evidence of poor performance we must keep (§3.2.2).

use crate::types::{Nanos, SECOND};

/// Number of round trips `m` to transfer `btotal` bytes starting from a
/// window of `wstart` bytes under ideal slow-start doubling (eq. 1).
///
/// Computed in integer arithmetic: the smallest `m` with
/// `(2^m − 1)·wstart ≥ btotal`.
///
/// # Panics
/// Panics if `wstart` or `btotal` is zero.
pub fn rounds(btotal: u64, wstart: u64) -> u32 {
    assert!(wstart > 0, "wstart must be positive");
    assert!(btotal > 0, "btotal must be positive");
    let mut m = 1u32;
    let mut capacity = wstart; // (2^m - 1) * wstart
    let mut window = wstart; // 2^(m-1) * wstart (bytes sent in round m)
    while capacity < btotal {
        window = window.saturating_mul(2);
        capacity = capacity.saturating_add(window);
        m += 1;
    }
    m
}

/// Window at the start of round `n` (1-based) under ideal doubling
/// (eq. 2): `2^(n−1) · wstart`.
pub fn wss(n: u32, wstart: u64) -> u64 {
    assert!(n >= 1, "rounds are 1-based");
    wstart.saturating_mul(1u64.checked_shl(n - 1).unwrap_or(u64::MAX))
}

/// Total bytes sent in rounds 1..=k: `(2^k − 1) · wstart`.
pub fn sum_wss(k: u32, wstart: u64) -> u64 {
    if k == 0 {
        return 0;
    }
    let factor = 1u64.checked_shl(k).map_or(u64::MAX, |v| v - 1);
    wstart.saturating_mul(factor)
}

/// Maximum testable goodput in bits/second (eq. 3).
///
/// For single-round transfers (`m == 1`) this is simply
/// `btotal / MinRTT`; otherwise the max of the last round's bytes and the
/// penultimate round's window, over one MinRTT.
/// # Example (the paper's Figure-4 transaction 2)
///
/// ```
/// use edgeperf_core::gtestable::gtestable_bps;
/// use edgeperf_core::MILLISECOND;
/// // 24 packets of 1500 B with a 10-packet window at 60 ms.
/// let g = gtestable_bps(24 * 1500, 10 * 1500, 60 * MILLISECOND);
/// assert!((g - 2_800_000.0).abs() < 1.0); // 2.8 Mbps
/// ```
pub fn gtestable_bps(btotal: u64, wstart: u64, min_rtt: Nanos) -> f64 {
    assert!(min_rtt > 0, "MinRTT must be positive");
    let m = rounds(btotal, wstart);
    let best_round_bytes = if m == 1 {
        btotal
    } else {
        let last = btotal - sum_wss(m - 1, wstart);
        let penultimate = wss(m - 1, wstart);
        last.max(penultimate)
    };
    best_round_bytes as f64 * 8.0 * SECOND as f64 / min_rtt as f64
}

/// `Wstart` for the transaction *after* one that transferred
/// `prev_btotal` bytes from a window of `prev_wstart`: the larger of the
/// new transaction's measured `Wnic` and the ideal window at the end of
/// the previous transaction, `WSS(m_prev)` (§3.2.2, footnote 4).
pub fn next_wstart(prev_wstart: u64, prev_btotal: u64, wnic: u64) -> u64 {
    let m_prev = rounds(prev_btotal, prev_wstart);
    wss(m_prev, prev_wstart).max(wnic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MILLISECOND;

    const MSS: u64 = 1500; // the paper's Figure-4 example uses 1500 B packets
    const RTT: Nanos = 60 * MILLISECOND;

    /// Paper Figure 4, transaction 1: 2 packets, Wstart = 10 packets.
    #[test]
    fn figure4_txn1() {
        let b = 2 * MSS;
        let w = 10 * MSS;
        assert_eq!(rounds(b, w), 1);
        let g = gtestable_bps(b, w, RTT);
        assert!((g - 400_000.0).abs() < 1.0, "g = {g}"); // 0.4 Mbps
    }

    /// Paper Figure 4, transaction 2: 24 packets, Wstart = 10 packets.
    /// m = 2, WSS(2) = 20, Gtestable = 14 packets / 60 ms = 2.8 Mbps.
    #[test]
    fn figure4_txn2() {
        let b = 24 * MSS;
        let w = 10 * MSS;
        assert_eq!(rounds(b, w), 2);
        assert_eq!(wss(2, w), 20 * MSS);
        let g = gtestable_bps(b, w, RTT);
        assert!((g - 2_800_000.0).abs() < 1.0, "g = {g}");
    }

    /// Paper Figure 4, transaction 3: 14 packets, Wstart = max(Wnic,
    /// WSS(m₂)) = 20 packets → one round, 2.8 Mbps.
    #[test]
    fn figure4_txn3() {
        let w3 = next_wstart(10 * MSS, 24 * MSS, 10 * MSS);
        assert_eq!(w3, 20 * MSS);
        let b = 14 * MSS;
        assert_eq!(rounds(b, w3), 1);
        let g = gtestable_bps(b, w3, RTT);
        assert!((g - 2_800_000.0).abs() < 1.0, "g = {g}");
    }

    #[test]
    fn rounds_matches_log_formula() {
        // m = ceil(log2(B/W + 1)) on a spread of values.
        for &(b, w) in &[(1u64, 10u64), (10, 10), (11, 10), (30, 10), (31, 10), (1_000_000, 14_600)]
        {
            let expect = ((b as f64 / w as f64 + 1.0).log2()).ceil().max(1.0) as u32;
            assert_eq!(rounds(b, w), expect, "b={b} w={w}");
        }
    }

    #[test]
    fn exact_boundary_rounds() {
        // B = (2^m - 1) W lands exactly on m rounds.
        let w = 1000;
        assert_eq!(rounds(w, w), 1);
        assert_eq!(rounds(3 * w, w), 2);
        assert_eq!(rounds(3 * w + 1, w), 3);
        assert_eq!(rounds(7 * w, w), 3);
    }

    #[test]
    fn sum_wss_is_geometric() {
        assert_eq!(sum_wss(0, 100), 0);
        assert_eq!(sum_wss(1, 100), 100);
        assert_eq!(sum_wss(3, 100), 700);
        assert_eq!(wss(1, 100) + wss(2, 100) + wss(3, 100), sum_wss(3, 100));
    }

    #[test]
    fn gtestable_single_round_is_b_over_rtt() {
        let g = gtestable_bps(3_000, 15_000, 100 * MILLISECOND);
        assert!((g - 240_000.0).abs() < 1.0);
    }

    #[test]
    fn gtestable_monotone_in_wstart() {
        // A bigger starting window can only raise (or keep) testability.
        let b = 50_000;
        let mut prev = 0.0;
        for w in [1_500u64, 3_000, 6_000, 15_000, 30_000, 60_000] {
            let g = gtestable_bps(b, w, RTT);
            assert!(g >= prev, "w={w}: {g} < {prev}");
            prev = g;
        }
    }

    #[test]
    fn next_wstart_prefers_larger_wnic() {
        // If the measured Wnic exceeds the modeled ideal, use it.
        assert_eq!(next_wstart(15_000, 36_000, 50_000), 50_000);
    }

    #[test]
    fn saturating_behaviour_on_huge_inputs() {
        // Must not overflow/panic even for absurd sizes.
        let m = rounds(u64::MAX / 2, 1);
        assert!(m >= 60);
        let _ = gtestable_bps(u64::MAX / 2, 1, 1);
        let _ = sum_wss(200, u64::MAX / 2);
    }

    #[test]
    #[should_panic]
    fn zero_wstart_panics() {
        rounds(100, 0);
    }

    #[test]
    #[should_panic]
    fn zero_minrtt_panics() {
        gtestable_bps(100, 100, 0);
    }
}
