//! Typed errors for the edgeperf API surface.
//!
//! Replaces the `Result<_, String>` plumbing that ingestion and analysis
//! configuration grew organically. Every variant keeps the context a
//! caller needs programmatically (field name, offending value, line
//! number) while `Display` reproduces the exact message text the CLI has
//! always printed, so scripts parsing stderr keep working.

use std::fmt;

/// Any error the edgeperf pipeline surfaces to callers.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeperfError {
    /// A numeric field held NaN or ±∞.
    NonFinite {
        /// Dotted path of the offending field (e.g. `responses[2].first_tx_ms`).
        field: String,
        /// The rejected value.
        value: f64,
    },
    /// A timestamp field was negative.
    NegativeTimestamp {
        /// Dotted path of the offending field.
        field: String,
        /// The rejected value.
        value: f64,
    },
    /// `min_rtt_ms` was negative or non-finite.
    InvalidMinRtt {
        /// The rejected value.
        value: f64,
    },
    /// Neither `duration_ms` nor any `full_ack_ms` was present, so the
    /// session span cannot be established.
    UnknownDuration,
    /// A JSONL line failed to parse at all.
    Json {
        /// The parser's message.
        message: String,
    },
    /// A live-ingest record arrived behind the stream watermark: its
    /// window had already been closed and summarized, so the record can
    /// no longer be folded in. Counted under `ingest.reject.late`.
    LateRecord {
        /// The record's event timestamp (ms).
        ts_ms: f64,
        /// The watermark at rejection time (ms).
        watermark_ms: f64,
    },
    /// A live-ingest timestamp maps to a window index beyond the ring's
    /// `u32` index space (`floor(ts / window) > u32::MAX`). The old code
    /// saturated the cast, silently collapsing every far-future record
    /// into one never-closing window; now the record is rejected at the
    /// point of ingest. Counted under `ingest.reject.window_overflow`.
    WindowOverflow {
        /// The record's event timestamp (ms).
        ts_ms: f64,
        /// The ring's window length (ms).
        window_ms: f64,
    },
    /// A binary wire frame could not be decoded (bad preamble, short
    /// length prefix, or invalid packed fields). Unlike per-line JSONL
    /// errors there is no way to resynchronize a corrupt binary stream,
    /// so the connection is closed after counting the reject.
    Frame {
        /// What was wrong with the frame.
        message: String,
    },
    /// An on-disk window segment failed validation (bad magic or
    /// version, truncation, checksum mismatch, invalid packed fields).
    /// Segments are written atomically, so this indicates external
    /// corruption — the store surfaces it instead of serving bad cells.
    Segment {
        /// What was wrong with the segment.
        message: String,
    },
    /// An [`AnalysisConfig`]-style parameter was out of range.
    ///
    /// [`AnalysisConfig`]: https://docs.rs/edgeperf-analysis
    InvalidConfig {
        /// The parameter name.
        field: &'static str,
        /// Why it was rejected.
        message: String,
    },
    /// An OS thread could not be spawned (EMFILE / thread exhaustion).
    /// The live server refuses the work that needed the thread instead
    /// of panicking: a failed reader spawn drops that one connection
    /// while the acceptor keeps accepting.
    Spawn {
        /// What the thread was for (`"worker"`, `"reader"`, ...).
        what: &'static str,
        /// The OS error message.
        message: String,
    },
}

impl EdgeperfError {
    /// Stable, low-cardinality label for metrics (`ingest.reject.<reason>`).
    pub fn reason(&self) -> &'static str {
        match self {
            EdgeperfError::NonFinite { .. } => "non_finite",
            EdgeperfError::NegativeTimestamp { .. } => "negative_timestamp",
            EdgeperfError::InvalidMinRtt { .. } => "invalid_min_rtt",
            EdgeperfError::UnknownDuration => "unknown_duration",
            EdgeperfError::Json { .. } => "json",
            EdgeperfError::LateRecord { .. } => "late",
            EdgeperfError::WindowOverflow { .. } => "window_overflow",
            EdgeperfError::Frame { .. } => "frame",
            EdgeperfError::Segment { .. } => "segment",
            EdgeperfError::InvalidConfig { .. } => "invalid_config",
            EdgeperfError::Spawn { .. } => "spawn",
        }
    }
}

impl fmt::Display for EdgeperfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeperfError::NonFinite { field, value } => {
                write!(f, "{field}: non-finite value {value}")
            }
            EdgeperfError::NegativeTimestamp { field, value } => {
                write!(f, "{field}: negative timestamp {value}")
            }
            EdgeperfError::InvalidMinRtt { value } => {
                write!(f, "min_rtt_ms: invalid value {value}")
            }
            EdgeperfError::UnknownDuration => write!(
                f,
                "cannot determine session duration: duration_ms absent and no response has \
                 full_ack_ms"
            ),
            EdgeperfError::Json { message } => write!(f, "{message}"),
            EdgeperfError::LateRecord { ts_ms, watermark_ms } => {
                write!(f, "ts_ms {ts_ms} is behind the watermark {watermark_ms}")
            }
            EdgeperfError::WindowOverflow { ts_ms, window_ms } => {
                write!(
                    f,
                    "ts_ms {ts_ms} maps past the window-index horizon ({window_ms} ms windows)"
                )
            }
            EdgeperfError::Frame { message } => write!(f, "binary frame: {message}"),
            EdgeperfError::Segment { message } => write!(f, "window segment: {message}"),
            EdgeperfError::InvalidConfig { field, message } => {
                write!(f, "invalid config: {field}: {message}")
            }
            EdgeperfError::Spawn { what, message } => {
                write!(f, "spawn {what} thread: {message}")
            }
        }
    }
}

impl std::error::Error for EdgeperfError {}

/// An [`EdgeperfError`] pinned to a 1-based JSONL line number.
#[derive(Debug, Clone, PartialEq)]
pub struct LineError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong on that line.
    pub error: EdgeperfError,
}

impl fmt::Display for LineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.error)
    }
}

impl std::error::Error for LineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CLI prints these messages to stderr; they are part of the
    /// observable interface and must not drift when variants change.
    #[test]
    fn display_is_compatible_with_the_string_era() {
        let cases: Vec<(EdgeperfError, &str)> = vec![
            (
                EdgeperfError::NonFinite {
                    field: "responses[0].issued_at_ms".into(),
                    value: f64::INFINITY,
                },
                "responses[0].issued_at_ms: non-finite value inf",
            ),
            (
                EdgeperfError::NegativeTimestamp { field: "duration_ms".into(), value: -3.0 },
                "duration_ms: negative timestamp -3",
            ),
            (EdgeperfError::InvalidMinRtt { value: -1.0 }, "min_rtt_ms: invalid value -1"),
            (
                EdgeperfError::UnknownDuration,
                "cannot determine session duration: duration_ms absent and no response has \
                 full_ack_ms",
            ),
            (
                EdgeperfError::Json { message: "expected value at line 1".into() },
                "expected value at line 1",
            ),
            (
                EdgeperfError::LateRecord { ts_ms: 1000.0, watermark_ms: 2500.0 },
                "ts_ms 1000 is behind the watermark 2500",
            ),
            (
                EdgeperfError::WindowOverflow { ts_ms: 4.0e15, window_ms: 900000.0 },
                "ts_ms 4000000000000000 maps past the window-index horizon (900000 ms windows)",
            ),
            (
                EdgeperfError::Frame { message: "length prefix 3 below minimum 44".into() },
                "binary frame: length prefix 3 below minimum 44",
            ),
            (
                EdgeperfError::Segment { message: "checksum mismatch".into() },
                "window segment: checksum mismatch",
            ),
            (
                EdgeperfError::Spawn { what: "reader", message: "Resource exhausted".into() },
                "spawn reader thread: Resource exhausted",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
        let le = LineError { line: 7, error: EdgeperfError::UnknownDuration };
        assert!(le.to_string().starts_with("line 7: cannot determine"));
    }

    #[test]
    fn reasons_are_stable_metric_labels() {
        assert_eq!(EdgeperfError::UnknownDuration.reason(), "unknown_duration");
        assert_eq!(EdgeperfError::Json { message: String::new() }.reason(), "json");
        assert_eq!(
            EdgeperfError::NegativeTimestamp { field: "t".into(), value: -1.0 }.reason(),
            "negative_timestamp"
        );
        assert_eq!(EdgeperfError::LateRecord { ts_ms: 0.0, watermark_ms: 1.0 }.reason(), "late");
        assert_eq!(
            EdgeperfError::WindowOverflow { ts_ms: 0.0, window_ms: 1.0 }.reason(),
            "window_overflow"
        );
        assert_eq!(EdgeperfError::Frame { message: String::new() }.reason(), "frame");
        assert_eq!(EdgeperfError::Segment { message: String::new() }.reason(), "segment");
        assert_eq!(
            EdgeperfError::Spawn { what: "worker", message: String::new() }.reason(),
            "spawn"
        );
    }
}
