//! Windowed MinRTT tracking (paper §3.1).
//!
//! The Linux kernel maintains the minimum RTT over a configurable window
//! (5 minutes in the paper's deployment); recording it at session
//! termination captures the session-lifetime minimum for the vast
//! majority of sessions, which end within the window. Implemented as the
//! classic monotone-deque sliding-window minimum: O(1) amortized.

use crate::types::Nanos;
use std::collections::VecDeque;

/// Sliding-window minimum over RTT samples.
#[derive(Debug, Clone)]
pub struct MinRttTracker {
    window: Nanos,
    /// (sample time, rtt); rtts strictly increasing front→back.
    deque: VecDeque<(Nanos, Nanos)>,
}

impl MinRttTracker {
    /// Tracker with the given window length (the paper uses 5 minutes).
    pub fn new(window: Nanos) -> Self {
        assert!(window > 0);
        MinRttTracker { window, deque: VecDeque::new() }
    }

    /// Record an RTT sample observed at `now`. Times must be monotone.
    pub fn on_sample(&mut self, now: Nanos, rtt: Nanos) {
        if let Some(&(t, _)) = self.deque.back() {
            assert!(now >= t, "samples must be time-ordered");
        }
        // Evict samples that can never be the minimum again.
        while matches!(self.deque.back(), Some(&(_, r)) if r >= rtt) {
            self.deque.pop_back();
        }
        self.deque.push_back((now, rtt));
        self.expire(now);
    }

    /// Minimum RTT over the window ending at `now`.
    pub fn current(&mut self, now: Nanos) -> Option<Nanos> {
        self.expire(now);
        self.deque.front().map(|&(_, r)| r)
    }

    fn expire(&mut self, now: Nanos) {
        let cutoff = now.saturating_sub(self.window);
        while matches!(self.deque.front(), Some(&(t, _)) if t < cutoff) {
            self.deque.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MILLISECOND, SECOND};

    const WIN: Nanos = 300 * SECOND; // 5 minutes

    #[test]
    fn tracks_simple_minimum() {
        let mut t = MinRttTracker::new(WIN);
        t.on_sample(0, 50 * MILLISECOND);
        t.on_sample(SECOND, 40 * MILLISECOND);
        t.on_sample(2 * SECOND, 60 * MILLISECOND);
        assert_eq!(t.current(3 * SECOND), Some(40 * MILLISECOND));
    }

    #[test]
    fn old_minimum_expires() {
        let mut t = MinRttTracker::new(WIN);
        t.on_sample(0, 20 * MILLISECOND); // will expire
        t.on_sample(100 * SECOND, 50 * MILLISECOND);
        assert_eq!(t.current(100 * SECOND), Some(20 * MILLISECOND));
        // 6 minutes later the 20 ms sample has left the window.
        assert_eq!(t.current(360 * SECOND), Some(50 * MILLISECOND));
    }

    #[test]
    fn empty_tracker_has_no_minimum() {
        let mut t = MinRttTracker::new(WIN);
        assert_eq!(t.current(SECOND), None);
    }

    #[test]
    fn all_samples_expired_yields_none() {
        let mut t = MinRttTracker::new(SECOND);
        t.on_sample(0, 30 * MILLISECOND);
        assert_eq!(t.current(10 * SECOND), None);
    }

    #[test]
    fn equal_rtts_keep_latest() {
        // Keeping the most recent of equal samples extends lifetime.
        let mut t = MinRttTracker::new(10 * SECOND);
        t.on_sample(0, 30 * MILLISECOND);
        t.on_sample(8 * SECOND, 30 * MILLISECOND);
        assert_eq!(t.current(15 * SECOND), Some(30 * MILLISECOND));
    }

    #[test]
    fn deque_stays_small_on_monotone_decreasing() {
        let mut t = MinRttTracker::new(WIN);
        for i in 0..1000u64 {
            t.on_sample(i * MILLISECOND, (2000 - i) * MILLISECOND);
        }
        // Every new sample evicts the rest: single element.
        assert_eq!(t.deque.len(), 1);
        assert_eq!(t.current(SECOND), Some(1001 * MILLISECOND));
    }

    #[test]
    #[should_panic]
    fn out_of_order_samples_panic() {
        let mut t = MinRttTracker::new(WIN);
        t.on_sample(SECOND, 10 * MILLISECOND);
        t.on_sample(0, 10 * MILLISECOND);
    }
}
