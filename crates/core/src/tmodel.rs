//! `Tmodel` — deciding whether a transaction achieved a tested rate
//! (paper §3.2.3).
//!
//! The real transfer time `Ttotal` is compared against a best-case model
//! transaction through a bottleneck of available bandwidth `R`: the model
//! sender doubles its window each round (starting from `Wnic`) until the
//! window supports `R`, then delivers at exactly `R`, plus one MinRTT for
//! the final acknowledgement:
//!
//! > Tmodel(R) = n·MinRTT + (Btotal − sent(n))/R + MinRTT
//!
//! If `Ttotal ≤ Tmodel(R)` the real transfer delivered at ≥ R. The
//! estimated delivery rate is the largest such R; because `Tmodel` is
//! continuous and non-increasing in R (segment boundaries coincide — the
//! extra slow-start round trip exactly offsets the serialization saved),
//! the largest R is found by bisection, and `achieved(R)` for a fixed
//! target (2.5 Mbps for HD) is a single closed-form comparison.

use crate::types::{Nanos, SECOND};

/// Best-case transfer time of `btotal` bytes through a bottleneck of
/// `rate_bps`, starting from a window of `wnic` bytes, on a path with
/// `min_rtt` (in f64 nanoseconds for exact threshold comparisons).
///
/// # Panics
/// Panics on zero `btotal`, `wnic`, `min_rtt`, or non-positive rate.
pub fn t_model(btotal: u64, wnic: u64, min_rtt: Nanos, rate_bps: f64) -> f64 {
    assert!(btotal > 0 && wnic > 0 && min_rtt > 0, "degenerate transaction");
    assert!(rate_bps > 0.0, "rate must be positive");

    let mut n = 0u32;
    let mut window = wnic;
    let mut sent = 0u64;
    // Keep doubling while the window cannot yet support `rate_bps` and
    // data remains for another full round.
    while (window as f64 * 8.0 * SECOND as f64 / min_rtt as f64) < rate_bps
        && sent + window < btotal
    {
        sent += window;
        window = window.saturating_mul(2);
        n += 1;
    }
    let remaining = (btotal - sent) as f64;
    n as f64 * min_rtt as f64 + remaining * 8.0 * SECOND as f64 / rate_bps + min_rtt as f64
}

/// Did a transfer that took `ttotal` achieve delivery rate `rate_bps`?
pub fn achieved(btotal: u64, wnic: u64, min_rtt: Nanos, ttotal: Nanos, rate_bps: f64) -> bool {
    (ttotal as f64) <= t_model(btotal, wnic, min_rtt, rate_bps)
}

/// Largest delivery rate `R` (bits/second) consistent with the measured
/// `ttotal`, i.e. `sup { R : ttotal ≤ Tmodel(R) }`.
///
/// Returns `None` when the transfer was faster than the model can bound
/// (`ttotal` at or below the pure round-trip floor) — "unmeasurably fast",
/// which callers should treat as achieving any target.
pub fn delivery_rate(btotal: u64, wnic: u64, min_rtt: Nanos, ttotal: Nanos) -> Option<f64> {
    assert!(ttotal > 0, "zero transfer time");
    // Floor: even at infinite rate the model needs the slow-start round
    // trips. If the measurement beats that, the rate is unbounded.
    const R_HI: f64 = 1e13;
    if (ttotal as f64) <= t_model(btotal, wnic, min_rtt, R_HI) {
        return None;
    }
    const R_LO: f64 = 1.0;
    if !achieved(btotal, wnic, min_rtt, ttotal, R_LO) {
        // Slower than 1 bit/s — treat as (essentially) zero.
        return Some(0.0);
    }
    // Bisection on the monotone predicate.
    let (mut lo, mut hi) = (R_LO, R_HI);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric: rates span many decades
        if achieved(btotal, wnic, min_rtt, ttotal, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi / lo < 1.0 + 1e-9 {
            break;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MILLISECOND;

    const RTT: Nanos = 60 * MILLISECOND;

    #[test]
    fn single_round_closed_form() {
        // n = 0 ⇒ R = B·8 / (Ttotal − MinRTT)  (the paper's short-response
        // special case).
        let b = 10_000u64;
        let wnic = 20_000u64;
        let ttotal = 100 * MILLISECOND;
        let r = delivery_rate(b, wnic, RTT, ttotal).unwrap();
        let expect = b as f64 * 8.0 * crate::types::SECOND as f64 / ((ttotal - RTT) as f64);
        assert!((r - expect).abs() / expect < 1e-6, "r = {r}, expect = {expect}");
    }

    #[test]
    fn t_model_is_non_increasing_in_rate() {
        let b = 100_000;
        let wnic = 14_600;
        let mut prev = f64::INFINITY;
        let mut r = 1_000.0;
        while r < 1e11 {
            let t = t_model(b, wnic, RTT, r);
            assert!(t <= prev + 1e-6, "t_model increased at rate {r}");
            prev = t;
            r *= 1.07;
        }
    }

    #[test]
    fn t_model_continuous_at_segment_boundaries() {
        // At R where the window exactly supports the rate, n and n+1
        // formulations agree.
        let wnic = 14_600u64;
        let b = 200_000u64;
        let boundary = wnic as f64 * 8.0 * crate::types::SECOND as f64 / RTT as f64;
        let just_below = t_model(b, wnic, RTT, boundary * (1.0 - 1e-12));
        let just_above = t_model(b, wnic, RTT, boundary * (1.0 + 1e-12));
        assert!((just_below - just_above).abs() < 1.0, "{just_below} vs {just_above}");
    }

    #[test]
    fn achieved_is_monotone_in_ttotal() {
        let b = 50_000;
        let wnic = 14_600;
        let target = 2_500_000.0;
        let t_crit = t_model(b, wnic, RTT, target);
        assert!(achieved(b, wnic, RTT, t_crit as Nanos, target));
        assert!(!achieved(b, wnic, RTT, (t_crit * 1.2) as Nanos, target));
        assert!(achieved(b, wnic, RTT, (t_crit * 0.8) as Nanos, target));
    }

    #[test]
    fn fast_transfer_has_unbounded_rate() {
        // Completing in exactly the slow-start floor → None.
        let b = 100_000u64;
        let wnic = 14_600u64;
        // Floor: 3 slow-start rounds + final ack ≈ 4 RTT for this size.
        let floor = t_model(b, wnic, RTT, 1e13);
        assert!(delivery_rate(b, wnic, RTT, floor as Nanos).is_none());
    }

    #[test]
    fn delivery_rate_recovers_bottleneck_for_large_transfer() {
        // Construct Ttotal from the model itself at 3 Mbps and invert.
        let b = 1_000_000u64;
        let wnic = 14_600u64;
        let t = t_model(b, wnic, RTT, 3_000_000.0);
        let r = delivery_rate(b, wnic, RTT, t.ceil() as Nanos).unwrap();
        assert!((r - 3_000_000.0).abs() / 3_000_000.0 < 1e-3, "r = {r}");
    }

    #[test]
    fn delivery_rate_is_none_or_positive() {
        for &(b, w, t_ms) in
            &[(1_000u64, 14_600u64, 61u64), (1_000, 14_600, 1000), (500_000, 1_460, 5000)]
        {
            match delivery_rate(b, w, RTT, t_ms * MILLISECOND) {
                None => {} // unmeasurably fast
                Some(r) => assert!(r >= 0.0),
            }
        }
    }

    #[test]
    fn extremely_slow_transfer_reports_near_zero() {
        // 1.5 kB over an hour ≈ 3.3 bits/second.
        let r = delivery_rate(1_500, 14_600, RTT, 3_600 * crate::types::SECOND).unwrap();
        assert!(r < 10.0, "r = {r}");
    }

    #[test]
    fn more_rounds_needed_for_higher_rates() {
        // With a 1-packet window, testing a high rate requires slow-start
        // rounds; the model time must include them.
        let b = 100_000u64;
        let wnic = 1_460u64;
        let t_slow = t_model(b, wnic, RTT, 100_000.0);
        let t_fast = t_model(b, wnic, RTT, 50_000_000.0);
        // Faster target: less serialization but more slow-start RTTs;
        // both must exceed 2 RTTs.
        assert!(t_fast >= 2.0 * RTT as f64);
        assert!(t_slow > t_fast);
    }

    #[test]
    #[should_panic]
    fn zero_bytes_panics() {
        t_model(0, 14_600, RTT, 1e6);
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        t_model(1_000, 14_600, RTT, 0.0);
    }
}
