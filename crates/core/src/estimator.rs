//! The per-transaction estimator: can it test the target rate, and did it
//! achieve it (§§3.2.2–3.2.3), plus the naive baseline the paper compares
//! against in §4.

use crate::gtestable::{gtestable_bps, next_wstart};
use crate::instrument::Transaction;
use crate::tmodel::achieved;
use crate::types::{Nanos, SECOND};

/// How "achieved" is decided for a capable transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AchievedRule {
    /// The paper's model-based rule: `Ttotal ≤ Tmodel(target)`.
    Model,
    /// The naive baseline: raw goodput `Btotal/Ttotal ≥ target` (still
    /// with Gtestable gating and the delayed-ACK correction). The paper
    /// shows this underestimates, dropping the median HDratio to 0.69.
    Naive,
}

/// Verdict for one transaction.
#[derive(Debug, Clone, Copy)]
pub struct TxnOutcome {
    /// The transaction could test for the target rate.
    pub testable: bool,
    /// The transaction achieved the target (only meaningful if testable).
    pub achieved: bool,
    /// Maximum goodput this transaction could have tested (bits/second).
    pub gtestable_bps: f64,
    /// The `Wstart` used (ideal carry-forward, §3.2.2).
    pub wstart: u64,
}

/// Estimator behaviour knobs for the methodology ablations. Production
/// defaults: model rule, carry-forward on, gating on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorOptions {
    /// How "achieved" is decided.
    pub rule: AchievedRule,
    /// Carry the ideal `Wstart` forward across transactions (§3.2.2,
    /// footnote 4). Off = use the raw measured `Wnic` (the ablation shows
    /// how collapsed windows then mask poor performance).
    pub carry_forward: bool,
    /// Gate on `Gtestable ≥ target` before judging achievement. Off =
    /// every eligible transaction is judged (the ablation shows small
    /// responses then read as failures).
    pub gate_on_testable: bool,
}

impl Default for EstimatorOptions {
    fn default() -> Self {
        EstimatorOptions { rule: AchievedRule::Model, carry_forward: true, gate_on_testable: true }
    }
}

/// Stateful per-session estimator: carries the ideal `Wstart` forward
/// across the session's transactions.
#[derive(Debug, Clone)]
pub struct Estimator {
    target_bps: f64,
    opts: EstimatorOptions,
    /// Ideal window at the end of the previous transaction, if any.
    carry: Option<u64>,
}

impl Estimator {
    /// Estimator for the given target goodput using the paper's model rule.
    pub fn new(target_bps: f64) -> Self {
        Self::with_rule(target_bps, AchievedRule::Model)
    }

    /// Estimator with an explicit achieved-rule (for the naive ablation).
    pub fn with_rule(target_bps: f64, rule: AchievedRule) -> Self {
        Self::with_options(target_bps, EstimatorOptions { rule, ..Default::default() })
    }

    /// Estimator with full ablation options.
    pub fn with_options(target_bps: f64, opts: EstimatorOptions) -> Self {
        assert!(target_bps > 0.0);
        Estimator { target_bps, opts, carry: None }
    }

    /// Target rate in bits/second.
    pub fn target_bps(&self) -> f64 {
        self.target_bps
    }

    /// Evaluate the next transaction of the session (in order). Advances
    /// the ideal-`Wstart` carry-forward even for ineligible transactions,
    /// since their bytes still grew the window under ideal conditions.
    pub fn evaluate(&mut self, txn: &Transaction, min_rtt: Nanos) -> TxnOutcome {
        assert!(min_rtt > 0, "MinRTT required");
        let wnic = txn.wnic.max(1);
        let wstart = if self.opts.carry_forward {
            match self.carry {
                None => wnic,
                Some(c) => c.max(wnic),
            }
        } else {
            wnic
        };

        // Carry forward the ideal end-of-transaction window.
        if txn.bytes_full > 0 {
            self.carry = Some(next_wstart(wstart, txn.bytes_full, wnic));
        }

        if !txn.eligible || txn.bytes_measured == 0 || txn.ttotal == 0 {
            return TxnOutcome { testable: false, achieved: false, gtestable_bps: 0.0, wstart };
        }

        let g = gtestable_bps(txn.bytes_measured, wstart, min_rtt);
        let testable = g >= self.target_bps || !self.opts.gate_on_testable;
        let ach = testable
            && match self.opts.rule {
                AchievedRule::Model => {
                    achieved(txn.bytes_measured, wstart, min_rtt, txn.ttotal, self.target_bps)
                }
                AchievedRule::Naive => {
                    let goodput =
                        txn.bytes_measured as f64 * 8.0 * SECOND as f64 / txn.ttotal as f64;
                    goodput >= self.target_bps
                }
            };
        TxnOutcome { testable, achieved: ach, gtestable_bps: g, wstart }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{HD_GOODPUT_BPS, MILLISECOND};

    fn txn(bytes: u64, ttotal_ms: u64, wnic: u64) -> Transaction {
        let last_pkt = (bytes - 1) % 1460 + 1;
        Transaction {
            bytes_full: bytes,
            bytes_measured: bytes - last_pkt,
            ttotal: ttotal_ms * MILLISECOND,
            wnic,
            eligible: true,
            coalesced: 1,
        }
    }

    #[test]
    fn small_response_cannot_test_hd() {
        let mut e = Estimator::new(HD_GOODPUT_BPS);
        // 3 kB at 60 ms MinRTT can test at most ~0.2 Mbps (measured part).
        let o = e.evaluate(&txn(3_000, 70, 14_600), 60 * MILLISECOND);
        assert!(!o.testable);
        assert!(o.gtestable_bps < HD_GOODPUT_BPS);
    }

    #[test]
    fn large_fast_response_achieves_hd() {
        let mut e = Estimator::new(HD_GOODPUT_BPS);
        // 100 kB in ~190 ms at 60 ms MinRTT: fast.
        let o = e.evaluate(&txn(100_000, 190, 14_600), 60 * MILLISECOND);
        assert!(o.testable, "gtestable = {}", o.gtestable_bps);
        assert!(o.achieved);
    }

    #[test]
    fn large_slow_response_fails_hd() {
        let mut e = Estimator::new(HD_GOODPUT_BPS);
        // Same size, but took 2 s.
        let o = e.evaluate(&txn(100_000, 2_000, 14_600), 60 * MILLISECOND);
        assert!(o.testable);
        assert!(!o.achieved);
    }

    #[test]
    fn carry_forward_raises_wstart() {
        let mut e = Estimator::new(HD_GOODPUT_BPS);
        let o1 = e.evaluate(&txn(36_000, 130, 15_000), 60 * MILLISECOND);
        assert_eq!(o1.wstart, 15_000);
        // Second transaction starts from the modeled grown window even if
        // the kernel's actual window collapsed (wnic small).
        let o2 = e.evaluate(&txn(21_000, 70, 1_500), 60 * MILLISECOND);
        assert!(o2.wstart >= 30_000, "wstart = {}", o2.wstart);
    }

    #[test]
    fn collapsed_cwnd_does_not_mask_poor_performance() {
        // §3.2.2's motivating scenario: the third transaction *can* test
        // HD because ideal growth says the window should be large; using
        // the real collapsed window would wrongly mark it untestable.
        let mut e = Estimator::new(HD_GOODPUT_BPS);
        e.evaluate(&txn(36_000, 130, 15_000), 60 * MILLISECOND);
        let slow_third = txn(21_000, 700, 1_500); // took 700 ms — bad
        let o = e.evaluate(&slow_third, 60 * MILLISECOND);
        assert!(o.testable, "must still test (ideal wstart)");
        assert!(!o.achieved, "and must record the poor performance");
    }

    #[test]
    fn ineligible_transactions_still_advance_carry() {
        let mut e = Estimator::new(HD_GOODPUT_BPS);
        let mut t1 = txn(36_000, 130, 15_000);
        t1.eligible = false;
        let o1 = e.evaluate(&t1, 60 * MILLISECOND);
        assert!(!o1.testable);
        let o2 = e.evaluate(&txn(21_000, 70, 1_500), 60 * MILLISECOND);
        assert!(o2.wstart >= 30_000);
    }

    #[test]
    fn naive_rule_underestimates() {
        // A transfer whose raw goodput is below target but whose per-model
        // delivery rate is above it: model says achieved, naive says no.
        let b = 36_000u64; // measured ≈ 34.8 kB
        let t = txn(b, 150, 15_000);
        let mut model = Estimator::new(HD_GOODPUT_BPS);
        let mut naive = Estimator::with_rule(HD_GOODPUT_BPS, AchievedRule::Naive);
        let om = model.evaluate(&t, 60 * MILLISECOND);
        let on = naive.evaluate(&t, 60 * MILLISECOND);
        assert!(om.testable && on.testable);
        assert!(om.achieved);
        // Raw goodput = 34 760·8/0.15 ≈ 1.85 Mbps < 2.5 Mbps.
        assert!(!on.achieved, "naive should be pessimistic here");
    }

    #[test]
    fn zero_measured_bytes_is_untestable() {
        let mut e = Estimator::new(HD_GOODPUT_BPS);
        let t = Transaction {
            bytes_full: 800,
            bytes_measured: 0,
            ttotal: 0,
            wnic: 14_600,
            eligible: false,
            coalesced: 1,
        };
        let o = e.evaluate(&t, 60 * MILLISECOND);
        assert!(!o.testable && !o.achieved);
    }

    #[test]
    fn custom_target_rates_work() {
        let mut e = Estimator::new(10_000_000.0); // 10 Mbps target
        let o = e.evaluate(&txn(100_000, 190, 14_600), 60 * MILLISECOND);
        // 100 kB at 60 ms: max one-round bytes ≈ 70 kB → ~9.3 Mbps < 10.
        assert!(!o.testable);
    }
}
