//! Shared types for the estimation pipeline.

/// Virtual or wall-clock time in nanoseconds.
pub type Nanos = u64;

/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// The paper's target goodput: 2.5 Mbps, the minimum bitrate for HD video.
pub const HD_GOODPUT_BPS: f64 = 2_500_000.0;

/// HTTP protocol version of a session (affects traffic shape, not the
/// estimator itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpVersion {
    /// HTTP/1.1: browsers open several connections, few transactions each.
    H1,
    /// HTTP/2: one multiplexed connection, more transactions.
    H2,
}

/// Raw instrumentation record for one HTTP response, as captured at the
/// load balancer: socket/NIC timestamps plus TCP state snapshots.
///
/// In production these fields come from `TCP_INFO`, socket timestamping,
/// and the proxy's own bookkeeping; in this workspace they come from
/// `edgeperf-netsim`'s `WriteRecord` (structurally identical, converted by
/// the caller to keep this crate dependency-free).
#[derive(Debug, Clone, Copy)]
pub struct ResponseObs {
    /// Response size in bytes.
    pub bytes: u64,
    /// When the application wrote the response to the socket.
    pub issued_at: Nanos,
    /// When the first byte was written to the NIC, and the congestion
    /// window (bytes) at that instant (`Wnic`). `None` if the response
    /// never left the host (session died first).
    pub first_tx: Option<(Nanos, u32)>,
    /// Arrival of the first ACK covering the second-to-last packet
    /// (the delayed-ACK-immune endpoint, §3.2.5).
    pub t_second_last_ack: Option<Nanos>,
    /// Arrival of the ACK covering the entire response.
    pub t_full_ack: Option<Nanos>,
    /// Size of the response's final packet in bytes.
    pub last_packet_bytes: Option<u32>,
    /// Bytes still in flight when the response was written.
    pub bytes_in_flight_at_write: u64,
    /// True if a previous response still had unsent bytes when this one
    /// was written (back-to-back / multiplexed / preempted — triggers
    /// coalescing).
    pub prev_unsent_at_write: bool,
}

/// Everything the instrumentation captured about one sampled HTTP session.
#[derive(Debug, Clone)]
pub struct SessionObs {
    /// Per-response records in write order.
    pub responses: Vec<ResponseObs>,
    /// Kernel MinRTT at session close (5-minute windowed minimum).
    pub min_rtt: Option<Nanos>,
    /// Protocol version.
    pub http: HttpVersion,
    /// Session duration (establishment to close).
    pub duration: Nanos,
}

impl SessionObs {
    /// Total response bytes carried by the session.
    pub fn total_bytes(&self) -> u64 {
        self.responses.iter().map(|r| r.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_bytes_sums_responses() {
        let r = ResponseObs {
            bytes: 100,
            issued_at: 0,
            first_tx: None,
            t_second_last_ack: None,
            t_full_ack: None,
            last_packet_bytes: None,
            bytes_in_flight_at_write: 0,
            prev_unsent_at_write: false,
        };
        let s = SessionObs {
            responses: vec![r, ResponseObs { bytes: 250, ..r }],
            min_rtt: None,
            http: HttpVersion::H2,
            duration: SECOND,
        };
        assert_eq!(s.total_bytes(), 350);
    }
}
