//! Deterministic session sampling (paper §2.2.2).
//!
//! Production servers "randomly select HTTP sessions to sample at a
//! defined rate". We hash the session identifier (SplitMix64 finalizer)
//! and compare against the rate, which gives a stable, coordination-free
//! decision: the same session id always yields the same verdict, and the
//! selected set is unbiased with respect to anything correlated with the
//! id's low bits.

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Should the session with this id be sampled at `rate` ∈ [0, 1]?
///
/// `salt` lets different deployments/experiments draw independent samples
/// from the same id space.
pub fn sample_session(session_id: u64, salt: u64, rate: f64) -> bool {
    assert!((0.0..=1.0).contains(&rate), "rate {rate}");
    if rate == 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let h = splitmix64(session_id ^ splitmix64(salt));
    // Compare the top 53 bits against the rate for full f64 precision.
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    u < rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(sample_session(12345, 1, 0.5), sample_session(12345, 1, 0.5));
    }

    #[test]
    fn rate_zero_and_one() {
        assert!(!sample_session(7, 0, 0.0));
        assert!(sample_session(7, 0, 1.0));
    }

    #[test]
    fn empirical_rate_matches() {
        for &rate in &[0.01, 0.1, 0.5] {
            let n = 200_000u64;
            let hits = (0..n).filter(|&id| sample_session(id, 9, rate)).count();
            let got = hits as f64 / n as f64;
            assert!((got - rate).abs() < 0.01, "rate {rate}: got {got}");
        }
    }

    #[test]
    fn different_salts_give_different_samples() {
        let n = 10_000u64;
        let a: Vec<bool> = (0..n).map(|id| sample_session(id, 1, 0.5)).collect();
        let b: Vec<bool> = (0..n).map(|id| sample_session(id, 2, 0.5)).collect();
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        // Independent draws agree ~50% of the time.
        assert!((agree as f64 / n as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn sequential_ids_are_not_correlated() {
        // Runs of consecutive sampled ids should match a fair coin.
        let n = 100_000u64;
        let seq: Vec<bool> = (0..n).map(|id| sample_session(id, 3, 0.5)).collect();
        let transitions = seq.windows(2).filter(|w| w[0] != w[1]).count();
        let frac = transitions as f64 / (n - 1) as f64;
        assert!((frac - 0.5).abs() < 0.02, "transition fraction {frac}");
    }
}
