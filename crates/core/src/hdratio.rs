//! Session-level HDratio (paper §3.2.4).
//!
//! HDratio = (transactions that achieved HD goodput) /
//! (transactions that could test for HD goodput), per HTTP session.
//! Computed per session rather than per transaction so paths carrying
//! many-transaction sessions aren't overrepresented.

use crate::estimator::{AchievedRule, Estimator};

use crate::types::{Nanos, SessionObs};

/// HDratio verdict for one session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionVerdict {
    /// Transactions that could test the target rate.
    pub tested: u32,
    /// Of those, transactions that achieved it.
    pub achieved: u32,
    /// The session MinRTT used (from the kernel tracker).
    pub min_rtt: Nanos,
}

impl SessionVerdict {
    /// HDratio ∈ [0, 1], or `None` if nothing tested.
    pub fn hdratio(&self) -> Option<f64> {
        if self.tested == 0 {
            None
        } else {
            Some(self.achieved as f64 / self.tested as f64)
        }
    }
}

/// Compute a session's HDratio at `target_bps` with the model rule.
///
/// Returns `None` when the session has no MinRTT sample (no ACKed data)
/// — such sessions carry no goodput signal at all.
pub fn session_hdratio(session: &SessionObs, target_bps: f64) -> Option<SessionVerdict> {
    session_hdratio_with_rule(session, target_bps, AchievedRule::Model)
}

/// As [`session_hdratio`] with an explicit achieved rule (naive ablation).
pub fn session_hdratio_with_rule(
    session: &SessionObs,
    target_bps: f64,
    rule: AchievedRule,
) -> Option<SessionVerdict> {
    session_hdratio_with_options(
        session,
        target_bps,
        crate::estimator::EstimatorOptions { rule, ..Default::default() },
        crate::instrument::InstrumentOptions::default(),
    )
}

/// Full-control variant for the methodology ablations: every §3.2
/// correction can be toggled independently.
pub fn session_hdratio_with_options(
    session: &SessionObs,
    target_bps: f64,
    est_opts: crate::estimator::EstimatorOptions,
    ins_opts: crate::instrument::InstrumentOptions,
) -> Option<SessionVerdict> {
    let min_rtt = session.min_rtt?;
    if min_rtt == 0 {
        return None;
    }
    let mut est = Estimator::with_options(target_bps, est_opts);
    let mut tested = 0u32;
    let mut achieved = 0u32;
    for txn in crate::instrument::assemble_transactions_opts(&session.responses, ins_opts) {
        let o = est.evaluate(&txn, min_rtt);
        if o.testable {
            tested += 1;
            if o.achieved {
                achieved += 1;
            }
        }
    }
    Some(SessionVerdict { tested, achieved, min_rtt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{HttpVersion, ResponseObs, HD_GOODPUT_BPS, MILLISECOND, SECOND};

    fn resp(bytes: u64, t0_ms: u64, t2_ms: u64, wnic: u32) -> ResponseObs {
        ResponseObs {
            bytes,
            issued_at: t0_ms * MILLISECOND,
            first_tx: Some((t0_ms * MILLISECOND, wnic)),
            t_second_last_ack: Some(t2_ms * MILLISECOND),
            t_full_ack: Some((t2_ms + 1) * MILLISECOND),
            last_packet_bytes: Some(((bytes - 1) % 1460 + 1) as u32),
            bytes_in_flight_at_write: 0,
            prev_unsent_at_write: false,
        }
    }

    fn session(responses: Vec<ResponseObs>, min_rtt_ms: u64) -> SessionObs {
        SessionObs {
            responses,
            min_rtt: Some(min_rtt_ms * MILLISECOND),
            http: HttpVersion::H2,
            duration: 60 * SECOND,
        }
    }

    #[test]
    fn all_fast_transactions_give_ratio_one() {
        let s =
            session(vec![resp(100_000, 0, 190, 14_600), resp(100_000, 1_000, 1_150, 14_600)], 60);
        let v = session_hdratio(&s, HD_GOODPUT_BPS).unwrap();
        assert_eq!(v.tested, 2);
        assert_eq!(v.achieved, 2);
        assert_eq!(v.hdratio(), Some(1.0));
    }

    #[test]
    fn mixed_outcomes_give_fractional_ratio() {
        let s = session(
            vec![
                resp(100_000, 0, 190, 14_600),       // fast
                resp(100_000, 1_000, 3_000, 14_600), // slow
            ],
            60,
        );
        let v = session_hdratio(&s, HD_GOODPUT_BPS).unwrap();
        assert_eq!(v.tested, 2);
        assert_eq!(v.achieved, 1);
        assert_eq!(v.hdratio(), Some(0.5));
    }

    #[test]
    fn tiny_transactions_test_nothing() {
        let s = session(vec![resp(3_000, 0, 65, 14_600); 5], 60);
        let v = session_hdratio(&s, HD_GOODPUT_BPS).unwrap();
        assert_eq!(v.tested, 0);
        assert_eq!(v.hdratio(), None);
    }

    #[test]
    fn session_without_min_rtt_is_skipped() {
        let mut s = session(vec![resp(100_000, 0, 190, 14_600)], 60);
        s.min_rtt = None;
        assert!(session_hdratio(&s, HD_GOODPUT_BPS).is_none());
    }

    #[test]
    fn naive_rule_yields_lower_or_equal_ratio() {
        // Borderline transfers: model credits cwnd growth time, naive
        // does not.
        let s = session(vec![resp(36_000, 0, 150, 15_000), resp(36_000, 1_000, 1_150, 15_000)], 60);
        let model = session_hdratio(&s, HD_GOODPUT_BPS).unwrap();
        let naive = session_hdratio_with_rule(&s, HD_GOODPUT_BPS, AchievedRule::Naive).unwrap();
        assert!(naive.achieved <= model.achieved);
        assert!(model.hdratio().unwrap() > naive.hdratio().unwrap_or(0.0));
    }

    #[test]
    fn empty_session_tests_nothing() {
        let s = session(vec![], 40);
        let v = session_hdratio(&s, HD_GOODPUT_BPS).unwrap();
        assert_eq!(v.tested, 0);
    }
}
