//! # edgeperf-core — server-side passive performance estimation
//!
//! The primary contribution of *"Internet Performance from Facebook's
//! Edge"* (IMC 2019), as a reusable library: estimate, purely from
//! server-side TCP state of production traffic, whether a user's network
//! path can sustain a target goodput (**HDratio**, §3.2 of the paper) and
//! what the path's latency floor is (**MinRTT**, §3.1).
//!
//! The crate is substrate-agnostic: feed it [`ResponseObs`] records
//! captured from real sockets (`TCP_INFO` + socket timestamps) or from the
//! simulators in `edgeperf-netsim`. It has no dependencies.
//!
//! Pipeline:
//!
//! 1. [`instrument`]: coalesce multiplexed / preempted / back-to-back
//!    responses into transactions and apply the eligibility rules
//!    (§§3.2.5): delayed-ACK correction, bytes-in-flight exclusion.
//! 2. [`gtestable`]: decide the maximum goodput each transaction *can
//!    test* under ideal conditions (eqs. 1–3), with `Wstart` carried
//!    forward across transactions under ideal cwnd growth.
//! 3. [`tmodel`]: decide whether a capable transaction *achieved* the
//!    target by comparing its measured transfer time against a best-case
//!    model transaction through a bottleneck at the target rate.
//! 4. [`hdratio`]: summarize per session.
//!
//! [`minrtt`] provides the kernel-style windowed MinRTT tracker and
//! [`sampler`] the deterministic session sampling used in production.

pub mod error;
pub mod estimator;
pub mod gtestable;
pub mod hdratio;
pub mod instrument;
pub mod minrtt;
pub mod sampler;
pub mod tmodel;
pub mod types;

pub use error::{EdgeperfError, LineError};
pub use estimator::{AchievedRule, Estimator, EstimatorOptions, TxnOutcome};
pub use hdratio::{session_hdratio, SessionVerdict};
pub use instrument::{assemble_transactions, InstrumentOptions, Transaction};
pub use minrtt::MinRttTracker;
pub use sampler::sample_session;
pub use types::{HttpVersion, Nanos, ResponseObs, SessionObs, HD_GOODPUT_BPS, MILLISECOND, SECOND};
