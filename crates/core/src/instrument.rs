//! Load-balancer instrumentation logic: turning raw per-response records
//! into measurable transactions (paper §3.2.5).
//!
//! Three rules shape what is measurable:
//!
//! - **Coalescing**: responses written while a previous response still has
//!   unsent bytes (HTTP/2 multiplexing / preemption, or back-to-back
//!   writes with no transport-layer gap) merge into one larger
//!   transaction, so a sequence of small responses can test a goodput no
//!   single one could.
//! - **Bytes in flight**: a response issued while earlier data is still
//!   unACKed — without qualifying for coalescing — is ineligible, because
//!   its measured time would include the earlier data's drain time.
//! - **Delayed-ACK correction**: the measured interval ends at the ACK
//!   covering the *second-to-last* packet, and the measured byte count
//!   excludes the final packet, making the measurement immune to the
//!   receiver's delayed-ACK timer. Responses of fewer than two packets
//!   cannot be measured.

use crate::types::{Nanos, ResponseObs};

/// A measurable (possibly coalesced) transaction.
#[derive(Debug, Clone, Copy)]
pub struct Transaction {
    /// Total response bytes of the coalesced group (uncorrected; used for
    /// ideal-cwnd carry-forward).
    pub bytes_full: u64,
    /// Measured bytes: total minus the final packet (§3.2.5).
    pub bytes_measured: u64,
    /// Measured transfer time: first byte at NIC → ACK covering the
    /// second-to-last packet.
    pub ttotal: Nanos,
    /// Congestion window when the group's first byte reached the NIC.
    pub wnic: u64,
    /// Whether the transaction may be used for goodput estimation.
    pub eligible: bool,
    /// Number of raw responses coalesced into this transaction.
    pub coalesced: u32,
}

/// Which of the §3.2.5 corrections to apply — the knobs behind the
/// methodology ablations (every production deployment wants all of them
/// on; the ablation benches quantify why).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrumentOptions {
    /// Exclude the final packet and end timing at the second-to-last
    /// packet's ACK (delayed-ACK immunity).
    pub delayed_ack_correction: bool,
    /// Merge multiplexed / preempted / back-to-back responses.
    pub coalescing: bool,
}

impl Default for InstrumentOptions {
    fn default() -> Self {
        InstrumentOptions { delayed_ack_correction: true, coalescing: true }
    }
}

/// Assemble responses into transactions, applying the coalescing,
/// bytes-in-flight, and delayed-ACK rules.
///
/// Responses must be in write order (as captured).
pub fn assemble_transactions(responses: &[ResponseObs]) -> Vec<Transaction> {
    assemble_transactions_opts(responses, InstrumentOptions::default())
}

/// As [`assemble_transactions`], with explicit correction options (for
/// the methodology ablations).
pub fn assemble_transactions_opts(
    responses: &[ResponseObs],
    opts: InstrumentOptions,
) -> Vec<Transaction> {
    let mut out: Vec<Transaction> = Vec::new();
    // Current group under construction, as indices into `responses`.
    let mut group: Vec<usize> = Vec::new();

    let flush = |group: &mut Vec<usize>, out: &mut Vec<Transaction>| {
        if group.is_empty() {
            return;
        }
        out.push(build_transaction(responses, group, opts));
        group.clear();
    };

    for (i, r) in responses.iter().enumerate() {
        if group.is_empty() {
            group.push(i);
            continue;
        }
        if r.prev_unsent_at_write && opts.coalescing {
            // Multiplexed / preempted / back-to-back: merge.
            group.push(i);
        } else {
            flush(&mut group, &mut out);
            group.push(i);
        }
    }
    flush(&mut group, &mut out);
    out
}

fn build_transaction(
    responses: &[ResponseObs],
    group: &[usize],
    opts: InstrumentOptions,
) -> Transaction {
    let first = &responses[group[0]];
    let last = &responses[*group.last().unwrap()];
    let bytes_full: u64 = group.iter().map(|&i| responses[i].bytes).sum();

    // Eligibility requires complete endpoints and a clean start.
    let clean_start = first.bytes_in_flight_at_write == 0 && !first.prev_unsent_at_write;
    let endpoints = first.first_tx.is_some()
        && if opts.delayed_ack_correction {
            last.t_second_last_ack.is_some() && last.last_packet_bytes.is_some()
        } else {
            last.t_full_ack.is_some()
        };

    // The measurement endpoint: with the delayed-ACK correction the
    // interval ends at the ACK covering the second-to-last packet and
    // excludes the final packet's bytes; without it (ablation), the full
    // response to its final ACK.
    let end = if opts.delayed_ack_correction { last.t_second_last_ack } else { last.t_full_ack };
    let (ttotal, bytes_measured, wnic) = match (first.first_tx, end) {
        (Some((t0, cwnd)), Some(t2)) if t2 > t0 => {
            let last_pkt = if opts.delayed_ack_correction {
                last.last_packet_bytes.unwrap_or(0) as u64
            } else {
                0
            };
            (t2 - t0, bytes_full.saturating_sub(last_pkt), cwnd as u64)
        }
        (Some((_, cwnd)), _) => (0, 0, cwnd as u64),
        _ => (0, 0, 0),
    };

    // Fewer than two packets → nothing left after the last-packet
    // correction → unmeasurable.
    let measurable = bytes_measured > 0 && ttotal > 0;

    Transaction {
        bytes_full,
        bytes_measured,
        ttotal,
        wnic,
        eligible: clean_start && endpoints && measurable,
        coalesced: group.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MILLISECOND;

    fn resp(bytes: u64) -> ResponseObs {
        ResponseObs {
            bytes,
            issued_at: 0,
            first_tx: Some((0, 14_600)),
            t_second_last_ack: Some(60 * MILLISECOND),
            t_full_ack: Some(61 * MILLISECOND),
            last_packet_bytes: Some(((bytes - 1) % 1460 + 1) as u32),
            bytes_in_flight_at_write: 0,
            prev_unsent_at_write: false,
        }
    }

    #[test]
    fn independent_responses_stay_separate() {
        let rs = vec![resp(10_000), resp(20_000)];
        let txns = assemble_transactions(&rs);
        assert_eq!(txns.len(), 2);
        assert!(txns[0].eligible);
        assert_eq!(txns[0].bytes_full, 10_000);
        assert_eq!(txns[1].bytes_full, 20_000);
    }

    #[test]
    fn back_to_back_responses_coalesce() {
        let mut r2 = resp(5_000);
        r2.prev_unsent_at_write = true;
        r2.bytes_in_flight_at_write = 8_000;
        let rs = vec![resp(10_000), r2];
        let txns = assemble_transactions(&rs);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].bytes_full, 15_000);
        assert_eq!(txns[0].coalesced, 2);
        assert!(txns[0].eligible);
    }

    #[test]
    fn coalesced_chain_extends() {
        let mut r2 = resp(5_000);
        r2.prev_unsent_at_write = true;
        let mut r3 = resp(7_000);
        r3.prev_unsent_at_write = true;
        let txns = assemble_transactions(&[resp(10_000), r2, r3]);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].bytes_full, 22_000);
        assert_eq!(txns[0].coalesced, 3);
    }

    #[test]
    fn bytes_in_flight_without_coalescing_is_ineligible() {
        // Previous response fully written to NIC but not yet ACKed when
        // the next one starts: not coalescable, not measurable.
        let mut r2 = resp(20_000);
        r2.bytes_in_flight_at_write = 4_000;
        r2.prev_unsent_at_write = false;
        let txns = assemble_transactions(&[resp(10_000), r2]);
        assert_eq!(txns.len(), 2);
        assert!(txns[0].eligible);
        assert!(!txns[1].eligible);
    }

    #[test]
    fn delayed_ack_correction_strips_last_packet() {
        let txns = assemble_transactions(&[resp(10_000)]);
        // 10 000 B = 6×1460 + 1240 → last packet 1240 B.
        assert_eq!(txns[0].bytes_measured, 10_000 - 1240);
        assert_eq!(txns[0].ttotal, 60 * MILLISECOND);
    }

    #[test]
    fn single_packet_response_is_unmeasurable() {
        let mut r = resp(800);
        r.last_packet_bytes = Some(800);
        let txns = assemble_transactions(&[r]);
        assert!(!txns[0].eligible);
        assert_eq!(txns[0].bytes_measured, 0);
    }

    #[test]
    fn missing_endpoints_is_ineligible() {
        let mut r = resp(10_000);
        r.t_second_last_ack = None;
        let txns = assemble_transactions(&[r]);
        assert!(!txns[0].eligible);
    }

    #[test]
    fn never_transmitted_response_is_ineligible() {
        let mut r = resp(10_000);
        r.first_tx = None;
        let txns = assemble_transactions(&[r]);
        assert!(!txns[0].eligible);
        assert_eq!(txns[0].wnic, 0);
    }

    #[test]
    fn coalesced_group_uses_first_wnic_and_last_endpoints() {
        let mut r1 = resp(10_000);
        r1.first_tx = Some((5 * MILLISECOND, 29_200));
        let mut r2 = resp(5_000);
        r2.prev_unsent_at_write = true;
        r2.t_second_last_ack = Some(100 * MILLISECOND);
        r2.last_packet_bytes = Some(500);
        let txns = assemble_transactions(&[r1, r2]);
        assert_eq!(txns[0].wnic, 29_200);
        assert_eq!(txns[0].ttotal, 95 * MILLISECOND);
        assert_eq!(txns[0].bytes_measured, 15_000 - 500);
    }

    #[test]
    fn empty_input_yields_no_transactions() {
        assert!(assemble_transactions(&[]).is_empty());
    }

    #[test]
    fn group_following_coalesced_group_starts_clean() {
        let mut r2 = resp(5_000);
        r2.prev_unsent_at_write = true;
        let r3 = resp(8_000); // fresh write, nothing in flight
        let txns = assemble_transactions(&[resp(10_000), r2, r3]);
        assert_eq!(txns.len(), 2);
        assert!(txns[1].eligible);
        assert_eq!(txns[1].bytes_full, 8_000);
    }
}
