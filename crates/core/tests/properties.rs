//! Property tests over the core estimator's public API.

use edgeperf_core::minrtt::MinRttTracker;
use edgeperf_core::sampler::sample_session;
use edgeperf_core::MILLISECOND;
use proptest::prelude::*;

proptest! {
    /// The windowed-min tracker agrees with a naive recomputation at
    /// every query point.
    #[test]
    fn minrtt_tracker_matches_naive(
        samples in prop::collection::vec((0u64..600, 1u64..500), 1..80),
        window_s in 1u64..400,
    ) {
        let window = window_s * 1_000 * MILLISECOND;
        // Sort sample times (tracker requires monotone time).
        let mut s: Vec<(u64, u64)> = samples
            .iter()
            .map(|&(t, r)| (t * 1_000 * MILLISECOND, r * MILLISECOND))
            .collect();
        s.sort_by_key(|&(t, _)| t);

        let mut tracker = MinRttTracker::new(window);
        for (i, &(t, rtt)) in s.iter().enumerate() {
            tracker.on_sample(t, rtt);
            // Naive: min over samples within [t - window, t].
            let cutoff = t.saturating_sub(window);
            let naive = s[..=i]
                .iter()
                .filter(|&&(ts, _)| ts >= cutoff)
                .map(|&(_, r)| r)
                .min();
            prop_assert_eq!(tracker.current(t), naive, "at t={}", t);
        }
    }

    /// Sampling decisions depend only on (id, salt), never on call order,
    /// and respect the degenerate rates exactly.
    #[test]
    fn sampler_is_pure(ids in prop::collection::vec(any::<u64>(), 1..50), salt in any::<u64>()) {
        for &id in &ids {
            prop_assert_eq!(sample_session(id, salt, 0.5), sample_session(id, salt, 0.5));
            prop_assert!(!sample_session(id, salt, 0.0));
            prop_assert!(sample_session(id, salt, 1.0));
        }
    }

    /// A higher sampling rate never excludes a session a lower rate
    /// included (the hash-threshold construction is monotone).
    #[test]
    fn sampler_is_monotone_in_rate(id in any::<u64>(), salt in any::<u64>(), lo in 0.0f64..1.0, hi in 0.0f64..1.0) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        if sample_session(id, salt, lo) {
            prop_assert!(sample_session(id, salt, hi));
        }
    }
}

mod robustness {
    use edgeperf_core::{
        assemble_transactions, session_hdratio, HttpVersion, ResponseObs, SessionObs,
        HD_GOODPUT_BPS,
    };
    use proptest::prelude::*;

    fn arb_response() -> impl Strategy<Value = ResponseObs> {
        (
            1u64..10_000_000,                                              // bytes
            0u64..1_000_000_000_000,                                       // issued_at
            prop::option::of((0u64..1_000_000_000_000, 0u32..10_000_000)), // first_tx
            prop::option::of(0u64..1_000_000_000_000),                     // t_second_last_ack
            prop::option::of(0u64..1_000_000_000_000),                     // t_full_ack
            prop::option::of(0u32..100_000),                               // last_packet_bytes
            0u64..1_000_000,                                               // bytes_in_flight
            any::<bool>(),                                                 // prev_unsent
        )
            .prop_map(|(bytes, issued_at, first_tx, t2, tf, last, inflight, prev)| {
                ResponseObs {
                    bytes,
                    issued_at,
                    first_tx,
                    t_second_last_ack: t2,
                    t_full_ack: tf,
                    last_packet_bytes: last,
                    bytes_in_flight_at_write: inflight,
                    prev_unsent_at_write: prev,
                }
            })
    }

    proptest! {
        /// The instrumentation and estimator are total over arbitrary
        /// (possibly nonsensical) observation streams: no panics, and any
        /// verdict stays in range. This is the "hostile telemetry" fuzz —
        /// production instrumentation sees clock skew, truncated records,
        /// and reordered writes.
        #[test]
        fn estimator_never_panics_on_arbitrary_observations(
            responses in prop::collection::vec(arb_response(), 0..20),
            min_rtt in prop::option::of(1u64..10_000_000_000u64),
        ) {
            let txns = assemble_transactions(&responses);
            prop_assert!(txns.len() <= responses.len().max(1));
            for t in &txns {
                prop_assert!(t.bytes_measured <= t.bytes_full);
            }
            let session = SessionObs {
                responses,
                min_rtt,
                http: HttpVersion::H2,
                duration: 1,
            };
            if let Some(v) = session_hdratio(&session, HD_GOODPUT_BPS) {
                prop_assert!(v.achieved <= v.tested);
                if let Some(h) = v.hdratio() {
                    prop_assert!((0.0..=1.0).contains(&h));
                }
            }
        }
    }
}
