//! Synthetic topology: PoPs, countries, ASes, prefixes, and route sets.
//!
//! Calibration targets (paper §4, Figure 6): median MinRTT below ~40 ms
//! globally, medians around 58/51/40 ms for Africa/Asia/South America and
//! ≈25 ms elsewhere; the fraction of sessions that can never sustain HD
//! (HDratio = 0) around 36%/24%/27% for AF/AS/SA via access-bandwidth
//! distributions; most users served by a nearby PoP, with African and
//! Asian clients sometimes served from Europe.

use crate::geo::{Continent, GeoPoint};
use edgeperf_routing::{AsPath, Asn, PopId, Prefix, Relationship, Rib, Route, RouteId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A point of presence.
#[derive(Debug, Clone)]
pub struct Pop {
    /// Identifier (index into `World::pops`).
    pub id: PopId,
    /// Metro name.
    pub name: &'static str,
    /// Continent the PoP is on.
    pub continent: Continent,
    /// Location.
    pub loc: GeoPoint,
}

/// One client population cluster behind a prefix.
#[derive(Debug, Clone, Copy)]
pub struct ClientCluster {
    /// Cluster location.
    pub loc: GeoPoint,
    /// UTC offset of the cluster's local time, hours.
    pub utc_offset: i8,
}

/// Ground truth for one candidate egress route.
#[derive(Debug, Clone)]
pub struct RouteGt {
    /// The BGP-visible route (relationship, AS path).
    pub route: Route,
    /// Extra RTT vs the geographic path, milliseconds.
    pub penalty_ms: f64,
    /// Baseline random loss on the route.
    pub base_loss: f64,
    /// Probability per day of an episodic congestion event.
    pub episodic_prone: f64,
    /// AS path longer than the preferred route's (annotation).
    pub longer_path: bool,
    /// Prepended more than the preferred route (annotation).
    pub more_prepended: bool,
}

/// A destination prefix and everything behind it.
#[derive(Debug, Clone)]
pub struct PrefixSite {
    /// The BGP prefix.
    pub prefix: Prefix,
    /// Origin AS.
    pub asn: Asn,
    /// Country index (into `World::country_names`).
    pub country: u16,
    /// Continent.
    pub continent: Continent,
    /// Serving PoP chosen by the Cartographer model.
    pub pop: PopId,
    /// Relative traffic weight (sessions scale with this).
    pub weight: f64,
    /// Client clusters (usually one; two → the Figure-5 effect).
    pub clusters: Vec<ClientCluster>,
    /// Median client access bandwidth, bits/second.
    pub access_bw_median_bps: f64,
    /// Log-sigma of the access bandwidth distribution.
    pub access_bw_sigma: f64,
    /// Last-mile latency added to every path, milliseconds.
    pub last_mile_ms: f64,
    /// Per-round jitter ceiling, milliseconds.
    pub jitter_max_ms: f64,
    /// Severity (0–1) of diurnal destination-side congestion.
    pub diurnal_severity: f64,
    /// A performance-enhancing proxy splits the TCP connection somewhere
    /// on the path (satellite / cellular networks, §2.2.1). The value is
    /// the fraction of the end-to-end RTT the server-side segment covers:
    /// measurements then reflect server→PEP, not end-to-end — MinRTT is
    /// underestimated and goodput overestimated relative to the user.
    pub pep_rtt_fraction: Option<f64>,
    /// Candidate routes, rank 0 = policy-preferred.
    pub routes: Vec<RouteGt>,
}

/// The generated Internet.
#[derive(Debug, Clone)]
pub struct World {
    /// All PoPs.
    pub pops: Vec<Pop>,
    /// All destination prefixes.
    pub prefixes: Vec<PrefixSite>,
    /// Country display names, indexed by `PrefixSite::country`.
    pub country_names: Vec<String>,
    /// The seed the world was generated from.
    pub seed: u64,
}

/// Generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Master seed.
    pub seed: u64,
    /// Keep only every `1/sample` of countries (1.0 = all) — the test
    /// scale knob.
    pub country_fraction: f64,
    /// Max ASes per country.
    pub max_ases_per_country: u32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig { seed: 20190521, country_fraction: 1.0, max_ases_per_country: 3 }
    }
}

/// (name, continent, lat, lon) — a real-ish PoP footprint: densest in
/// EU/NA, sparse in AF/SA/OC, as the paper describes.
const POPS: &[(&str, Continent, f64, f64)] = &[
    ("Amsterdam", Continent::Europe, 52.4, 4.9),
    ("Frankfurt", Continent::Europe, 50.1, 8.7),
    ("London", Continent::Europe, 51.5, -0.1),
    ("Paris", Continent::Europe, 48.9, 2.4),
    ("Stockholm", Continent::Europe, 59.3, 18.1),
    ("Madrid", Continent::Europe, 40.4, -3.7),
    ("Milan", Continent::Europe, 45.5, 9.2),
    ("Ashburn", Continent::NorthAmerica, 39.0, -77.5),
    ("NewYork", Continent::NorthAmerica, 40.7, -74.0),
    ("Atlanta", Continent::NorthAmerica, 33.7, -84.4),
    ("Dallas", Continent::NorthAmerica, 32.8, -96.8),
    ("Chicago", Continent::NorthAmerica, 41.9, -87.6),
    ("PaloAlto", Continent::NorthAmerica, 37.4, -122.1),
    ("Seattle", Continent::NorthAmerica, 47.6, -122.3),
    ("LosAngeles", Continent::NorthAmerica, 34.1, -118.2),
    ("Singapore", Continent::Asia, 1.35, 103.8),
    ("Tokyo", Continent::Asia, 35.7, 139.7),
    ("HongKong", Continent::Asia, 22.3, 114.2),
    ("Mumbai", Continent::Asia, 19.1, 72.9),
    ("Seoul", Continent::Asia, 37.6, 127.0),
    ("SaoPaulo", Continent::SouthAmerica, -23.6, -46.6),
    ("BuenosAires", Continent::SouthAmerica, -34.6, -58.4),
    ("Johannesburg", Continent::Africa, -26.2, 28.0),
    ("Lagos", Continent::Africa, 6.5, 3.4),
    ("Sydney", Continent::Oceania, -33.9, 151.2),
];

/// (name, continent, lat, lon, utc_offset, weight) — traffic weights are
/// relative; continental sums approximate plausible shares of a global
/// service's traffic.
const COUNTRIES: &[(&str, Continent, f64, f64, i8, f64)] = &[
    // Europe (≈30%)
    ("Germany", Continent::Europe, 51.2, 10.4, 1, 5.5),
    ("UK", Continent::Europe, 54.0, -2.0, 0, 5.0),
    ("France", Continent::Europe, 46.6, 2.2, 1, 4.5),
    ("Netherlands", Continent::Europe, 52.2, 5.3, 1, 2.0),
    ("Spain", Continent::Europe, 40.3, -3.7, 1, 3.5),
    ("Italy", Continent::Europe, 42.8, 12.8, 1, 3.5),
    ("Poland", Continent::Europe, 52.1, 19.4, 1, 3.0),
    ("Sweden", Continent::Europe, 62.0, 15.0, 1, 1.5),
    ("Turkey", Continent::Europe, 39.0, 35.0, 3, 2.5),
    // North America (≈26%)
    ("US-East", Continent::NorthAmerica, 40.0, -79.0, -5, 8.0),
    ("US-Central", Continent::NorthAmerica, 39.0, -98.0, -6, 5.0),
    ("US-West", Continent::NorthAmerica, 37.0, -120.0, -8, 6.0),
    ("Canada", Continent::NorthAmerica, 48.0, -85.0, -5, 2.5),
    ("Mexico", Continent::NorthAmerica, 23.6, -102.5, -6, 4.0),
    // Asia (≈23%)
    ("India", Continent::Asia, 21.0, 78.0, 5, 6.0),
    ("Indonesia", Continent::Asia, -2.5, 118.0, 8, 4.0),
    ("Japan", Continent::Asia, 36.2, 138.2, 9, 2.5),
    ("Philippines", Continent::Asia, 12.9, 121.8, 8, 3.0),
    ("Thailand", Continent::Asia, 15.1, 101.0, 7, 2.0),
    ("Vietnam", Continent::Asia, 14.1, 108.3, 7, 2.0),
    ("Bangladesh", Continent::Asia, 23.7, 90.4, 6, 1.5),
    ("Pakistan", Continent::Asia, 30.4, 69.3, 5, 1.5),
    ("Taiwan", Continent::Asia, 23.7, 121.0, 8, 1.0),
    // South America (≈12%)
    ("Brazil", Continent::SouthAmerica, -14.2, -51.9, -3, 6.0),
    ("Argentina", Continent::SouthAmerica, -38.4, -63.6, -3, 2.0),
    ("Colombia", Continent::SouthAmerica, 4.6, -74.3, -5, 2.0),
    ("Chile", Continent::SouthAmerica, -35.7, -71.5, -4, 1.0),
    ("Peru", Continent::SouthAmerica, -9.2, -75.0, -5, 1.0),
    // Africa (≈6%)
    ("Nigeria", Continent::Africa, 9.1, 8.7, 1, 2.0),
    ("SouthAfrica", Continent::Africa, -30.6, 22.9, 2, 1.2),
    ("Egypt", Continent::Africa, 26.8, 30.8, 2, 1.5),
    ("Kenya", Continent::Africa, -0.0, 37.9, 3, 0.8),
    ("Ghana", Continent::Africa, 7.9, -1.0, 0, 0.5),
    // Oceania (≈3%)
    ("Australia", Continent::Oceania, -33.8, 150.5, 10, 2.2),
    ("NewZealand", Continent::Oceania, -40.9, 174.9, 12, 0.6),
];

/// Standard normal sample from the world RNG (Box–Muller).
pub(crate) fn normal_from(rng: &mut ChaCha12Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Access-network profile per continent:
/// (median bw bps, sigma, last-mile ms, jitter ms, peering probability).
fn access_profile(c: Continent) -> (f64, f64, f64, f64, f64) {
    match c {
        Continent::Africa => (4.4e6, 1.2, 20.0, 10.0, 0.35),
        Continent::Asia => (5.8e6, 1.2, 15.0, 8.0, 0.50),
        Continent::Europe => (11.0e6, 1.0, 6.0, 3.0, 0.80),
        Continent::NorthAmerica => (12.0e6, 1.0, 7.0, 3.5, 0.75),
        Continent::Oceania => (10.0e6, 1.0, 7.0, 3.0, 0.65),
        Continent::SouthAmerica => (5.6e6, 1.2, 9.0, 6.0, 0.50),
    }
}

impl World {
    /// Generate a world from the configuration.
    pub fn generate(cfg: WorldConfig) -> World {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let pops: Vec<Pop> = POPS
            .iter()
            .enumerate()
            .map(|(i, &(name, continent, lat, lon))| Pop {
                id: PopId(i as u16),
                name,
                continent,
                loc: GeoPoint { lat, lon },
            })
            .collect();

        let mut prefixes = Vec::new();
        let mut country_names = Vec::new();
        let mut next_asn = 64500u32;
        let mut next_block = 1u32; // /16 index

        for (ci, &(name, continent, lat, lon, utc, weight)) in COUNTRIES.iter().enumerate() {
            if cfg.country_fraction < 1.0 {
                // Deterministic thinning: keep the heaviest slice.
                let keep = (COUNTRIES.len() as f64 * cfg.country_fraction).ceil() as usize;
                if ci >= keep {
                    continue;
                }
            }
            let country_idx = country_names.len() as u16;
            country_names.push(name.to_string());
            let loc = GeoPoint { lat, lon };
            let (bw_med, bw_sigma, last_mile, jitter, peering_p) = access_profile(continent);

            let n_ases = rng.gen_range(2..=cfg.max_ases_per_country.max(2));
            for _ in 0..n_ases {
                let asn = Asn(next_asn);
                next_asn += 1;
                let n_prefixes = if rng.gen::<f64>() < 0.3 { 2 } else { 1 };
                for _ in 0..n_prefixes {
                    let prefix = Prefix::new(next_block << 16, 16);
                    next_block += 1;
                    let site = Self::make_site(
                        &mut rng,
                        &pops,
                        prefix,
                        asn,
                        country_idx,
                        continent,
                        loc,
                        utc,
                        weight / n_ases as f64,
                        (bw_med, bw_sigma, last_mile, jitter, peering_p),
                    );
                    prefixes.push(site);
                }
            }
        }
        World { pops, prefixes, country_names, seed: cfg.seed }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_site(
        rng: &mut ChaCha12Rng,
        pops: &[Pop],
        prefix: Prefix,
        asn: Asn,
        country: u16,
        continent: Continent,
        loc: GeoPoint,
        utc: i8,
        weight: f64,
        (bw_med, bw_sigma, last_mile, jitter, peering_p): (f64, f64, f64, f64, f64),
    ) -> PrefixSite {
        // Scatter the cluster around the country centroid.
        let scatter = |rng: &mut ChaCha12Rng, s: f64| GeoPoint {
            lat: (loc.lat + rng.gen_range(-s..=s)).clamp(-60.0, 70.0),
            lon: loc.lon + rng.gen_range(-s..=s),
        };
        let mut clusters = vec![ClientCluster { loc: scatter(rng, 3.0), utc_offset: utc }];
        // ~4% of prefixes serve two widely separated clusters (Fig 5).
        if rng.gen::<f64>() < 0.04 {
            let far = GeoPoint {
                lat: (loc.lat + rng.gen_range(-12.0..=12.0)).clamp(-60.0, 70.0),
                lon: loc.lon + rng.gen_range(25.0..=45.0) * if rng.gen() { 1.0 } else { -1.0 },
            };
            let utc2 = utc + if far.lon > loc.lon { 2 } else { -2 };
            clusters.push(ClientCluster { loc: far, utc_offset: utc2 });
        }

        // Cartographer: nearest PoP with a spill minority (see
        // crate::cartographer for the policy).
        let pop_id = crate::cartographer::map_cluster(
            pops,
            clusters[0].loc,
            crate::cartographer::MappingPolicy::default(),
            rng,
        );
        let pop = &pops[pop_id.0 as usize];

        // Destination-side diurnal congestion: more common and more
        // severe where access infrastructure is thin.
        let diurnal_severity = match continent {
            Continent::Africa | Continent::SouthAmerica => {
                if rng.gen::<f64>() < 0.45 {
                    rng.gen_range(0.3..1.0)
                } else {
                    0.0
                }
            }
            Continent::Asia => {
                if rng.gen::<f64>() < 0.35 {
                    rng.gen_range(0.2..0.9)
                } else {
                    0.0
                }
            }
            _ => {
                if rng.gen::<f64>() < 0.15 {
                    rng.gen_range(0.1..0.5)
                } else {
                    0.0
                }
            }
        };

        // PEP deployment probability tracks cellular/satellite prevalence.
        let pep_p = match continent {
            Continent::Africa => 0.12,
            Continent::Asia => 0.10,
            Continent::SouthAmerica => 0.08,
            _ => 0.04,
        };
        let pep_rtt_fraction = (rng.gen::<f64>() < pep_p).then(|| rng.gen_range(0.35..0.7));

        let routes = Self::make_routes(rng, prefix, asn, peering_p);

        PrefixSite {
            prefix,
            asn,
            country,
            continent,
            pop: pop.id,
            weight: weight * rng.gen_range(0.5..1.5),
            clusters,
            // Heterogeneity lives mostly *across* prefixes (an ISP's
            // subscribers share access technology tiers); within a prefix
            // sessions are comparatively homogeneous. This is precisely
            // why the paper aggregates at prefix granularity (§3.3).
            access_bw_median_bps: bw_med
                * (bw_sigma * 0.8 * crate::topology::normal_from(rng)).exp(),
            access_bw_sigma: bw_sigma * 0.45,
            last_mile_ms: last_mile * rng.gen_range(0.7..1.4),
            jitter_max_ms: jitter * rng.gen_range(0.6..1.5),
            diurnal_severity,
            pep_rtt_fraction,
            routes,
        }
    }

    /// Build the candidate route set and rank it with the §6.1 policy.
    fn make_routes(
        rng: &mut ChaCha12Rng,
        prefix: Prefix,
        origin: Asn,
        peering_p: f64,
    ) -> Vec<RouteGt> {
        let mut candidates: Vec<RouteGt> = Vec::new();
        let mut id = 0u32;
        let mut push = |rng: &mut ChaCha12Rng,
                        candidates: &mut Vec<RouteGt>,
                        rel: Relationship,
                        path: Vec<Asn>,
                        penalty: f64,
                        base_loss: f64,
                        episodic: f64| {
            candidates.push(RouteGt {
                route: Route {
                    id: RouteId(id),
                    prefix,
                    as_path: AsPath(path),
                    relationship: rel,
                    capacity_bps: rng.gen_range(10..200) * 1_000_000_000,
                },
                penalty_ms: penalty,
                base_loss,
                episodic_prone: episodic,
                longer_path: false,
                more_prepended: false,
            });
            id += 1;
        };

        // Direct private peering (PNI).
        if rng.gen::<f64>() < peering_p {
            let pen = rng.gen_range(0.0..3.0);
            push(rng, &mut candidates, Relationship::PrivatePeer, vec![origin], pen, 0.0002, 0.02);
            // Sometimes a second PNI exists (another metro / a regional
            // aggregator that also peers privately) — the source of the
            // paper's private→private opportunity rows in Table 2.
            if rng.gen::<f64>() < 0.30 {
                let mut path = vec![Asn(6000 + rng.gen_range(0..40)), origin];
                if rng.gen::<f64>() < 0.2 {
                    path.push(origin);
                }
                let pen2 = rng.gen_range(0.5..6.0);
                push(rng, &mut candidates, Relationship::PrivatePeer, path, pen2, 0.0004, 0.04);
            }
        }
        // Public exchange peering, occasionally prepended.
        if rng.gen::<f64>() < 0.6 {
            let mut path = vec![origin];
            if rng.gen::<f64>() < 0.12 {
                path.push(origin); // origin prepending
            }
            let pen = rng.gen_range(0.5..6.0);
            push(rng, &mut candidates, Relationship::PublicPeer, path, pen, 0.0008, 0.04);
        }
        // Two transit providers; paths longer, penalties larger, and more
        // prone to congestion episodes. A small fraction of transits are
        // actually *shorter* than the peer path (the continuous
        // opportunity the paper finds, §6.2.1).
        for t in 0..2 {
            let transit_asn = Asn(3000 + t);
            let mut path = vec![transit_asn, origin];
            if rng.gen::<f64>() < 0.25 {
                path.insert(1, Asn(5000 + rng.gen_range(0..50)));
            }
            if rng.gen::<f64>() < 0.12 {
                path.push(origin); // prepended announcement via this transit
            }
            let pen = if rng.gen::<f64>() < 0.05 {
                // Transit beats the peer path geographically.
                rng.gen_range(-4.0..0.0)
            } else {
                rng.gen_range(2.0..20.0)
            };
            push(rng, &mut candidates, Relationship::Transit, path, pen, 0.002, 0.10);
        }
        if candidates.is_empty() {
            // Guarantee at least one route.
            push(
                rng,
                &mut candidates,
                Relationship::Transit,
                vec![Asn(3000), origin],
                8.0,
                0.002,
                0.10,
            );
        }

        // Rank with the production policy, then keep preferred + 2.
        let mut rib = Rib::new();
        for c in &candidates {
            rib.insert(c.route.clone());
        }
        let ranked_ids: Vec<RouteId> = rib.ranked(&prefix).iter().map(|r| r.id).collect();
        let mut ranked: Vec<RouteGt> = ranked_ids
            .iter()
            .map(|rid| candidates.iter().find(|c| c.route.id == *rid).unwrap().clone())
            .collect();
        ranked.truncate(3);

        // Annotate alternates relative to the preferred route.
        let pref_len = ranked[0].route.as_path.len();
        let pref_prepends =
            pref_len - edgeperf_routing::prepend::stripped_len(&ranked[0].route.as_path);
        for r in ranked.iter_mut().skip(1) {
            r.longer_path = r.route.as_path.len() > pref_len;
            let prepends =
                r.route.as_path.len() - edgeperf_routing::prepend::stripped_len(&r.route.as_path);
            r.more_prepended = prepends > pref_prepends;
        }
        ranked
    }

    /// Total traffic weight across prefixes.
    pub fn total_weight(&self) -> f64 {
        self.prefixes.iter().map(|p| p.weight).sum()
    }

    /// The PoP with the given id.
    pub fn pop(&self, id: PopId) -> &Pop {
        &self.pops[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::default())
    }

    #[test]
    fn world_has_global_footprint() {
        let w = world();
        assert_eq!(w.pops.len(), 25);
        assert!(w.prefixes.len() >= 60, "prefixes = {}", w.prefixes.len());
        for c in Continent::all() {
            assert!(w.prefixes.iter().any(|p| p.continent == c), "no prefixes on {}", c.code());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = World::generate(WorldConfig::default());
        let b = World::generate(WorldConfig::default());
        assert_eq!(a.prefixes.len(), b.prefixes.len());
        for (x, y) in a.prefixes.iter().zip(&b.prefixes) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.pop, y.pop);
            assert_eq!(x.routes.len(), y.routes.len());
            assert!((x.weight - y.weight).abs() < 1e-12);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::default());
        let b = World::generate(WorldConfig { seed: 999, ..Default::default() });
        let same = a
            .prefixes
            .iter()
            .zip(&b.prefixes)
            .filter(|(x, y)| (x.weight - y.weight).abs() < 1e-12)
            .count();
        assert!(same < a.prefixes.len() / 2);
    }

    #[test]
    fn every_prefix_has_ranked_routes() {
        let w = world();
        for p in &w.prefixes {
            assert!(!p.routes.is_empty() && p.routes.len() <= 3, "{}", p.prefix);
            // Rank 0 must be at least as policy-preferred as the rest.
            for alt in &p.routes[1..] {
                let ord = edgeperf_routing::Rib::policy_cmp(&p.routes[0].route, &alt.route);
                assert_ne!(ord, std::cmp::Ordering::Greater);
            }
            // The preferred route is never marked longer/prepended.
            assert!(!p.routes[0].longer_path && !p.routes[0].more_prepended);
        }
    }

    #[test]
    fn most_clients_are_near_their_pop() {
        // Paper: half of traffic within 500 km, 90% within 2500 km.
        let w = world();
        let mut weighted_near = 0.0;
        let mut weighted_far = 0.0;
        let mut total = 0.0;
        for p in &w.prefixes {
            let d = crate::geo::distance_km(w.pop(p.pop).loc, p.clusters[0].loc);
            total += p.weight;
            if d < 1000.0 {
                weighted_near += p.weight;
            }
            if d > 5000.0 {
                weighted_far += p.weight;
            }
        }
        assert!(weighted_near / total > 0.4, "near share = {}", weighted_near / total);
        assert!(weighted_far / total < 0.25, "far share = {}", weighted_far / total);
    }

    #[test]
    fn africa_has_worse_access_than_europe() {
        let w = world();
        let med = |c: Continent| {
            let v: Vec<f64> = w
                .prefixes
                .iter()
                .filter(|p| p.continent == c)
                .map(|p| p.access_bw_median_bps)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(med(Continent::Africa) < med(Continent::Europe) / 2.0);
    }

    #[test]
    fn some_prefixes_have_two_clusters() {
        let w = world();
        let two = w.prefixes.iter().filter(|p| p.clusters.len() == 2).count();
        // ~4% of prefixes; with ~80 prefixes expect a handful. Just
        // require the mechanism exists across seeds.
        let w2 = World::generate(WorldConfig { seed: 7, ..Default::default() });
        let two2 = w2.prefixes.iter().filter(|p| p.clusters.len() == 2).count();
        assert!(two + two2 > 0, "no two-cluster prefixes in two seeds");
    }

    #[test]
    fn country_fraction_thins_world() {
        let small = World::generate(WorldConfig { country_fraction: 0.2, ..Default::default() });
        let full = world();
        assert!(small.prefixes.len() < full.prefixes.len() / 2);
        assert!(!small.prefixes.is_empty());
    }

    #[test]
    fn route_relationships_are_ordered_sanely() {
        let w = world();
        // Whenever a private peer exists it must be rank 0 (policy).
        for p in &w.prefixes {
            let has_private =
                p.routes.iter().any(|r| r.route.relationship == Relationship::PrivatePeer);
            if has_private {
                assert_eq!(p.routes[0].route.relationship, Relationship::PrivatePeer);
            }
        }
    }
}

#[cfg(test)]
mod pep_tests {
    use super::*;

    #[test]
    fn some_prefixes_sit_behind_peps() {
        let w = World::generate(WorldConfig::default());
        let with_pep = w.prefixes.iter().filter(|p| p.pep_rtt_fraction.is_some()).count();
        assert!(with_pep > 0, "PEP mechanism must exist");
        assert!(
            (with_pep as f64) < w.prefixes.len() as f64 * 0.3,
            "PEPs must be a minority: {with_pep}/{}",
            w.prefixes.len()
        );
        for p in &w.prefixes {
            if let Some(f) = p.pep_rtt_fraction {
                assert!((0.35..0.7).contains(&f), "fraction {f}");
            }
        }
    }

    #[test]
    fn peps_concentrate_in_cellular_heavy_continents() {
        // Across several seeds, AF+AS+SA should host most PEP prefixes.
        let mut south = 0usize;
        let mut north = 0usize;
        for seed in 0..6 {
            let w = World::generate(WorldConfig { seed, ..Default::default() });
            for p in &w.prefixes {
                if p.pep_rtt_fraction.is_some() {
                    match p.continent {
                        Continent::Africa | Continent::Asia | Continent::SouthAmerica => south += 1,
                        _ => north += 1,
                    }
                }
            }
        }
        assert!(south > north, "PEPs: {south} south vs {north} north");
    }
}
