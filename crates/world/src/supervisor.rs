//! The fault-tolerant study driver.
//!
//! The paper's pipeline ran continuously for 10 days over every PoP
//! (§3.3); at that scale a bad prefix, a wedged worker, or a mid-run
//! machine loss must not discard hours of work. [`run_study_supervised`]
//! wraps the work-stealing runner in a supervisor that guarantees the
//! study *always completes with an exact account of what is missing*:
//!
//! - **Panic isolation.** Each prefix computes into its own fragment
//!   under `catch_unwind`. A panicking prefix is requeued with a bounded
//!   retry budget and exponential backoff; once the budget is spent it is
//!   **quarantined** into [`StudyReport::quarantined`] with the panic
//!   payload, and the rest of the study is unaffected.
//! - **Watchdog deadlines.** A per-worker [`HeartbeatBoard`] exposes what
//!   every worker is running and for how long. Tasks past half their
//!   deadline are marked slow (`supervisor.watchdog.slow`); tasks past
//!   the full deadline are cooperatively cancelled (the sim loop checks
//!   once per window), aborted (`supervisor.watchdog.aborts`), and
//!   requeued under the same retry budget. Deadlines double per attempt.
//! - **Deterministic in-order merge.** Fragments arrive in any order but
//!   merge into the sink strictly by prefix index; out-of-order arrivals
//!   park in their slot until the cursor reaches them. Sink state after
//!   prefix *k* therefore never depends on scheduling — the foundation of
//!   bit-identical resume.
//! - **Checkpoint/resume.** With a checkpoint directory configured, the
//!   supervisor periodically writes the merge cursor, quarantine list,
//!   counters, and the full sink state ([`PersistentSink`]) to
//!   `checkpoint.json` (atomic tmp+rename). A rerun pointed at the same
//!   directory resumes after the last merged prefix; for the exact
//!   `Vec<SessionRecord>` sink the final output is bit-identical to an
//!   uninterrupted run (see DESIGN.md §10 for the argument).
//! - **Fault injection.** Every failure mode above is exercised through a
//!   [`FaultPlan`] — deterministic, spec-string-driven, honoured by unit
//!   tests and the CI chaos job alike.
//!
//! Supervisor decisions surface as `supervisor.*` counters and spans on
//! the existing metrics registry.
//!
//! What the supervisor cannot do: preemptively kill a truly wedged
//! computation. Cancellation is cooperative (checked at window
//! granularity inside the sim loop), so a loop that never reaches the
//! check can only be marked stuck in metrics, not reclaimed. In-process
//! isolation is the deliberate trade: fragments stay cheap (no
//! serialization per prefix) and determinism is easy to prove.
//!
//! [`HeartbeatBoard`]: edgeperf_obs::HeartbeatBoard
//! [`PersistentSink`]: edgeperf_analysis::PersistentSink

use crate::runner::{
    run_prefix_cancellable, thread_count, StudyConfig, StudyStats, WorkerCounters,
};
use crate::topology::World;
use edgeperf_analysis::checkpoint::PersistentSink;
use edgeperf_analysis::{RecordShard, SessionRecord};
use edgeperf_obs::{HeartbeatBoard, Metrics};
use serde::Value;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One prefix-targeted fault clause: fires while `attempt < attempts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixFault {
    /// Target prefix index.
    pub prefix: usize,
    /// How many attempts are affected (1 = first attempt only).
    pub attempts: u32,
}

/// One worker-targeted delay clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerDelay {
    /// Target worker index.
    pub worker: usize,
    /// Milliseconds to sleep (cancel-aware) before each claimed prefix.
    pub delay_ms: u64,
}

/// A deterministic fault-injection plan, threaded from `StudyBuilder` /
/// `repro --fault-plan` / `EDGEPERF_FAULT_PLAN` down to the workers.
///
/// Spec strings are `;`-separated clauses:
///
/// | clause | effect |
/// |---|---|
/// | `panic:K` or `panic:K@A` | prefix `K` panics on its first `A` attempts (default 1) |
/// | `stall:K` or `stall:K@A` | prefix `K` stalls (cancel-aware) on its first `A` attempts |
/// | `delay:W:MS` | worker `W` sleeps `MS` ms before every prefix it claims |
/// | `malformed:N` | every `N`-th record of every prefix is corrupted (NaN MinRTT) before validation |
/// | `mergefail:K` or `mergefail:K@A` | merging prefix `K` into the sink fails on the first `A` tries |
/// | `crash:K` | the supervisor checkpoints and aborts right after merging prefix `K` |
///
/// Every clause is a pure function of (prefix, attempt) or (worker), so a
/// faulty run is exactly reproducible.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Prefixes that panic.
    pub panics: Vec<PrefixFault>,
    /// Prefixes that stall until cancelled (or a 60 s safety cap).
    pub stalls: Vec<PrefixFault>,
    /// Per-worker claim delays.
    pub delays: Vec<WorkerDelay>,
    /// Corrupt every N-th record of each prefix before sink validation.
    pub malformed_every: Option<u64>,
    /// Prefixes whose sink merge fails.
    pub merge_failures: Vec<PrefixFault>,
    /// Simulate a hard crash right after this prefix merges.
    pub crash_after: Option<usize>,
}

/// A [`FaultPlan`] spec string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError(pub String);

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for FaultPlanError {}

fn parse_prefix_fault(body: &str, clause: &str) -> Result<PrefixFault, FaultPlanError> {
    let (k, a) = match body.split_once('@') {
        Some((k, a)) => (k, a),
        None => (body, "1"),
    };
    let prefix =
        k.parse().map_err(|_| FaultPlanError(format!("{clause}: bad prefix index {k:?}")))?;
    let attempts =
        a.parse().map_err(|_| FaultPlanError(format!("{clause}: bad attempt count {a:?}")))?;
    Ok(PrefixFault { prefix, attempts })
}

impl FaultPlan {
    /// Parse a spec string (see the type docs). Empty input is the empty
    /// plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, body) = clause
                .split_once(':')
                .ok_or_else(|| FaultPlanError(format!("{clause}: expected kind:args")))?;
            match kind {
                "panic" => plan.panics.push(parse_prefix_fault(body, clause)?),
                "stall" => plan.stalls.push(parse_prefix_fault(body, clause)?),
                "mergefail" => plan.merge_failures.push(parse_prefix_fault(body, clause)?),
                "delay" => {
                    let (w, ms) = body
                        .split_once(':')
                        .ok_or_else(|| FaultPlanError(format!("{clause}: expected delay:W:MS")))?;
                    plan.delays.push(WorkerDelay {
                        worker: w.parse().map_err(|_| {
                            FaultPlanError(format!("{clause}: bad worker index {w:?}"))
                        })?,
                        delay_ms: ms
                            .parse()
                            .map_err(|_| FaultPlanError(format!("{clause}: bad delay {ms:?}")))?,
                    });
                }
                "malformed" => {
                    let n: u64 = body
                        .parse()
                        .map_err(|_| FaultPlanError(format!("{clause}: bad period {body:?}")))?;
                    if n == 0 {
                        return Err(FaultPlanError(format!("{clause}: period must be ≥ 1")));
                    }
                    plan.malformed_every = Some(n);
                }
                "crash" => {
                    plan.crash_after = Some(body.parse().map_err(|_| {
                        FaultPlanError(format!("{clause}: bad prefix index {body:?}"))
                    })?);
                }
                other => return Err(FaultPlanError(format!("unknown fault kind {other:?}"))),
            }
        }
        Ok(plan)
    }

    /// The plan from `EDGEPERF_FAULT_PLAN`, or the empty plan when unset.
    pub fn from_env() -> Result<FaultPlan, FaultPlanError> {
        match std::env::var("EDGEPERF_FAULT_PLAN") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// True when no clause is present.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    fn fires(faults: &[PrefixFault], prefix: usize, attempt: u32) -> bool {
        faults.iter().any(|f| f.prefix == prefix && attempt < f.attempts)
    }

    fn panics(&self, prefix: usize, attempt: u32) -> bool {
        Self::fires(&self.panics, prefix, attempt)
    }

    fn stalls(&self, prefix: usize, attempt: u32) -> bool {
        Self::fires(&self.stalls, prefix, attempt)
    }

    fn merge_fails(&self, prefix: usize, merge_try: u32) -> bool {
        Self::fires(&self.merge_failures, prefix, merge_try)
    }

    fn delay_ms(&self, worker: usize) -> Option<u64> {
        self.delays.iter().find(|d| d.worker == worker).map(|d| d.delay_ms)
    }
}

impl fmt::Display for FaultPlan {
    /// Canonical spec string (round-trips through [`FaultPlan::parse`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut clauses: Vec<String> = Vec::new();
        for p in &self.panics {
            clauses.push(format!("panic:{}@{}", p.prefix, p.attempts));
        }
        for s in &self.stalls {
            clauses.push(format!("stall:{}@{}", s.prefix, s.attempts));
        }
        for d in &self.delays {
            clauses.push(format!("delay:{}:{}", d.worker, d.delay_ms));
        }
        if let Some(n) = self.malformed_every {
            clauses.push(format!("malformed:{n}"));
        }
        for m in &self.merge_failures {
            clauses.push(format!("mergefail:{}@{}", m.prefix, m.attempts));
        }
        if let Some(k) = self.crash_after {
            clauses.push(format!("crash:{k}"));
        }
        write!(f, "{}", clauses.join(";"))
    }
}

/// Supervisor tuning knobs. The defaults suit real studies; tests shrink
/// the deadlines.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Retries per prefix before quarantine (attempts = budget + 1).
    pub retry_budget: u32,
    /// Base wall-clock budget per prefix; doubles on every retry.
    pub deadline: Duration,
    /// Base requeue backoff after a failure; doubles on every retry.
    pub backoff: Duration,
    /// Supervisor wake-up period (watchdog scan + checkpoint check).
    pub tick: Duration,
    /// Directory for `checkpoint.json`; `None` disables checkpointing.
    /// If the directory already holds a compatible checkpoint, the run
    /// resumes from it.
    pub checkpoint_dir: Option<PathBuf>,
    /// Minimum interval between checkpoint writes.
    pub checkpoint_every: Duration,
    /// Caller-provided fingerprint pairs stored in the checkpoint and
    /// required to match on resume (e.g. builder-level scale settings the
    /// [`StudyConfig`] cannot express).
    pub meta: Vec<(String, String)>,
    /// Faults to inject (empty in production).
    pub fault_plan: FaultPlan,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            retry_budget: 2,
            deadline: Duration::from_secs(30),
            backoff: Duration::from_millis(10),
            tick: Duration::from_millis(20),
            checkpoint_dir: None,
            checkpoint_every: Duration::from_secs(2),
            meta: Vec::new(),
            fault_plan: FaultPlan::default(),
        }
    }
}

/// A prefix the supervisor gave up on, with the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedPrefix {
    /// Prefix index in `world.prefixes`.
    pub prefix: usize,
    /// Attempts consumed (retry budget + 1 on quarantine).
    pub attempts: u32,
    /// The final failure: panic payload or watchdog/merge diagnosis.
    pub reason: String,
}

/// What the supervised study did: completion, quarantine, every recovery
/// decision, and cumulative throughput counters (carried across resume).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StudyReport {
    /// Prefixes in the study.
    pub n_prefixes: usize,
    /// Prefixes merged into the sink (including before a resume).
    pub completed: usize,
    /// Prefixes abandoned after exhausting their retry budget.
    pub quarantined: Vec<QuarantinedPrefix>,
    /// Requeues after a failure (panic, watchdog abort, merge failure).
    pub retries: u64,
    /// Tasks that crossed half their deadline.
    pub watchdog_slow: u64,
    /// Tasks aborted for exceeding their deadline.
    pub watchdog_aborts: u64,
    /// Injected/real sink-merge failures observed.
    pub merge_failures: u64,
    /// Records dropped by sink-side validation (non-finite fields).
    pub malformed_dropped: u64,
    /// Messages for already-resolved (prefix, attempt) pairs, dropped.
    pub stale_results: u64,
    /// Checkpoints written this process.
    pub checkpoints_written: u64,
    /// Merge-cursor position restored from a checkpoint, if any.
    pub resumed_at: Option<usize>,
    /// Sessions simulated across merged prefixes (cumulative).
    pub sessions_simulated: u64,
    /// Records emitted across merged prefixes (cumulative, pre-validation).
    pub records_emitted: u64,
    /// Sessions dropped for lack of a MinRTT sample (cumulative).
    pub sessions_dropped_no_minrtt: u64,
}

impl StudyReport {
    /// JSON value tree (the shape written to `study_report.json`).
    pub fn to_value(&self) -> Value {
        let quarantined = self
            .quarantined
            .iter()
            .map(|q| {
                Value::Object(vec![
                    ("prefix".into(), Value::Num(q.prefix as f64)),
                    ("attempts".into(), Value::Num(q.attempts as f64)),
                    ("reason".into(), Value::Str(q.reason.clone())),
                ])
            })
            .collect();
        Value::Object(vec![
            ("n_prefixes".into(), Value::Num(self.n_prefixes as f64)),
            ("completed".into(), Value::Num(self.completed as f64)),
            ("quarantined".into(), Value::Array(quarantined)),
            ("retries".into(), Value::Num(self.retries as f64)),
            ("watchdog_slow".into(), Value::Num(self.watchdog_slow as f64)),
            ("watchdog_aborts".into(), Value::Num(self.watchdog_aborts as f64)),
            ("merge_failures".into(), Value::Num(self.merge_failures as f64)),
            ("malformed_dropped".into(), Value::Num(self.malformed_dropped as f64)),
            ("stale_results".into(), Value::Num(self.stale_results as f64)),
            ("checkpoints_written".into(), Value::Num(self.checkpoints_written as f64)),
            ("resumed_at".into(), self.resumed_at.map_or(Value::Null, |c| Value::Num(c as f64))),
            ("sessions_simulated".into(), Value::Num(self.sessions_simulated as f64)),
            ("records_emitted".into(), Value::Num(self.records_emitted as f64)),
            (
                "sessions_dropped_no_minrtt".into(),
                Value::Num(self.sessions_dropped_no_minrtt as f64),
            ),
        ])
    }

    /// Human-readable summary for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "supervisor: {}/{} prefixes merged, {} quarantined, {} retries\n",
            self.completed,
            self.n_prefixes,
            self.quarantined.len(),
            self.retries
        ));
        out.push_str(&format!(
            "  watchdog: {} slow, {} aborted | merge failures: {} | malformed dropped: {} | \
             stale results: {}\n",
            self.watchdog_slow,
            self.watchdog_aborts,
            self.merge_failures,
            self.malformed_dropped,
            self.stale_results
        ));
        if let Some(at) = self.resumed_at {
            out.push_str(&format!(
                "  resumed from checkpoint at prefix {at}; {} checkpoints written since\n",
                self.checkpoints_written
            ));
        } else if self.checkpoints_written > 0 {
            out.push_str(&format!("  checkpoints written: {}\n", self.checkpoints_written));
        }
        for q in &self.quarantined {
            out.push_str(&format!(
                "  quarantined prefix {} after {} attempts: {}\n",
                q.prefix, q.attempts, q.reason
            ));
        }
        out
    }
}

/// Errors the supervised path can surface. Worker failures never reach
/// here (they end in quarantine); these are checkpoint-layer problems
/// plus the injected crash.
#[derive(Debug)]
pub enum SupervisorError {
    /// A checkpoint file could not be read, written, or parsed.
    Checkpoint {
        /// The file involved.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// A checkpoint exists but belongs to a different study shape.
    Mismatch {
        /// The fingerprint field that differs.
        field: String,
        /// Value the current run expects.
        expected: String,
        /// Value stored in the checkpoint.
        found: String,
    },
    /// The fault plan's `crash:K` clause fired: the study stopped after
    /// checkpointing prefix `K`, simulating a hard kill.
    InjectedCrash {
        /// Prefix after which the crash fired.
        after_prefix: usize,
    },
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::Checkpoint { path, message } => {
                write!(f, "checkpoint {}: {message}", path.display())
            }
            SupervisorError::Mismatch { field, expected, found } => write!(
                f,
                "checkpoint belongs to a different study: {field} is {found}, this run has \
                 {expected}"
            ),
            SupervisorError::InjectedCrash { after_prefix } => {
                write!(f, "injected crash after merging prefix {after_prefix}")
            }
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Work queue entry: one (prefix, attempt) to compute, possibly embargoed
/// until its backoff expires.
#[derive(Debug, Clone, Copy)]
struct Work {
    prefix: usize,
    attempt: u32,
    not_before: Option<Instant>,
}

fn pop_ready(queue: &Mutex<VecDeque<Work>>) -> Option<Work> {
    let mut q = queue.lock().unwrap();
    let now = Instant::now();
    let idx = q.iter().position(|w| w.not_before.is_none_or(|t| t <= now))?;
    q.remove(idx)
}

/// Sink-side validation plus fault injection, wrapped around a worker's
/// fragment. Validation is always on in supervised runs: a record with a
/// non-finite MinRTT or HDratio is dropped and counted rather than
/// poisoning a digest or a figure. The injector corrupts every N-th
/// record *before* validation, so the chaos tests exercise the same path
/// a buggy instrumentation change would hit.
struct GuardShard<'a, S: RecordShard> {
    inner: &'a mut S,
    malformed_every: Option<u64>,
    seen: u64,
    dropped: u64,
}

impl<S: RecordShard> RecordShard for GuardShard<'_, S> {
    fn push(&mut self, mut record: SessionRecord) {
        self.seen += 1;
        if let Some(n) = self.malformed_every {
            if self.seen.is_multiple_of(n) {
                record.min_rtt_ms = f64::NAN;
            }
        }
        let bad = !record.min_rtt_ms.is_finite() || record.hdratio.is_some_and(|h| !h.is_finite());
        if bad {
            self.dropped += 1;
            return;
        }
        self.inner.push(record);
    }
}

enum Outcome<Sh> {
    Done { fragment: Sh, counters: WorkerCounters, malformed_dropped: u64 },
    Panicked { payload: String },
    Cancelled,
}

struct Msg<Sh> {
    prefix: usize,
    attempt: u32,
    worker: usize,
    outcome: Outcome<Sh>,
}

enum Slot<Sh> {
    /// Unresolved: queued, in flight, or awaiting retry.
    Pending,
    /// Computed, parked until the merge cursor arrives.
    Ready {
        worker: usize,
        fragment: Sh,
        counters: WorkerCounters,
        malformed_dropped: u64,
    },
    Merged,
    Quarantined,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn sleep_cancellable(ms: u64, cancelled: &dyn Fn() -> bool) {
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(ms) && !cancelled() {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Exponential scaling capped so the shift cannot overflow.
fn scaled(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(10))
}

const CHECKPOINT_VERSION: f64 = 1.0;

fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.json")
}

fn fingerprint(cfg: &StudyConfig, n_prefixes: usize) -> Vec<(&'static str, f64)> {
    vec![
        ("seed", cfg.seed as f64),
        ("days", cfg.days as f64),
        ("sessions_per_group_window", cfg.sessions_per_group_window as f64),
        ("n_prefixes", n_prefixes as f64),
    ]
}

struct ResumedState<S> {
    cursor: usize,
    quarantined: Vec<QuarantinedPrefix>,
    report: StudyReport,
    sink: S,
}

fn ck_num(v: &Value, path: &Path, what: &str) -> Result<f64, SupervisorError> {
    match v {
        Value::Num(n) => Ok(*n),
        _ => Err(SupervisorError::Checkpoint {
            path: path.to_path_buf(),
            message: format!("{what}: expected a number"),
        }),
    }
}

fn ck_field<'v>(v: &'v Value, path: &Path, name: &str) -> Result<&'v Value, SupervisorError> {
    v.get(name).ok_or_else(|| SupervisorError::Checkpoint {
        path: path.to_path_buf(),
        message: format!("missing field {name}"),
    })
}

fn load_checkpoint<S: PersistentSink>(
    path: &PathBuf,
    cfg: &StudyConfig,
    n_prefixes: usize,
    meta: &[(String, String)],
) -> Result<ResumedState<S>, SupervisorError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SupervisorError::Checkpoint { path: path.clone(), message: e.to_string() })?;
    let root = serde_json::parse(&text)
        .map_err(|e| SupervisorError::Checkpoint { path: path.clone(), message: e.to_string() })?;

    let version = ck_num(ck_field(&root, path, "version")?, path, "version")?;
    if version != CHECKPOINT_VERSION {
        return Err(SupervisorError::Mismatch {
            field: "version".into(),
            expected: CHECKPOINT_VERSION.to_string(),
            found: version.to_string(),
        });
    }
    let kind = match ck_field(&root, path, "kind")? {
        Value::Str(s) => s.clone(),
        _ => String::new(),
    };
    if kind != S::kind() {
        return Err(SupervisorError::Mismatch {
            field: "sink kind".into(),
            expected: S::kind().into(),
            found: kind,
        });
    }
    let study = ck_field(&root, path, "study")?;
    for (name, expected) in fingerprint(cfg, n_prefixes) {
        let found = ck_num(ck_field(study, path, name)?, path, name)?;
        if found != expected {
            return Err(SupervisorError::Mismatch {
                field: name.into(),
                expected: expected.to_string(),
                found: found.to_string(),
            });
        }
    }
    let stored_meta = ck_field(&root, path, "meta")?;
    for (k, expected) in meta {
        let found = match stored_meta.get(k) {
            Some(Value::Str(s)) => s.clone(),
            _ => String::new(),
        };
        if &found != expected {
            return Err(SupervisorError::Mismatch {
                field: k.clone(),
                expected: expected.clone(),
                found,
            });
        }
    }

    let cursor = ck_num(ck_field(&root, path, "cursor")?, path, "cursor")? as usize;
    let mut quarantined = Vec::new();
    if let Value::Array(items) = ck_field(&root, path, "quarantined")? {
        for q in items {
            quarantined.push(QuarantinedPrefix {
                prefix: ck_num(ck_field(q, path, "prefix")?, path, "prefix")? as usize,
                attempts: ck_num(ck_field(q, path, "attempts")?, path, "attempts")? as u32,
                reason: match q.get("reason") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => String::new(),
                },
            });
        }
    }
    let rv = ck_field(&root, path, "report")?;
    let count = |name: &str| -> Result<u64, SupervisorError> {
        Ok(ck_num(ck_field(rv, path, name)?, path, name)? as u64)
    };
    let report = StudyReport {
        n_prefixes,
        completed: count("completed")? as usize,
        quarantined: quarantined.clone(),
        retries: count("retries")?,
        watchdog_slow: count("watchdog_slow")?,
        watchdog_aborts: count("watchdog_aborts")?,
        merge_failures: count("merge_failures")?,
        malformed_dropped: count("malformed_dropped")?,
        stale_results: count("stale_results")?,
        checkpoints_written: 0,
        resumed_at: Some(cursor),
        sessions_simulated: count("sessions_simulated")?,
        records_emitted: count("records_emitted")?,
        sessions_dropped_no_minrtt: count("sessions_dropped_no_minrtt")?,
    };
    let sink = S::load(ck_field(&root, path, "sink")?).map_err(|e| {
        SupervisorError::Checkpoint { path: path.clone(), message: format!("sink state: {}", e.0) }
    })?;
    Ok(ResumedState { cursor, quarantined, report, sink })
}

fn write_checkpoint<S: PersistentSink>(
    dir: &Path,
    cfg: &StudyConfig,
    n_prefixes: usize,
    meta: &[(String, String)],
    cursor: usize,
    report: &StudyReport,
    sink: &S,
) -> Result<(), SupervisorError> {
    let path = checkpoint_path(dir);
    let fail = |message: String| SupervisorError::Checkpoint { path: path.clone(), message };
    let study = Value::Object(
        fingerprint(cfg, n_prefixes)
            .into_iter()
            .map(|(k, v)| (k.to_string(), Value::Num(v)))
            .collect(),
    );
    let meta_v =
        Value::Object(meta.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect());
    let root = Value::Object(vec![
        ("version".into(), Value::Num(CHECKPOINT_VERSION)),
        ("kind".into(), Value::Str(S::kind().into())),
        ("study".into(), study),
        ("meta".into(), meta_v),
        ("cursor".into(), Value::Num(cursor as f64)),
        (
            "quarantined".into(),
            Value::Array(
                report
                    .quarantined
                    .iter()
                    .map(|q| {
                        Value::Object(vec![
                            ("prefix".into(), Value::Num(q.prefix as f64)),
                            ("attempts".into(), Value::Num(q.attempts as f64)),
                            ("reason".into(), Value::Str(q.reason.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("report".into(), report.to_value()),
        ("sink".into(), sink.save()),
    ]);
    let text = serde_json::to_string(&root).map_err(|e| fail(e.to_string()))?;
    std::fs::create_dir_all(dir).map_err(|e| fail(e.to_string()))?;
    // Shared tmp + rename discipline (edgeperf_analysis::segment): a
    // crash mid-write leaves an orphan `.tmp`, never a torn checkpoint.
    edgeperf_analysis::segment::atomic_write(&path, text.as_bytes())
        .map_err(|e| fail(e.to_string()))?;
    Ok(())
}

/// Run the study under the supervisor. See the module docs for the
/// guarantees; on success returns the per-worker scheduler counters of
/// *this process* plus the cumulative [`StudyReport`].
///
/// The sink must be a [`PersistentSink`] whose shards are `Clone` (each
/// prefix computes into a clone of an empty prototype shard, so a
/// poisoned fragment can be discarded without touching the sink).
///
/// # Errors
///
/// Only checkpoint-layer failures (I/O, parse, fingerprint mismatch) and
/// the fault plan's injected crash return `Err`; worker failures are
/// handled (retried or quarantined) and reported in the
/// [`StudyReport`].
pub fn run_study_supervised<S>(
    world: &World,
    cfg: &StudyConfig,
    sup: &SupervisorConfig,
    sink: &mut S,
    metrics: &Metrics,
) -> Result<(StudyStats, StudyReport), SupervisorError>
where
    S: PersistentSink,
    S::Shard: Clone + Send,
{
    let _span = metrics.span("supervisor");
    let n = world.prefixes.len();
    let threads = thread_count(cfg).max(1);
    let plan = &sup.fault_plan;

    // Resume if the checkpoint directory already holds a matching study.
    let mut cursor = 0usize;
    let mut report = StudyReport { n_prefixes: n, ..StudyReport::default() };
    let mut slots: Vec<Slot<S::Shard>> = (0..n).map(|_| Slot::Pending).collect();
    if let Some(dir) = &sup.checkpoint_dir {
        let path = checkpoint_path(dir);
        if path.exists() {
            let resumed: ResumedState<S> = load_checkpoint(&path, cfg, n, &sup.meta)?;
            cursor = resumed.cursor;
            report = resumed.report;
            *sink = resumed.sink;
            for slot in slots.iter_mut().take(cursor) {
                *slot = Slot::Merged;
            }
            for q in &resumed.quarantined {
                if q.prefix < n {
                    slots[q.prefix] = Slot::Quarantined;
                }
            }
            metrics.gauge("supervisor.resumed_at").set(cursor as f64);
        }
    }

    let queue: Mutex<VecDeque<Work>> = Mutex::new(
        (cursor..n).map(|prefix| Work { prefix, attempt: 0, not_before: None }).collect(),
    );
    let mut attempts: Vec<u32> = vec![0; n];
    let done = AtomicBool::new(false);
    let board = HeartbeatBoard::new(threads);
    let (tx, rx) = mpsc::channel::<Msg<S::Shard>>();
    let proto = sink.new_shard();

    let mut stats = StudyStats { workers: vec![WorkerCounters::default(); threads] };
    let mut crash: Option<SupervisorError> = None;

    let retries_c = metrics.counter("supervisor.retries");
    let quarantined_c = metrics.counter("supervisor.quarantined");
    let slow_c = metrics.counter("supervisor.watchdog.slow");
    let aborts_c = metrics.counter("supervisor.watchdog.aborts");
    let mergefail_c = metrics.counter("supervisor.merge_failures");
    let malformed_c = metrics.counter("supervisor.malformed_dropped");
    let stale_c = metrics.counter("supervisor.stale_results");
    let checkpoints_c = metrics.counter("supervisor.checkpoints");
    let merged_c = metrics.counter("supervisor.prefixes_merged");

    std::thread::scope(|scope| {
        let queue = &queue;
        let done = &done;
        let board = &board;
        for w in 0..threads {
            let tx = tx.clone();
            let proto = proto.clone();
            scope.spawn(move || loop {
                if done.load(Ordering::Relaxed) {
                    break;
                }
                let Some(work) = pop_ready(queue) else {
                    std::thread::sleep(Duration::from_micros(200));
                    continue;
                };
                let token = board.begin(w, work.prefix);
                let cancelled = || board.cancelled(w, token);
                if let Some(ms) = plan.delay_ms(w) {
                    sleep_cancellable(ms, &cancelled);
                }
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if plan.panics(work.prefix, work.attempt) {
                        panic!(
                            "fault-plan: injected panic on prefix {} attempt {}",
                            work.prefix, work.attempt
                        );
                    }
                    if plan.stalls(work.prefix, work.attempt) {
                        // Stall until the watchdog cancels us (or a safety
                        // cap, after which the task proceeds as merely
                        // slow — keeps watchdog-less runs finite).
                        sleep_cancellable(60_000, &cancelled);
                    }
                    let mut fragment = proto.clone();
                    let mut counters = WorkerCounters::default();
                    let mut guard = GuardShard {
                        inner: &mut fragment,
                        malformed_every: plan.malformed_every,
                        seen: 0,
                        dropped: 0,
                    };
                    let completed = run_prefix_cancellable(
                        world,
                        cfg,
                        work.prefix,
                        &mut guard,
                        &mut counters,
                        &cancelled,
                    );
                    counters.prefixes += 1;
                    let dropped = guard.dropped;
                    (fragment, counters, dropped, completed)
                }));
                board.finish(w);
                let outcome = match result {
                    Ok((fragment, counters, malformed_dropped, true)) => {
                        Outcome::Done { fragment, counters, malformed_dropped }
                    }
                    Ok((_, _, _, false)) => Outcome::Cancelled,
                    Err(payload) => Outcome::Panicked { payload: panic_message(payload) },
                };
                if tx
                    .send(Msg { prefix: work.prefix, attempt: work.attempt, worker: w, outcome })
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(tx);

        // ---- supervisor loop (runs on the scope's owning thread) ----
        let mut merge_tries: HashMap<usize, u32> = HashMap::new();
        let mut aborted: HashSet<(usize, u64)> = HashSet::new();
        let mut slow_marked: HashSet<(usize, u64)> = HashSet::new();
        let mut last_checkpoint = Instant::now();
        let mut dirty = false;

        // Requeue (within budget) or quarantine the current attempt of
        // `prefix`; shared by panic, watchdog-abort, and merge-failure
        // handling.
        macro_rules! fail_attempt {
            ($prefix:expr, $reason:expr) => {{
                let p: usize = $prefix;
                let a = attempts[p];
                if a < sup.retry_budget {
                    attempts[p] = a + 1;
                    report.retries += 1;
                    retries_c.inc();
                    slots[p] = Slot::Pending;
                    queue.lock().unwrap().push_back(Work {
                        prefix: p,
                        attempt: a + 1,
                        not_before: Some(Instant::now() + scaled(sup.backoff, a)),
                    });
                } else {
                    slots[p] = Slot::Quarantined;
                    report.quarantined.push(QuarantinedPrefix {
                        prefix: p,
                        attempts: a + 1,
                        reason: $reason,
                    });
                    quarantined_c.inc();
                }
            }};
        }

        loop {
            let mut pending_msgs: Vec<Msg<S::Shard>> = Vec::new();
            match rx.recv_timeout(sup.tick) {
                Ok(msg) => {
                    pending_msgs.push(msg);
                    while let Ok(m) = rx.try_recv() {
                        pending_msgs.push(m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }

            for msg in pending_msgs {
                let actionable = matches!(slots[msg.prefix], Slot::Pending)
                    && msg.attempt == attempts[msg.prefix];
                match msg.outcome {
                    Outcome::Done { fragment, counters, malformed_dropped } => {
                        if actionable {
                            slots[msg.prefix] = Slot::Ready {
                                worker: msg.worker,
                                fragment,
                                counters,
                                malformed_dropped,
                            };
                            // A retry may still be queued from a watchdog
                            // abort whose original attempt then finished;
                            // it is no longer needed.
                            queue.lock().unwrap().retain(|w| w.prefix != msg.prefix);
                        } else {
                            report.stale_results += 1;
                            stale_c.inc();
                        }
                    }
                    Outcome::Panicked { payload } => {
                        if actionable {
                            fail_attempt!(msg.prefix, format!("panic: {payload}"));
                        } else {
                            report.stale_results += 1;
                            stale_c.inc();
                        }
                    }
                    // The abort was accounted when the watchdog decided;
                    // the cancellation notice itself carries no news.
                    Outcome::Cancelled => {}
                }
            }

            // Advance the in-order merge cursor over everything resolved.
            while cursor < n {
                match &slots[cursor] {
                    Slot::Pending => break,
                    Slot::Merged | Slot::Quarantined => {
                        cursor += 1;
                        continue;
                    }
                    Slot::Ready { .. } => {}
                }
                let tries = merge_tries.entry(cursor).or_insert(0);
                let this_try = *tries;
                *tries += 1;
                if plan.merge_fails(cursor, this_try) {
                    report.merge_failures += 1;
                    mergefail_c.inc();
                    fail_attempt!(cursor, "sink merge failure (injected)".to_string());
                    continue;
                }
                let Slot::Ready { worker, fragment, counters, malformed_dropped } =
                    std::mem::replace(&mut slots[cursor], Slot::Merged)
                else {
                    unreachable!("checked above");
                };
                {
                    let _merge = metrics.span("supervisor.merge");
                    sink.merge_shard(fragment);
                }
                stats.workers[worker].absorb(&counters);
                report.completed += 1;
                report.sessions_simulated += counters.sessions_simulated;
                report.records_emitted += counters.records_emitted;
                report.sessions_dropped_no_minrtt += counters.sessions_dropped_no_minrtt;
                report.malformed_dropped += malformed_dropped;
                malformed_c.add(malformed_dropped);
                merged_c.inc();
                dirty = true;
                let merged_prefix = cursor;
                cursor += 1;
                if plan.crash_after == Some(merged_prefix) {
                    if let Some(dir) = &sup.checkpoint_dir {
                        let _ck = metrics.span("supervisor.checkpoint");
                        if let Err(e) =
                            write_checkpoint(dir, cfg, n, &sup.meta, cursor, &report, sink)
                        {
                            crash = Some(e);
                            break;
                        }
                        report.checkpoints_written += 1;
                        checkpoints_c.inc();
                    }
                    crash = Some(SupervisorError::InjectedCrash { after_prefix: merged_prefix });
                    break;
                }
            }
            if crash.is_some() {
                break;
            }

            // Watchdog: scan in-flight tasks against their deadlines.
            for t in board.active() {
                if aborted.contains(&(t.worker, t.token)) {
                    continue;
                }
                if t.prefix >= n {
                    continue;
                }
                if matches!(slots[t.prefix], Slot::Pending) {
                    let deadline = scaled(sup.deadline, attempts[t.prefix]);
                    let elapsed = Duration::from_micros(t.elapsed_us);
                    if elapsed > deadline {
                        board.request_cancel(t.worker, t.token);
                        aborted.insert((t.worker, t.token));
                        report.watchdog_aborts += 1;
                        aborts_c.inc();
                        fail_attempt!(
                            t.prefix,
                            format!(
                                "watchdog: exceeded {:.1}s deadline ({:.1}s elapsed)",
                                deadline.as_secs_f64(),
                                elapsed.as_secs_f64()
                            )
                        );
                    } else if elapsed * 2 > deadline && !slow_marked.contains(&(t.worker, t.token))
                    {
                        slow_marked.insert((t.worker, t.token));
                        report.watchdog_slow += 1;
                        slow_c.inc();
                    }
                } else {
                    // A zombie attempt of an already-resolved prefix —
                    // reclaim the worker.
                    board.request_cancel(t.worker, t.token);
                    aborted.insert((t.worker, t.token));
                }
            }

            // Periodic checkpoint after progress.
            if let Some(dir) = &sup.checkpoint_dir {
                if dirty && last_checkpoint.elapsed() >= sup.checkpoint_every {
                    let _ck = metrics.span("supervisor.checkpoint");
                    match write_checkpoint(dir, cfg, n, &sup.meta, cursor, &report, sink) {
                        Ok(()) => {
                            report.checkpoints_written += 1;
                            checkpoints_c.inc();
                            dirty = false;
                            last_checkpoint = Instant::now();
                        }
                        Err(e) => {
                            crash = Some(e);
                            break;
                        }
                    }
                }
            }

            if cursor == n {
                break;
            }
        }
        done.store(true, Ordering::Relaxed);
    });

    if let Some(e) = crash {
        return Err(e);
    }

    // Final checkpoint so a rerun against the same directory is a no-op
    // resume, then settle the sink.
    if let Some(dir) = &sup.checkpoint_dir {
        let _ck = metrics.span("supervisor.checkpoint");
        write_checkpoint(dir, cfg, n, &sup.meta, cursor, &report, sink)?;
        report.checkpoints_written += 1;
        checkpoints_c.inc();
    }
    sink.finalize();
    Ok((stats, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_parses_every_clause_kind() {
        let plan =
            FaultPlan::parse("panic:3;stall:5@2;delay:1:40;malformed:100;mergefail:2;crash:7")
                .unwrap();
        assert_eq!(plan.panics, vec![PrefixFault { prefix: 3, attempts: 1 }]);
        assert_eq!(plan.stalls, vec![PrefixFault { prefix: 5, attempts: 2 }]);
        assert_eq!(plan.delays, vec![WorkerDelay { worker: 1, delay_ms: 40 }]);
        assert_eq!(plan.malformed_every, Some(100));
        assert_eq!(plan.merge_failures, vec![PrefixFault { prefix: 2, attempts: 1 }]);
        assert_eq!(plan.crash_after, Some(7));
        // Canonical rendering round-trips.
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn fault_plan_rejects_garbage() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic:x").is_err());
        assert!(FaultPlan::parse("panic:1@y").is_err());
        assert!(FaultPlan::parse("delay:1").is_err());
        assert!(FaultPlan::parse("malformed:0").is_err());
        assert!(FaultPlan::parse("explode:3").is_err());
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ;  ").unwrap().is_empty());
        assert!(!FaultPlan::parse("panic:0").unwrap().is_empty());
    }

    #[test]
    fn fault_clauses_are_attempt_scoped() {
        let plan = FaultPlan::parse("panic:4@2").unwrap();
        assert!(plan.panics(4, 0));
        assert!(plan.panics(4, 1));
        assert!(!plan.panics(4, 2));
        assert!(!plan.panics(5, 0));
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = StudyReport {
            n_prefixes: 10,
            completed: 9,
            quarantined: vec![QuarantinedPrefix {
                prefix: 4,
                attempts: 3,
                reason: "panic: boom".into(),
            }],
            retries: 2,
            resumed_at: Some(5),
            ..StudyReport::default()
        };
        let text = report.render();
        assert!(text.contains("9/10 prefixes merged"));
        assert!(text.contains("quarantined prefix 4 after 3 attempts: panic: boom"));
        let v = report.to_value();
        assert_eq!(v.get("completed"), Some(&Value::Num(9.0)));
        assert_eq!(v.get("resumed_at"), Some(&Value::Num(5.0)));
        match v.get("quarantined") {
            Some(Value::Array(items)) => assert_eq!(items.len(), 1),
            other => panic!("bad quarantined field: {other:?}"),
        }
    }

    #[test]
    fn scaled_durations_double_and_saturate() {
        let base = Duration::from_millis(10);
        assert_eq!(scaled(base, 0), base);
        assert_eq!(scaled(base, 1), base * 2);
        assert_eq!(scaled(base, 3), base * 8);
        // Huge attempts must not overflow the shift.
        assert_eq!(scaled(base, 40), base * 1024);
    }
}
