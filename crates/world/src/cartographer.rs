//! Cartographer: mapping client populations to PoPs (paper §2.1, [56]).
//!
//! The production system steers clients to PoPs via DNS and embedded
//! URLs, using performance measurements to pick the best ingress. The
//! model here captures the two properties the paper reports: clients
//! usually land on a nearby PoP (half of traffic within 500 km, 90%
//! within 2,500 km), and a minority spill to the second-best PoP (DNS
//! resolver mislocation, load balancing) — including cross-continent
//! serving where no nearby PoP exists (European PoPs serving Africa and
//! parts of Asia).

use crate::geo::{propagation_rtt_ms, GeoPoint};
use crate::topology::Pop;
use edgeperf_routing::PopId;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// How clients are steered to PoPs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingPolicy {
    /// Always the latency-nearest PoP.
    Nearest,
    /// Nearest PoP, with a fraction of prefixes landing on the
    /// second-nearest (resolver mislocation / load shedding).
    NearestWithSpill {
        /// Fraction of prefixes mapped to the runner-up PoP.
        spill: f64,
    },
}

impl Default for MappingPolicy {
    fn default() -> Self {
        MappingPolicy::NearestWithSpill { spill: 0.12 }
    }
}

/// PoPs ranked by modelled propagation RTT to a location.
pub fn ranked_pops(pops: &[Pop], loc: GeoPoint) -> Vec<(&Pop, f64)> {
    let mut v: Vec<(&Pop, f64)> =
        pops.iter().map(|p| (p, propagation_rtt_ms(p.loc, loc))).collect();
    v.sort_by(|a, b| a.1.total_cmp(&b.1));
    v
}

/// Map a client cluster to its serving PoP under the policy.
pub fn map_cluster(
    pops: &[Pop],
    loc: GeoPoint,
    policy: MappingPolicy,
    rng: &mut ChaCha12Rng,
) -> PopId {
    let ranked = ranked_pops(pops, loc);
    assert!(!ranked.is_empty(), "no PoPs to map to");
    match policy {
        MappingPolicy::Nearest => ranked[0].0.id,
        MappingPolicy::NearestWithSpill { spill } => {
            if ranked.len() > 1 && rng.gen::<f64>() < spill {
                ranked[1].0.id
            } else {
                ranked[0].0.id
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Continent;
    use crate::topology::{World, WorldConfig};
    use rand::SeedableRng;

    fn world_pops() -> Vec<Pop> {
        World::generate(WorldConfig::default()).pops
    }

    #[test]
    fn nearest_policy_picks_the_obvious_pop() {
        let pops = world_pops();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        // A Berlin-ish client must land on a European PoP.
        let berlin = GeoPoint { lat: 52.5, lon: 13.4 };
        let id = map_cluster(&pops, berlin, MappingPolicy::Nearest, &mut rng);
        let pop = &pops[id.0 as usize];
        assert_eq!(pop.continent, Continent::Europe, "got {}", pop.name);
    }

    #[test]
    fn spill_fraction_is_respected() {
        let pops = world_pops();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let sf = GeoPoint { lat: 37.7, lon: -122.4 };
        let n = 20_000;
        let mut spilled = 0;
        let nearest = map_cluster(&pops, sf, MappingPolicy::Nearest, &mut rng);
        for _ in 0..n {
            let id =
                map_cluster(&pops, sf, MappingPolicy::NearestWithSpill { spill: 0.2 }, &mut rng);
            if id != nearest {
                spilled += 1;
            }
        }
        let frac = spilled as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "spill fraction = {frac}");
    }

    #[test]
    fn north_africa_is_served_from_europe() {
        // The paper: 2.1% of all traffic is European PoPs serving Africa.
        // Cairo's nearest PoP is European, not Johannesburg or Lagos.
        let pops = world_pops();
        let cairo = GeoPoint { lat: 30.0, lon: 31.2 };
        let ranked = ranked_pops(&pops, cairo);
        assert_eq!(ranked[0].0.continent, Continent::Europe, "got {}", ranked[0].0.name);
    }

    #[test]
    fn ranking_is_monotone_in_rtt() {
        let pops = world_pops();
        let tokyo = GeoPoint { lat: 35.7, lon: 139.7 };
        let ranked = ranked_pops(&pops, tokyo);
        assert_eq!(ranked[0].0.name, "Tokyo");
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn mapping_is_deterministic_per_seed() {
        let pops = world_pops();
        let loc = GeoPoint { lat: -23.5, lon: -46.6 };
        let a: Vec<PopId> = {
            let mut rng = ChaCha12Rng::seed_from_u64(9);
            (0..100).map(|_| map_cluster(&pops, loc, MappingPolicy::default(), &mut rng)).collect()
        };
        let b: Vec<PopId> = {
            let mut rng = ChaCha12Rng::seed_from_u64(9);
            (0..100).map(|_| map_cluster(&pops, loc, MappingPolicy::default(), &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
