//! The fleet study runner: ground truth → simulated transfers →
//! production-style measurement → analysis records.
//!
//! For every (prefix, 15-minute window) the runner samples sessions,
//! pins each to the preferred route or an alternate (Edge-Fabric style,
//! §2.2.3), synthesizes the session's HTTP workload, simulates its
//! transfers through the route's current ground-truth condition with the
//! round-based TCP model, and then measures the result exactly as the
//! paper's load-balancer instrumentation would: windowed MinRTT plus
//! HDratio via `Gtestable`/`Tmodel`. Only the measurement outputs reach
//! the analysis — ground truth is never copied through.

use crate::dynamics::{diurnal_factor, local_hour, pick_cluster, route_condition};
use crate::geo::propagation_rtt_ms;
use crate::topology::World;
use edgeperf_analysis::{GroupKey, RecordShard, RecordSink, SessionRecord, SinkStats};
use edgeperf_core::{session_hdratio, ResponseObs, SessionObs, HD_GOODPUT_BPS};
use edgeperf_netsim::{FastFlow, PathState};
use edgeperf_obs::Metrics;
use edgeperf_routing::EdgeFabric;
use edgeperf_tcp::{TcpConfig, MILLISECOND};
use edgeperf_workload::{SessionPlan, WorkloadConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Study parameters.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Seed for everything (sessions, dynamics draw through the world
    /// seed separately).
    pub seed: u64,
    /// Number of simulated days (the paper's study: 10).
    pub days: u32,
    /// Target sampled sessions per (group, window) at weight 1.0.
    pub sessions_per_group_window: u32,
    /// Worker threads (0 = all available cores).
    pub parallelism: usize,
    /// Workload shape.
    pub workload: WorkloadConfig,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 7,
            days: 10,
            sessions_per_group_window: 240,
            parallelism: 0,
            workload: WorkloadConfig::default(),
        }
    }
}

impl StudyConfig {
    /// Total windows in the study.
    pub fn n_windows(&self) -> u32 {
        self.days * crate::dynamics::WINDOWS_PER_DAY
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Per-worker throughput and drop counters, reported by
/// [`run_study_into`] so the CLI can surface scheduler behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Prefixes this worker claimed from the shared cursor.
    pub prefixes: u64,
    /// Sessions simulated (before any measurement-validity filtering).
    pub sessions_simulated: u64,
    /// Records pushed into the worker's shard.
    pub records_emitted: u64,
    /// Sessions dropped because the transport produced no MinRTT sample
    /// (nothing was ever acked inside the window).
    pub sessions_dropped_no_minrtt: u64,
}

impl WorkerCounters {
    pub(crate) fn absorb(&mut self, other: &WorkerCounters) {
        self.prefixes += other.prefixes;
        self.sessions_simulated += other.sessions_simulated;
        self.records_emitted += other.records_emitted;
        self.sessions_dropped_no_minrtt += other.sessions_dropped_no_minrtt;
    }
}

/// Scheduler statistics for one study run.
#[derive(Debug, Clone, Default)]
pub struct StudyStats {
    /// One entry per worker thread, in spawn order. Which prefixes a
    /// given worker claimed depends on OS scheduling; only the totals
    /// are deterministic.
    pub workers: Vec<WorkerCounters>,
}

impl StudyStats {
    /// Counters summed across workers (deterministic for a fixed config).
    pub fn total(&self) -> WorkerCounters {
        let mut t = WorkerCounters::default();
        for w in &self.workers {
            t.absorb(w);
        }
        t
    }
}

pub(crate) fn thread_count(cfg: &StudyConfig) -> usize {
    if cfg.parallelism == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.parallelism
    }
}

/// Run the study over `world`, producing one record per sampled session.
///
/// Collects everything into a `Vec` — the exact-analysis path. For the
/// bounded-memory path, pass an
/// [`edgeperf_analysis::StreamingDataset`] to [`run_study_into`].
pub fn run_study(world: &World, cfg: &StudyConfig) -> Vec<SessionRecord> {
    let mut records = Vec::new();
    run_study_into(world, cfg, &mut records);
    records
}

/// Run the study into any [`RecordSink`], returning per-worker counters.
///
/// Prefixes are distributed by work stealing: workers claim the next
/// unprocessed prefix from a shared atomic cursor, so a worker stuck on a
/// heavy prefix (many routes, many sessions) does not leave its siblings
/// idle the way static chunking does. Each worker pushes into its own
/// thread-local shard; shards merge into `sink` at join time, in worker
/// order. Every prefix is claimed exactly once, so per-cell contents are
/// independent of the parallelism level.
pub fn run_study_into<S: RecordSink>(world: &World, cfg: &StudyConfig, sink: &mut S) -> StudyStats {
    run_study_observed(world, cfg, sink, &Metrics::disabled())
}

/// [`run_study_into`] with pipeline observability.
///
/// With an enabled [`Metrics`] handle the runner additionally records:
///
/// - counters `runner.prefixes`, `runner.sessions_simulated`,
///   `runner.records_emitted`, and drops by reason
///   (`runner.drop.no_minrtt`);
/// - per-worker gauges `scheduler.worker.<i>.{steals,busy_sec,idle_sec}`
///   and the `scheduler.queue_depth` histogram (prefixes still unclaimed
///   at each steal);
/// - the `sink.merge_ns` shard-merge latency histogram and post-run
///   `sink.<name>.{records,cells,digest_centroids,digest_compressions}`
///   gauges from [`RecordSink::stats`];
/// - spans `study` → `study.run` (workers + merges, with
///   `study.run.merge` as the merge share) and `study.finalize`.
///
/// Instrumentation granularity is per prefix and per worker, never per
/// record, so the measured overhead stays well under the 3% budget; with
/// a disabled handle every metrics call is a no-op branch and no clock is
/// read.
pub fn run_study_observed<S: RecordSink>(
    world: &World,
    cfg: &StudyConfig,
    sink: &mut S,
    metrics: &Metrics,
) -> StudyStats {
    let _study = metrics.span("study");
    let threads = thread_count(cfg).max(1);
    let n = world.prefixes.len();
    let cursor = AtomicUsize::new(0);
    let mut stats = StudyStats::default();
    {
        let _run = metrics.span("study.run");
        let merge_ns = metrics.histogram("sink.merge_ns");
        std::thread::scope(|s| {
            let cursor = &cursor;
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let mut shard = sink.new_shard();
                    let metrics = metrics.clone();
                    s.spawn(move || {
                        let enabled = metrics.is_enabled();
                        let queue_depth = metrics.histogram("scheduler.queue_depth");
                        let worker_t0 = enabled.then(Instant::now);
                        let mut busy_ns = 0u64;
                        let mut counters = WorkerCounters::default();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= n {
                                break;
                            }
                            if enabled {
                                queue_depth.record((n - idx) as u64);
                                let t0 = Instant::now();
                                run_prefix(world, cfg, idx, &mut shard, &mut counters);
                                busy_ns += t0.elapsed().as_nanos() as u64;
                            } else {
                                run_prefix(world, cfg, idx, &mut shard, &mut counters);
                            }
                            counters.prefixes += 1;
                        }
                        if let Some(t0) = worker_t0 {
                            let wall = t0.elapsed().as_nanos() as u64;
                            let pre = format!("scheduler.worker.{w}");
                            metrics.gauge(&format!("{pre}.steals")).set(counters.prefixes as f64);
                            metrics.gauge(&format!("{pre}.busy_sec")).set(busy_ns as f64 / 1e9);
                            metrics
                                .gauge(&format!("{pre}.idle_sec"))
                                .set(wall.saturating_sub(busy_ns) as f64 / 1e9);
                        }
                        (shard, counters)
                    })
                })
                .collect();
            for h in handles {
                let (shard, counters) = h.join().expect("runner thread panicked");
                let _merge = metrics.span("study.run.merge");
                merge_ns.time(|| sink.merge_shard(shard));
                stats.workers.push(counters);
            }
        });
    }
    {
        // Let the sink settle deferred state (e.g. digest insert buffers)
        // so post-run queries borrow `&self` without hidden work.
        let _finalize = metrics.span("study.finalize");
        sink.finalize();
    }
    if metrics.is_enabled() {
        let t = stats.total();
        metrics.counter("runner.prefixes").add(t.prefixes);
        metrics.counter("runner.sessions_simulated").add(t.sessions_simulated);
        metrics.counter("runner.records_emitted").add(t.records_emitted);
        metrics.counter("runner.drop.no_minrtt").add(t.sessions_dropped_no_minrtt);
        let s: SinkStats = sink.stats().into();
        let label = sink.name();
        metrics.gauge(&format!("sink.{label}.records")).set(s.records as f64);
        metrics.gauge(&format!("sink.{label}.cells")).set(s.cells as f64);
        metrics.gauge(&format!("sink.{label}.digest_centroids")).set(s.digest_centroids as f64);
        metrics
            .gauge(&format!("sink.{label}.digest_compressions"))
            .set(s.digest_compressions as f64);
    }
    stats
}

/// The pre-work-stealing scheduler: contiguous prefix ranges assigned up
/// front. Kept as the baseline the pipeline bench compares the stealing
/// scheduler against; produces the same record multiset.
pub fn run_study_static(world: &World, cfg: &StudyConfig) -> Vec<SessionRecord> {
    let threads = thread_count(cfg);
    let n = world.prefixes.len();
    let chunk = n.div_ceil(threads.max(1));
    let mut out = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            handles.push(s.spawn(move || {
                let mut records = Vec::new();
                let mut counters = WorkerCounters::default();
                for idx in lo..hi {
                    run_prefix(world, cfg, idx, &mut records, &mut counters);
                }
                records
            }));
        }
        for h in handles {
            out.extend(h.join().expect("runner thread panicked"));
        }
    });
    out
}

fn run_prefix<S: RecordShard>(
    world: &World,
    cfg: &StudyConfig,
    idx: usize,
    out: &mut S,
    counters: &mut WorkerCounters,
) {
    run_prefix_cancellable(world, cfg, idx, out, counters, &|| false);
}

/// As [`run_prefix`], polling `cancelled` once per window.
///
/// The supervisor's watchdog aborts a stuck prefix by flipping its
/// cancellation flag; the sim loop honours it at window granularity (the
/// finest point where abandoning work keeps the per-session RNG stream
/// untouched for a future retry). Returns `false` if the prefix was
/// abandoned mid-flight — the shard then holds a partial fragment the
/// caller must discard.
pub(crate) fn run_prefix_cancellable<S: RecordShard>(
    world: &World,
    cfg: &StudyConfig,
    idx: usize,
    out: &mut S,
    counters: &mut WorkerCounters,
    cancelled: &dyn Fn() -> bool,
) -> bool {
    let site = &world.prefixes[idx];
    let pop = world.pop(site.pop);
    let fabric = EdgeFabric::default();
    let group = GroupKey {
        pop: site.pop,
        prefix: site.prefix,
        country: site.country,
        continent: site.continent as u8,
    };
    // One scratch per prefix: every session on this worker reuses the
    // same coalescing buffers instead of allocating per session.
    let mut scratch = SessionScratch::default();

    for window in 0..cfg.n_windows() {
        if cancelled() {
            return false;
        }
        // Sampled-session counts are stratified per group (the statistics
        // need ≥30 samples per route per window); the group's true traffic
        // volume enters the analysis through the records' byte weights.
        // Volume still follows the destination's diurnal activity.
        let activity = 0.7 + 0.6 * diurnal_factor(local_hour(window, site.clusters[0].utc_offset));
        let n_sessions = ((cfg.sessions_per_group_window as f64) * activity) as u32;
        for i in 0..n_sessions.max(1) {
            let session_id =
                splitmix64(cfg.seed ^ (idx as u64) << 40 ^ (window as u64) << 16 ^ i as u64);
            let mut rng = ChaCha12Rng::seed_from_u64(session_id);

            let choice = fabric.pin_sampled(session_id, site.routes.len());
            let gt = &site.routes[choice.rank];
            let cond = route_condition(world.seed, site, choice.rank, window);
            let cluster_idx = pick_cluster(site, window, rng.gen::<f64>());
            let cluster = site.clusters[cluster_idx];

            let geo_rtt = propagation_rtt_ms(pop.loc, cluster.loc);
            let mut base_rtt_ms = (geo_rtt + gt.penalty_ms + site.last_mile_ms).max(1.0);
            // A PEP splits the connection: the server only measures its
            // own segment (shorter RTT, last-mile loss shielded by the
            // proxy's local retransmission) — the §2.2.1 caveat, faithfully
            // reproduced rather than corrected.
            let pep_shield = if let Some(frac) = site.pep_rtt_fraction {
                base_rtt_ms *= frac;
                0.3
            } else {
                1.0
            };

            // Client access bandwidth draw (log-normal).
            let z = edgeperf_workload::distributions::standard_normal(&mut rng);
            let access_bps =
                (site.access_bw_median_bps * (site.access_bw_sigma * z).exp()).clamp(2.0e5, 5.0e8);

            // Last-link (wireless/cellular) loss varies per client: a
            // sizeable minority of sessions see link-layer loss the route
            // cannot explain (§3.1's wireless/cellular point). This is
            // what creates partial (0 < HDratio < 1) sessions.
            let extra_loss = if rng.gen::<f64>() < 0.3 { rng.gen_range(0.001..0.02) } else { 0.0 };
            // Traffic policing near video bitrates (§4: "the largest
            // barrier to these clients achieving HD goodput is likely the
            // impact of loss and traffic policing"). More prevalent where
            // mobile plans dominate.
            let police_p = match site.continent {
                crate::geo::Continent::Africa => 0.22,
                crate::geo::Continent::Asia => 0.18,
                crate::geo::Continent::SouthAmerica => 0.15,
                _ => 0.06,
            };
            let bottleneck = if rng.gen::<f64>() < police_p {
                let z = edgeperf_workload::distributions::standard_normal(&mut rng);
                access_bps.min(3.5e6 * (0.5 * z).exp())
            } else {
                access_bps
            } * cond.bw_factor;
            let state = PathState {
                base_rtt: (base_rtt_ms * MILLISECOND as f64) as u64,
                standing_queue: (cond.standing_queue_ms * MILLISECOND as f64) as u64,
                jitter_max: (site.jitter_max_ms * MILLISECOND as f64) as u64,
                bottleneck_bps: bottleneck as u64,
                loss: ((cond.loss + extra_loss) * pep_shield).min(0.5),
            };

            let plan = cfg.workload.generate(&mut rng);
            counters.sessions_simulated += 1;
            let session = simulate_session_scratch(
                &plan,
                &state,
                TcpConfig::default(),
                &mut rng,
                &mut scratch,
            );
            let Some(min_rtt) = session.min_rtt else {
                counters.sessions_dropped_no_minrtt += 1;
                continue;
            };
            let verdict = session_hdratio(&session, HD_GOODPUT_BPS);

            out.push(SessionRecord {
                group,
                window,
                route_rank: choice.rank as u8,
                relationship: gt.route.relationship,
                longer_path: gt.longer_path,
                more_prepended: gt.more_prepended,
                min_rtt_ms: min_rtt as f64 / MILLISECOND as f64,
                hdratio: verdict.and_then(|v| v.hdratio()),
                // Weight the sampled session by its group's traffic share.
                bytes: (session.total_bytes() as f64 * site.weight).max(1.0) as u64,
            });
            counters.records_emitted += 1;
        }
    }
    true
}

/// Execute a session plan over a path condition with the fast TCP model,
/// producing the observation stream the load balancer would capture.
///
/// Writes that arrive while the previous response is still transferring
/// are merged into one transfer (the transport serializes them anyway);
/// the instrumentation sees them as back-to-back responses and coalesces
/// them, mirroring production HTTP/2 behaviour.
/// Log-sigma of the per-transfer throughput variation in
/// [`simulate_session`].
const TXN_BW_SIGMA: f64 = 0.55;

pub fn simulate_session(
    plan: &SessionPlan,
    state: &PathState,
    rng: &mut ChaCha12Rng,
) -> SessionObs {
    simulate_session_with(plan, state, TcpConfig::default(), rng)
}

/// As [`simulate_session`] with an explicit TCP configuration (used by
/// the congestion-control comparison experiment).
pub fn simulate_session_with(
    plan: &SessionPlan,
    state: &PathState,
    tcp: TcpConfig,
    rng: &mut ChaCha12Rng,
) -> SessionObs {
    simulate_session_scratch(plan, state, tcp, rng, &mut SessionScratch::default())
}

/// Reusable per-worker buffers for [`simulate_session_scratch`]: the
/// write-coalescing member list would otherwise be reallocated for every
/// back-to-back group of every session.
#[derive(Debug, Default)]
pub struct SessionScratch {
    members: Vec<u64>,
}

/// As [`simulate_session_with`], reusing caller-owned scratch buffers
/// across calls. The hot path: `run_prefix` keeps one scratch per prefix.
pub fn simulate_session_scratch(
    plan: &SessionPlan,
    state: &PathState,
    tcp: TcpConfig,
    rng: &mut ChaCha12Rng,
    scratch: &mut SessionScratch,
) -> SessionObs {
    let mut flow = FastFlow::new(tcp);
    let mut responses: Vec<ResponseObs> = Vec::with_capacity(plan.transactions.len());
    let mut busy_until: u64 = 0;

    let mut i = 0;
    while i < plan.transactions.len() {
        // Collect the back-to-back group starting at i: responses written
        // before the group's transfer would complete join the group. The
        // completion time is probed on clones so the committed transfer
        // consumes the connection's congestion state exactly once.
        let start = plan.transactions[i].offset.max(busy_until);
        let mut group_bytes = plan.transactions[i].bytes;
        let members = &mut scratch.members;
        members.clear();
        members.push(plan.transactions[i].bytes);
        let mut j = i + 1;
        while j < plan.transactions.len() {
            let mut probe_flow = flow.clone();
            let mut probe_rng = rng.clone();
            let end = start + probe_flow.transfer(group_bytes, state, &mut probe_rng).ttotal;
            if plan.transactions[j].offset > end {
                break;
            }
            group_bytes += plan.transactions[j].bytes;
            members.push(plan.transactions[j].bytes);
            j += 1;
        }

        // Effective throughput varies transfer-to-transfer (cross-traffic
        // on the shared last mile, wifi quality): draw a log-normal factor
        // per group. This is what makes marginal sessions *partial*
        // (0 < HDratio < 1) rather than all-or-nothing.
        let z = edgeperf_workload::distributions::standard_normal(rng);
        let varied = PathState {
            bottleneck_bps: ((state.bottleneck_bps as f64 * (TXN_BW_SIGMA * z).exp()).max(1.5e5))
                as u64,
            ..*state
        };
        let tr = flow.transfer(group_bytes, &varied, rng);
        let t0 = start;
        // Emit one observation per original response; the group's
        // endpoints live on the first/last members (see instrument.rs).
        for (k, &bytes) in members.iter().enumerate() {
            let first = k == 0;
            let last = k == members.len() - 1;
            responses.push(ResponseObs {
                bytes,
                issued_at: t0,
                first_tx: if first { Some((t0, tr.wnic)) } else { None },
                t_second_last_ack: if last { Some(t0 + tr.ttotal_second_last) } else { None },
                t_full_ack: if last { Some(t0 + tr.ttotal) } else { None },
                last_packet_bytes: if last { Some(tr.last_packet_bytes) } else { None },
                bytes_in_flight_at_write: if first { 0 } else { 1 },
                prev_unsent_at_write: !first,
            });
        }
        busy_until = t0 + tr.ttotal;
        i = j;
    }

    SessionObs {
        responses,
        min_rtt: flow.min_rtt(),
        http: plan.http,
        duration: plan.duration.max(busy_until),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Continent;
    use crate::topology::WorldConfig;
    use edgeperf_core::{MILLISECOND as NS_MS, SECOND};

    fn tiny_study() -> (World, StudyConfig) {
        let world = World::generate(WorldConfig::default());
        let cfg = StudyConfig {
            seed: 3,
            days: 1,
            sessions_per_group_window: 2,
            parallelism: 2,
            workload: WorkloadConfig::default(),
        };
        (world, cfg)
    }

    #[test]
    fn study_produces_records_for_all_ranks() {
        let (world, cfg) = tiny_study();
        let records = run_study(&world, &cfg);
        assert!(!records.is_empty());
        let ranks: std::collections::HashSet<u8> = records.iter().map(|r| r.route_rank).collect();
        assert!(ranks.contains(&0));
        assert!(ranks.len() >= 2, "alternates must be measured: {ranks:?}");
    }

    #[test]
    fn records_have_plausible_min_rtt() {
        let (world, cfg) = tiny_study();
        let records = run_study(&world, &cfg);
        for r in &records {
            assert!(r.min_rtt_ms > 1.0 && r.min_rtt_ms < 600.0, "min_rtt = {}", r.min_rtt_ms);
        }
        // Global median in a plausible band (paper: < 40 ms; our world is
        // similar but not identical — allow a generous band).
        let mut rtts: Vec<f64> = records.iter().map(|r| r.min_rtt_ms).collect();
        rtts.sort_unstable_by(f64::total_cmp);
        let med = rtts[rtts.len() / 2];
        assert!(med > 10.0 && med < 80.0, "median min_rtt = {med}");
    }

    #[test]
    fn many_sessions_have_hdratio() {
        let (world, cfg) = tiny_study();
        let records = run_study(&world, &cfg);
        let with = records.iter().filter(|r| r.hdratio.is_some()).count();
        let frac = with as f64 / records.len() as f64;
        assert!(frac > 0.3, "HDratio coverage = {frac}");
        for r in records.iter().filter_map(|r| r.hdratio) {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn study_is_deterministic() {
        let (world, cfg) = tiny_study();
        let mut a = run_study(&world, &cfg);
        let mut b = run_study(&world, &cfg);
        let key = |r: &SessionRecord| {
            (r.group.prefix.base, r.window, r.route_rank, r.min_rtt_ms.to_bits())
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(key(x), key(y));
            assert_eq!(x.hdratio.map(f64::to_bits), y.hdratio.map(f64::to_bits));
        }
    }

    #[test]
    fn work_stealing_matches_static_chunking() {
        let (world, cfg) = tiny_study();
        let key = |r: &SessionRecord| {
            (r.group.prefix.base, r.window, r.route_rank, r.min_rtt_ms.to_bits())
        };
        let mut stealing = run_study(&world, &cfg);
        let mut chunked = run_study_static(&world, &cfg);
        stealing.sort_by_key(key);
        chunked.sort_by_key(key);
        assert_eq!(stealing.len(), chunked.len());
        for (a, b) in stealing.iter().zip(&chunked) {
            assert_eq!(key(a), key(b));
        }
    }

    #[test]
    fn counters_balance_across_parallelism() {
        let (world, cfg) = tiny_study();
        let totals: Vec<WorkerCounters> = [1usize, 4]
            .iter()
            .map(|&p| {
                let mut records: Vec<SessionRecord> = Vec::new();
                let stats =
                    run_study_into(&world, &StudyConfig { parallelism: p, ..cfg }, &mut records);
                assert_eq!(stats.workers.len(), p);
                let t = stats.total();
                assert_eq!(t.records_emitted, records.len() as u64);
                assert_eq!(
                    t.sessions_dropped_no_minrtt,
                    t.sessions_simulated - t.records_emitted,
                    "every simulated session is either emitted or dropped"
                );
                assert_eq!(t.prefixes, world.prefixes.len() as u64);
                t
            })
            .collect();
        assert_eq!(totals[0], totals[1]);
    }

    #[test]
    fn observed_run_matches_sink_at_parallelism_1_and_4() {
        // The tentpole's end-to-end contract: for a fixed seed, the
        // metrics snapshot's emitted-record counter equals the sink's
        // record count — and both are invariant under parallelism.
        let (world, cfg) = tiny_study();
        let mut emitted = Vec::new();
        for p in [1usize, 4] {
            let metrics = Metrics::enabled();
            let mut records: Vec<SessionRecord> = Vec::new();
            let stats = run_study_observed(
                &world,
                &StudyConfig { parallelism: p, ..cfg },
                &mut records,
                &metrics,
            );
            let snap = metrics.snapshot();
            assert_eq!(
                snap.counters["runner.records_emitted"],
                records.len() as u64,
                "parallelism {p}"
            );
            assert_eq!(
                snap.counters["runner.sessions_simulated"],
                snap.counters["runner.records_emitted"] + snap.counters["runner.drop.no_minrtt"]
            );
            assert_eq!(snap.counters["runner.prefixes"], world.prefixes.len() as u64);
            // The sink-stats gauges agree with the runner counters.
            assert_eq!(snap.gauges["sink.vec.records"] as u64, records.len() as u64);
            // Per-worker scheduler gauges: one triple per worker, steals
            // summing to the prefix count.
            let steals: f64 =
                (0..p).map(|w| snap.gauges[&format!("scheduler.worker.{w}.steals")]).sum();
            assert_eq!(steals as u64, world.prefixes.len() as u64);
            assert_eq!(snap.histograms["scheduler.queue_depth"].count, world.prefixes.len() as u64);
            assert_eq!(snap.histograms["sink.merge_ns"].count, p as u64);
            assert_eq!(stats.workers.len(), p);
            // Span taxonomy is present and nested.
            let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
            for want in ["study", "study.run", "study.run.merge", "study.finalize"] {
                assert!(names.contains(&want), "missing span {want} in {names:?}");
            }
            emitted.push(records.len());
        }
        assert_eq!(emitted[0], emitted[1], "record count is parallelism-invariant");
    }

    #[test]
    fn africa_is_slower_than_europe() {
        let world = World::generate(WorldConfig::default());
        let cfg = StudyConfig {
            seed: 5,
            days: 1,
            sessions_per_group_window: 4,
            parallelism: 0,
            workload: WorkloadConfig::default(),
        };
        let records = run_study(&world, &cfg);
        let med = |cont: Continent| {
            let mut v: Vec<f64> = records
                .iter()
                .filter(|r| r.group.continent == cont as u8 && r.route_rank == 0)
                .map(|r| r.min_rtt_ms)
                .collect();
            v.sort_unstable_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!(med(Continent::Africa) > med(Continent::Europe));
    }

    #[test]
    fn simulate_session_coalesces_overlapping_writes() {
        let state = PathState {
            base_rtt: 100 * NS_MS,
            standing_queue: 0,
            jitter_max: 0,
            bottleneck_bps: 1_000_000, // slow: writes will overlap
            loss: 0.0,
        };
        let plan = SessionPlan {
            http: edgeperf_core::HttpVersion::H2,
            endpoint: edgeperf_workload::EndpointKind::Api,
            transactions: vec![
                edgeperf_workload::TxnPlan { offset: 0, bytes: 200_000 },
                edgeperf_workload::TxnPlan { offset: 10 * NS_MS, bytes: 5_000 },
            ],
            duration: 10 * SECOND,
        };
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let obs = simulate_session(&plan, &state, &mut rng);
        assert_eq!(obs.responses.len(), 2);
        assert!(obs.responses[1].prev_unsent_at_write);
        assert!(obs.responses[0].first_tx.is_some());
        assert!(obs.responses[1].t_full_ack.is_some());
        // Instrumentation must coalesce them into one transaction.
        let txns = edgeperf_core::assemble_transactions(&obs.responses);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].bytes_full, 205_000);
    }

    #[test]
    fn simulate_session_separates_spaced_writes() {
        let state = PathState {
            base_rtt: 40 * NS_MS,
            standing_queue: 0,
            jitter_max: 0,
            bottleneck_bps: 50_000_000,
            loss: 0.0,
        };
        let plan = SessionPlan {
            http: edgeperf_core::HttpVersion::H2,
            endpoint: edgeperf_workload::EndpointKind::Api,
            transactions: vec![
                edgeperf_workload::TxnPlan { offset: 0, bytes: 30_000 },
                edgeperf_workload::TxnPlan { offset: 5 * SECOND, bytes: 30_000 },
            ],
            duration: 30 * SECOND,
        };
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let obs = simulate_session(&plan, &state, &mut rng);
        let txns = edgeperf_core::assemble_transactions(&obs.responses);
        assert_eq!(txns.len(), 2);
        assert!(txns.iter().all(|t| t.eligible));
    }

    #[test]
    fn good_path_yields_high_hdratio() {
        let state = PathState {
            base_rtt: 30 * NS_MS,
            standing_queue: 0,
            jitter_max: 2 * NS_MS,
            bottleneck_bps: 25_000_000,
            loss: 0.0,
        };
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut tested = 0;
        let mut sum = 0.0;
        for _ in 0..200 {
            let plan = WorkloadConfig::default().generate(&mut rng);
            let obs = simulate_session(&plan, &state, &mut rng);
            if let Some(v) = session_hdratio(&obs, HD_GOODPUT_BPS) {
                if let Some(h) = v.hdratio() {
                    tested += 1;
                    sum += h;
                }
            }
        }
        assert!(tested > 20, "tested = {tested}");
        let mean = sum / tested as f64;
        assert!(mean > 0.8, "mean HDratio on a 25 Mbps clean path = {mean}");
    }

    #[test]
    fn slow_path_yields_low_hdratio() {
        let state = PathState {
            base_rtt: 30 * NS_MS,
            standing_queue: 0,
            jitter_max: 2 * NS_MS,
            bottleneck_bps: 1_000_000, // below HD rate
            loss: 0.0,
        };
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut tested = 0;
        let mut sum = 0.0;
        for _ in 0..200 {
            let plan = WorkloadConfig::default().generate(&mut rng);
            let obs = simulate_session(&plan, &state, &mut rng);
            if let Some(v) = session_hdratio(&obs, HD_GOODPUT_BPS) {
                if let Some(h) = v.hdratio() {
                    tested += 1;
                    sum += h;
                }
            }
        }
        if tested > 0 {
            let mean = sum / tested as f64;
            assert!(mean < 0.3, "mean HDratio on a 1 Mbps path = {mean}");
        }
    }
}

#[cfg(test)]
mod pep_runner_tests {
    use super::*;
    use crate::topology::{World, WorldConfig};

    /// The §2.2.1 caveat, observable end to end: a PEP'd prefix measures
    /// lower MinRTT than the same prefix without its PEP.
    #[test]
    fn pep_lowers_measured_min_rtt() {
        let mut world = World::generate(WorldConfig::default());
        let idx = world
            .prefixes
            .iter()
            .position(|p| p.pep_rtt_fraction.is_some())
            .expect("a PEP prefix exists");
        let cfg = StudyConfig {
            seed: 11,
            days: 1,
            sessions_per_group_window: 3,
            parallelism: 1,
            ..Default::default()
        };
        // Run the PEP'd prefix, then the identical prefix with PEP removed.
        let median = |world: &World| {
            let mut out = Vec::new();
            run_prefix(world, &cfg, idx, &mut out, &mut WorkerCounters::default());
            let mut v: Vec<f64> =
                out.iter().filter(|r| r.route_rank == 0).map(|r| r.min_rtt_ms).collect();
            v.sort_unstable_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let with_pep = median(&world);
        world.prefixes[idx].pep_rtt_fraction = None;
        let without = median(&world);
        assert!(
            with_pep < without * 0.8,
            "PEP must shorten the measured segment: {with_pep} vs {without}"
        );
    }
}
