//! Time-varying ground truth: diurnal congestion, episodic route events,
//! and client-mix shifts.
//!
//! All dynamics are pure functions of (world seed, prefix, route rank,
//! window index) via hashing, so any window's conditions can be computed
//! independently — no global state to advance, and parallel runners see
//! identical ground truth.

use crate::topology::PrefixSite;

/// Condition of a route toward a prefix during one 15-minute window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteCondition {
    /// Standing queueing delay added to the propagation RTT, ms.
    pub standing_queue_ms: f64,
    /// Packet loss probability.
    pub loss: f64,
    /// Multiplier on achievable throughput (shared-bottleneck
    /// saturation at the destination during peak hours).
    pub bw_factor: f64,
}

/// Windows per day at 15-minute granularity.
pub const WINDOWS_PER_DAY: u32 = 96;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Local hour (0–24, fractional) for a window given a UTC offset.
pub fn local_hour(window: u32, utc_offset: i8) -> f64 {
    let utc_hour = (window % WINDOWS_PER_DAY) as f64 * 24.0 / WINDOWS_PER_DAY as f64;
    (utc_hour + utc_offset as f64).rem_euclid(24.0)
}

/// Diurnal activity factor ∈ [0, 1]: minimal ≈5 AM, peak ≈21 PM local.
pub fn diurnal_factor(local_hour: f64) -> f64 {
    // Shifted sinusoid peaking at 21:00.
    let phase = (local_hour - 21.0) / 24.0 * std::f64::consts::TAU;
    (0.5 + 0.5 * phase.cos()).powi(2)
}

/// Ground-truth condition of `site`'s route `rank` during `window`.
///
/// Destination-side diurnal congestion (shared by all routes — it is at
/// or near the access network, §6.2) plus per-route episodic events
/// (failures / interconnect congestion, not shared).
pub fn route_condition(seed: u64, site: &PrefixSite, rank: usize, window: u32) -> RouteCondition {
    let gt = &site.routes[rank];
    let mut queue = 0.0;
    let mut loss = gt.base_loss;
    let mut bw_factor = 1.0;

    // Diurnal, destination-shared component: a standing queue, elevated
    // loss, and a throughput crush as the shared destination bottleneck
    // saturates at peak (this is what moves HDratio_P50, not just RTT).
    if site.diurnal_severity > 0.0 {
        let lh = local_hour(window, site.clusters[0].utc_offset);
        let f = diurnal_factor(lh) * site.diurnal_severity;
        queue += 18.0 * f;
        loss += 0.012 * f;
        bw_factor = 1.0 - 0.55 * f;
    }

    // Episodic, route-specific component: decided per (route, day).
    let day = window / WINDOWS_PER_DAY;
    let key = splitmix64(
        seed ^ (site.prefix.base as u64) << 16
            ^ (rank as u64) << 8
            ^ splitmix64(day as u64 + 0x9E37),
    );
    if unit(key) < gt.episodic_prone {
        // An event strikes this day: place it in a 1–4 h span.
        let start_w = (splitmix64(key ^ 1) % (WINDOWS_PER_DAY as u64 - 16)) as u32;
        let len_w = 4 + (splitmix64(key ^ 2) % 13) as u32; // 1h–4h15m
        let wod = window % WINDOWS_PER_DAY;
        if wod >= start_w && wod < start_w + len_w {
            queue += 5.0 + unit(splitmix64(key ^ 3)) * 20.0;
            loss += 0.005 + unit(splitmix64(key ^ 4)) * 0.03;
        }
    }

    RouteCondition { standing_queue_ms: queue, loss: loss.min(0.5), bw_factor }
}

/// Which client cluster a session belongs to, given the diurnal mix
/// (two-cluster prefixes only; the Figure-5 effect). Returns the cluster
/// index; single-cluster prefixes always return 0.
pub fn pick_cluster(site: &PrefixSite, window: u32, u: f64) -> usize {
    if site.clusters.len() < 2 {
        return 0;
    }
    let a0 = diurnal_factor(local_hour(window, site.clusters[0].utc_offset)) + 0.05;
    let a1 = diurnal_factor(local_hour(window, site.clusters[1].utc_offset)) + 0.05;
    let share1 = a1 / (a0 + a1);
    usize::from(u < share1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{World, WorldConfig};

    fn site_with_severity(sev: f64) -> PrefixSite {
        let w = World::generate(WorldConfig::default());
        let mut s = w.prefixes[0].clone();
        s.diurnal_severity = sev;
        s
    }

    #[test]
    fn diurnal_factor_peaks_in_evening() {
        assert!(diurnal_factor(21.0) > 0.99);
        assert!(diurnal_factor(9.0) < diurnal_factor(20.0));
        assert!(diurnal_factor(5.0) < 0.1);
    }

    #[test]
    fn local_hour_wraps() {
        assert!((local_hour(0, 0) - 0.0).abs() < 1e-9);
        assert!((local_hour(48, 0) - 12.0).abs() < 1e-9); // window 48 = noon UTC
        assert!((local_hour(0, -5) - 19.0).abs() < 1e-9);
        assert!((local_hour(92, 10) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn congested_prefix_degrades_at_peak() {
        let s = site_with_severity(1.0);
        // Find a window at local 21:00 and one at local 05:00.
        let utc = s.clusters[0].utc_offset;
        let w_peak = (0..96).find(|&w| (local_hour(w, utc) - 21.0).abs() < 0.2).unwrap();
        let w_quiet = (0..96).find(|&w| (local_hour(w, utc) - 5.0).abs() < 0.2).unwrap();
        let peak = route_condition(1, &s, 0, w_peak);
        let quiet = route_condition(1, &s, 0, w_quiet);
        assert!(peak.standing_queue_ms > quiet.standing_queue_ms + 10.0);
        assert!(peak.loss > quiet.loss);
    }

    #[test]
    fn diurnal_affects_all_routes_equally() {
        let s = site_with_severity(1.0);
        let w = 84; // evening UTC for a UTC-ish cluster
        let deltas: Vec<f64> =
            (0..s.routes.len()).map(|r| route_condition(1, &s, r, w).standing_queue_ms).collect();
        // Modulo per-route episodic events, the diurnal queue component
        // is identical; require all routes to be within episodic range.
        for d in &deltas {
            assert!((d - deltas[0]).abs() < 26.0, "{deltas:?}");
        }
    }

    #[test]
    fn uncongested_prefix_is_flat() {
        let s = site_with_severity(0.0);
        // With episodic events possible, most windows must still be at
        // base condition.
        let base = s.routes[0].base_loss;
        let flat = (0..960)
            .filter(|&w| {
                let c = route_condition(1, &s, 0, w);
                c.standing_queue_ms == 0.0 && (c.loss - base).abs() < 1e-12
            })
            .count();
        assert!(flat > 800, "flat windows = {flat}");
    }

    #[test]
    fn episodic_events_hit_some_windows() {
        let s = site_with_severity(0.0);
        // Transit routes are episodic-prone (0.10/day): over 100 days
        // expect ≥1 event on some route.
        let transit_rank = s
            .routes
            .iter()
            .position(|r| r.route.relationship == edgeperf_routing::Relationship::Transit);
        let Some(rank) = transit_rank else { return };
        let eventful =
            (0..9600).filter(|&w| route_condition(1, &s, rank, w).standing_queue_ms > 0.0).count();
        assert!(eventful > 0, "no episodic events in 100 days");
        // But they are episodes, not the norm.
        assert!(eventful < 2000, "eventful = {eventful}");
    }

    #[test]
    fn conditions_are_deterministic() {
        let s = site_with_severity(0.7);
        for w in [0, 17, 333, 959] {
            assert_eq!(route_condition(5, &s, 0, w), route_condition(5, &s, 0, w));
        }
    }

    #[test]
    fn cluster_mix_shifts_with_time() {
        let w = World::generate(WorldConfig::default());
        let Some(site) = w.prefixes.iter().find(|p| p.clusters.len() == 2) else {
            return; // seed produced no two-cluster prefix; covered elsewhere
        };
        // Over a day, the share of cluster 1 must vary.
        let share_at = |window| {
            let n = 1000;
            (0..n).filter(|i| pick_cluster(site, window, *i as f64 / n as f64) == 1).count() as f64
                / n as f64
        };
        let shares: Vec<f64> = (0..96).step_by(8).map(share_at).collect();
        let min = shares.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = shares.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "mix shift too small: {shares:?}");
    }

    #[test]
    fn single_cluster_always_zero() {
        let w = World::generate(WorldConfig::default());
        let site = w.prefixes.iter().find(|p| p.clusters.len() == 1).unwrap();
        for u in [0.0, 0.5, 0.99] {
            assert_eq!(pick_cluster(site, 40, u), 0);
        }
    }
}
