//! Geography: continents, coordinates, and propagation delay.

/// Continents, numbered for use as compact analysis labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    /// Africa.
    Africa = 0,
    /// Asia.
    Asia = 1,
    /// Europe.
    Europe = 2,
    /// North America.
    NorthAmerica = 3,
    /// Oceania.
    Oceania = 4,
    /// South America.
    SouthAmerica = 5,
}

impl Continent {
    /// All continents in label order.
    pub fn all() -> [Continent; 6] {
        [
            Continent::Africa,
            Continent::Asia,
            Continent::Europe,
            Continent::NorthAmerica,
            Continent::Oceania,
            Continent::SouthAmerica,
        ]
    }

    /// Two-letter code as used in the paper's tables.
    pub fn code(&self) -> &'static str {
        match self {
            Continent::Africa => "AF",
            Continent::Asia => "AS",
            Continent::Europe => "EU",
            Continent::NorthAmerica => "NA",
            Continent::Oceania => "OC",
            Continent::SouthAmerica => "SA",
        }
    }

    /// From the numeric label used in analysis records.
    pub fn from_u8(v: u8) -> Option<Continent> {
        Continent::all().into_iter().find(|c| *c as u8 == v)
    }
}

/// A point on the globe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// Great-circle distance (haversine), kilometres.
pub fn distance_km(a: GeoPoint, b: GeoPoint) -> f64 {
    const R: f64 = 6_371.0;
    let (la1, la2) = (a.lat.to_radians(), b.lat.to_radians());
    let dla = (b.lat - a.lat).to_radians();
    let dlo = (b.lon - a.lon).to_radians();
    let h = (dla / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlo / 2.0).sin().powi(2);
    2.0 * R * h.sqrt().asin()
}

/// Idealized propagation RTT between two points, milliseconds.
///
/// Light in fibre travels ≈200 km/ms; real paths are not great circles,
/// so a route-inflation factor (≈1.6 for typical terrestrial paths)
/// applies, plus a small per-path constant for equipment.
pub fn propagation_rtt_ms(a: GeoPoint, b: GeoPoint) -> f64 {
    const FIBRE_KM_PER_MS: f64 = 200.0;
    const INFLATION: f64 = 1.6;
    const EQUIPMENT_MS: f64 = 0.8;
    2.0 * distance_km(a, b) * INFLATION / FIBRE_KM_PER_MS + EQUIPMENT_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    const LONDON: GeoPoint = GeoPoint { lat: 51.5, lon: -0.1 };
    const NYC: GeoPoint = GeoPoint { lat: 40.7, lon: -74.0 };
    const SYDNEY: GeoPoint = GeoPoint { lat: -33.9, lon: 151.2 };

    #[test]
    fn distance_london_nyc() {
        let d = distance_km(LONDON, NYC);
        assert!((d - 5570.0).abs() < 100.0, "d = {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        assert!((distance_km(LONDON, NYC) - distance_km(NYC, LONDON)).abs() < 1e-9);
        assert!(distance_km(SYDNEY, SYDNEY) < 1e-9);
    }

    #[test]
    fn transatlantic_rtt_is_realistic() {
        let rtt = propagation_rtt_ms(LONDON, NYC);
        // Real-world London–NYC RTT is ~70–80 ms.
        assert!(rtt > 60.0 && rtt < 100.0, "rtt = {rtt}");
    }

    #[test]
    fn short_hop_rtt_is_small() {
        let paris = GeoPoint { lat: 48.9, lon: 2.4 };
        let rtt = propagation_rtt_ms(LONDON, paris);
        assert!(rtt > 2.0 && rtt < 12.0, "rtt = {rtt}");
    }

    #[test]
    fn continent_codes_round_trip() {
        for c in Continent::all() {
            assert_eq!(Continent::from_u8(c as u8), Some(c));
        }
        assert_eq!(Continent::from_u8(9), None);
        assert_eq!(Continent::Europe.code(), "EU");
    }
}
