//! A seeded synthetic Internet for exercising the measurement pipeline.
//!
//! The paper's substrate — billions of users behind hundreds of thousands
//! of BGP prefixes reaching dozens of PoPs over real interconnections —
//! is unavailable, so this crate builds the closest synthetic equivalent
//! (see DESIGN.md §2):
//!
//! - [`geo`]: continents, coordinates, and propagation-delay modelling.
//! - [`topology`]: PoPs in real metro locations, countries with traffic
//!   weights and access-network profiles calibrated to the paper's §4
//!   per-continent findings, eyeball ASes, prefixes, and per-prefix route
//!   sets ranked by the §6.1 policy.
//! - [`dynamics`]: time-varying ground truth — diurnal destination-side
//!   congestion, episodic route events, and two-cluster client
//!   populations whose mix shifts with local time (the Figure-5 effect).
//! - [`runner`]: the fleet study — generates sampled sessions per
//!   (user group, 15-minute window, pinned route), simulates their
//!   transfers with `edgeperf-netsim`'s fast model, measures them with
//!   `edgeperf-core` exactly as a production load balancer would, and
//!   emits `edgeperf-analysis` session records.
//! - [`supervisor`]: the fault-tolerant study driver — panic isolation
//!   with retry/quarantine, watchdog deadlines, checkpoint/resume, and a
//!   deterministic fault-injection harness ([`FaultPlan`]).
//!
//! Everything is deterministic in the world seed.

pub mod cartographer;
pub mod dynamics;
pub mod geo;
pub mod runner;
pub mod supervisor;
pub mod topology;

pub use cartographer::{map_cluster, ranked_pops, MappingPolicy};
pub use geo::{distance_km, propagation_rtt_ms, Continent, GeoPoint};
pub use runner::{
    run_study, run_study_into, run_study_observed, run_study_static, simulate_session,
    simulate_session_scratch, simulate_session_with, SessionScratch, StudyConfig, StudyStats,
    WorkerCounters,
};
pub use supervisor::{
    run_study_supervised, FaultPlan, FaultPlanError, QuarantinedPrefix, StudyReport,
    SupervisorConfig, SupervisorError,
};
pub use topology::{ClientCluster, Pop, PrefixSite, RouteGt, World, WorldConfig};
