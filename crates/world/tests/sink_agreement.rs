//! End-to-end agreement between the exact (`Vec`) and streaming record
//! sinks, across parallelism levels, on a skewed world.
//!
//! The work-stealing scheduler hands each prefix to exactly one worker,
//! so the record *multiset* (Vec sink) and the per-cell digests
//! (streaming sink) must be independent of the worker count; and the
//! streaming cells must agree with the exact aggregations to within the
//! t-digest approximation bounds, with sample extremes preserved exactly.

use edgeperf_analysis::{ColumnarSink, Dataset, SessionRecord, StreamingDataset};
use edgeperf_world::{run_study_into, StudyConfig, World, WorldConfig};

/// A reduced-country world keeps the runtime testable while preserving
/// the per-prefix skew (route counts, diurnal activity, cluster mixes)
/// that the work-stealing scheduler exists for.
fn skewed() -> (World, StudyConfig) {
    let world =
        World::generate(WorldConfig { seed: 99, country_fraction: 0.25, ..Default::default() });
    let cfg = StudyConfig {
        seed: 17,
        days: 1,
        sessions_per_group_window: 3,
        parallelism: 1,
        ..Default::default()
    };
    (world, cfg)
}

fn record_key(r: &SessionRecord) -> (u32, u32, u8, u64, u64) {
    (r.group.prefix.base, r.window, r.route_rank, r.min_rtt_ms.to_bits(), r.bytes)
}

#[test]
fn vec_sink_multiset_identical_across_parallelism() {
    let (world, cfg) = skewed();
    let mut runs: Vec<Vec<SessionRecord>> = [1usize, 4]
        .iter()
        .map(|&p| {
            let mut records: Vec<SessionRecord> = Vec::new();
            let stats =
                run_study_into(&world, &StudyConfig { parallelism: p, ..cfg }, &mut records);
            assert_eq!(stats.total().records_emitted, records.len() as u64);
            records.sort_by_key(record_key);
            records
        })
        .collect();
    let b = runs.pop().unwrap();
    let a = runs.pop().unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(record_key(x), record_key(y));
        assert_eq!(x.hdratio.map(f64::to_bits), y.hdratio.map(f64::to_bits));
    }
}

#[test]
fn streaming_cells_identical_across_parallelism() {
    let (world, cfg) = skewed();
    let windows = cfg.n_windows() as usize;
    let mut runs: Vec<StreamingDataset> = [1usize, 4]
        .iter()
        .map(|&p| {
            let mut ds = StreamingDataset::new(windows);
            run_study_into(&world, &StudyConfig { parallelism: p, ..cfg }, &mut ds);
            ds
        })
        .collect();
    let b = runs.pop().unwrap();
    let a = runs.pop().unwrap();
    assert_eq!(a.len(), b.len());
    for (key, ga) in a.iter() {
        let gb = b.get(key).expect("group present in both runs");
        assert_eq!(ga.total_bytes, gb.total_bytes);
        assert_eq!(ga.ranks.len(), gb.ranks.len());
        for rank in 0..ga.ranks.len() {
            for w in 0..windows {
                match (ga.cell(rank, w), gb.cell(rank, w)) {
                    (Some(ca), Some(cb)) => {
                        // One prefix is claimed by exactly one worker, so
                        // each cell sees one insertion stream regardless of
                        // parallelism: digests are bit-identical.
                        let (x, y) = (&ca.agg, &cb.agg);
                        assert_eq!(x.n(), y.n());
                        assert_eq!(x.bytes(), y.bytes());
                        assert_eq!(x.min_rtt_p50().to_bits(), y.min_rtt_p50().to_bits());
                        assert_eq!(
                            x.hdratio_p50().map(f64::to_bits),
                            y.hdratio_p50().map(f64::to_bits)
                        );
                    }
                    (None, None) => {}
                    other => panic!("cell presence differs at rank {rank} window {w}: {other:?}"),
                }
            }
        }
    }
}

#[test]
fn streaming_cells_agree_with_exact_aggregations() {
    let (world, cfg) = skewed();
    let cfg = StudyConfig { parallelism: 4, ..cfg };
    let windows = cfg.n_windows() as usize;

    let mut records: Vec<SessionRecord> = Vec::new();
    let vec_stats = run_study_into(&world, &cfg, &mut records);
    let exact = Dataset::from_records(&records, windows);

    let mut stream = StreamingDataset::new(windows);
    let stream_stats = run_study_into(&world, &cfg, &mut stream);
    assert_eq!(vec_stats.total(), stream_stats.total());

    assert_eq!(stream.len(), exact.groups.len());
    assert_eq!(stream.total_bytes(), exact.total_bytes());
    assert_eq!(stream.preferred_bytes(), exact.preferred_bytes());
    let mut cells = 0usize;
    for (key, g) in &exact.groups {
        let sg = stream.get(key).expect("group present in stream");
        for (rank, ws) in g.ranks.iter().enumerate() {
            for (w, cell) in ws.iter().enumerate() {
                let Some(cell) = cell else {
                    assert!(sg.cell(rank, w).is_none());
                    continue;
                };
                cells += 1;
                let agg = &sg.cell(rank, w).unwrap().agg;
                assert_eq!(agg.n(), cell.n());
                assert_eq!(agg.bytes(), cell.bytes);
                // Medians agree within the acceptance bounds.
                assert!(
                    (agg.min_rtt_p50() - cell.min_rtt_p50()).abs() <= 0.5,
                    "MinRTT_P50 {} vs {}",
                    agg.min_rtt_p50(),
                    cell.min_rtt_p50()
                );
                match (agg.hdratio_p50(), cell.hdratio_p50()) {
                    (Some(s), Some(e)) => {
                        assert!((s - e).abs() <= 0.02, "HDratio_P50 {s} vs {e}")
                    }
                    (s, e) => assert_eq!(s.is_none(), e.is_none()),
                }
                // Extremes are exact (the t-digest merge fix, end to end).
                assert_eq!(agg.min_rtt_quantile(0.0), cell.min_rtt_ms[0]);
                assert_eq!(agg.min_rtt_quantile(1.0), *cell.min_rtt_ms.last().unwrap());
                if !cell.hdratio.is_empty() {
                    assert_eq!(agg.hdratio_quantile(0.0), Some(cell.hdratio[0]));
                    assert_eq!(agg.hdratio_quantile(1.0), Some(*cell.hdratio.last().unwrap()));
                }
            }
        }
    }
    assert!(cells > 50, "too few cells to be meaningful: {cells}");
}

/// Cell-by-cell bit equality of two exact datasets.
fn assert_datasets_identical(a: &Dataset, b: &Dataset) {
    assert_eq!(a.n_windows, b.n_windows);
    assert_eq!(a.groups.len(), b.groups.len());
    for (key, ga) in &a.groups {
        let gb = b.groups.get(key).expect("group present in both");
        assert_eq!(ga.total_bytes, gb.total_bytes);
        assert_eq!(ga.ranks.len(), gb.ranks.len());
        for (rank, ws) in ga.ranks.iter().enumerate() {
            for (w, ca) in ws.iter().enumerate() {
                match (ca, &gb.ranks[rank][w]) {
                    (Some(x), Some(y)) => {
                        let bits = |v: &[f64]| v.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
                        assert_eq!(bits(&x.min_rtt_ms), bits(&y.min_rtt_ms));
                        assert_eq!(bits(&x.hdratio), bits(&y.hdratio));
                        assert_eq!(x.bytes, y.bytes);
                        assert_eq!(x.relationship, y.relationship);
                        assert_eq!(x.longer_path, y.longer_path);
                        assert_eq!(x.more_prepended, y.more_prepended);
                    }
                    (None, None) => {}
                    other => panic!("cell presence differs at rank {rank} w {w}: {other:?}"),
                }
            }
        }
    }
}

#[test]
fn columnar_sink_matches_from_records_end_to_end() {
    // The fast exact path (columnar shards merged zero-copy, assembled
    // at the end) must be bit-identical to the original path (record
    // vector re-aggregated by `from_records`) — at any parallelism, and
    // through a tee so both paths see one simulation pass.
    let (world, cfg) = skewed();
    let windows = cfg.n_windows() as usize;
    for p in [1usize, 4] {
        let cfg = StudyConfig { parallelism: p, ..cfg };
        let mut sink: (Vec<SessionRecord>, ColumnarSink) = (Vec::new(), ColumnarSink::new(windows));
        let stats = run_study_into(&world, &cfg, &mut sink);
        let (records, columnar) = sink;
        assert_eq!(stats.total().records_emitted, records.len() as u64);
        let via_columnar = columnar.into_dataset();
        let via_records = Dataset::from_records(&records, windows);
        assert!(via_columnar.cell_count() > 50, "too few cells to be meaningful");
        assert_datasets_identical(&via_columnar, &via_records);
    }
}
