//! Semantics of the fault-tolerant study supervisor, exercised through
//! the deterministic fault-injection harness.
//!
//! The contract under test: whatever faults fire, the supervised study
//! completes with an exact account of what is missing — unaffected
//! prefixes are bit-identical to a fault-free run, quarantine hits
//! exactly the injected prefixes after the retry budget, and a crash
//! resumed from a checkpoint reproduces the uninterrupted output
//! bit-for-bit at any parallelism.

use edgeperf_analysis::SessionRecord;
use edgeperf_obs::Metrics;
use edgeperf_world::{
    run_study_into, run_study_supervised, FaultPlan, StudyConfig, SupervisorConfig, World,
    WorldConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A thinned world: enough prefixes for the scheduler to matter, small
/// enough that every test finishes in well under a second of sim time.
fn tiny() -> (World, StudyConfig) {
    let world =
        World::generate(WorldConfig { seed: 42, country_fraction: 0.12, ..Default::default() });
    assert!(world.prefixes.len() >= 8, "world too small for fault targeting");
    let cfg = StudyConfig {
        seed: 11,
        days: 1,
        sessions_per_group_window: 2,
        parallelism: 2,
        ..Default::default()
    };
    (world, cfg)
}

/// Test-speed supervisor defaults: fast tick, tiny backoff, generous
/// deadline (the watchdog tests shrink it explicitly).
fn sup() -> SupervisorConfig {
    SupervisorConfig {
        backoff: std::time::Duration::from_millis(1),
        tick: std::time::Duration::from_millis(5),
        ..SupervisorConfig::default()
    }
}

fn record_bits(r: &SessionRecord) -> (u32, u32, u8, u64, Option<u64>, u64) {
    (
        r.group.prefix.base,
        r.window,
        r.route_rank,
        r.min_rtt_ms.to_bits(),
        r.hdratio.map(f64::to_bits),
        r.bytes,
    )
}

/// A fresh checkpoint directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "edgeperf-supervisor-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fault_free_supervised_run_matches_unsupervised_output_exactly() {
    let (world, cfg) = tiny();

    // The unsupervised baseline at parallelism 1 emits records in prefix
    // order (one worker drains the shared cursor in order).
    let mut baseline: Vec<SessionRecord> = Vec::new();
    run_study_into(&world, &StudyConfig { parallelism: 1, ..cfg }, &mut baseline);

    // The supervisor merges fragments strictly by prefix index, so its
    // output order matches the parallelism-1 baseline at ANY parallelism.
    for p in [1usize, 4] {
        let mut records: Vec<SessionRecord> = Vec::new();
        let (stats, report) = run_study_supervised(
            &world,
            &StudyConfig { parallelism: p, ..cfg },
            &sup(),
            &mut records,
            &Metrics::disabled(),
        )
        .expect("fault-free run cannot fail");
        assert_eq!(records.len(), baseline.len(), "parallelism {p}");
        for (a, b) in records.iter().zip(&baseline) {
            assert_eq!(record_bits(a), record_bits(b), "parallelism {p}");
        }
        assert_eq!(report.completed, world.prefixes.len());
        assert_eq!(report.n_prefixes, world.prefixes.len());
        assert!(report.quarantined.is_empty());
        assert_eq!(report.retries, 0);
        assert_eq!(report.malformed_dropped, 0);
        assert_eq!(stats.total().records_emitted, records.len() as u64);
        assert_eq!(report.records_emitted, records.len() as u64);
    }
}

#[test]
fn panicking_prefix_is_quarantined_and_the_rest_is_bit_identical() {
    let (world, cfg) = tiny();
    let n = world.prefixes.len();
    let victim = n / 2;
    let victim_base = world.prefixes[victim].prefix.base;

    let mut clean: Vec<SessionRecord> = Vec::new();
    run_study_supervised(&world, &cfg, &sup(), &mut clean, &Metrics::disabled()).unwrap();

    // Panic on every attempt: budget 2 → 3 attempts, then quarantine.
    let faulty_sup = SupervisorConfig {
        fault_plan: FaultPlan::parse(&format!("panic:{victim}@99")).unwrap(),
        ..sup()
    };
    let mut faulty: Vec<SessionRecord> = Vec::new();
    let (_, report) =
        run_study_supervised(&world, &cfg, &faulty_sup, &mut faulty, &Metrics::disabled()).unwrap();

    assert_eq!(report.completed, n - 1);
    assert_eq!(report.retries, 2);
    assert_eq!(report.quarantined.len(), 1);
    let q = &report.quarantined[0];
    assert_eq!(q.prefix, victim);
    assert_eq!(q.attempts, 3);
    assert!(q.reason.contains("injected panic"), "reason: {}", q.reason);

    // Every other prefix's records survive bit-identically, in order.
    let expected: Vec<&SessionRecord> =
        clean.iter().filter(|r| r.group.prefix.base != victim_base).collect();
    assert!(faulty.len() < clean.len(), "victim produced records it shouldn't have");
    assert_eq!(faulty.len(), expected.len());
    for (a, b) in faulty.iter().zip(expected) {
        assert_eq!(record_bits(a), record_bits(b));
    }
}

#[test]
fn transient_panic_retries_then_completes_clean() {
    let (world, cfg) = tiny();
    let victim = 1;

    // Panics on the first attempt only; the retry succeeds.
    let faulty_sup = SupervisorConfig {
        fault_plan: FaultPlan::parse(&format!("panic:{victim}@1")).unwrap(),
        ..sup()
    };
    let mut records: Vec<SessionRecord> = Vec::new();
    let (_, report) =
        run_study_supervised(&world, &cfg, &faulty_sup, &mut records, &Metrics::disabled())
            .unwrap();
    assert_eq!(report.completed, world.prefixes.len());
    assert!(report.quarantined.is_empty());
    assert_eq!(report.retries, 1);

    // And the retried prefix's records equal a clean run's (deterministic
    // per-prefix RNG: a retry replays the identical stream).
    let mut clean: Vec<SessionRecord> = Vec::new();
    run_study_supervised(&world, &cfg, &sup(), &mut clean, &Metrics::disabled()).unwrap();
    assert_eq!(records.len(), clean.len());
    for (a, b) in records.iter().zip(&clean) {
        assert_eq!(record_bits(a), record_bits(b));
    }
}

#[test]
fn watchdog_aborts_a_stalled_prefix_and_the_retry_completes() {
    let (world, cfg) = tiny();
    let victim = 2;

    let faulty_sup = SupervisorConfig {
        // Stall fires on attempt 0 only; 120 ms deadline catches it fast.
        fault_plan: FaultPlan::parse(&format!("stall:{victim}@1")).unwrap(),
        deadline: std::time::Duration::from_millis(120),
        ..sup()
    };
    let mut records: Vec<SessionRecord> = Vec::new();
    let (_, report) =
        run_study_supervised(&world, &cfg, &faulty_sup, &mut records, &Metrics::disabled())
            .unwrap();
    assert_eq!(report.completed, world.prefixes.len());
    assert!(report.quarantined.is_empty());
    assert!(report.watchdog_aborts >= 1, "watchdog never fired");
    assert!(report.watchdog_slow >= 1, "slow mark should precede the abort");
    assert!(report.retries >= 1);

    let mut clean: Vec<SessionRecord> = Vec::new();
    run_study_supervised(&world, &cfg, &sup(), &mut clean, &Metrics::disabled()).unwrap();
    assert_eq!(records.len(), clean.len());
    for (a, b) in records.iter().zip(&clean) {
        assert_eq!(record_bits(a), record_bits(b));
    }
}

#[test]
fn acceptance_scenario_panic_plus_stall_completes_with_exact_quarantine() {
    // ISSUE acceptance: a FaultPlan study with one panicking prefix and
    // one stuck worker completes, quarantining exactly the panicking
    // prefix after the retry budget.
    let (world, cfg) = tiny();
    let n = world.prefixes.len();
    let (bad, stuck) = (n / 3, 2 * n / 3);
    assert_ne!(bad, stuck);

    let faulty_sup = SupervisorConfig {
        fault_plan: FaultPlan::parse(&format!("panic:{bad}@99;stall:{stuck}@1")).unwrap(),
        deadline: std::time::Duration::from_millis(120),
        ..sup()
    };
    let mut records: Vec<SessionRecord> = Vec::new();
    let (_, report) =
        run_study_supervised(&world, &cfg, &faulty_sup, &mut records, &Metrics::disabled())
            .unwrap();

    assert_eq!(report.completed, n - 1);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].prefix, bad);
    assert_eq!(report.quarantined[0].attempts, 1 + SupervisorConfig::default().retry_budget);
    assert!(report.watchdog_aborts >= 1, "stalled prefix never aborted");
    // The stalled prefix recovered rather than being quarantined.
    assert!(report.quarantined.iter().all(|q| q.prefix != stuck));
}

#[test]
fn merge_failure_recomputes_the_prefix_and_completes() {
    let (world, cfg) = tiny();
    let victim = 3;

    let faulty_sup = SupervisorConfig {
        fault_plan: FaultPlan::parse(&format!("mergefail:{victim}")).unwrap(),
        ..sup()
    };
    let mut records: Vec<SessionRecord> = Vec::new();
    let (_, report) =
        run_study_supervised(&world, &cfg, &faulty_sup, &mut records, &Metrics::disabled())
            .unwrap();
    assert_eq!(report.completed, world.prefixes.len());
    assert_eq!(report.merge_failures, 1);
    assert_eq!(report.retries, 1);
    assert!(report.quarantined.is_empty());

    let mut clean: Vec<SessionRecord> = Vec::new();
    run_study_supervised(&world, &cfg, &sup(), &mut clean, &Metrics::disabled()).unwrap();
    assert_eq!(records.len(), clean.len());
    for (a, b) in records.iter().zip(&clean) {
        assert_eq!(record_bits(a), record_bits(b));
    }
}

#[test]
fn malformed_records_are_dropped_counted_and_never_reach_the_sink() {
    let (world, cfg) = tiny();

    let faulty_sup =
        SupervisorConfig { fault_plan: FaultPlan::parse("malformed:7").unwrap(), ..sup() };
    let mut records: Vec<SessionRecord> = Vec::new();
    let (_, report) =
        run_study_supervised(&world, &cfg, &faulty_sup, &mut records, &Metrics::disabled())
            .unwrap();

    assert!(report.malformed_dropped > 0, "injector never fired");
    // Accounting closes: emitted = kept + dropped.
    assert_eq!(report.records_emitted, records.len() as u64 + report.malformed_dropped);
    // Validation held the line: nothing non-finite reached the sink.
    assert!(records.iter().all(|r| r.min_rtt_ms.is_finite()));
    assert!(records.iter().all(|r| r.hdratio.is_none_or(f64::is_finite)));
}

#[test]
fn crash_then_resume_is_bit_identical_to_uninterrupted() {
    let (world, cfg) = tiny();
    let n = world.prefixes.len();

    for p in [1usize, 4] {
        let cfg = StudyConfig { parallelism: p, ..cfg };
        let mut uninterrupted: Vec<SessionRecord> = Vec::new();
        run_study_supervised(&world, &cfg, &sup(), &mut uninterrupted, &Metrics::disabled())
            .unwrap();

        let dir = scratch_dir("resume");
        // First process: crash right after merging the middle prefix.
        let crash_sup = SupervisorConfig {
            checkpoint_dir: Some(dir.clone()),
            fault_plan: FaultPlan::parse(&format!("crash:{}", n / 2)).unwrap(),
            ..sup()
        };
        let mut first: Vec<SessionRecord> = Vec::new();
        let err = run_study_supervised(&world, &cfg, &crash_sup, &mut first, &Metrics::disabled())
            .expect_err("the injected crash must abort the run");
        assert!(err.to_string().contains("injected crash"), "got: {err}");
        assert!(dir.join("checkpoint.json").exists());

        // Second process: same checkpoint dir, no faults → resume.
        let resume_sup = SupervisorConfig { checkpoint_dir: Some(dir.clone()), ..sup() };
        let mut resumed: Vec<SessionRecord> = Vec::new();
        let (_, report) =
            run_study_supervised(&world, &cfg, &resume_sup, &mut resumed, &Metrics::disabled())
                .unwrap();
        assert_eq!(report.resumed_at, Some(n / 2 + 1), "parallelism {p}");
        assert_eq!(report.completed, n, "cumulative completion count survives resume");

        assert_eq!(resumed.len(), uninterrupted.len(), "parallelism {p}");
        for (a, b) in resumed.iter().zip(&uninterrupted) {
            assert_eq!(record_bits(a), record_bits(b), "parallelism {p}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_preserves_quarantine_across_the_crash() {
    let (world, cfg) = tiny();
    let n = world.prefixes.len();
    let victim = 1;
    let crash_at = n / 2;
    assert!(victim < crash_at);

    let dir = scratch_dir("quarantine");
    let crash_sup = SupervisorConfig {
        checkpoint_dir: Some(dir.clone()),
        fault_plan: FaultPlan::parse(&format!("panic:{victim}@99;crash:{crash_at}")).unwrap(),
        ..sup()
    };
    let mut first: Vec<SessionRecord> = Vec::new();
    run_study_supervised(&world, &cfg, &crash_sup, &mut first, &Metrics::disabled())
        .expect_err("crash fires");

    let resume_sup = SupervisorConfig { checkpoint_dir: Some(dir.clone()), ..sup() };
    let mut resumed: Vec<SessionRecord> = Vec::new();
    let (_, report) =
        run_study_supervised(&world, &cfg, &resume_sup, &mut resumed, &Metrics::disabled())
            .unwrap();
    // The pre-crash quarantine is remembered: not re-attempted, still
    // reported, and its records stay absent.
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].prefix, victim);
    assert_eq!(report.completed, n - 1);
    let victim_base = world.prefixes[victim].prefix.base;
    assert!(resumed.iter().all(|r| r.group.prefix.base != victim_base));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_from_a_different_study_is_rejected() {
    let (world, cfg) = tiny();
    let dir = scratch_dir("mismatch");
    let ck_sup = SupervisorConfig { checkpoint_dir: Some(dir.clone()), ..sup() };
    let mut records: Vec<SessionRecord> = Vec::new();
    run_study_supervised(&world, &cfg, &ck_sup, &mut records, &Metrics::disabled()).unwrap();

    // Same directory, different seed → refuse to resume.
    let other = StudyConfig { seed: cfg.seed + 1, ..cfg };
    let mut out: Vec<SessionRecord> = Vec::new();
    let err = run_study_supervised(&world, &other, &ck_sup, &mut out, &Metrics::disabled())
        .expect_err("seed mismatch must be rejected");
    assert!(err.to_string().contains("seed"), "got: {err}");

    // Different builder-level meta → also refused.
    let meta_sup = SupervisorConfig {
        checkpoint_dir: Some(dir.clone()),
        meta: vec![("scale".into(), "0.5".into())],
        ..sup()
    };
    let mut out: Vec<SessionRecord> = Vec::new();
    let err = run_study_supervised(&world, &cfg, &meta_sup, &mut out, &Metrics::disabled())
        .expect_err("meta mismatch must be rejected");
    assert!(err.to_string().contains("scale"), "got: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn completed_checkpoint_resumes_as_a_no_op() {
    let (world, cfg) = tiny();
    let dir = scratch_dir("noop");
    let ck_sup = SupervisorConfig { checkpoint_dir: Some(dir.clone()), ..sup() };

    let mut records: Vec<SessionRecord> = Vec::new();
    run_study_supervised(&world, &cfg, &ck_sup, &mut records, &Metrics::disabled()).unwrap();

    // Rerun against the finished checkpoint: nothing recomputes, output
    // is rebuilt bit-identically from the stored sink state.
    let mut again: Vec<SessionRecord> = Vec::new();
    let (stats, report) =
        run_study_supervised(&world, &cfg, &ck_sup, &mut again, &Metrics::disabled()).unwrap();
    assert_eq!(report.resumed_at, Some(world.prefixes.len()));
    assert_eq!(stats.total().records_emitted, 0, "no new work on a finished study");
    assert_eq!(again.len(), records.len());
    for (a, b) in again.iter().zip(&records) {
        assert_eq!(record_bits(a), record_bits(b));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervisor_metrics_account_for_every_decision() {
    let (world, cfg) = tiny();
    let victim = 0;
    let metrics = Metrics::enabled();
    let faulty_sup = SupervisorConfig {
        fault_plan: FaultPlan::parse(&format!("panic:{victim}@99")).unwrap(),
        ..sup()
    };
    let mut records: Vec<SessionRecord> = Vec::new();
    let (_, report) =
        run_study_supervised(&world, &cfg, &faulty_sup, &mut records, &metrics).unwrap();

    let snap = metrics.snapshot();
    let counter =
        |name: &str| *snap.counters.get(name).unwrap_or_else(|| panic!("missing counter {name}"));
    assert_eq!(counter("supervisor.retries"), report.retries);
    assert_eq!(counter("supervisor.quarantined"), report.quarantined.len() as u64);
    assert_eq!(counter("supervisor.prefixes_merged"), report.completed as u64);
    assert!(snap.spans.iter().any(|s| s.name == "supervisor"));
    assert!(snap.spans.iter().any(|s| s.name == "supervisor.merge"));
}
