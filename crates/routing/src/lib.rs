//! BGP-style egress routing substrate (paper §§2.1, 2.2.3 and 6.1).
//!
//! Models the routing machinery the paper's opportunity analysis sits on:
//!
//! - [`types`]: prefixes, AS paths, peering relationship types.
//! - [`rib`]: a per-PoP routing table with longest-prefix match and the
//!   paper's four-tiebreaker preference order: (1) longest matching
//!   prefix, (2) prefer peer routes, (3) prefer shorter AS paths,
//!   (4) prefer private interconnects (PNI) over public exchanges.
//! - [`prepend`]: AS-path prepending detection (§6.2.2 — prepended
//!   alternates signal ingress traffic engineering and are deprioritized).
//! - [`edge_fabric`]: the egress controller — capacity-aware overflow
//!   detouring for ordinary traffic plus deterministic route *pinning*
//!   for sampled sessions, so measurements continuously cover the
//!   preferred route and the best alternates regardless of the
//!   controller's shifts (§2.2.3).

pub mod bgp;
pub mod edge_fabric;
pub mod prepend;
pub mod rib;
pub mod types;

pub use bgp::{BestPathChange, BgpProcessor, Update};
pub use edge_fabric::{EdgeFabric, RouteChoice};
pub use prepend::{is_prepended, prepended_more, stripped_len};
pub use rib::Rib;
pub use types::{AsPath, Asn, PopId, Prefix, Relationship, Route, RouteId};
