//! Per-PoP routing table with the paper's policy tiebreakers (§6.1).
//!
//! When a PoP has multiple routes to a user it decides among them by, in
//! order: (1) prefer the longest matching prefix, (2) prefer peer routes
//! over transit, (3) prefer shorter AS paths, (4) prefer routes via a
//! private network interconnect (PNI) over public exchanges. Any
//! remaining tie breaks deterministically on route id (the stand-in for
//! BGP's router-id tiebreakers).

use crate::types::{Prefix, Relationship, Route};
use std::cmp::Ordering;
use std::collections::HashMap;

/// # Example
///
/// ```
/// use edgeperf_routing::{AsPath, Asn, Prefix, Relationship, Rib, Route, RouteId};
/// let prefix = Prefix::new(0xC0A8_0000, 16);
/// let mut rib = Rib::new();
/// rib.insert(Route { id: RouteId(1), prefix, relationship: Relationship::Transit,
///     as_path: AsPath(vec![Asn(3356), Asn(64500)]), capacity_bps: 1 });
/// rib.insert(Route { id: RouteId(2), prefix, relationship: Relationship::PrivatePeer,
///     as_path: AsPath(vec![Asn(64500)]), capacity_bps: 1 });
/// // The §6.1 policy prefers the private peer.
/// assert_eq!(rib.lookup(0xC0A8_0101)[0].id, RouteId(2));
/// ```
/// A PoP's routing information base.
#[derive(Debug, Default, Clone)]
pub struct Rib {
    routes: HashMap<Prefix, Vec<Route>>,
}

impl Rib {
    /// Empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install an announced route.
    pub fn insert(&mut self, route: Route) {
        self.routes.entry(route.prefix).or_default().push(route);
    }

    /// Remove the route with the given id for a prefix; returns whether
    /// anything was removed. Empty prefix entries are dropped.
    pub fn remove(&mut self, prefix: &Prefix, id: crate::types::RouteId) -> bool {
        let Some(v) = self.routes.get_mut(prefix) else { return false };
        let before = v.len();
        v.retain(|r| r.id != id);
        let removed = v.len() != before;
        if v.is_empty() {
            self.routes.remove(prefix);
        }
        removed
    }

    /// Number of installed routes across all prefixes.
    pub fn len(&self) -> usize {
        self.routes.values().map(Vec::len).sum()
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// All prefixes with at least one route.
    pub fn prefixes(&self) -> impl Iterator<Item = &Prefix> {
        self.routes.keys()
    }

    /// Longest-prefix match for an address: returns the candidate routes
    /// of the most specific covering prefix, ranked best-first by policy.
    pub fn lookup(&self, addr: u32) -> Vec<&Route> {
        let best_prefix = self.routes.keys().filter(|p| p.contains(addr)).max_by_key(|p| p.len);
        match best_prefix {
            None => Vec::new(),
            Some(p) => self.ranked(p),
        }
    }

    /// Routes for an exact prefix, ranked best-first by policy
    /// (tiebreakers 2–4; tiebreaker 1 is the prefix choice itself).
    pub fn ranked(&self, prefix: &Prefix) -> Vec<&Route> {
        let mut rs: Vec<&Route> = match self.routes.get(prefix) {
            None => return Vec::new(),
            Some(v) => v.iter().collect(),
        };
        rs.sort_by(|a, b| Self::policy_cmp(a, b));
        rs
    }

    /// The policy comparison: `Less` means `a` is preferred.
    pub fn policy_cmp(a: &Route, b: &Route) -> Ordering {
        // (2) Prefer peer routes over transit.
        let peer = b.relationship.is_peer().cmp(&a.relationship.is_peer());
        if peer != Ordering::Equal {
            return peer;
        }
        // (3) Prefer shorter AS paths (announced length, prepends count).
        let len = a.as_path.len().cmp(&b.as_path.len());
        if len != Ordering::Equal {
            return len;
        }
        // (4) Prefer PNI over public exchange.
        let pni = (a.relationship == Relationship::PublicPeer)
            .cmp(&(b.relationship == Relationship::PublicPeer));
        if pni != Ordering::Equal {
            return pni;
        }
        // Deterministic final tiebreak.
        a.id.cmp(&b.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AsPath, Asn, RouteId};

    fn route(id: u32, prefix: Prefix, rel: Relationship, path: &[u32]) -> Route {
        Route {
            id: RouteId(id),
            prefix,
            as_path: AsPath(path.iter().map(|&a| Asn(a)).collect()),
            relationship: rel,
            capacity_bps: 10_000_000_000,
        }
    }

    fn p(base: u32, len: u8) -> Prefix {
        Prefix::new(base, len)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut rib = Rib::new();
        let wide = p(0x0A00_0000, 8);
        let narrow = p(0x0A0B_0000, 16);
        rib.insert(route(1, wide, Relationship::PrivatePeer, &[7018]));
        rib.insert(route(2, narrow, Relationship::Transit, &[3356, 7018]));
        // Despite the /8 being a peer route, the /16 is more specific.
        let rs = rib.lookup(0x0A0B_1234);
        assert_eq!(rs[0].id, RouteId(2));
    }

    #[test]
    fn peer_beats_transit() {
        let mut rib = Rib::new();
        let pre = p(0x0A0B_0000, 16);
        rib.insert(route(1, pre, Relationship::Transit, &[3356, 7018]));
        rib.insert(route(2, pre, Relationship::PublicPeer, &[7018, 7018, 7018]));
        // Peer wins even with a longer (prepended) path: tiebreaker 2
        // applies before 3.
        let rs = rib.ranked(&pre);
        assert_eq!(rs[0].id, RouteId(2));
    }

    #[test]
    fn shorter_as_path_among_peers() {
        let mut rib = Rib::new();
        let pre = p(0x0A0B_0000, 16);
        rib.insert(route(1, pre, Relationship::PublicPeer, &[64511, 7018]));
        rib.insert(route(2, pre, Relationship::PublicPeer, &[7018]));
        let rs = rib.ranked(&pre);
        assert_eq!(rs[0].id, RouteId(2));
    }

    #[test]
    fn pni_beats_public_at_equal_length() {
        let mut rib = Rib::new();
        let pre = p(0x0A0B_0000, 16);
        rib.insert(route(1, pre, Relationship::PublicPeer, &[7018]));
        rib.insert(route(2, pre, Relationship::PrivatePeer, &[7018]));
        let rs = rib.ranked(&pre);
        assert_eq!(rs[0].id, RouteId(2));
    }

    #[test]
    fn transit_ranked_by_path_length() {
        let mut rib = Rib::new();
        let pre = p(0x0A0B_0000, 16);
        rib.insert(route(1, pre, Relationship::Transit, &[3356, 64512, 7018]));
        rib.insert(route(2, pre, Relationship::Transit, &[1299, 7018]));
        let rs = rib.ranked(&pre);
        assert_eq!(rs[0].id, RouteId(2));
        assert_eq!(rs[1].id, RouteId(1));
    }

    #[test]
    fn deterministic_tiebreak_on_id() {
        let mut rib = Rib::new();
        let pre = p(0x0A0B_0000, 16);
        rib.insert(route(9, pre, Relationship::Transit, &[1299, 7018]));
        rib.insert(route(3, pre, Relationship::Transit, &[3356, 7018]));
        let rs = rib.ranked(&pre);
        assert_eq!(rs[0].id, RouteId(3));
    }

    #[test]
    fn lookup_miss_returns_empty() {
        let mut rib = Rib::new();
        rib.insert(route(1, p(0x0A0B_0000, 16), Relationship::Transit, &[7018]));
        assert!(rib.lookup(0x0B00_0000).is_empty());
    }

    #[test]
    fn full_policy_order_end_to_end() {
        // A realistic candidate set for one prefix, checked end to end.
        let mut rib = Rib::new();
        let pre = p(0xC0A8_0000, 16);
        rib.insert(route(1, pre, Relationship::Transit, &[3356, 7018])); // transit, len 2
        rib.insert(route(2, pre, Relationship::Transit, &[1299, 64500, 7018])); // transit, len 3
        rib.insert(route(3, pre, Relationship::PublicPeer, &[7018])); // public, len 1
        rib.insert(route(4, pre, Relationship::PrivatePeer, &[7018])); // PNI, len 1
        rib.insert(route(5, pre, Relationship::PrivatePeer, &[7018, 7018])); // PNI prepended
        let ids: Vec<u32> = rib.ranked(&pre).iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![4, 3, 5, 1, 2]);
    }
}

#[cfg(test)]
mod policy_order_properties {
    use super::*;
    use crate::types::{AsPath, Asn, RouteId};
    use proptest::prelude::*;

    fn arb_route() -> impl Strategy<Value = Route> {
        (
            0u32..64,
            prop::sample::select(vec![
                Relationship::PrivatePeer,
                Relationship::PublicPeer,
                Relationship::Transit,
            ]),
            1usize..5,
        )
            .prop_map(|(id, rel, len)| Route {
                id: RouteId(id),
                prefix: Prefix::new(0x0A000000, 16),
                as_path: AsPath((0..len).map(|i| Asn(7000 + i as u32)).collect()),
                relationship: rel,
                capacity_bps: 1,
            })
    }

    proptest! {
        /// The policy comparison is a strict weak ordering: antisymmetric
        /// and transitive (required for `sort_by` to be meaningful).
        #[test]
        fn policy_cmp_is_consistent(routes in prop::collection::vec(arb_route(), 3)) {
            use std::cmp::Ordering;
            let (a, b, c) = (&routes[0], &routes[1], &routes[2]);
            // Antisymmetry.
            prop_assert_eq!(Rib::policy_cmp(a, b), Rib::policy_cmp(b, a).reverse());
            // Transitivity of ≤.
            if Rib::policy_cmp(a, b) != Ordering::Greater
                && Rib::policy_cmp(b, c) != Ordering::Greater
            {
                prop_assert_ne!(Rib::policy_cmp(a, c), Ordering::Greater);
            }
        }

        /// Ranking is insertion-order independent.
        #[test]
        fn ranking_is_order_independent(mut routes in prop::collection::vec(arb_route(), 1..8)) {
            // De-duplicate ids (a RIB never holds two announcements with
            // the same id for one prefix).
            routes.sort_by_key(|r| r.id);
            routes.dedup_by_key(|r| r.id);
            let prefix = Prefix::new(0x0A000000, 16);
            let mut rib1 = Rib::new();
            for r in &routes {
                rib1.insert(r.clone());
            }
            let mut rib2 = Rib::new();
            for r in routes.iter().rev() {
                rib2.insert(r.clone());
            }
            let ids1: Vec<_> = rib1.ranked(&prefix).iter().map(|r| r.id).collect();
            let ids2: Vec<_> = rib2.ranked(&prefix).iter().map(|r| r.id).collect();
            prop_assert_eq!(ids1, ids2);
        }
    }
}
