//! BGP update processing: announcements and withdrawals driving best-path
//! changes.
//!
//! The paper's §6 analysis assumes each PoP holds a ranked set of routes
//! per prefix that changes as peers announce and withdraw ("opportunities
//! to improve MinRTT may arise due to temporary path changes, e.g., when
//! the normal path is unavailable", §6.2.1). This module is that moving
//! part: apply updates to a [`Rib`] and observe best-path transitions —
//! the events a measurement-driven egress controller must react to.

use crate::rib::Rib;
use crate::types::{Prefix, Route, RouteId};

/// A BGP update from a neighbor.
#[derive(Debug, Clone)]
pub enum Update {
    /// A route announcement (replaces any prior announcement with the
    /// same route id).
    Announce(Route),
    /// Withdrawal of a previously announced route.
    Withdraw {
        /// Prefix the withdrawal applies to.
        prefix: Prefix,
        /// Which announcement is withdrawn.
        id: RouteId,
    },
}

/// What happened to the best path as a result of an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BestPathChange {
    /// The prefix gained its first route.
    NewBest(RouteId),
    /// The best route changed.
    Changed {
        /// Previous best.
        from: RouteId,
        /// New best.
        to: RouteId,
    },
    /// The prefix lost its last route.
    Lost,
    /// Best path unchanged.
    Unchanged,
}

/// A RIB plus update bookkeeping: best-path transitions and churn counts.
#[derive(Debug, Default, Clone)]
pub struct BgpProcessor {
    rib: Rib,
    /// Total updates applied.
    pub updates_applied: u64,
    /// Updates that changed a best path.
    pub best_path_changes: u64,
}

impl BgpProcessor {
    /// Empty processor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying RIB (for lookups and ranked route sets).
    pub fn rib(&self) -> &Rib {
        &self.rib
    }

    /// Current best route for a prefix.
    pub fn best(&self, prefix: &Prefix) -> Option<RouteId> {
        self.rib.ranked(prefix).first().map(|r| r.id)
    }

    /// Apply one update, returning the best-path transition it caused.
    pub fn apply(&mut self, update: Update) -> BestPathChange {
        self.updates_applied += 1;
        let prefix = match &update {
            Update::Announce(r) => r.prefix,
            Update::Withdraw { prefix, .. } => *prefix,
        };
        let before = self.best(&prefix);
        match update {
            Update::Announce(route) => {
                // Implicit replace of a prior announcement with this id.
                self.rib.remove(&prefix, route.id);
                self.rib.insert(route);
            }
            Update::Withdraw { prefix, id } => {
                self.rib.remove(&prefix, id);
            }
        }
        let after = self.best(&prefix);
        let change = match (before, after) {
            (None, Some(id)) => BestPathChange::NewBest(id),
            (Some(_), None) => BestPathChange::Lost,
            (Some(a), Some(b)) if a != b => BestPathChange::Changed { from: a, to: b },
            _ => BestPathChange::Unchanged,
        };
        if change != BestPathChange::Unchanged {
            self.best_path_changes += 1;
        }
        change
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AsPath, Asn, Relationship};

    fn route(id: u32, rel: Relationship, path: &[u32]) -> Route {
        Route {
            id: RouteId(id),
            prefix: Prefix::new(0x0A000000, 16),
            as_path: AsPath(path.iter().map(|&a| Asn(a)).collect()),
            relationship: rel,
            capacity_bps: 10_000_000_000,
        }
    }

    fn prefix() -> Prefix {
        Prefix::new(0x0A000000, 16)
    }

    #[test]
    fn first_announcement_is_new_best() {
        let mut p = BgpProcessor::new();
        let c = p.apply(Update::Announce(route(1, Relationship::Transit, &[3356, 7018])));
        assert_eq!(c, BestPathChange::NewBest(RouteId(1)));
        assert_eq!(p.best(&prefix()), Some(RouteId(1)));
    }

    #[test]
    fn better_announcement_takes_over() {
        let mut p = BgpProcessor::new();
        p.apply(Update::Announce(route(1, Relationship::Transit, &[3356, 7018])));
        let c = p.apply(Update::Announce(route(2, Relationship::PrivatePeer, &[7018])));
        assert_eq!(c, BestPathChange::Changed { from: RouteId(1), to: RouteId(2) });
    }

    #[test]
    fn worse_announcement_leaves_best_unchanged() {
        let mut p = BgpProcessor::new();
        p.apply(Update::Announce(route(1, Relationship::PrivatePeer, &[7018])));
        let c = p.apply(Update::Announce(route(2, Relationship::Transit, &[1299, 64500, 7018])));
        assert_eq!(c, BestPathChange::Unchanged);
        assert_eq!(p.rib().ranked(&prefix()).len(), 2);
    }

    #[test]
    fn withdrawing_best_promotes_alternate() {
        let mut p = BgpProcessor::new();
        p.apply(Update::Announce(route(1, Relationship::PrivatePeer, &[7018])));
        p.apply(Update::Announce(route(2, Relationship::Transit, &[3356, 7018])));
        let c = p.apply(Update::Withdraw { prefix: prefix(), id: RouteId(1) });
        assert_eq!(c, BestPathChange::Changed { from: RouteId(1), to: RouteId(2) });
    }

    #[test]
    fn withdrawing_last_route_loses_prefix() {
        let mut p = BgpProcessor::new();
        p.apply(Update::Announce(route(1, Relationship::Transit, &[7018])));
        let c = p.apply(Update::Withdraw { prefix: prefix(), id: RouteId(1) });
        assert_eq!(c, BestPathChange::Lost);
        assert_eq!(p.best(&prefix()), None);
    }

    #[test]
    fn withdraw_of_unknown_route_is_noop() {
        let mut p = BgpProcessor::new();
        p.apply(Update::Announce(route(1, Relationship::Transit, &[7018])));
        let c = p.apply(Update::Withdraw { prefix: prefix(), id: RouteId(9) });
        assert_eq!(c, BestPathChange::Unchanged);
    }

    #[test]
    fn implicit_replace_updates_attributes() {
        let mut p = BgpProcessor::new();
        p.apply(Update::Announce(route(1, Relationship::PrivatePeer, &[7018])));
        p.apply(Update::Announce(route(2, Relationship::PublicPeer, &[7018])));
        // Re-announce id 1 with a prepended path: it should now lose.
        let c = p.apply(Update::Announce(route(1, Relationship::PrivatePeer, &[7018, 7018, 7018])));
        // Peer class beats… both are peers; id1 now longer → id2 best.
        assert_eq!(c, BestPathChange::Changed { from: RouteId(1), to: RouteId(2) });
        assert_eq!(p.rib().ranked(&prefix()).len(), 2, "replace must not duplicate");
    }

    #[test]
    fn churn_counters_track_changes() {
        let mut p = BgpProcessor::new();
        p.apply(Update::Announce(route(1, Relationship::Transit, &[3356, 7018])));
        p.apply(Update::Announce(route(2, Relationship::Transit, &[1299, 64500, 7018])));
        p.apply(Update::Withdraw { prefix: prefix(), id: RouteId(1) });
        p.apply(Update::Withdraw { prefix: prefix(), id: RouteId(2) });
        assert_eq!(p.updates_applied, 4);
        // NewBest, Unchanged, Changed, Lost → 3 best-path changes.
        assert_eq!(p.best_path_changes, 3);
    }
}
