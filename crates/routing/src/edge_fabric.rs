//! Edge-Fabric-style egress control (paper §2.2.3, [55]).
//!
//! Two responsibilities:
//!
//! 1. **Ordinary traffic**: when the preferred route's interconnect
//!    approaches capacity, detour the overflow onto the next-best route,
//!    preventing self-inflicted congestion at the edge.
//! 2. **Sampled sessions**: pin routes deterministically so the
//!    measurement dataset continuously covers the preferred route *and*
//!    the best alternates, immune to the controller's shifts. The paper
//!    routes ≈47% of sampled sessions via the best path and splits the
//!    rest across (by default two) alternates.

use crate::rib::Rib;
use crate::types::{Prefix, Route};

/// Where a session was placed and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteChoice {
    /// Index into the policy-ranked route list (0 = preferred).
    pub rank: usize,
    /// True when the placement was a measurement pin (sampled session)
    /// rather than a capacity detour.
    pub pinned: bool,
}

/// Egress controller state for one PoP.
#[derive(Debug, Clone)]
pub struct EdgeFabric {
    /// Fraction of sampled sessions pinned to the preferred route.
    pub preferred_fraction: f64,
    /// Number of alternate routes to measure (the paper uses 2).
    pub alternates: usize,
    /// Utilization (0–1) above which ordinary traffic detours.
    pub detour_threshold: f64,
}

impl Default for EdgeFabric {
    fn default() -> Self {
        EdgeFabric { preferred_fraction: 0.47, alternates: 2, detour_threshold: 0.95 }
    }
}

impl EdgeFabric {
    /// Pin a *sampled* session to a route rank. Deterministic in the
    /// session id: ≈`preferred_fraction` of sessions go to rank 0, the
    /// rest split evenly across ranks 1..=alternates (clamped to the
    /// routes actually available).
    pub fn pin_sampled(&self, session_id: u64, available_routes: usize) -> RouteChoice {
        assert!(available_routes > 0, "no routes");
        let h = splitmix64(session_id);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let rank = if u < self.preferred_fraction || available_routes == 1 {
            0
        } else {
            let alts = self.alternates.min(available_routes - 1).max(1);
            let slot = ((u - self.preferred_fraction) / (1.0 - self.preferred_fraction)
                * alts as f64) as usize;
            1 + slot.min(alts - 1)
        };
        RouteChoice { rank, pinned: true }
    }

    /// Place ordinary (unsampled) traffic given current interface
    /// utilizations (same order as `routes`): use the preferred route
    /// unless it is above the detour threshold, else the first route
    /// below threshold (falling back to the least-utilized).
    pub fn place_ordinary(&self, routes: &[&Route], utilization: &[f64]) -> RouteChoice {
        assert!(!routes.is_empty());
        assert_eq!(routes.len(), utilization.len());
        for (rank, &u) in utilization.iter().enumerate() {
            if u < self.detour_threshold {
                return RouteChoice { rank, pinned: false };
            }
        }
        // All hot: pick the least loaded.
        let rank = utilization
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        RouteChoice { rank, pinned: false }
    }

    /// Convenience: ranked routes for a prefix from a RIB, limited to the
    /// preferred route plus the configured number of alternates.
    pub fn measured_routes<'a>(&self, rib: &'a Rib, prefix: &Prefix) -> Vec<&'a Route> {
        let mut rs = rib.ranked(prefix);
        rs.truncate(1 + self.alternates);
        rs
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AsPath, Asn, Relationship, RouteId};

    fn mk_route(id: u32) -> Route {
        Route {
            id: RouteId(id),
            prefix: Prefix::new(0x0A000000, 16),
            as_path: AsPath(vec![Asn(7018)]),
            relationship: Relationship::PrivatePeer,
            capacity_bps: 1_000_000_000,
        }
    }

    #[test]
    fn pinning_splits_as_configured() {
        let ef = EdgeFabric::default();
        let n = 100_000u64;
        let mut counts = [0usize; 3];
        for id in 0..n {
            let c = ef.pin_sampled(id, 3);
            counts[c.rank] += 1;
            assert!(c.pinned);
        }
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.47).abs() < 0.01, "preferred fraction {f0}");
        // Alternates split the rest roughly evenly.
        let f1 = counts[1] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f1 - 0.265).abs() < 0.01, "{f1}");
        assert!((f2 - 0.265).abs() < 0.01, "{f2}");
    }

    #[test]
    fn pinning_is_deterministic() {
        let ef = EdgeFabric::default();
        assert_eq!(ef.pin_sampled(777, 3), ef.pin_sampled(777, 3));
    }

    #[test]
    fn single_route_always_rank_zero() {
        let ef = EdgeFabric::default();
        for id in 0..100 {
            assert_eq!(ef.pin_sampled(id, 1).rank, 0);
        }
    }

    #[test]
    fn two_routes_use_one_alternate() {
        let ef = EdgeFabric::default();
        for id in 0..1000 {
            let r = ef.pin_sampled(id, 2).rank;
            assert!(r <= 1);
        }
    }

    #[test]
    fn ordinary_traffic_prefers_rank_zero_when_cool() {
        let ef = EdgeFabric::default();
        let r0 = mk_route(0);
        let r1 = mk_route(1);
        let routes = vec![&r0, &r1];
        let c = ef.place_ordinary(&routes, &[0.5, 0.1]);
        assert_eq!(c.rank, 0);
        assert!(!c.pinned);
    }

    #[test]
    fn ordinary_traffic_detours_when_hot() {
        let ef = EdgeFabric::default();
        let r0 = mk_route(0);
        let r1 = mk_route(1);
        let routes = vec![&r0, &r1];
        let c = ef.place_ordinary(&routes, &[0.99, 0.3]);
        assert_eq!(c.rank, 1);
    }

    #[test]
    fn all_hot_picks_least_loaded() {
        let ef = EdgeFabric::default();
        let r0 = mk_route(0);
        let r1 = mk_route(1);
        let r2 = mk_route(2);
        let routes = vec![&r0, &r1, &r2];
        let c = ef.place_ordinary(&routes, &[0.99, 0.96, 0.98]);
        assert_eq!(c.rank, 1);
    }

    #[test]
    fn measured_routes_truncates_to_three() {
        let mut rib = Rib::new();
        let pre = Prefix::new(0x0A000000, 16);
        for i in 0..5 {
            let mut r = mk_route(i);
            r.relationship = Relationship::Transit;
            rib.insert(r);
        }
        let ef = EdgeFabric::default();
        assert_eq!(ef.measured_routes(&rib, &pre).len(), 3);
    }
}
