//! Routing primitives: prefixes, AS paths, relationships, routes.

use std::fmt;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

/// A PoP identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PopId(pub u16);

/// A route identifier, unique within a PoP's RIB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(pub u32);

/// An IPv4-style CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Network base address (host bits zero).
    pub base: u32,
    /// Prefix length, 0–32.
    pub len: u8,
}

impl Prefix {
    /// Construct a prefix, masking host bits off `base`.
    pub fn new(base: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len}");
        Prefix { base: base & Self::mask(len), len }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Does this prefix contain the address?
    pub fn contains(&self, addr: u32) -> bool {
        (addr & Self::mask(self.len)) == self.base
    }

    /// Does this prefix contain the (equal-or-longer) other prefix?
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.base)
    }

    /// Number of addresses in the prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.base;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            (b >> 24) & 0xff,
            (b >> 16) & 0xff,
            (b >> 8) & 0xff,
            b & 0xff,
            self.len
        )
    }
}

/// An AS path as announced via BGP (may contain prepending).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AsPath(pub Vec<Asn>);

impl AsPath {
    /// Announced length (prepends included) — what BGP compares.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Origin AS (the destination network), if any.
    pub fn origin(&self) -> Option<Asn> {
        self.0.last().copied()
    }
}

/// Interconnection relationship of a route's next hop (§6.1).
///
/// Ordering encodes the policy preference *within* the peer class:
/// `PrivatePeer` (PNI) is preferred over `PublicPeer` (IXP); `Transit` is
/// its own class, less preferred than both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Relationship {
    /// Private network interconnect with a peer (capacity monitorable).
    PrivatePeer,
    /// Peering across a public Internet exchange.
    PublicPeer,
    /// A transit provider.
    Transit,
}

impl Relationship {
    /// Is this a peer (vs transit) route?
    pub fn is_peer(&self) -> bool {
        !matches!(self, Relationship::Transit)
    }

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Relationship::PrivatePeer => "private",
            Relationship::PublicPeer => "public",
            Relationship::Transit => "transit",
        }
    }
}

/// One egress route available at a PoP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Identifier within the PoP.
    pub id: RouteId,
    /// Destination prefix the route was announced for.
    pub prefix: Prefix,
    /// Announced AS path.
    pub as_path: AsPath,
    /// Interconnect relationship.
    pub relationship: Relationship,
    /// Egress interface capacity in bits/second (for Edge Fabric).
    pub capacity_bps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(0x0A0B_0C0D, 16);
        assert_eq!(p.base, 0x0A0B_0000);
        assert_eq!(p.to_string(), "10.11.0.0/16");
    }

    #[test]
    fn contains_and_covers() {
        let p16 = Prefix::new(0x0A0B_0000, 16);
        let p24 = Prefix::new(0x0A0B_0C00, 24);
        assert!(p16.contains(0x0A0B_FFFF));
        assert!(!p16.contains(0x0A0C_0000));
        assert!(p16.covers(&p24));
        assert!(!p24.covers(&p16));
        assert!(p16.covers(&p16));
    }

    #[test]
    fn zero_length_prefix_is_default_route() {
        let p = Prefix::new(0, 0);
        assert!(p.contains(0xFFFF_FFFF));
        assert!(p.contains(0));
        assert_eq!(p.size(), 1 << 32);
    }

    #[test]
    fn as_path_basics() {
        let p = AsPath(vec![Asn(64500), Asn(64501), Asn(64501), Asn(7018)]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.origin(), Some(Asn(7018)));
        assert!(!p.is_empty());
    }

    #[test]
    fn relationship_ordering_matches_policy() {
        assert!(Relationship::PrivatePeer < Relationship::PublicPeer);
        assert!(Relationship::PublicPeer < Relationship::Transit);
        assert!(Relationship::PrivatePeer.is_peer());
        assert!(Relationship::PublicPeer.is_peer());
        assert!(!Relationship::Transit.is_peer());
    }

    #[test]
    fn prefix_size() {
        assert_eq!(Prefix::new(0, 24).size(), 256);
        assert_eq!(Prefix::new(0, 32).size(), 1);
    }
}
