//! AS-path prepending detection (§6.2.2).
//!
//! A network that prepends its AS repeatedly on an announcement is asking
//! for that route to be deprioritized (ingress traffic engineering,
//! commonly because the path is capacity constrained). Table 2 of the
//! paper reports how much apparent routing opportunity sits on prepended
//! alternates — opportunity that should *not* be harvested.

use crate::types::AsPath;

/// Length of the path with consecutive duplicates collapsed.
pub fn stripped_len(path: &AsPath) -> usize {
    let mut n = 0;
    let mut prev = None;
    for &asn in &path.0 {
        if Some(asn) != prev {
            n += 1;
            prev = Some(asn);
        }
    }
    n
}

/// Does the path contain any prepending?
pub fn is_prepended(path: &AsPath) -> bool {
    stripped_len(path) != path.len()
}

/// Number of prepended hops (announced length minus stripped length).
pub fn prepend_count(path: &AsPath) -> usize {
    path.len() - stripped_len(path)
}

/// Is `a` prepended more than `b`?
pub fn prepended_more(a: &AsPath, b: &AsPath) -> bool {
    prepend_count(a) > prepend_count(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Asn;

    fn path(asns: &[u32]) -> AsPath {
        AsPath(asns.iter().map(|&a| Asn(a)).collect())
    }

    #[test]
    fn clean_path_is_not_prepended() {
        let p = path(&[64500, 3356, 7018]);
        assert!(!is_prepended(&p));
        assert_eq!(stripped_len(&p), 3);
        assert_eq!(prepend_count(&p), 0);
    }

    #[test]
    fn detects_origin_prepending() {
        let p = path(&[64500, 7018, 7018, 7018]);
        assert!(is_prepended(&p));
        assert_eq!(stripped_len(&p), 2);
        assert_eq!(prepend_count(&p), 2);
    }

    #[test]
    fn detects_midpath_prepending() {
        let p = path(&[64500, 3356, 3356, 7018]);
        assert!(is_prepended(&p));
        assert_eq!(prepend_count(&p), 1);
    }

    #[test]
    fn same_asn_nonadjacent_is_not_prepending() {
        // AS loops don't happen in valid BGP, but the stripper must only
        // collapse *consecutive* repeats.
        let p = path(&[64500, 3356, 64500]);
        assert!(!is_prepended(&p));
    }

    #[test]
    fn prepended_more_comparison() {
        let a = path(&[64500, 7018, 7018, 7018]);
        let b = path(&[64500, 3356, 3356]);
        assert!(prepended_more(&a, &b));
        assert!(!prepended_more(&b, &a));
        assert!(!prepended_more(&b, &b));
    }

    #[test]
    fn empty_path() {
        let p = path(&[]);
        assert_eq!(stripped_len(&p), 0);
        assert!(!is_prepended(&p));
    }
}
