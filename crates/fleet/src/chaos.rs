//! Seeded fleet-level fault plans: PoP kills at deterministic points.
//!
//! The live tier's `ChaosPlan` injects wire/disk faults inside one
//! node; a [`FleetChaosPlan`] operates one level up — it removes whole
//! PoPs from the fleet at a deterministic record count, forcing the
//! coordinator to re-home the dead PoP's catchment and the clients to
//! resume on survivors. Same spec-string idiom as `ChaosPlan` so runs
//! are reproducible from a single CLI flag.

use std::fmt;

/// Kill one PoP after the fleet has ingested a number of records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetKill {
    /// The PoP to remove from the fleet.
    pub pop: u16,
    /// Fire once at least this many records have been replayed
    /// fleet-wide (and quiesced — kills land on chunk barriers).
    pub after_records: u64,
}

/// A deterministic fleet fault plan, parsed from a spec string.
///
/// Grammar (clauses separated by `;`):
///
/// - `kill:POP@RECORDS` — kill PoP `POP` once `RECORDS` records have
///   been replayed; repeatable.
/// - `seed:S` — plan seed (reserved for future randomized placement;
///   recorded so reports pin the full plan).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetChaosPlan {
    /// PoP kills, in spec order.
    pub kills: Vec<FleetKill>,
    /// Plan seed.
    pub seed: u64,
}

/// A malformed fleet chaos spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetChaosPlanError(pub String);

impl fmt::Display for FleetChaosPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fleet chaos plan: {}", self.0)
    }
}

impl std::error::Error for FleetChaosPlanError {}

fn parse_u64(s: &str, clause: &str) -> Result<u64, FleetChaosPlanError> {
    s.parse()
        .map_err(|_| FleetChaosPlanError(format!("`{clause}`: expected an integer, got `{s}`")))
}

impl FleetChaosPlan {
    /// Parse a spec string; the empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<FleetChaosPlan, FleetChaosPlanError> {
        let mut plan = FleetChaosPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, body) = clause
                .split_once(':')
                .ok_or_else(|| FleetChaosPlanError(format!("`{clause}`: expected `kind:args`")))?;
            match kind {
                "kill" => {
                    let (pop, after) = body.split_once('@').ok_or_else(|| {
                        FleetChaosPlanError(format!("`{clause}`: expected `kill:POP@RECORDS`"))
                    })?;
                    plan.kills.push(FleetKill {
                        pop: parse_u64(pop, clause)?.try_into().map_err(|_| {
                            FleetChaosPlanError(format!("`{clause}`: PoP id out of range"))
                        })?,
                        after_records: parse_u64(after, clause)?,
                    });
                }
                "seed" => plan.seed = parse_u64(body, clause)?,
                other => return Err(FleetChaosPlanError(format!("unknown clause kind `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    /// Kills ordered by firing point (stable on ties).
    pub fn kills_sorted(&self) -> Vec<FleetKill> {
        let mut kills = self.kills.clone();
        kills.sort_by_key(|k| (k.after_records, k.pop));
        kills
    }
}

impl fmt::Display for FleetChaosPlan {
    /// Canonical spec form — `parse(plan.to_string())` round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ";")?;
            }
            first = false;
            Ok(())
        };
        for kill in &self.kills {
            sep(f)?;
            write!(f, "kill:{}@{}", kill.pop, kill.after_records)?;
        }
        if self.seed != 0 {
            sep(f)?;
            write!(f, "seed:{}", self.seed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_the_empty_plan() {
        let plan = FleetChaosPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan, FleetChaosPlan::default());
        assert_eq!(plan.to_string(), "");
    }

    #[test]
    fn full_spec_round_trips() {
        let spec = "kill:1@5000;kill:3@2000;seed:42";
        let plan = FleetChaosPlan::parse(spec).unwrap();
        assert_eq!(
            plan.kills,
            vec![
                FleetKill { pop: 1, after_records: 5000 },
                FleetKill { pop: 3, after_records: 2000 }
            ]
        );
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.to_string(), spec);
        assert_eq!(FleetChaosPlan::parse(&plan.to_string()).unwrap(), plan);
        assert_eq!(
            plan.kills_sorted(),
            vec![
                FleetKill { pop: 3, after_records: 2000 },
                FleetKill { pop: 1, after_records: 5000 }
            ]
        );
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in ["kill", "kill:1", "kill:x@5", "kill:1@y", "kill:99999@1", "bogus:1", "seed:x"] {
            let err = FleetChaosPlan::parse(bad).unwrap_err();
            assert!(err.to_string().starts_with("invalid fleet chaos plan: "), "{err}");
        }
    }
}
