//! The anycast catchment model: which PoP serves which client prefix.
//!
//! Real anycast catchments emerge from BGP — a client's packets land at
//! whichever PoP the interdomain routes deliver them to, which
//! correlates strongly with geography but is skewed by peering and
//! capacity ("How Far is Facebook from Me?", PAPERS.md). We model that
//! with a deterministic scoring function: each PoP sits on a continent
//! ring position and advertises a capacity weight; a client prefix is
//! homed on the alive PoP minimizing
//! `ring_distance(client, pop) / capacity + jitter`, where the jitter is
//! a tiny seeded hash of (seed, prefix, pop) that breaks ties the way
//! real catchments wobble — deterministically for a fixed seed.
//!
//! The model is pure: `home()` depends only on the key, the site table,
//! and the alive set, so the coordinator, tests, and the load generator
//! all compute identical catchments without coordination.

use std::collections::BTreeMap;

/// Number of continent codes the workload generator emits (0..6).
pub const CONTINENTS: u8 = 6;

/// One PoP site in the catchment table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopSite {
    /// The PoP id (index into the fleet).
    pub pop: u16,
    /// Continent ring position (0..[`CONTINENTS`]).
    pub continent: u8,
    /// Relative capacity weight (higher attracts more prefixes).
    pub capacity: f64,
}

/// The client-side identity the catchment maps to a PoP: the routed
/// prefix plus the geography metadata carried on every record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientKey {
    /// Prefix base address.
    pub prefix_base: u32,
    /// Prefix length.
    pub prefix_len: u8,
    /// Country id.
    pub country: u16,
    /// Continent id.
    pub continent: u8,
}

/// Deterministic seeded anycast catchment over a fixed PoP site table.
#[derive(Debug, Clone)]
pub struct CatchmentModel {
    seed: u64,
    sites: Vec<PopSite>,
    alive: Vec<bool>,
}

/// Distance between two continents on the 6-position ring (0..=3).
fn ring_distance(a: u8, b: u8) -> u32 {
    let n = u32::from(CONTINENTS);
    let d = (u32::from(a % CONTINENTS)).abs_diff(u32::from(b % CONTINENTS));
    d.min(n - d)
}

/// splitmix64 — the same cheap stateless mixer the workload generator
/// uses, so the jitter is reproducible from (seed, prefix, pop) alone.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CatchmentModel {
    /// Build the default site table: `pops` PoPs placed round-robin on
    /// the continent ring, all with unit capacity.
    pub fn new(pops: u16, seed: u64) -> CatchmentModel {
        let sites = (0..pops)
            .map(|p| PopSite {
                pop: p,
                continent: (p % u16::from(CONTINENTS)) as u8,
                capacity: 1.0,
            })
            .collect();
        CatchmentModel::with_sites(sites, seed)
    }

    /// Build from an explicit site table (capacity skew, custom placement).
    pub fn with_sites(sites: Vec<PopSite>, seed: u64) -> CatchmentModel {
        let alive = vec![true; sites.len()];
        CatchmentModel { seed, sites, alive }
    }

    /// The site table.
    pub fn sites(&self) -> &[PopSite] {
        &self.sites
    }

    /// Whether a PoP is still alive (in-catchment).
    pub fn is_alive(&self, pop: u16) -> bool {
        self.alive.get(usize::from(pop)).copied().unwrap_or(false)
    }

    /// Number of alive PoPs.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Remove a PoP from the catchment. Returns false if it was
    /// already dead or unknown.
    pub fn kill(&mut self, pop: u16) -> bool {
        match self.alive.get_mut(usize::from(pop)) {
            Some(alive) if *alive => {
                *alive = false;
                true
            }
            _ => false,
        }
    }

    /// The home PoP for a client key: argmin over alive PoPs of
    /// `ring_distance / capacity + jitter`. `None` when no PoP is alive.
    /// Ties break toward the lower PoP index (the fold keeps the first
    /// strict minimum), so the result is total-order deterministic.
    pub fn home(&self, key: &ClientKey) -> Option<u16> {
        let mut best: Option<(f64, u16)> = None;
        for site in &self.sites {
            if !self.alive[usize::from(site.pop)] {
                continue;
            }
            let mixed = splitmix64(
                self.seed
                    ^ (u64::from(key.prefix_base) << 16)
                    ^ (u64::from(key.prefix_len) << 8)
                    ^ u64::from(site.pop),
            );
            // Map the hash into [0, 1e-3): big enough to break distance
            // ties, small enough to never override a whole ring step.
            let jitter = (mixed >> 11) as f64 / (1u64 << 53) as f64 * 1e-3;
            let score =
                f64::from(ring_distance(key.continent, site.continent)) / site.capacity + jitter;
            best = match best {
                Some((s, p)) if s.total_cmp(&score).is_le() => Some((s, p)),
                _ => Some((score, site.pop)),
            };
        }
        best.map(|(_, p)| p)
    }

    /// Home every key in `keys`, returning the catchment map. Used by
    /// the coordinator to re-home observed prefixes after a kill.
    pub fn home_all(&self, keys: &[ClientKey]) -> BTreeMap<ClientKey, u16> {
        keys.iter().filter_map(|k| self.home(k).map(|p| (*k, p))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(g: u32) -> ClientKey {
        ClientKey {
            prefix_base: 0x0A00_0000 + (g << 8),
            prefix_len: 24,
            country: (g % 37) as u16,
            continent: (g % u32::from(CONTINENTS)) as u8,
        }
    }

    #[test]
    fn ring_distance_wraps() {
        assert_eq!(ring_distance(0, 0), 0);
        assert_eq!(ring_distance(0, 3), 3);
        assert_eq!(ring_distance(0, 5), 1);
        assert_eq!(ring_distance(5, 1), 2);
    }

    #[test]
    fn homing_is_deterministic_and_total() {
        let a = CatchmentModel::new(4, 7);
        let b = CatchmentModel::new(4, 7);
        for g in 0..256 {
            let k = key(g);
            let home = a.home(&k).unwrap();
            assert_eq!(Some(home), b.home(&k));
            assert!(home < 4);
        }
    }

    #[test]
    fn different_seeds_move_tied_prefixes() {
        // Two PoPs on the same continent with equal capacity: every
        // prefix is a score tie, so the seeded jitter alone decides the
        // catchment — and a different seed decides differently for some
        // prefixes, while each seed remains internally deterministic.
        let sites = vec![
            PopSite { pop: 0, continent: 0, capacity: 1.0 },
            PopSite { pop: 1, continent: 0, capacity: 1.0 },
        ];
        let a = CatchmentModel::with_sites(sites.clone(), 7);
        let b = CatchmentModel::with_sites(sites, 8);
        let moved = (0..512).filter(|g| a.home(&key(*g)) != b.home(&key(*g))).count();
        assert!(moved > 0, "seed change should re-home at least one tied prefix");
        let balance = (0..512).filter(|g| a.home(&key(*g)) == Some(0)).count();
        assert!((128..=384).contains(&balance), "tied catchment should split, got {balance}/512");
    }

    #[test]
    fn killing_a_pop_rehomes_only_its_prefixes() {
        let mut model = CatchmentModel::new(3, 7);
        let keys: Vec<ClientKey> = (0..256).map(key).collect();
        let before = model.home_all(&keys);
        assert!(model.kill(1));
        assert!(!model.kill(1), "double kill reports false");
        assert!(!model.is_alive(1));
        assert_eq!(model.alive_count(), 2);
        let after = model.home_all(&keys);
        let mut rehomed = 0usize;
        for k in &keys {
            if before[k] == 1 {
                assert_ne!(after[k], 1, "dead PoP must not be a home");
                rehomed += 1;
            } else {
                assert_eq!(before[k], after[k], "surviving homes must not move");
            }
        }
        assert!(rehomed > 0, "PoP 1 should have owned some prefixes");
    }

    #[test]
    fn capacity_skew_attracts_prefixes() {
        let flat = CatchmentModel::new(2, 7);
        let skewed = CatchmentModel::with_sites(
            vec![
                PopSite { pop: 0, continent: 0, capacity: 1.0 },
                PopSite { pop: 1, continent: 1, capacity: 8.0 },
            ],
            7,
        );
        let keys: Vec<ClientKey> = (0..512).map(key).collect();
        let share = |m: &CatchmentModel| keys.iter().filter(|k| m.home(k) == Some(1)).count();
        assert!(share(&skewed) > share(&flat), "higher capacity should widen the catchment");
    }

    #[test]
    fn no_alive_pops_means_no_home() {
        let mut model = CatchmentModel::new(1, 7);
        assert!(model.kill(0));
        assert_eq!(model.home(&key(0)), None);
        assert_eq!(model.alive_count(), 0);
    }
}
