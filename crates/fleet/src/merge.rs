//! Merging per-PoP views into one global, bit-faithful fleet view.
//!
//! The central invariant (DESIGN.md §16, generalizing the §11 worker
//! invariant worker → node): the catchment model homes every client
//! prefix on exactly one PoP at a time, and the workload keys groups by
//! prefix, so each (group, rank, window) cell lives on **exactly one**
//! node. Merging is therefore a *disjoint union* — concatenate, sort by
//! the canonical cell key, and we have byte-for-byte the cells a
//! single-node run over the same records would serve. No t-digest
//! re-merge happens at the fleet layer, so no approximation error can
//! creep in (the aggregation-distortion pitfall of PAPERS.md's
//! measurement recommendations).
//!
//! A duplicate cell key across PoPs would mean the catchment homed one
//! group on two nodes — a correctness violation, not a mergeable
//! situation — so [`merge_cells`] detects it and fails with a typed
//! [`FleetError::DuplicateCell`] instead of silently double-counting.

use std::collections::HashMap;

use edgeperf_live::{cell_line_sort_key, CellLine, ClassCount, LiveSnapshot, ReasonCount};

use crate::FleetError;

/// The canonical cell identity — [`cell_line_sort_key`]'s tuple.
type CellKey = (u32, u16, u32, u8, u16, u8, u8);

/// Merge per-PoP cell exports into the global canonical-order view.
///
/// `per_pop` pairs each contributing node id with its (already
/// canonically sorted, but we don't rely on that) cell rows. Errors
/// with [`FleetError::DuplicateCell`] if two nodes both served the same
/// (window, group, rank) cell.
pub fn merge_cells(per_pop: Vec<(u16, Vec<CellLine>)>) -> Result<Vec<CellLine>, FleetError> {
    let total: usize = per_pop.iter().map(|(_, cells)| cells.len()).sum();
    let mut owner: HashMap<CellKey, u16> = HashMap::with_capacity(total);
    let mut merged: Vec<CellLine> = Vec::with_capacity(total);
    for (node, cells) in per_pop {
        for cell in cells {
            let key = cell_line_sort_key(&cell);
            if let Some(first) = owner.insert(key, node) {
                return Err(FleetError::DuplicateCell {
                    window: cell.window,
                    pop: cell.pop,
                    prefix_base: cell.prefix_base,
                    prefix_len: cell.prefix_len,
                    rank: cell.rank,
                    first_node: first,
                    second_node: node,
                });
            }
            merged.push(cell);
        }
    }
    merged.sort_by_key(cell_line_sort_key);
    Ok(merged)
}

/// Sum per-PoP snapshots into the fleet-wide snapshot. Counters add;
/// `drained` is true only when every node drained; typed reject reasons
/// and temporal-class tallies merge by label in sorted order.
pub fn merge_snapshots(per_pop: &[LiveSnapshot]) -> LiveSnapshot {
    let mut out = LiveSnapshot {
        drained: !per_pop.is_empty(),
        workers: 0,
        accepted: 0,
        rejected: 0,
        late: 0,
        groups: 0,
        windows_closed: 0,
        open_windows: 0,
        events_minrtt: 0,
        events_hdratio: 0,
        episodes_opened: 0,
        episodes_open: 0,
        reject_reasons: Vec::new(),
        classes_minrtt: Vec::new(),
    };
    let mut reasons = std::collections::BTreeMap::<&str, u64>::new();
    let mut classes = std::collections::BTreeMap::<&str, u64>::new();
    for snap in per_pop {
        out.drained &= snap.drained;
        out.workers += snap.workers;
        out.accepted += snap.accepted;
        out.rejected += snap.rejected;
        out.late += snap.late;
        // Groups are disjoint across PoPs (the catchment invariant), so
        // the fleet group count is the plain sum.
        out.groups += snap.groups;
        out.windows_closed += snap.windows_closed;
        out.open_windows += snap.open_windows;
        out.events_minrtt += snap.events_minrtt;
        out.events_hdratio += snap.events_hdratio;
        out.episodes_opened += snap.episodes_opened;
        out.episodes_open += snap.episodes_open;
        for r in &snap.reject_reasons {
            *reasons.entry(r.reason.as_str()).or_default() += r.count;
        }
        for c in &snap.classes_minrtt {
            *classes.entry(c.class.as_str()).or_default() += c.groups;
        }
    }
    out.reject_reasons = reasons
        .into_iter()
        .map(|(reason, count)| ReasonCount { reason: reason.to_string(), count })
        .collect();
    out.classes_minrtt = classes
        .into_iter()
        .map(|(class, groups)| ClassCount { class: class.to_string(), groups })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(window: u32, prefix_base: u32, rank: u8, n: u64) -> CellLine {
        CellLine {
            window,
            pop: 0,
            prefix_base,
            prefix_len: 24,
            country: 1,
            continent: 2,
            rank,
            relationship: "transit".to_string(),
            longer_path: false,
            more_prepended: false,
            n,
            n_tested: n,
            bytes: n * 100,
            min_rtt_p50: 12.5,
            min_rtt_var: Some(0.25),
            hdratio_p50: Some(0.9),
            hdratio_var: None,
        }
    }

    #[test]
    fn merge_is_a_sorted_disjoint_union() {
        let merged = merge_cells(vec![
            (1, vec![cell(2, 20, 0, 5), cell(0, 10, 0, 3)]),
            (0, vec![cell(1, 10, 0, 7), cell(0, 10, 1, 2)]),
        ])
        .unwrap();
        let keys: Vec<_> = merged.iter().map(cell_line_sort_key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn duplicate_cells_across_nodes_are_a_typed_violation() {
        let err = merge_cells(vec![(0, vec![cell(0, 10, 0, 3)]), (1, vec![cell(0, 10, 0, 3)])])
            .unwrap_err();
        match err {
            FleetError::DuplicateCell {
                first_node: 0, second_node: 1, prefix_base: 10, ..
            } => {}
            other => panic!("expected DuplicateCell, got {other}"),
        }
        assert!(err.to_string().contains("catchment violation"), "{err}");
    }

    #[test]
    fn snapshots_sum_and_drain_conjunctively() {
        let a = LiveSnapshot {
            drained: true,
            workers: 2,
            accepted: 100,
            rejected: 3,
            late: 1,
            groups: 8,
            windows_closed: 4,
            open_windows: 2,
            events_minrtt: 1,
            events_hdratio: 0,
            episodes_opened: 1,
            episodes_open: 1,
            reject_reasons: vec![ReasonCount { reason: "late".to_string(), count: 1 }],
            classes_minrtt: vec![ClassCount { class: "episodic".to_string(), groups: 2 }],
        };
        let mut b = a.clone();
        b.drained = false;
        b.reject_reasons = vec![
            ReasonCount { reason: "late".to_string(), count: 2 },
            ReasonCount { reason: "json".to_string(), count: 1 },
        ];
        let merged = merge_snapshots(&[a.clone(), b]);
        assert!(!merged.drained);
        assert_eq!(merged.accepted, 200);
        assert_eq!(merged.groups, 16);
        assert_eq!(merged.reject_reasons.len(), 2);
        let late = merged.reject_reasons.iter().find(|r| r.reason == "late").unwrap();
        assert_eq!(late.count, 3);
        assert!(merge_snapshots(&[a.clone(), a]).drained);
        assert!(!merge_snapshots(&[]).drained);
    }
}
