//! The fleet coordinator: hosts N in-process PoPs, owns the catchment,
//! and serves fleet-level queries by fanning the typed live protocol
//! out to every alive node and merging the replies.
//!
//! Control plane vs data plane: the coordinator speaks its own small
//! line protocol (`ping` / `pops` / `home` / `snapshot` / `cells` /
//! `stats` / `metrics` / `kill` / `shutdown`, each optionally prefixed
//! `fleet `) on its own socket, but **records never flow through it** —
//! clients ask `home` for their PoP and then connect to that PoP's
//! ingest socket directly, exactly as anycast delivers client packets
//! straight to the catchment PoP.
//!
//! Fan-out reuses one persistent [`LiveClient`] per PoP across query
//! rounds (one connection per fan-out round, not per request);
//! `fleet.fanout.connects` / `fleet.fanout.reconnects` counters make
//! the reuse observable and testable.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use edgeperf_live::{
    parse_cells_header, CellLine, CellQuery, LineParser, LiveClient, LiveSnapshot, ProtocolError,
    Request, ServeBuilder, ServerHandle,
};
use edgeperf_obs::Metrics;
use serde::{Deserialize, Serialize};

use crate::catchment::{CatchmentModel, ClientKey};
use crate::merge::{merge_cells, merge_snapshots};
use crate::FleetError;

/// Fleet geometry and placement.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of PoPs to host.
    pub pops: u16,
    /// Worker threads per PoP.
    pub workers: usize,
    /// Coordinator listen address (`host:0` picks a free port).
    pub addr: String,
    /// Window width per PoP, in event-time milliseconds.
    pub window_ms: f64,
    /// Allowed lateness per PoP, in event-time milliseconds.
    pub lateness_ms: f64,
    /// Closed windows each PoP retains in RAM.
    pub retention_windows: usize,
    /// Catchment seed (tie-break jitter).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            pops: 2,
            workers: 2,
            addr: "127.0.0.1:0".to_string(),
            window_ms: 900_000.0,
            lateness_ms: 60_000.0,
            retention_windows: 64,
            seed: 7,
        }
    }
}

/// One PoP's wire row in the `pops` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetPopInfo {
    /// PoP id.
    pub pop: u16,
    /// The PoP's ingest address (clients connect here).
    pub addr: String,
    /// Still in the catchment.
    pub alive: bool,
    /// Continent ring position.
    pub continent: u8,
    /// Capacity weight.
    pub capacity: f64,
    /// Fraction of observed client keys homed here.
    pub share: f64,
}

/// The `kill` reply: what the failover did.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KillReport {
    /// The PoP removed from the fleet.
    pub killed: u16,
    /// Observed client keys re-homed onto survivors.
    pub rehomed: u64,
    /// PoPs still alive.
    pub alive: u64,
}

struct PopState {
    pop: u16,
    addr: SocketAddr,
    alive: AtomicBool,
    handle: Mutex<Option<ServerHandle>>,
    /// The persistent fan-out connection, opened on first use.
    link: Mutex<Option<LiveClient>>,
}

/// Catchment state the coordinator mutates: the model plus every client
/// key it has homed so far (the set it must re-home after a kill).
struct CatchmentState {
    model: CatchmentModel,
    observed: BTreeMap<ClientKey, u16>,
}

struct FleetShared {
    /// The coordinator's own listen address (the shutdown path
    /// self-connects to pop the acceptor out of its blocking accept).
    addr: SocketAddr,
    pops: Vec<PopState>,
    catchment: Mutex<CatchmentState>,
    metrics: Metrics,
    shutting_down: AtomicBool,
    final_snapshot: Mutex<Option<LiveSnapshot>>,
}

/// The hosting side: starts the PoPs and the coordinator socket.
pub struct Fleet;

/// A running fleet; join to collect the merged drained snapshot.
pub struct FleetHandle {
    addr: SocketAddr,
    pop_addrs: Vec<SocketAddr>,
    accept_thread: Option<thread::JoinHandle<()>>,
    shared: Arc<FleetShared>,
}

impl Fleet {
    /// Host `config.pops` in-process PoPs (each a full `edgeperf serve`
    /// instance on a loopback port, with its own private metrics
    /// registry) and the coordinator socket. `metrics` receives the
    /// coordinator's `fleet.*` counters and gauges.
    pub fn start(
        config: &FleetConfig,
        parser: Arc<dyn LineParser>,
        metrics: &Metrics,
    ) -> Result<FleetHandle, FleetError> {
        if config.pops == 0 {
            return Err(FleetError::Config("a fleet needs at least one PoP".to_string()));
        }
        let mut pops = Vec::with_capacity(usize::from(config.pops));
        for pop in 0..config.pops {
            let handle = ServeBuilder::new()
                .addr("127.0.0.1:0")
                .workers(config.workers)
                .window_ms(config.window_ms)
                .lateness_ms(config.lateness_ms)
                .retention_windows(config.retention_windows)
                .metrics(&Metrics::enabled())
                .start(Arc::clone(&parser))
                .map_err(|e| FleetError::Config(format!("PoP {pop}: {e}")))?;
            pops.push(PopState {
                pop,
                addr: handle.addr(),
                alive: AtomicBool::new(true),
                handle: Mutex::new(Some(handle)),
                link: Mutex::new(None),
            });
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let pop_addrs = pops.iter().map(|p| p.addr).collect();
        let shared = Arc::new(FleetShared {
            addr,
            pops,
            catchment: Mutex::new(CatchmentState {
                model: CatchmentModel::new(config.pops, config.seed),
                observed: BTreeMap::new(),
            }),
            metrics: metrics.clone(),
            shutting_down: AtomicBool::new(false),
            final_snapshot: Mutex::new(None),
        });
        shared.metrics.gauge("fleet.pops.alive").set(f64::from(config.pops));
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("fleet-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(FleetError::Io)?;
        Ok(FleetHandle { addr, pop_addrs, accept_thread: Some(accept_thread), shared })
    }
}

impl FleetHandle {
    /// The coordinator's listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Every PoP's ingest address, by PoP id.
    pub fn pop_addrs(&self) -> &[SocketAddr] {
        &self.pop_addrs
    }

    /// Wait for `shutdown` and return the merged drained snapshot.
    pub fn join(mut self) -> LiveSnapshot {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.final_snapshot.lock().expect("lock").take().unwrap_or_default()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<FleetShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => break,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let conn_shared = Arc::clone(&shared);
        let _ = thread::Builder::new()
            .name("fleet-conn".to_string())
            .spawn(move || handle_connection(stream, conn_shared));
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<FleetShared>) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // The `fleet ` prefix is optional so both `fleet cells` (the
        // documented form) and bare `cells` work.
        let command = line.strip_prefix("fleet ").unwrap_or(line).trim();
        if command == "quit" {
            break;
        }
        let shutdown = command == "shutdown";
        let reply = dispatch(command, &shared);
        if writer.write_all(reply.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
            || shutdown
        {
            break;
        }
    }
}

fn dispatch(command: &str, shared: &FleetShared) -> String {
    let (verb, args) = match command.split_once(' ') {
        Some((v, a)) => (v, a.trim()),
        None => (command, ""),
    };
    let result = match verb {
        "ping" => Ok("pong".to_string()),
        "pops" => serve_pops(shared),
        "home" => serve_home(shared, args),
        "snapshot" => fleet_snapshot(shared).map(|s| render_snapshot(&s)),
        "cells" => serve_cells(shared, args),
        "stats" => serve_stats(shared),
        "metrics" => serde_json::to_string(&shared.metrics.snapshot())
            .map_err(|e| FleetError::Io(io::Error::other(e))),
        "kill" => serve_kill(shared, args),
        "shutdown" => serve_shutdown(shared),
        _ => Err(FleetError::Protocol(ProtocolError::UnknownCommand(command.to_string()))),
    };
    result.unwrap_or_else(|err| err.render())
}

fn render_snapshot(snapshot: &LiveSnapshot) -> String {
    serde_json::to_string(snapshot).expect("snapshot serializes")
}

fn serve_pops(shared: &FleetShared) -> Result<String, FleetError> {
    let state = shared.catchment.lock().expect("lock");
    let total = state.observed.len().max(1) as f64;
    let infos: Vec<FleetPopInfo> = shared
        .pops
        .iter()
        .map(|p| {
            let site = state.model.sites()[usize::from(p.pop)];
            let homed = state.observed.values().filter(|home| **home == p.pop).count();
            FleetPopInfo {
                pop: p.pop,
                addr: p.addr.to_string(),
                alive: p.alive.load(Ordering::SeqCst),
                continent: site.continent,
                capacity: site.capacity,
                share: homed as f64 / total,
            }
        })
        .collect();
    serde_json::to_string(&infos).map_err(|e| FleetError::Io(io::Error::other(e)))
}

fn parse_client_key(args: &str) -> Result<ClientKey, FleetError> {
    let bad = |msg: &str| FleetError::Config(format!("home: {msg}, got `{args}`"));
    let mut parts = args.split_whitespace();
    let prefix = parts.next().ok_or_else(|| bad("expected `BASE/LEN COUNTRY CONTINENT`"))?;
    let (base, len) = prefix.split_once('/').ok_or_else(|| bad("expected prefix as `BASE/LEN`"))?;
    let key = ClientKey {
        prefix_base: base.parse().map_err(|_| bad("prefix base must be a u32"))?,
        prefix_len: len.parse().map_err(|_| bad("prefix length must be a u8"))?,
        country: parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| bad("country must be a u16"))?,
        continent: parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| bad("continent must be a u8"))?,
    };
    if parts.next().is_some() {
        return Err(bad("trailing arguments"));
    }
    Ok(key)
}

fn serve_home(shared: &FleetShared, args: &str) -> Result<String, FleetError> {
    let key = parse_client_key(args)?;
    let mut state = shared.catchment.lock().expect("lock");
    let pop = state.model.home(&key).ok_or(FleetError::NoPopsAlive)?;
    state.observed.insert(key, pop);
    update_share_gauges(shared, &state);
    let addr = shared.pops[usize::from(pop)].addr;
    Ok(format!("{{\"pop\":{pop},\"addr\":\"{addr}\"}}"))
}

fn update_share_gauges(shared: &FleetShared, state: &CatchmentState) {
    if !shared.metrics.is_enabled() {
        return;
    }
    let total = state.observed.len().max(1) as f64;
    let mut counts = vec![0u64; shared.pops.len()];
    for home in state.observed.values() {
        counts[usize::from(*home)] += 1;
    }
    for (pop, count) in counts.iter().enumerate() {
        shared.metrics.gauge(&format!("fleet.catchment.share.pop{pop}")).set(*count as f64 / total);
    }
}

/// Fan a closure out over every alive PoP on its persistent link,
/// reconnecting once per PoP on transport errors.
fn fan_out<R>(
    shared: &FleetShared,
    op: impl Fn(&mut LiveClient) -> io::Result<R>,
) -> Result<Vec<(u16, R)>, FleetError> {
    let mut out = Vec::new();
    for pop in &shared.pops {
        if !pop.alive.load(Ordering::SeqCst) {
            continue;
        }
        out.push((pop.pop, with_link(shared, pop, &op)?));
    }
    if out.is_empty() {
        return Err(FleetError::NoPopsAlive);
    }
    Ok(out)
}

fn with_link<R>(
    shared: &FleetShared,
    pop: &PopState,
    op: &impl Fn(&mut LiveClient) -> io::Result<R>,
) -> Result<R, FleetError> {
    let fail = |source: io::Error| FleetError::Pop { pop: pop.pop, source };
    let mut link = pop.link.lock().expect("lock");
    if link.is_none() {
        *link = Some(LiveClient::connect(pop.addr).map_err(fail)?);
        shared.metrics.counter("fleet.fanout.connects").inc();
    }
    match op(link.as_mut().expect("link populated")) {
        Ok(r) => Ok(r),
        Err(_) => {
            // One reconnect per round: the link may have idled out.
            *link = None;
            *link = Some(LiveClient::connect(pop.addr).map_err(fail)?);
            shared.metrics.counter("fleet.fanout.connects").inc();
            shared.metrics.counter("fleet.fanout.reconnects").inc();
            match op(link.as_mut().expect("link populated")) {
                Ok(r) => Ok(r),
                Err(e) => {
                    *link = None;
                    Err(fail(e))
                }
            }
        }
    }
}

/// Fan the version-gated `digest` out to every alive PoP and merge the
/// raw cells into the global canonical view.
fn fleet_cells_merged(
    shared: &FleetShared,
    query: &CellQuery,
) -> Result<(u64, Vec<CellLine>), FleetError> {
    shared.metrics.counter("fleet.queries.cells").inc();
    let per_pop = fan_out(shared, |client| client.digest_query(query))?;
    let started = Instant::now();
    let accepted = per_pop.iter().map(|(_, (a, _))| a).sum();
    let merged = merge_cells(per_pop.into_iter().map(|(p, (_, c))| (p, c)).collect())?;
    let elapsed = started.elapsed();
    shared.metrics.gauge("fleet.merge.last_ms").set(elapsed.as_secs_f64() * 1e3);
    shared.metrics.histogram("fleet.merge.us").record(elapsed.as_micros() as u64);
    Ok((accepted, merged))
}

fn serve_cells(shared: &FleetShared, args: &str) -> Result<String, FleetError> {
    // Reuse the live protocol's own parser for the query arguments by
    // reconstructing a `cells` request line.
    let line = if args.is_empty() { "cells".to_string() } else { format!("cells {args}") };
    let query = match Request::parse(&line)? {
        Request::Cells(query) => query,
        _ => unreachable!("a `cells` line parses to Request::Cells"),
    };
    let (_, cells) = fleet_cells_merged(shared, &query)?;
    let mut out = format!("{{\"cells\":{}}}", cells.len());
    for cell in &cells {
        out.push('\n');
        out.push_str(&serde_json::to_string(cell).expect("cell serializes"));
    }
    Ok(out)
}

fn fleet_snapshot(shared: &FleetShared) -> Result<LiveSnapshot, FleetError> {
    shared.metrics.counter("fleet.queries.snapshot").inc();
    let per_pop = fan_out(shared, |client| client.snapshot())?;
    let snaps: Vec<LiveSnapshot> = per_pop.into_iter().map(|(_, s)| s).collect();
    Ok(merge_snapshots(&snaps))
}

fn serve_stats(shared: &FleetShared) -> Result<String, FleetError> {
    let per_pop = fan_out(shared, |client| client.stats_json())?;
    let mut out = String::from("{\"pops\":[");
    for (i, (pop, stats)) in per_pop.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"pop\":{pop},\"stats\":{stats}}}"));
    }
    out.push_str("]}");
    Ok(out)
}

fn serve_kill(shared: &FleetShared, args: &str) -> Result<String, FleetError> {
    let pop: u16 = args
        .trim()
        .parse()
        .map_err(|_| FleetError::Config(format!("kill: expected a PoP id, got `{args}`")))?;
    let report = kill_pop(shared, pop)?;
    Ok(serde_json::to_string(&report).expect("report serializes"))
}

/// Remove a PoP: stop its server (its un-drained state is lost, as a
/// real PoP failure loses un-acked state), drop it from the catchment,
/// and re-home every observed client key it owned onto survivors.
/// Clients then resume via the exactly-once session protocol against
/// their new home.
fn kill_pop(shared: &FleetShared, pop: u16) -> Result<KillReport, FleetError> {
    let state = shared.pops.get(usize::from(pop)).ok_or(FleetError::UnknownPop { pop })?;
    let mut catchment = shared.catchment.lock().expect("lock");
    if !state.alive.load(Ordering::SeqCst) {
        return Err(FleetError::PopDead { pop });
    }
    if catchment.model.alive_count() <= 1 {
        return Err(FleetError::LastPop { pop });
    }
    // Stop the node first so nothing acks after the catchment change.
    // The returned snapshot is deliberately discarded: a killed PoP's
    // state is gone, and correctness comes from clients replaying the
    // full per-group substream into the new home.
    state.alive.store(false, Ordering::SeqCst);
    *state.link.lock().expect("lock") = None;
    if let Some(handle) = state.handle.lock().expect("lock").take() {
        let _ = handle.shutdown_and_join();
    }
    catchment.model.kill(pop);
    let orphaned: Vec<ClientKey> =
        catchment.observed.iter().filter(|(_, home)| **home == pop).map(|(k, _)| *k).collect();
    let mut rehomed = 0u64;
    for key in orphaned {
        let new_home = catchment.model.home(&key).ok_or(FleetError::NoPopsAlive)?;
        catchment.observed.insert(key, new_home);
        rehomed += 1;
    }
    update_share_gauges(shared, &catchment);
    let alive = catchment.model.alive_count() as u64;
    shared.metrics.counter("fleet.failover.kills").inc();
    shared.metrics.counter("fleet.failover.rehomed").add(rehomed);
    shared.metrics.gauge("fleet.pops.alive").set(alive as f64);
    Ok(KillReport { killed: pop, rehomed, alive })
}

fn serve_shutdown(shared: &FleetShared) -> Result<String, FleetError> {
    shared.shutting_down.store(true, Ordering::SeqCst);
    let mut snaps = Vec::new();
    for pop in &shared.pops {
        if !pop.alive.load(Ordering::SeqCst) {
            continue;
        }
        pop.alive.store(false, Ordering::SeqCst);
        *pop.link.lock().expect("lock") = None;
        if let Some(handle) = pop.handle.lock().expect("lock").take() {
            snaps.push(handle.shutdown_and_join().map_err(FleetError::Io)?);
        }
    }
    let merged = merge_snapshots(&snaps);
    *shared.final_snapshot.lock().expect("lock") = Some(merged.clone());
    shared.metrics.gauge("fleet.pops.alive").set(0.0);
    // Pop the acceptor out of its blocking accept so join() returns;
    // it re-checks `shutting_down` after every accept.
    let _ = TcpStream::connect(shared.addr);
    Ok(render_snapshot(&merged))
}

/// Blocking client for the coordinator's line protocol.
pub struct FleetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Cap speculative preallocation from a wire-supplied row count.
const MAX_PREALLOC_CELLS: usize = 1 << 16;

impl FleetClient {
    /// Connect to a coordinator.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<FleetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(FleetClient { reader, writer: BufWriter::new(stream) })
    }

    fn round_trip(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> io::Result<String> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "coordinator closed the connection",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        if reply.starts_with("{\"error\"") {
            return Err(io::Error::other(reply));
        }
        Ok(reply)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        let reply = self.round_trip("fleet ping")?;
        if reply == "pong" {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected pong, got {reply}")))
        }
    }

    /// The PoP table with liveness and catchment shares.
    pub fn pops(&mut self) -> io::Result<Vec<FleetPopInfo>> {
        let reply = self.round_trip("fleet pops")?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Home a client key; returns (PoP id, ingest address).
    pub fn home(&mut self, key: &ClientKey) -> io::Result<(u16, String)> {
        let reply = self.round_trip(&format!(
            "fleet home {}/{} {} {}",
            key.prefix_base, key.prefix_len, key.country, key.continent
        ))?;
        let parsed =
            serde_json::parse(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let bad = || io::Error::new(io::ErrorKind::InvalidData, reply.clone());
        let pop = match parsed.get("pop") {
            Some(serde_json::Value::Num(n)) if *n >= 0.0 && *n <= f64::from(u16::MAX) => *n as u16,
            _ => return Err(bad()),
        };
        let addr = match parsed.get("addr") {
            Some(serde_json::Value::Str(s)) => s.clone(),
            _ => return Err(bad()),
        };
        Ok((pop, addr))
    }

    /// The merged fleet snapshot.
    pub fn snapshot(&mut self) -> io::Result<LiveSnapshot> {
        let reply = self.round_trip("fleet snapshot")?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Fleet-merged cells for a query (canonical order, disjoint union).
    pub fn cells(&mut self, query: &CellQuery) -> io::Result<Vec<CellLine>> {
        let mut line = String::from("fleet cells");
        let rendered = Request::Cells(*query).wire_line();
        if let Some(args) = rendered.strip_prefix("cells ") {
            line.push(' ');
            line.push_str(args);
        }
        let header = self.round_trip(&line)?;
        let count = parse_cells_header(&header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut out = Vec::with_capacity(count.min(MAX_PREALLOC_CELLS));
        for _ in 0..count {
            let row = self.read_reply()?;
            let cell: CellLine = serde_json::from_str(&row)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.push(cell);
        }
        Ok(out)
    }

    /// Per-PoP worker stats as raw JSON.
    pub fn stats_json(&mut self) -> io::Result<String> {
        self.round_trip("fleet stats")
    }

    /// The coordinator's `fleet.*` metrics registry as raw JSON.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        self.round_trip("fleet metrics")
    }

    /// Kill a PoP and re-home its catchment.
    pub fn kill(&mut self, pop: u16) -> io::Result<KillReport> {
        let reply = self.round_trip(&format!("fleet kill {pop}"))?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Drain every alive PoP and return the merged drained snapshot.
    /// The coordinator stops accepting afterwards.
    pub fn shutdown(&mut self) -> io::Result<LiveSnapshot> {
        let reply = self.round_trip("fleet shutdown")?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_core::EdgeperfError;
    use edgeperf_live::LiveRecord;
    use edgeperf_routing::Relationship;

    /// A minimal wire format for tests: `ts base/len country continent rtt`.
    fn test_parser() -> Arc<dyn LineParser> {
        Arc::new(|line: &str| {
            let mut it = line.split_whitespace();
            let mut next =
                || it.next().ok_or_else(|| EdgeperfError::Json { message: "short".into() });
            let ts: f64 =
                next()?.parse().map_err(|_| EdgeperfError::Json { message: "ts".into() })?;
            let prefix = next()?;
            let (base, len) =
                prefix.split_once('/').ok_or(EdgeperfError::Json { message: "prefix".into() })?;
            let country = next()?.parse().unwrap_or(0);
            let continent = next()?.parse().unwrap_or(0);
            let rtt: f64 = next()?.parse().unwrap_or(10.0);
            Ok(LiveRecord {
                ts_ms: ts,
                group: edgeperf_analysis::GroupKey {
                    pop: edgeperf_routing::PopId(0),
                    prefix: edgeperf_routing::Prefix {
                        base: base.parse().unwrap_or(0),
                        len: len.parse().unwrap_or(24),
                    },
                    country,
                    continent,
                },
                route_rank: 0,
                relationship: Relationship::Transit,
                longer_path: false,
                more_prepended: false,
                min_rtt_ms: rtt,
                hdratio: Some(0.9),
                bytes: 1000,
            })
        })
    }

    fn start_fleet(pops: u16) -> (FleetHandle, FleetClient) {
        let config = FleetConfig {
            pops,
            workers: 1,
            window_ms: 1000.0,
            lateness_ms: 500.0,
            ..FleetConfig::default()
        };
        let handle = Fleet::start(&config, test_parser(), &Metrics::enabled()).unwrap();
        let client = FleetClient::connect(handle.addr()).unwrap();
        (handle, client)
    }

    #[test]
    fn ping_pops_and_home_round_trip() {
        let (handle, mut client) = start_fleet(3);
        client.ping().unwrap();
        let pops = client.pops().unwrap();
        assert_eq!(pops.len(), 3);
        assert!(pops.iter().all(|p| p.alive));
        let key = ClientKey { prefix_base: 0x0A00_0100, prefix_len: 24, country: 1, continent: 2 };
        let (pop, addr) = client.home(&key).unwrap();
        assert!(usize::from(pop) < 3);
        assert_eq!(addr, handle.pop_addrs()[usize::from(pop)].to_string());
        // Homing is stable across calls.
        assert_eq!(client.home(&key).unwrap().0, pop);
        client.shutdown().unwrap();
        let merged = handle.join();
        assert!(merged.drained);
    }

    #[test]
    fn fan_out_reuses_one_connection_per_pop() {
        let (handle, mut client) = start_fleet(2);
        for _ in 0..5 {
            let snap = client.snapshot().unwrap();
            assert_eq!(snap.workers, 2);
        }
        let metrics = client.metrics_json().unwrap();
        // 5 snapshot rounds over 2 PoPs must open exactly 2 links.
        assert!(
            metrics.contains("\"fleet.fanout.connects\":2")
                || metrics.contains("\"fleet.fanout.connects\": 2"),
            "expected 2 fan-out connects, metrics: {metrics}"
        );
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn kill_rehomes_and_refuses_the_last_pop() {
        let (handle, mut client) = start_fleet(2);
        // Observe some keys so the kill has something to re-home.
        for g in 0u32..64 {
            let key = ClientKey {
                prefix_base: 0x0A00_0000 + (g << 8),
                prefix_len: 24,
                country: (g % 37) as u16,
                continent: (g % 6) as u8,
            };
            client.home(&key).unwrap();
        }
        let report = client.kill(0).unwrap();
        assert_eq!(report.killed, 0);
        assert_eq!(report.alive, 1);
        assert!(report.rehomed > 0, "PoP 0 should have owned some keys");
        // All re-homed keys now land on the survivor.
        let key = ClientKey { prefix_base: 0x0A00_0000, prefix_len: 24, country: 0, continent: 0 };
        assert_eq!(client.home(&key).unwrap().0, 1);
        // Double kill is a typed error; killing the survivor is refused.
        assert!(client.kill(0).unwrap_err().to_string().contains("dead"));
        assert!(client.kill(1).unwrap_err().to_string().contains("last alive"));
        assert!(client.kill(9).unwrap_err().to_string().contains("unknown PoP"));
        client.shutdown().unwrap();
        handle.join();
    }
}
