//! `edgeperf-fleet`: the multi-PoP fleet tier — a simulated global edge
//! behind one coordinator.
//!
//! The paper measures performance *from Facebook's edge*: many PoPs,
//! each serving the clients whose anycast catchment lands there. The
//! live tier (`edgeperf-live`) is one such PoP; this crate runs N of
//! them behind a coordinator that owns the catchment, fans fleet
//! queries out over the typed protocol, and merges per-PoP views into a
//! global one that is f64-bit-identical to a single-node run over the
//! same records.
//!
//! Module map:
//!
//! - [`catchment`]: [`CatchmentModel`] — the deterministic seeded
//!   anycast model (client prefix → PoP by continent ring distance,
//!   capacity weight, and seeded tie-break jitter).
//! - [`merge`]: [`merge_cells`] / [`merge_snapshots`] — the
//!   disjoint-union fleet merge with cross-PoP duplicate-cell
//!   detection (a duplicate means a catchment violation, not data).
//! - [`chaos`]: [`FleetChaosPlan`] — seeded PoP kills at deterministic
//!   record counts, the fleet-level sibling of the live tier's
//!   `ChaosPlan`.
//! - [`coordinator`]: [`Fleet`] / [`FleetHandle`] — hosts the PoPs,
//!   speaks the `fleet *` line protocol, re-homes catchments on a
//!   kill; [`FleetClient`] is the blocking client side.
//!
//! The cross-cutting invariant (DESIGN.md §16): a prefix is homed on
//! exactly one PoP at a time, so every (group, rank, window) cell lives
//! on exactly one node and the fleet merge is a concatenation + sort —
//! no t-digest re-merge, no approximation, bit-identical to the
//! single-node control even across a mid-run PoP failover.

pub mod catchment;
pub mod chaos;
pub mod coordinator;
pub mod merge;

use std::fmt;
use std::io;

use edgeperf_live::ProtocolError;

pub use catchment::{CatchmentModel, ClientKey, PopSite, CONTINENTS};
pub use chaos::{FleetChaosPlan, FleetChaosPlanError, FleetKill};
pub use coordinator::{Fleet, FleetClient, FleetConfig, FleetHandle, FleetPopInfo, KillReport};
pub use merge::{merge_cells, merge_snapshots};

/// Typed coordinator/fleet errors (no stringly `Result<_, String>`).
#[derive(Debug)]
pub enum FleetError {
    /// Every PoP is dead; no catchment exists.
    NoPopsAlive,
    /// A request named a PoP outside the fleet.
    UnknownPop {
        /// The offending PoP id.
        pop: u16,
    },
    /// A request named a PoP that was already killed.
    PopDead {
        /// The dead PoP.
        pop: u16,
    },
    /// Refused to kill the last alive PoP.
    LastPop {
        /// The PoP that would have emptied the fleet.
        pop: u16,
    },
    /// Two PoPs served the same cell — the catchment homed one group on
    /// two nodes, so the merge would double-count.
    DuplicateCell {
        /// Window index of the colliding cell.
        window: u32,
        /// PoP field recorded in the cell itself.
        pop: u16,
        /// Colliding prefix base.
        prefix_base: u32,
        /// Colliding prefix length.
        prefix_len: u8,
        /// Colliding route rank.
        rank: u8,
        /// Node that served the cell first.
        first_node: u16,
        /// Node that served it again.
        second_node: u16,
    },
    /// An I/O failure talking to one specific PoP.
    Pop {
        /// The PoP the fan-out failed against.
        pop: u16,
        /// The underlying transport error.
        source: io::Error,
    },
    /// A protocol-layer failure (malformed reply, version mismatch).
    Protocol(ProtocolError),
    /// An I/O failure not attributable to a single PoP.
    Io(io::Error),
    /// An invalid fleet configuration.
    Config(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoPopsAlive => write!(f, "no PoPs alive"),
            FleetError::UnknownPop { pop } => write!(f, "unknown PoP {pop}"),
            FleetError::PopDead { pop } => write!(f, "PoP {pop} is dead"),
            FleetError::LastPop { pop } => {
                write!(f, "refusing to kill PoP {pop}: it is the last alive PoP")
            }
            FleetError::DuplicateCell {
                window,
                pop,
                prefix_base,
                prefix_len,
                rank,
                first_node,
                second_node,
            } => write!(
                f,
                "catchment violation: cell (window {window}, pop {pop}, \
                 {prefix_base}/{prefix_len}, rank {rank}) served by both \
                 node {first_node} and node {second_node}"
            ),
            FleetError::Pop { pop, source } => write!(f, "PoP {pop}: {source}"),
            FleetError::Protocol(err) => write!(f, "protocol: {err}"),
            FleetError::Io(err) => write!(f, "io: {err}"),
            FleetError::Config(msg) => write!(f, "config: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Pop { source, .. } => Some(source),
            FleetError::Protocol(err) => Some(err),
            FleetError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for FleetError {
    fn from(err: io::Error) -> Self {
        FleetError::Io(err)
    }
}

impl From<ProtocolError> for FleetError {
    fn from(err: ProtocolError) -> Self {
        FleetError::Protocol(err)
    }
}

impl FleetError {
    /// Render as a single-line error reply on the coordinator wire,
    /// shaped like the live protocol's error replies.
    pub fn render(&self) -> String {
        format!("{{\"error\":\"fleet: {}\"}}", self.to_string().replace('"', "'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_as_wire_replies() {
        let err = FleetError::LastPop { pop: 3 };
        assert_eq!(
            err.render(),
            "{\"error\":\"fleet: refusing to kill PoP 3: it is the last alive PoP\"}"
        );
        let io_err = FleetError::from(io::Error::other("boom"));
        assert!(io_err.render().starts_with("{\"error\":\"fleet: io:"));
    }
}
