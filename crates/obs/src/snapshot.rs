//! Point-in-time, JSON-serializable views of a [`crate::Registry`].

use crate::registry::{Registry, HISTOGRAM_BUCKETS};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Summary of one histogram: exact count/sum/min/max plus quantiles
/// interpolated within the log₂ buckets, and the non-empty buckets
/// themselves as `(upper_bound, count)` pairs.
#[derive(Debug, Clone, Default, Serialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Exact smallest sample (0 when empty).
    pub min: f64,
    /// Exact largest sample (0 when empty).
    pub max: f64,
    /// Median, interpolated within its bucket.
    pub p50: f64,
    /// 90th percentile, interpolated within its bucket.
    pub p90: f64,
    /// 99th percentile, interpolated within its bucket.
    pub p99: f64,
    /// Non-empty `(bucket upper bound, count)` pairs, ascending.
    pub buckets: Vec<(f64, u64)>,
}

/// One phase span aggregate with its hierarchy rollup.
#[derive(Debug, Clone, Serialize)]
pub struct SpanSnapshot {
    /// Dotted span name (`"a.b"` is a child of `"a"`).
    pub name: String,
    /// Times the phase ran.
    pub count: u64,
    /// Total wall seconds across runs.
    pub total_sec: f64,
    /// Seconds attributed to direct children (`name.<one more segment>`).
    pub child_sec: f64,
    /// `total_sec` minus `child_sec` (floored at 0).
    pub self_sec: f64,
}

/// Everything a registry held at snapshot time, ready for
/// `serde_json::to_string_pretty`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Phase spans, sorted by name.
    pub spans: Vec<SpanSnapshot>,
}

fn bucket_bounds(i: usize) -> (f64, f64) {
    let lo = if i == 0 { 0.0 } else { (i as f64).exp2() };
    (lo, ((i + 1) as f64).exp2())
}

fn bucket_quantile(counts: &[u64; HISTOGRAM_BUCKETS], total: u64, q: f64) -> f64 {
    let target = q * total as f64;
    let mut cum = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if cum + c as f64 >= target {
            let (lo, hi) = bucket_bounds(i);
            let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
            return lo + frac * (hi - lo);
        }
        cum += c as f64;
    }
    0.0
}

pub(crate) fn snapshot_registry(r: &Registry) -> MetricsSnapshot {
    let counters = r
        .counters
        .lock()
        .expect("counter map poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges = r
        .gauges
        .lock()
        .expect("gauge map poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
        .collect();
    let histograms = r
        .histograms
        .lock()
        .expect("histogram map poisoned")
        .iter()
        .map(|(k, h)| {
            let counts: [u64; HISTOGRAM_BUCKETS] =
                std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed));
            let count = h.count.load(Ordering::Relaxed);
            let (min, max) = if count == 0 {
                (0.0, 0.0)
            } else {
                (h.min.load(Ordering::Relaxed) as f64, h.max.load(Ordering::Relaxed) as f64)
            };
            let quantile = |q: f64| {
                if count == 0 {
                    0.0
                } else {
                    bucket_quantile(&counts, count, q).clamp(min, max)
                }
            };
            let snap = HistogramSnapshot {
                count,
                sum: h.sum.load(Ordering::Relaxed) as f64,
                min,
                max,
                p50: quantile(0.5),
                p90: quantile(0.9),
                p99: quantile(0.99),
                buckets: counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| (bucket_bounds(i).1, c))
                    .collect(),
            };
            (k.clone(), snap)
        })
        .collect();
    let raw = r.spans.lock().expect("span map poisoned").clone();
    let spans = raw
        .iter()
        .map(|(name, agg)| {
            let prefix = format!("{name}.");
            let child_ns: u64 = raw
                .iter()
                .filter(|(other, _)| {
                    other.strip_prefix(&prefix).is_some_and(|rest| !rest.contains('.'))
                })
                .map(|(_, a)| a.total_ns)
                .sum();
            SpanSnapshot {
                name: name.clone(),
                count: agg.count,
                total_sec: agg.total_ns as f64 / 1e9,
                child_sec: child_ns as f64 / 1e9,
                self_sec: (agg.total_ns.saturating_sub(child_ns)) as f64 / 1e9,
            }
        })
        .collect();
    MetricsSnapshot { counters, gauges, histograms, spans }
}

fn human_count(v: f64) -> String {
    if v.abs() >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v.abs() >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v.abs() >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Render a snapshot as the stderr summary table behind `repro --metrics`.
pub fn render_table(s: &MetricsSnapshot) -> String {
    let mut out = String::from("== metrics ==\n");
    if !s.counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in &s.counters {
            out.push_str(&format!("  {k:<44} {:>12}\n", human_count(*v as f64)));
        }
    }
    if !s.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in &s.gauges {
            out.push_str(&format!("  {k:<44} {:>12}\n", human_count(*v)));
        }
    }
    if !s.histograms.is_empty() {
        out.push_str("histograms (log2 buckets):\n");
        for (k, h) in &s.histograms {
            // Histograms named `*_ns` hold durations; the rest are raw
            // values (queue depths, sizes).
            let fmt = if k.ends_with("_ns") { human_ns } else { human_count };
            out.push_str(&format!(
                "  {k:<44} n={:<8} p50={:<9} p99={:<9} max={}\n",
                h.count,
                fmt(h.p50),
                fmt(h.p99),
                fmt(h.max)
            ));
        }
    }
    if !s.spans.is_empty() {
        out.push_str("spans:\n");
        for sp in &s.spans {
            out.push_str(&format!(
                "  {:<44} x{:<5} total={:<9} self={}\n",
                sp.name,
                sp.count,
                human_ns(sp.total_sec * 1e9),
                human_ns(sp.self_sec * 1e9)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn snapshot_serializes_to_json_with_all_sections() {
        let m = Metrics::enabled();
        m.counter("c.events").add(3);
        m.gauge("g.level").set(0.25);
        let h = m.histogram("h_ns");
        for v in 1..100u64 {
            h.record(v * 1_000);
        }
        drop(m.span("phase.one"));
        let snap = m.snapshot();
        let js = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
        for key in ["counters", "gauges", "histograms", "spans", "c.events", "phase.one"] {
            assert!(js.contains(key), "missing {key} in {js}");
        }
        // Quantiles sit inside the recorded range.
        let hs = &snap.histograms["h_ns"];
        assert!(hs.p50 >= hs.min && hs.p50 <= hs.max);
        assert!(hs.p99 >= hs.p50 && hs.p99 <= hs.max);
        assert!(!hs.buckets.is_empty());
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let m = Metrics::enabled();
        let h = m.histogram("u_ns");
        // 1000 samples uniform in [0, 1024): p50 should land near 512,
        // not at a bucket edge like 256 or 1024.
        for i in 0..1024u64 {
            h.record(i);
        }
        let hs = &m.snapshot().histograms["u_ns"];
        assert!((hs.p50 - 512.0).abs() < 160.0, "p50 = {}", hs.p50);
        assert!(hs.p99 > 900.0 && hs.p99 <= 1023.0, "p99 = {}", hs.p99);
    }

    #[test]
    fn render_table_mentions_every_metric() {
        let m = Metrics::enabled();
        m.counter("runner.records").add(12);
        m.gauge("sink.cells").set(99.0);
        m.histogram("merge_ns").record(1_500_000);
        drop(m.span("study"));
        let table = render_table(&m.snapshot());
        for key in ["runner.records", "sink.cells", "merge_ns", "study"] {
            assert!(table.contains(key), "missing {key} in:\n{table}");
        }
    }

    /// Spill health rides the generic counter/gauge sections: operators
    /// watching the table see degraded mode without scraping JSON.
    #[test]
    fn render_table_surfaces_spill_health() {
        let m = Metrics::enabled();
        m.counter("store.spill_errors").add(5);
        m.gauge("store.degraded").set(1.0);
        let table = render_table(&m.snapshot());
        assert!(table.contains("store.spill_errors"), "in:\n{table}");
        assert!(table.contains("store.degraded"), "in:\n{table}");
    }
}
