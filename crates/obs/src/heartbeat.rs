//! Shared-memory heartbeats for worker liveness.
//!
//! The study supervisor needs to answer two questions about every worker
//! without ever blocking it: *what is it working on, and for how long?*
//! and it needs one lever: *abandon that unit of work*. A
//! [`HeartbeatBoard`] holds one lock-free slot per worker:
//!
//! - the worker stamps the slot on [`begin`]/[`finish`] (two relaxed
//!   stores each — nanoseconds, safe inside a hot loop);
//! - the supervisor polls [`active`] to find tasks past their deadline;
//! - cancellation is a token compare: [`request_cancel`] arms the slot
//!   for one specific task *generation*, so a cancel aimed at a slow
//!   prefix can never leak into the next prefix the worker picks up —
//!   even if the two race.
//!
//! Timestamps are microseconds since the board's creation, kept in a
//! `u64` so the whole slot is plain atomics (no locks anywhere on the
//! worker side).
//!
//! [`begin`]: HeartbeatBoard::begin
//! [`finish`]: HeartbeatBoard::finish
//! [`active`]: HeartbeatBoard::active
//! [`request_cancel`]: HeartbeatBoard::request_cancel

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Packed task word: generation in the high 32 bits, `prefix + 1` in the
/// low 32 (0 = idle). Generations are per-worker and only need to
/// disambiguate *adjacent* tasks, so 32 bits never wrap in practice.
const IDLE: u64 = 0;

fn pack(generation: u32, prefix: usize) -> u64 {
    ((generation as u64) << 32) | ((prefix as u64 + 1) & 0xFFFF_FFFF)
}

struct Slot {
    /// Current packed task, or [`IDLE`].
    task: AtomicU64,
    /// Microseconds since board epoch when the current task began.
    started_us: AtomicU64,
    /// Packed task the supervisor wants abandoned (armed until the
    /// worker begins a new task).
    cancel: AtomicU64,
    /// Monotonic per-worker generation counter.
    generation: AtomicU64,
}

/// A task observed in flight by [`HeartbeatBoard::active`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveTask {
    /// Worker slot index.
    pub worker: usize,
    /// The prefix index the worker reported via [`HeartbeatBoard::begin`].
    pub prefix: usize,
    /// Opaque cancellation token for this (worker, task) instance.
    pub token: u64,
    /// Microseconds the task has been running at scan time.
    pub elapsed_us: u64,
}

/// One liveness slot per worker; see the module docs.
pub struct HeartbeatBoard {
    epoch: Instant,
    slots: Vec<Slot>,
}

impl HeartbeatBoard {
    /// A board with `workers` slots, all idle.
    pub fn new(workers: usize) -> Self {
        HeartbeatBoard {
            epoch: Instant::now(),
            slots: (0..workers)
                .map(|_| Slot {
                    task: AtomicU64::new(IDLE),
                    started_us: AtomicU64::new(0),
                    cancel: AtomicU64::new(IDLE),
                    generation: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Worker `w` starts working on `prefix`. Returns the cancellation
    /// token identifying this task instance; pass it to [`cancelled`]
    /// from the work loop.
    ///
    /// Beginning a task disarms any stale cancel aimed at a *previous*
    /// task on this slot.
    ///
    /// [`cancelled`]: HeartbeatBoard::cancelled
    pub fn begin(&self, w: usize, prefix: usize) -> u64 {
        let slot = &self.slots[w];
        let generation = slot.generation.fetch_add(1, Ordering::Relaxed) as u32;
        let token = pack(generation, prefix);
        slot.started_us.store(self.now_us(), Ordering::Relaxed);
        slot.task.store(token, Ordering::Release);
        token
    }

    /// Worker `w` finished (or abandoned) its current task.
    pub fn finish(&self, w: usize) {
        self.slots[w].task.store(IDLE, Ordering::Release);
    }

    /// Has the supervisor asked worker `w` to abandon the task identified
    /// by `token`? Cheap enough to poll from an inner loop.
    pub fn cancelled(&self, w: usize, token: u64) -> bool {
        self.slots[w].cancel.load(Ordering::Acquire) == token
    }

    /// Ask worker `w` to abandon the task identified by `token`.
    ///
    /// A no-op if the worker has already moved on: the token encodes the
    /// task generation, and [`cancelled`] compares exactly.
    ///
    /// [`cancelled`]: HeartbeatBoard::cancelled
    pub fn request_cancel(&self, w: usize, token: u64) {
        self.slots[w].cancel.store(token, Ordering::Release);
    }

    /// Snapshot every in-flight task with its elapsed wall-clock time.
    pub fn active(&self) -> Vec<ActiveTask> {
        let now = self.now_us();
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(worker, slot)| {
                let task = slot.task.load(Ordering::Acquire);
                if task == IDLE {
                    return None;
                }
                let started = slot.started_us.load(Ordering::Relaxed);
                Some(ActiveTask {
                    worker,
                    prefix: ((task & 0xFFFF_FFFF) - 1) as usize,
                    token: task,
                    elapsed_us: now.saturating_sub(started),
                })
            })
            .collect()
    }

    /// Tasks running longer than `deadline` at scan time.
    pub fn overdue(&self, deadline: Duration) -> Vec<ActiveTask> {
        let limit = deadline.as_micros() as u64;
        self.active().into_iter().filter(|t| t.elapsed_us > limit).collect()
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_finish_tracks_active_tasks() {
        let board = HeartbeatBoard::new(2);
        assert!(board.active().is_empty());
        let t0 = board.begin(0, 17);
        let active = board.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].worker, 0);
        assert_eq!(active[0].prefix, 17);
        assert_eq!(active[0].token, t0);
        board.begin(1, 3);
        assert_eq!(board.active().len(), 2);
        board.finish(0);
        let active = board.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].prefix, 3);
    }

    #[test]
    fn cancel_targets_one_generation_only() {
        let board = HeartbeatBoard::new(1);
        let t0 = board.begin(0, 5);
        assert!(!board.cancelled(0, t0));
        board.request_cancel(0, t0);
        assert!(board.cancelled(0, t0));
        board.finish(0);
        // The next task on the same worker — even the same prefix — must
        // not observe the stale cancel.
        let t1 = board.begin(0, 5);
        assert_ne!(t0, t1);
        assert!(!board.cancelled(0, t1));
    }

    #[test]
    fn overdue_respects_deadline() {
        let board = HeartbeatBoard::new(1);
        board.begin(0, 0);
        assert!(board.overdue(Duration::from_secs(3600)).is_empty());
        std::thread::sleep(Duration::from_millis(5));
        let overdue = board.overdue(Duration::from_micros(1));
        assert_eq!(overdue.len(), 1);
        assert!(overdue[0].elapsed_us >= 5_000);
    }

    #[test]
    fn tokens_distinguish_workers_and_prefixes() {
        let board = HeartbeatBoard::new(2);
        let a = board.begin(0, 1);
        let b = board.begin(1, 1);
        // Same generation+prefix on different workers packs identically;
        // the (worker, token) pair is what identifies a task.
        assert_eq!(a, b);
        board.request_cancel(0, a);
        assert!(board.cancelled(0, a));
        assert!(!board.cancelled(1, b));
    }
}
