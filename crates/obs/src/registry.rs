//! The metrics registry and its recording handles.
//!
//! Design: a [`Registry`] owns name → `Arc<atomic storage>` maps behind
//! mutexes. Handles ([`Counter`], [`Gauge`], [`Histogram`]) clone the
//! `Arc` out once, so the hot path — recording — is mutex-free relaxed
//! atomics. Workers that share a registry therefore never serialize on a
//! lock to record; they only contend on the cache line of metrics they
//! actually share. Spans are coarse (per phase, not per record), so span
//! closes take a short mutex on the per-name aggregate map.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log₂ buckets a histogram holds: `u64` values bucket by
/// `floor(log2(value))`, so 64 buckets cover the full range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index of `value`: bucket 0 covers `[0, 2)`, bucket *i* ≥ 1
/// covers `[2^i, 2^(i+1))`.
pub fn bucket_index(value: u64) -> usize {
    (63 - (value | 1).leading_zeros()) as usize
}

/// Atomic storage behind one histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// Per-name span aggregate: how many times the phase ran and for how long.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanAgg {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
}

/// The backing store of one observability domain (typically one per
/// process run). Usually reached through a [`Metrics`] handle.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    pub(crate) spans: Mutex<BTreeMap<String, SpanAgg>>,
}

impl Registry {
    fn record_span(&self, name: &str, elapsed_ns: u64) {
        let mut spans = self.spans.lock().expect("span map poisoned");
        let agg = spans.entry(name.to_string()).or_default();
        agg.count += 1;
        agg.total_ns += elapsed_ns;
    }
}

/// A monotonic event counter. Cloning shares the underlying atomic; a
/// counter from a disabled [`Metrics`] is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n` events.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }
}

/// A last-write-wins `f64` value (stored as bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        if let Some(g) = &self.0 {
            g.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a disabled handle).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map(|g| f64::from_bits(g.load(Ordering::Relaxed))).unwrap_or(0.0)
    }
}

/// A log₂-bucketed distribution of `u64` samples (by convention
/// nanoseconds; name such metrics with a `_ns` suffix).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Time `f`, recording its wall time in nanoseconds. For a disabled
    /// handle this is exactly `f()` — no clock reads.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.0 {
            Some(h) => {
                let t0 = Instant::now();
                let r = f();
                h.record(t0.elapsed().as_nanos() as u64);
                r
            }
            None => f(),
        }
    }
}

/// Guard for one open phase span; records wall time into the registry on
/// drop. Create with [`Metrics::span`] or the [`crate::span!`] macro.
#[derive(Debug)]
pub struct SpanGuard(Option<(Arc<Registry>, String, Instant)>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((registry, name, start)) = self.0.take() {
            registry.record_span(&name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// The cloneable observability handle the pipeline passes around.
///
/// Either *enabled* — backed by a shared [`Registry`] — or *disabled*, in
/// which case every recording operation is a no-op branch and no clock is
/// ever read. Cloning is an `Arc` clone (or a copy of `None`).
#[derive(Debug, Clone, Default)]
pub struct Metrics(Option<Arc<Registry>>);

impl Metrics {
    /// A handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Metrics(Some(Arc::new(Registry::default())))
    }

    /// The no-op handle: all recording disappears.
    pub fn disabled() -> Self {
        Metrics(None)
    }

    /// True when recording actually lands anywhere. Instrumented code can
    /// use this to skip clock reads for timing-only metrics.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Resolve (registering on first use) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.0.as_ref().map(|r| {
            let mut map = r.counters.lock().expect("counter map poisoned");
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// Resolve (registering on first use) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.0.as_ref().map(|r| {
            let mut map = r.gauges.lock().expect("gauge map poisoned");
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// Resolve (registering on first use) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.0.as_ref().map(|r| {
            let mut map = r.histograms.lock().expect("histogram map poisoned");
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// Open a phase span; wall time records when the guard drops. Dotted
    /// names form the hierarchy (`"a.b"` is a child of `"a"`).
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard(self.0.as_ref().map(|r| (Arc::clone(r), name.to_string(), Instant::now())))
    }

    /// Point-in-time snapshot of everything recorded so far. Empty for a
    /// disabled handle.
    pub fn snapshot(&self) -> crate::MetricsSnapshot {
        match &self.0 {
            Some(r) => crate::snapshot::snapshot_registry(r),
            None => crate::MetricsSnapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is [0, 2); bucket i >= 1 is [2^i, 2^(i+1)).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        for k in 2..63 {
            assert_eq!(bucket_index((1u64 << k) - 1), k - 1, "below the 2^{k} boundary");
            assert_eq!(bucket_index(1u64 << k), k, "at the 2^{k} boundary");
            assert_eq!(bucket_index((1u64 << k) + 1), k, "above the 2^{k} boundary");
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_exact_min_max_and_count() {
        let m = Metrics::enabled();
        let h = m.histogram("t_ns");
        for v in [7u64, 1, 1_000_000, 42] {
            h.record(v);
        }
        let snap = m.snapshot();
        let hs = &snap.histograms["t_ns"];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.min, 1.0);
        assert_eq!(hs.max, 1_000_000.0);
        assert_eq!(hs.sum, 1_000_050.0);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        let c = m.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        m.gauge("g").set(1.0);
        m.histogram("h").record(9);
        drop(m.span("s"));
        let snap = m.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn same_name_resolves_to_shared_storage() {
        let m = Metrics::enabled();
        let a = m.counter("n");
        let b = m.counter("n");
        a.add(2);
        b.add(3);
        assert_eq!(m.snapshot().counters["n"], 5);
        m.gauge("w").set(1.5);
        m.gauge("w").set(2.5);
        assert!((m.snapshot().gauges["w"] - 2.5).abs() < f64::EPSILON);
    }

    #[test]
    fn concurrent_recording_from_many_threads_loses_nothing() {
        // Worker threads resolve their own handles by name and hammer the
        // same counter and histogram; the registry must account for every
        // increment, exactly as the study workers rely on.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let m = Metrics::enabled();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let m = m.clone();
                scope.spawn(move || {
                    let c = m.counter("shared.count");
                    let h = m.histogram("shared.ns");
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record(t as u64 * PER_THREAD + i + 1);
                    }
                });
            }
        });
        let snap = m.snapshot();
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(snap.counters["shared.count"], total);
        let hs = &snap.histograms["shared.ns"];
        assert_eq!(hs.count, total);
        assert_eq!(hs.min, 1.0);
        assert_eq!(hs.max, total as f64);
        // Sum of 1..=total, accumulated atomically across threads.
        assert_eq!(hs.sum, (total * (total + 1) / 2) as f64);
    }

    #[test]
    fn spans_record_on_drop_and_nest_by_name() {
        let m = Metrics::enabled();
        {
            let _outer = m.span("phase");
            let _inner = m.span("phase.step");
        }
        {
            let _again = m.span("phase");
        }
        let snap = m.snapshot();
        let phase = snap.spans.iter().find(|s| s.name == "phase").unwrap();
        let step = snap.spans.iter().find(|s| s.name == "phase.step").unwrap();
        assert_eq!(phase.count, 2);
        assert_eq!(step.count, 1);
        // The child's time rolls up into the parent; self time is what's left.
        assert!(phase.child_sec >= step.total_sec * 0.99);
        assert!(phase.self_sec <= phase.total_sec);
    }
}
