//! # edgeperf-obs — always-on pipeline observability
//!
//! The paper's measurement system is an always-on production pipeline
//! (§3.3–3.4: 15-minute windows, validity rules over millions of cells);
//! diagnosing such a system needs first-class, cheap instrumentation of
//! the pipeline *itself*, not just of the traffic it measures. This crate
//! provides that layer for the whole workspace:
//!
//! - [`Metrics`] — a cloneable handle over a lock-light [`Registry`].
//!   A disabled handle ([`Metrics::disabled`]) turns every operation into
//!   a branch on `None`, so instrumented code pays ~nothing when
//!   observability is off.
//! - [`Counter`] / [`Gauge`] — monotonic event counts and last-write-wins
//!   values, both a single relaxed atomic op to record.
//! - [`Histogram`] — log₂-bucketed `u64` samples (by convention
//!   nanoseconds, names ending `_ns`) with exact atomic min/max, for
//!   batch latencies like `RecordSink::merge_shard`.
//! - Spans — hierarchical wall-time phases with dotted names
//!   (`"bench.study"` is the parent of `"bench.study.merge"`); the
//!   snapshot rolls child time up into each parent. Create one with
//!   [`Metrics::span`] or the [`span!`] macro; time is recorded when the
//!   guard drops.
//! - [`MetricsSnapshot`] — a point-in-time, JSON-serializable view of
//!   everything above, plus [`render_table`] for a human-readable
//!   summary (`repro --metrics`).
//! - [`HeartbeatBoard`] — per-worker lock-free liveness slots (what is
//!   each worker running, since when, and should it abandon it), the
//!   substrate of the study supervisor's watchdog.
//!
//! Registration (first use of a name) takes a mutex on the cold path;
//! recording through an already-obtained handle is atomics only, so
//! worker threads record without contention. Handles are meant to be
//! resolved once per scope (per worker, per batch), not per event.
//!
//! ```
//! use edgeperf_obs::Metrics;
//!
//! let metrics = Metrics::enabled();
//! let sessions = metrics.counter("runner.sessions_simulated");
//! sessions.add(1_000);
//! {
//!     let _phase = metrics.span("study.simulate");
//!     // ... work ...
//! }
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counters["runner.sessions_simulated"], 1_000);
//! assert_eq!(snap.spans[0].name, "study.simulate");
//! ```

pub mod heartbeat;
pub mod registry;
pub mod snapshot;

pub use heartbeat::{ActiveTask, HeartbeatBoard};
pub use registry::{Counter, Gauge, Histogram, Metrics, Registry, SpanGuard};
pub use snapshot::{render_table, HistogramSnapshot, MetricsSnapshot, SpanSnapshot};

/// Open a phase span on a [`Metrics`] handle: `span!(metrics, "study.simulate")`.
///
/// Expands to [`Metrics::span`]; the span closes (and records its wall
/// time) when the returned guard drops. Bind it — `let _g = span!(...)` —
/// or the span closes immediately.
#[macro_export]
macro_rules! span {
    ($metrics:expr, $name:expr) => {
        $metrics.span($name)
    };
}
