//! Cost of the statistical primitives used per aggregation comparison —
//! the paper's footnote 11 motivates t-digests precisely because these
//! comparisons must run in near real time in production.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use edgeperf_stats::median_ci::diff_of_medians_ci_sorted;
use edgeperf_stats::TDigest;

fn samples(n: usize, offset: f64) -> Vec<f64> {
    (0..n).map(|i| offset + (i as f64 * 0.618_033_988_749).fract() * 20.0).collect()
}

fn bench_tdigest(c: &mut Criterion) {
    c.bench_function("tdigest insert 10k", |b| {
        b.iter(|| {
            let mut d = TDigest::new(100.0);
            for i in 0..10_000 {
                d.insert(black_box((i as f64 * 0.618_033_988_749).fract()));
            }
            d
        })
    });
    c.bench_function("tdigest quantile (compressed)", |b| {
        let mut d = TDigest::new(100.0);
        for i in 0..100_000 {
            d.insert((i as f64 * 0.618_033_988_749).fract());
        }
        d.quantile(0.5); // force compression once
        b.iter(|| black_box(&mut d).quantile(black_box(0.5)))
    });
    c.bench_function("tdigest merge two 10k digests", |b| {
        let mut a = TDigest::new(100.0);
        let mut d2 = TDigest::new(100.0);
        for i in 0..10_000 {
            a.insert((i as f64 * 0.618_033_988_749).fract());
            d2.insert((i as f64 * 0.414_213_562_373).fract());
        }
        b.iter(|| {
            let mut m = a.clone();
            m.merge(black_box(&d2));
            m
        })
    });
}

fn bench_median_ci(c: &mut Criterion) {
    let mut a = samples(200, 40.0);
    let mut b2 = samples(200, 42.0);
    a.sort_unstable_by(f64::total_cmp);
    b2.sort_unstable_by(f64::total_cmp);
    c.bench_function("diff_of_medians_ci n=200", |bch| {
        bch.iter(|| diff_of_medians_ci_sorted(black_box(&a), black_box(&b2), 0.95))
    });
}

criterion_group!(benches, bench_tdigest, bench_median_ci);
criterion_main!(benches);
