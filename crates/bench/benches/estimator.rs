//! Performance of the estimation hot path: these functions run once per
//! transaction on every sampled session in production, so they must be
//! cheap. Includes the model-vs-naive ablation cost comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use edgeperf_core::gtestable::{gtestable_bps, next_wstart};
use edgeperf_core::hdratio::session_hdratio_with_rule;
use edgeperf_core::instrument::assemble_transactions;
use edgeperf_core::tmodel::{achieved, delivery_rate, t_model};
use edgeperf_core::{
    AchievedRule, HttpVersion, ResponseObs, SessionObs, HD_GOODPUT_BPS, MILLISECOND, SECOND,
};

fn bench_gtestable(c: &mut Criterion) {
    c.bench_function("gtestable_bps 100kB", |b| {
        b.iter(|| gtestable_bps(black_box(100_000), black_box(14_600), black_box(60 * MILLISECOND)))
    });
    c.bench_function("next_wstart", |b| {
        b.iter(|| next_wstart(black_box(14_600), black_box(100_000), black_box(29_200)))
    });
}

fn bench_tmodel(c: &mut Criterion) {
    c.bench_function("t_model 1MB", |b| {
        b.iter(|| {
            t_model(
                black_box(1_000_000),
                black_box(14_600),
                black_box(60 * MILLISECOND),
                black_box(2.5e6),
            )
        })
    });
    c.bench_function("achieved (HD test)", |b| {
        b.iter(|| {
            achieved(
                black_box(100_000),
                black_box(14_600),
                black_box(60 * MILLISECOND),
                black_box(200 * MILLISECOND),
                black_box(HD_GOODPUT_BPS),
            )
        })
    });
    c.bench_function("delivery_rate bisection", |b| {
        b.iter(|| {
            delivery_rate(
                black_box(100_000),
                black_box(14_600),
                black_box(60 * MILLISECOND),
                black_box(400 * MILLISECOND),
            )
        })
    });
}

fn session(n_txns: usize) -> SessionObs {
    let responses: Vec<ResponseObs> = (0..n_txns)
        .map(|i| {
            let t0 = i as u64 * SECOND;
            ResponseObs {
                bytes: 50_000,
                issued_at: t0,
                first_tx: Some((t0, 14_600)),
                t_second_last_ack: Some(t0 + 180 * MILLISECOND),
                t_full_ack: Some(t0 + 190 * MILLISECOND),
                last_packet_bytes: Some(400),
                bytes_in_flight_at_write: 0,
                prev_unsent_at_write: false,
            }
        })
        .collect();
    SessionObs {
        responses,
        min_rtt: Some(60 * MILLISECOND),
        http: HttpVersion::H2,
        duration: 60 * SECOND,
    }
}

fn bench_session(c: &mut Criterion) {
    let s10 = session(10);
    let s100 = session(100);
    c.bench_function("assemble_transactions 10", |b| {
        b.iter(|| assemble_transactions(black_box(&s10.responses)))
    });
    c.bench_function("session_hdratio model 10 txns", |b| {
        b.iter(|| session_hdratio_with_rule(black_box(&s10), HD_GOODPUT_BPS, AchievedRule::Model))
    });
    c.bench_function("session_hdratio model 100 txns", |b| {
        b.iter(|| session_hdratio_with_rule(black_box(&s100), HD_GOODPUT_BPS, AchievedRule::Model))
    });
    c.bench_function("session_hdratio naive 100 txns (ablation)", |b| {
        b.iter(|| session_hdratio_with_rule(black_box(&s100), HD_GOODPUT_BPS, AchievedRule::Naive))
    });
}

criterion_group!(benches, bench_gtestable, bench_tmodel, bench_session);
criterion_main!(benches);
