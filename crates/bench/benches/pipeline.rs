//! End-to-end pipeline cost: dataset assembly and the Table-1 analysis
//! over a synthetic record set, plus a whole miniature study run under
//! both schedulers (work-stealing vs static chunking) and both sinks
//! (exact Vec vs bounded-memory streaming).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use edgeperf_analysis::tables::{table1, AnalysisKind};
use edgeperf_analysis::{
    AnalysisConfig, ColumnarSink, Dataset, DegradationMetric, GroupKey, SessionRecord,
    StreamingDataset,
};
use edgeperf_bench::pipeline_bench::{columnar_ingest, seed_style_from_records, streaming_ingest};
use edgeperf_routing::{PopId, Prefix, Relationship};
use edgeperf_world::{
    run_study, run_study_into, run_study_static, StudyConfig, World, WorldConfig,
};

fn synthetic_records(groups: usize, windows: u32, per_cell: usize) -> Vec<SessionRecord> {
    let mut out = Vec::new();
    for g in 0..groups {
        let key = GroupKey {
            pop: PopId((g % 8) as u16),
            prefix: Prefix::new((g as u32) << 16, 16),
            country: g as u16,
            continent: (g % 6) as u8,
        };
        for w in 0..windows {
            for rank in 0..2u8 {
                for i in 0..per_cell {
                    out.push(SessionRecord {
                        group: key,
                        window: w,
                        route_rank: rank,
                        relationship: if rank == 0 {
                            Relationship::PrivatePeer
                        } else {
                            Relationship::Transit
                        },
                        longer_path: rank > 0,
                        more_prepended: false,
                        min_rtt_ms: 40.0 + rank as f64 * 3.0 + (i % 13) as f64 * 0.3,
                        hdratio: Some(((i % 11) as f64 / 10.0).min(1.0)),
                        bytes: 5_000,
                    });
                }
            }
        }
    }
    out
}

fn bench_dataset(c: &mut Criterion) {
    let records = synthetic_records(20, 96, 40);
    c.bench_function("Dataset::from_records 150k", |b| {
        b.iter(|| Dataset::from_records(black_box(&records), 96))
    });
    let ds = Dataset::from_records(&records, 96);
    let cfg = AnalysisConfig::default();
    c.bench_function("table1 degradation MinRTT", |b| {
        b.iter(|| {
            table1(&cfg, black_box(&ds), AnalysisKind::Degradation, DegradationMetric::MinRtt, 5.0)
        })
    });
    c.bench_function("table1 opportunity MinRTT", |b| {
        b.iter(|| {
            table1(&cfg, black_box(&ds), AnalysisKind::Opportunity, DegradationMetric::MinRtt, 5.0)
        })
    });
}

fn bench_study(c: &mut Criterion) {
    let world = World::generate(WorldConfig { country_fraction: 0.15, ..Default::default() });
    let cfg = StudyConfig { days: 1, sessions_per_group_window: 5, ..Default::default() };
    c.bench_function("run_study mini world (1 day, 5/grp/win)", |b| {
        b.iter(|| run_study(black_box(&world), black_box(&cfg)))
    });
}

/// The tentpole before/after: the same 150k-record stream through the
/// seed-style std-HashMap rebuild, today's `Dataset::from_records`
/// (FxHash + last-cell memo + unstable sorts), the columnar SoA shard
/// path, and the bounded-memory digest sink. `repro bench` reports the
/// same comparison on real study output and writes BENCH_pipeline.json.
fn bench_pipeline_throughput(c: &mut Criterion) {
    let records = synthetic_records(20, 96, 40);
    let n_windows = 96;
    c.bench_function("pipeline_throughput: baseline seed-style 150k", |b| {
        b.iter(|| seed_style_from_records(black_box(&records), n_windows))
    });
    c.bench_function("pipeline_throughput: from_records fx+memo 150k", |b| {
        b.iter(|| Dataset::from_records(black_box(&records), n_windows))
    });
    c.bench_function("pipeline_throughput: columnar shards 150k", |b| {
        b.iter(|| columnar_ingest(black_box(&records), n_windows))
    });
    c.bench_function("pipeline_throughput: streaming digests 150k", |b| {
        b.iter(|| streaming_ingest(black_box(&records), n_windows))
    });
}

/// End-to-end study through the shipping tee sink (records + columnar
/// dataset in one pass) vs the old two-pass shape (records, then a
/// serial from_records sweep).
fn bench_study_tee(c: &mut Criterion) {
    let world = World::generate(WorldConfig { country_fraction: 0.15, ..Default::default() });
    let cfg = StudyConfig { days: 1, sessions_per_group_window: 5, ..Default::default() };
    let n_windows = cfg.n_windows() as usize;
    c.bench_function("study: records then from_records (two-pass)", |b| {
        b.iter(|| {
            let mut records: Vec<SessionRecord> = Vec::new();
            run_study_into(black_box(&world), black_box(&cfg), &mut records);
            Dataset::from_records(&records, n_windows)
        })
    });
    c.bench_function("study: tee sink records + columnar (one-pass)", |b| {
        b.iter(|| {
            let mut sink: (Vec<SessionRecord>, ColumnarSink) =
                (Vec::new(), ColumnarSink::new(n_windows));
            run_study_into(black_box(&world), black_box(&cfg), &mut sink);
            (sink.0, sink.1.into_dataset())
        })
    });
}

/// Scheduler comparison on a skewed world: per-prefix work varies with
/// route count, cluster mix, and diurnal activity, which is exactly the
/// shape where static chunking strands workers behind a heavy range.
/// Work stealing must come out no slower.
fn bench_schedulers(c: &mut Criterion) {
    let world = World::generate(WorldConfig { country_fraction: 0.25, ..Default::default() });
    // Multiple workers over few prefixes maximizes the imbalance a static
    // split can suffer.
    let cfg =
        StudyConfig { days: 1, sessions_per_group_window: 4, parallelism: 4, ..Default::default() };
    c.bench_function("scheduler: static chunking (skewed world)", |b| {
        b.iter(|| run_study_static(black_box(&world), black_box(&cfg)))
    });
    c.bench_function("scheduler: work stealing (skewed world)", |b| {
        b.iter(|| run_study(black_box(&world), black_box(&cfg)))
    });
    c.bench_function("scheduler: work stealing + streaming sink", |b| {
        b.iter(|| {
            let mut ds = StreamingDataset::new(cfg.n_windows() as usize);
            run_study_into(black_box(&world), black_box(&cfg), &mut ds);
            ds
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dataset, bench_pipeline_throughput, bench_study, bench_study_tee, bench_schedulers
}
criterion_main!(benches);
