//! Simulator cost: packet-level vs round-based. The two-fidelity design
//! in DESIGN.md is justified by this gap (fastsim must be orders of
//! magnitude cheaper for fleet-scale studies).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use edgeperf_netsim::{FastFlow, FlowSim, PathConfig, PathState};
use edgeperf_tcp::{TcpConfig, MILLISECOND, SECOND};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_packet_level(c: &mut Criterion) {
    c.bench_function("FlowSim 100kB ideal 5Mbps/60ms", |b| {
        b.iter(|| {
            let mut sim = FlowSim::new(
                TcpConfig::ns3_validation(10),
                PathConfig::ideal(5_000_000, 60 * MILLISECOND),
                1,
            );
            sim.schedule_write(0, black_box(100_000));
            sim.run(60 * SECOND)
        })
    });
    c.bench_function("FlowSim 100kB lossy", |b| {
        b.iter(|| {
            let mut cfg = PathConfig::ideal(5_000_000, 60 * MILLISECOND);
            cfg.loss = edgeperf_netsim::LossModel::bernoulli(0.01);
            let mut sim = FlowSim::new(TcpConfig::ns3_validation(10), cfg, 1);
            sim.schedule_write(0, black_box(100_000));
            sim.run(120 * SECOND)
        })
    });
}

fn bench_fastsim(c: &mut Criterion) {
    let state = PathState {
        base_rtt: 60 * MILLISECOND,
        standing_queue: 0,
        jitter_max: 0,
        bottleneck_bps: 5_000_000,
        loss: 0.0,
    };
    c.bench_function("FastFlow 100kB clean", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        b.iter(|| {
            let mut f = FastFlow::new(TcpConfig::default());
            f.transfer(black_box(100_000), &state, &mut rng)
        })
    });
    let lossy = PathState { loss: 0.01, ..state };
    c.bench_function("FastFlow 100kB lossy", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        b.iter(|| {
            let mut f = FastFlow::new(TcpConfig::default());
            f.transfer(black_box(100_000), &lossy, &mut rng)
        })
    });
    c.bench_function("FastFlow whole session (20 txns)", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        b.iter(|| {
            let mut f = FastFlow::new(TcpConfig::default());
            for _ in 0..20 {
                f.transfer(black_box(30_000), &state, &mut rng);
            }
        })
    });
}

criterion_group!(benches, bench_packet_level, bench_fastsim);
criterion_main!(benches);
