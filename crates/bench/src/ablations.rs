//! Methodology ablations (DESIGN.md §6): what each §3.2 correction buys.
//!
//! Sessions with *known* ground truth (the path's payload capacity is
//! either clearly above or clearly below the HD target) are simulated at
//! packet level — with delayed ACKs enabled, bursts of back-to-back
//! responses, and a collapsed-window episode — and then measured by
//! estimator variants with one correction disabled at a time. The table
//! reports each variant's verdict quality:
//!
//! - **false-fail**: HD-capable path judged non-HD (the failure mode the
//!   corrections exist to prevent),
//! - **false-pass**: non-HD path judged HD-capable,
//! - **tested**: sessions producing any verdict at all (the gating
//!   ablation floods this with junk verdicts).

use edgeperf_core::hdratio::session_hdratio_with_options;
use edgeperf_core::{
    AchievedRule, EstimatorOptions, HttpVersion, InstrumentOptions, ResponseObs, SessionObs,
    HD_GOODPUT_BPS, MILLISECOND, SECOND,
};
use edgeperf_netsim::{FlowSim, PathConfig, WriteRecord};
use edgeperf_tcp::TcpConfig;
use serde::Serialize;

/// One ablation variant's scorecard.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Sessions that produced a verdict.
    pub tested: usize,
    /// Transactions that tested for HD across all sessions (evidence
    /// volume — coalescing and carry-forward exist to raise this).
    pub txns_tested: usize,
    /// Of tested transactions on clean HD-capable paths: judged failed
    /// (the per-transaction error the §3.2.5 corrections reduce).
    pub txn_fail_rate: f64,
    /// Of HD-capable paths with a verdict: judged non-HD.
    pub false_fail: f64,
    /// Of non-HD paths with a verdict: judged HD-capable.
    pub false_pass: f64,
}

fn to_obs(w: &WriteRecord) -> ResponseObs {
    ResponseObs {
        bytes: w.bytes,
        issued_at: w.scheduled_at,
        first_tx: w.first_tx,
        t_second_last_ack: w.t_second_last_ack,
        t_full_ack: w.t_full_ack,
        last_packet_bytes: w.last_packet_bytes,
        bytes_in_flight_at_write: w.bytes_in_flight_at_write,
        prev_unsent_at_write: w.prev_unsent_at_write,
    }
}

/// One simulated session over a known path; returns the observation
/// stream plus the HD-capability ground truth.
///
/// The session lives in the estimator's *sensitive* regime: a burst of
/// small back-to-back responses (only coalescing can make it testable)
/// followed by mid-size responses whose transfers spend much of their
/// life in slow start (where the naive rule and a missing delayed-ACK
/// correction bite). Some HD-capable paths carry mild loss, collapsing
/// the real window (where carry-forward matters).
fn simulate(seed: u64, bw_bps: u64, rtt_ms: u64, loss: f64) -> (SessionObs, Option<bool>) {
    // Delayed ACKs ON (the production default the correction exists for).
    let tcp = TcpConfig { cc: edgeperf_tcp::CcAlgorithm::Reno, ..Default::default() };
    let mut path = PathConfig::ideal(bw_bps, rtt_ms * MILLISECOND);
    path.loss = edgeperf_netsim::LossModel::bernoulli(loss);
    path.jitter_max = 6 * MILLISECOND; // realistic per-packet noise
    let mut sim = FlowSim::new(tcp, path, seed);
    // A window-limited response followed by back-to-back continuations:
    // individually too small to test HD at higher RTTs, testable only
    // when coalesced.
    sim.schedule_write(0, 20_000);
    sim.schedule_write(2 * MILLISECOND, 12_000);
    sim.schedule_write(4 * MILLISECOND, 12_000);
    for (i, &bytes) in [25_000u64, 30_000, 35_000, 45_000].iter().enumerate() {
        sim.schedule_write((3 + 2 * i as u64) * SECOND, bytes);
    }
    let res = sim.run(120 * SECOND);
    let obs = SessionObs {
        responses: res.writes.iter().map(to_obs).collect(),
        min_rtt: res.info.min_rtt,
        http: HttpVersion::H2,
        duration: 20 * SECOND,
    };
    // Ground truth: payload capacity vs the HD target. Lossy paths are
    // left unlabeled — loss genuinely degrades achievable goodput, so a
    // "failure" verdict there is information, not error; they exist to
    // exercise the carry-forward machinery under collapsed windows.
    let payload_capacity = bw_bps as f64 * 1460.0 / 1500.0;
    let truth = if loss > 0.0 { None } else { Some(payload_capacity >= HD_GOODPUT_BPS) };
    (obs, truth)
}

/// A session of tiny responses only: no transaction can demonstrate HD,
/// so the gated estimator (correctly) returns no verdict; the ungated
/// ablation judges them all and gets trivially wrong answers.
fn simulate_tiny(seed: u64, bw_bps: u64, rtt_ms: u64) -> (SessionObs, Option<bool>) {
    let tcp = TcpConfig { cc: edgeperf_tcp::CcAlgorithm::Reno, ..Default::default() };
    let mut path = PathConfig::ideal(bw_bps, rtt_ms * MILLISECOND);
    path.jitter_max = 6 * MILLISECOND;
    let mut sim = FlowSim::new(tcp, path, seed);
    for k in 0..5u64 {
        sim.schedule_write(k * 2 * SECOND, 3_000);
    }
    let res = sim.run(120 * SECOND);
    let obs = SessionObs {
        responses: res.writes.iter().map(to_obs).collect(),
        min_rtt: res.info.min_rtt,
        http: HttpVersion::H2,
        duration: 12 * SECOND,
    };
    let payload_capacity = bw_bps as f64 * 1460.0 / 1500.0;
    (obs, Some(payload_capacity >= HD_GOODPUT_BPS))
}

/// Run the ablation table over `n` sessions per path condition.
pub fn run(seed: u64, n_per_condition: usize) -> Vec<AblationRow> {
    // Clearly-HD and clearly-not-HD paths, varied RTT; half of the
    // HD-capable paths carry mild random loss.
    let conditions: Vec<(u64, u64, f64)> =
        [1_200_000u64, 1_900_000, 5_000_000, 8_000_000, 20_000_000]
            .iter()
            .flat_map(|&bw| {
                [20u64, 45, 75, 110].into_iter().flat_map(move |rtt| {
                    let lossy = if bw >= 2_600_000 { vec![0.0, 0.01] } else { vec![0.0] };
                    lossy.into_iter().map(move |l| (bw, rtt, l))
                })
            })
            .collect();

    let mut sessions = Vec::new();
    for (ci, &(bw, rtt, loss)) in conditions.iter().enumerate() {
        for i in 0..n_per_condition {
            sessions.push(simulate(seed ^ ((ci * 1_000 + i) as u64), bw, rtt, loss));
            if loss == 0.0 {
                sessions.push(simulate_tiny(seed ^ ((ci * 1_000 + i + 777) as u64), bw, rtt));
            }
        }
    }

    let variants: Vec<(&str, EstimatorOptions, InstrumentOptions)> = vec![
        ("full methodology", EstimatorOptions::default(), InstrumentOptions::default()),
        (
            "no delayed-ACK correction",
            EstimatorOptions::default(),
            InstrumentOptions { delayed_ack_correction: false, ..Default::default() },
        ),
        (
            "no coalescing",
            EstimatorOptions::default(),
            InstrumentOptions { coalescing: false, ..Default::default() },
        ),
        (
            "no Gtestable gating",
            EstimatorOptions { gate_on_testable: false, ..Default::default() },
            InstrumentOptions::default(),
        ),
        (
            "no Wstart carry-forward",
            EstimatorOptions { carry_forward: false, ..Default::default() },
            InstrumentOptions::default(),
        ),
        (
            "naive goodput rule",
            EstimatorOptions { rule: AchievedRule::Naive, ..Default::default() },
            InstrumentOptions::default(),
        ),
    ];

    variants
        .into_iter()
        .map(|(label, est, ins)| {
            let mut tested = 0usize;
            let mut txns_tested = 0usize;
            let (mut hd_n, mut hd_fail) = (0usize, 0usize);
            let (mut non_n, mut non_pass) = (0usize, 0usize);
            let (mut cap_txns, mut cap_txn_fails) = (0usize, 0usize);
            for (obs, capable) in &sessions {
                let Some(v) = session_hdratio_with_options(obs, HD_GOODPUT_BPS, est, ins) else {
                    continue;
                };
                txns_tested += v.tested as usize;
                if *capable == Some(true) {
                    cap_txns += v.tested as usize;
                    cap_txn_fails += (v.tested - v.achieved) as usize;
                }
                let Some(h) = v.hdratio() else { continue };
                tested += 1;
                let judged_hd = h >= 0.5;
                match capable {
                    Some(true) => {
                        hd_n += 1;
                        hd_fail += usize::from(!judged_hd);
                    }
                    Some(false) => {
                        non_n += 1;
                        non_pass += usize::from(judged_hd);
                    }
                    None => {} // lossy path: truth ambiguous by design
                }
            }
            AblationRow {
                variant: label.to_string(),
                tested,
                txns_tested,
                txn_fail_rate: cap_txn_fails as f64 / cap_txns.max(1) as f64,
                false_fail: hd_fail as f64 / hd_n.max(1) as f64,
                false_pass: non_pass as f64 / non_n.max(1) as f64,
            }
        })
        .collect()
}

/// Render the table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut s = String::from("== Methodology ablations (§3.2 corrections) ==\n");
    s.push_str(&format!(
        "{:<28} {:>8} {:>10} {:>9} {:>11} {:>11}\n",
        "variant", "sessions", "txns", "txn-fail", "false-fail", "false-pass"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>9.3} {:>11.3} {:>11.3}\n",
            r.variant, r.tested, r.txns_tested, r.txn_fail_rate, r.false_fail, r.false_pass
        ));
    }
    s.push_str("\nfalse-fail: HD-capable path judged non-HD; false-pass: the reverse.\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_methodology_is_accurate() {
        let rows = run(1, 6);
        let full = &rows[0];
        assert_eq!(full.variant, "full methodology");
        assert!(full.txn_fail_rate < 0.05, "txn fail = {}", full.txn_fail_rate);
        assert!(full.false_fail < 0.15, "false-fail = {}", full.false_fail);
        assert!(full.false_pass < 0.10, "false-pass = {}", full.false_pass);
    }

    #[test]
    fn delayed_ack_correction_matters() {
        let rows = run(1, 6);
        let full = &rows[0];
        let abl = rows.iter().find(|r| r.variant.contains("delayed-ACK")).unwrap();
        assert!(
            abl.txn_fail_rate > full.txn_fail_rate * 3.0,
            "delayed-ACK ablation {} vs full {}",
            abl.txn_fail_rate,
            full.txn_fail_rate
        );
    }

    #[test]
    fn naive_rule_is_much_worse() {
        let rows = run(1, 6);
        let full = &rows[0];
        let abl = rows.iter().find(|r| r.variant.contains("naive")).unwrap();
        assert!(abl.txn_fail_rate > full.txn_fail_rate + 0.15);
        assert!(abl.false_fail > full.false_fail + 0.15);
    }

    #[test]
    fn coalescing_recovers_evidence() {
        let rows = run(1, 6);
        let full = &rows[0];
        let abl = rows.iter().find(|r| r.variant.contains("coalescing")).unwrap();
        assert!(
            abl.txns_tested < full.txns_tested,
            "coalescing off must lose tested transactions: {} vs {}",
            abl.txns_tested,
            full.txns_tested
        );
    }

    #[test]
    fn gating_prevents_junk_verdicts() {
        let rows = run(1, 6);
        let full = &rows[0];
        let abl = rows.iter().find(|r| r.variant.contains("gating")).unwrap();
        // Without the gate, tiny-only sessions suddenly get verdicts…
        assert!(abl.tested > full.tested + 50, "{} vs {}", abl.tested, full.tested);
        // …and they are the only source of false-passes in the table.
        assert!(abl.false_pass >= full.false_pass);
    }

    #[test]
    fn carry_forward_keeps_lossy_evidence() {
        let rows = run(1, 6);
        let full = &rows[0];
        let abl = rows.iter().find(|r| r.variant.contains("carry-forward")).unwrap();
        // Raw collapsed windows under-estimate Gtestable → evidence lost.
        assert!(
            abl.tested < full.tested || abl.txns_tested < full.txns_tested,
            "carry-forward off must lose evidence: sessions {} vs {}, txns {} vs {}",
            abl.tested,
            full.tested,
            abl.txns_tested,
            full.txns_tested
        );
    }
}
