//! Per-stage throughput profile of the live ingest hot path.
//!
//! The server pipeline has three serial stages per record — decode the
//! wire frame, route it to a worker lane (shard + batch + SPSC
//! enqueue), and apply it to the window ring — and a whole-pipeline
//! number cannot say which one is the wall. This module times each
//! stage in isolation over the *same* generated replay the loadgen
//! suite uses:
//!
//! - **decode**: the real [`FrameDecoder`] over the concatenated binary
//!   frames, fed in `read_buffer`-sized slices exactly as the socket
//!   path does (minus the syscall).
//! - **route + enqueue**: [`edgeperf_live::shard_of`] plus the real
//!   per-worker [`edgeperf_live::spsc`] lanes — batching, blocking
//!   backpressure, batch recycling and doorbells included — with one
//!   discarding consumer thread per worker.
//! - **window apply**: a serial [`WindowRing`] pass (per-worker apply
//!   cost; workers run this concurrently in the server).
//!
//! The result rides along in `BENCH_live.json` so a throughput
//! regression comes with the stage that caused it.

use edgeperf::serve::WireParser;
use edgeperf_live::{
    encode_frame, shard_of, spsc, FrameDecoder, LiveRecord, Waiter, WindowRing, FRAME_BODY_LEN,
};
use serde::{Deserialize, Serialize};
use std::io;
use std::sync::Arc;
use std::time::Instant;

use crate::loadgen::{generate_lines, LoadgenConfig};

/// Records per coalesced batch — matches the server's batch size.
const BATCH: usize = 64;

/// Data-ring slots per lane — matches the server's default
/// `queue_capacity / batch` geometry.
const LANE_SLOTS: usize = 64;

/// One stage's measured cost.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageTiming {
    /// Wall-clock for the whole pass (s).
    pub elapsed_s: f64,
    /// Nanoseconds per record.
    pub ns_per_record: f64,
    /// Records per second.
    pub records_per_sec: f64,
}

impl StageTiming {
    fn from_elapsed(records: usize, elapsed_s: f64) -> StageTiming {
        let n = records.max(1) as f64;
        StageTiming {
            elapsed_s,
            ns_per_record: elapsed_s * 1e9 / n,
            records_per_sec: if elapsed_s > 0.0 { n / elapsed_s } else { 0.0 },
        }
    }
}

/// Per-stage breakdown of the live ingest hot path (see module docs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageProfile {
    /// Records each stage processed.
    pub sessions: u64,
    /// Worker lanes in the route stage.
    pub workers: u64,
    /// Binary frame decode ([`FrameDecoder`]).
    pub decode: StageTiming,
    /// Shard + batch + SPSC enqueue, with live consumer threads.
    pub route_enqueue: StageTiming,
    /// Serial window-ring apply (per-worker cost).
    pub window_apply: StageTiming,
}

/// Generate `cfg`'s replay and time each pipeline stage over it.
pub fn profile_stages(cfg: &LoadgenConfig, workers: usize) -> io::Result<StageProfile> {
    let workers = workers.max(1);
    let lines = generate_lines(cfg);
    let parser = WireParser::new(cfg.target_bps);
    let records: Vec<LiveRecord> = lines
        .iter()
        .map(|l| {
            parser
                .parse_line(l)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect::<io::Result<_>>()?;
    drop(lines);
    let mut wire = Vec::with_capacity(records.len() * (FRAME_BODY_LEN + 4));
    for rec in &records {
        wire.extend_from_slice(&encode_frame(rec));
    }

    let decode = time_decode(&wire, records.len())?;
    let route_enqueue = time_route(&records, workers);
    let window_apply = time_apply(&records, cfg);
    Ok(StageProfile {
        sessions: records.len() as u64,
        workers: workers as u64,
        decode,
        route_enqueue,
        window_apply,
    })
}

/// Stage 1: frame decode from an in-memory byte stream, chunked like
/// the socket read loop.
fn time_decode(wire: &[u8], expected: usize) -> io::Result<StageTiming> {
    let mut decoder = FrameDecoder::new(FRAME_BODY_LEN, 1 << 16);
    let mut decoded = 0usize;
    let mut off = 0usize;
    let started = Instant::now();
    while off < wire.len() {
        let writable = decoder.writable();
        let writable_len = writable.len();
        let n = writable_len.min(wire.len() - off);
        writable[..n].copy_from_slice(&wire[off..off + n]);
        off += n;
        decoder.advance(n, writable_len);
        loop {
            match decoder.next_record() {
                Ok(Some(rec)) => {
                    std::hint::black_box(&rec);
                    decoded += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    if decoded != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("decoded {decoded} of {expected} frames"),
        ));
    }
    Ok(StageTiming::from_elapsed(decoded, elapsed))
}

/// Stage 2: shard, batch, and push every record through real SPSC
/// lanes to discarding consumers, full backpressure and recycling
/// protocol included. Timed from first push to last consumer join, so
/// it reflects hand-off throughput, not just producer-side cost.
fn time_route(records: &[LiveRecord], workers: usize) -> StageTiming {
    struct LaneHalf {
        data: edgeperf_live::Producer<Vec<LiveRecord>>,
        recycle: edgeperf_live::Consumer<Vec<LiveRecord>>,
        producer_bell: Arc<Waiter>,
        consumer_bell: Arc<Waiter>,
        batch: Vec<LiveRecord>,
    }
    let mut lanes = Vec::with_capacity(workers);
    let mut consumers = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (data_tx, mut data_rx) = spsc::<Vec<LiveRecord>>(LANE_SLOTS);
        let (mut recycle_tx, recycle_rx) = spsc::<Vec<LiveRecord>>(LANE_SLOTS + 2);
        let producer_bell = Arc::new(Waiter::default());
        let consumer_bell = Arc::new(Waiter::default());
        lanes.push(LaneHalf {
            data: data_tx,
            recycle: recycle_rx,
            producer_bell: Arc::clone(&producer_bell),
            consumer_bell: Arc::clone(&consumer_bell),
            batch: Vec::with_capacity(BATCH),
        });
        consumers.push(std::thread::spawn(move || -> u64 {
            let mut seen = 0u64;
            loop {
                consumer_bell.wait_until(|| !data_rx.is_empty() || data_rx.is_closed());
                let closed = data_rx.is_closed();
                match data_rx.try_pop() {
                    Some(mut batch) => {
                        seen += batch.len() as u64;
                        std::hint::black_box(&batch);
                        batch.clear();
                        let _ = recycle_tx.try_push(batch);
                        producer_bell.notify();
                    }
                    None if closed => break,
                    None => {}
                }
            }
            seen
        }));
    }

    fn flush(lane: &mut LaneHalf) {
        if lane.batch.is_empty() {
            return;
        }
        let next = match lane.recycle.try_pop() {
            Some(mut spent) => {
                spent.clear();
                spent
            }
            None => Vec::with_capacity(BATCH),
        };
        let mut batch = std::mem::replace(&mut lane.batch, next);
        loop {
            match lane.data.try_push(batch) {
                Ok(()) => break,
                Err(back) => {
                    batch = back;
                    lane.producer_bell.wait_until(|| lane.data.has_space());
                }
            }
        }
        lane.consumer_bell.notify();
    }

    let started = Instant::now();
    for rec in records {
        let w = shard_of(&rec.group, workers);
        let lane = &mut lanes[w];
        lane.batch.push(*rec);
        if lane.batch.len() >= BATCH {
            flush(lane);
        }
    }
    for lane in &mut lanes {
        flush(lane);
    }
    // Close the data rings and wake the consumers so they drain + exit.
    let bells: Vec<Arc<Waiter>> = lanes.iter().map(|l| Arc::clone(&l.consumer_bell)).collect();
    drop(lanes);
    for bell in &bells {
        bell.notify();
    }
    let mut seen = 0u64;
    for c in consumers {
        seen += c.join().expect("route consumer");
    }
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(seen as usize, records.len(), "route stage lost records");
    StageTiming::from_elapsed(records.len(), elapsed)
}

/// Stage 3: serial window-ring apply (what one worker does with its
/// shard, measured over the full replay).
fn time_apply(records: &[LiveRecord], cfg: &LoadgenConfig) -> StageTiming {
    let mut ring = WindowRing::new(cfg.window_ms, cfg.lateness_ms);
    let started = Instant::now();
    for rec in records {
        if let Ok(closed) = ring.push(rec) {
            std::hint::black_box(&closed);
        }
    }
    std::hint::black_box(&ring.force_close());
    let elapsed = started.elapsed().as_secs_f64();
    StageTiming::from_elapsed(records.len(), elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_profile_covers_every_record() {
        let cfg = LoadgenConfig { sessions: 1_500, groups: 16, windows: 4, ..Default::default() };
        let profile = profile_stages(&cfg, 2).expect("profile runs");
        assert_eq!(profile.sessions, 1_500);
        assert_eq!(profile.workers, 2);
        for stage in [&profile.decode, &profile.route_enqueue, &profile.window_apply] {
            assert!(stage.records_per_sec > 0.0, "stage has throughput: {profile:?}");
            assert!(stage.ns_per_record > 0.0);
        }
    }
}
