//! §4's methodology ablation: the model-based achieved rule vs the naive
//! `Btotal/Ttotal` goodput rule. The paper reports the naive rule drags
//! the median session HDratio down to 0.69 by penalizing transfers for
//! their own slow-start time.

use edgeperf_core::hdratio::session_hdratio_with_rule;
use edgeperf_core::{AchievedRule, HD_GOODPUT_BPS, MILLISECOND};
use edgeperf_netsim::PathState;
use edgeperf_workload::WorkloadConfig;
use edgeperf_world::runner::simulate_session;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// Result of the ablation.
#[derive(Debug, Clone, Serialize)]
pub struct NaiveComparison {
    /// Sessions that tested for HD goodput.
    pub sessions: usize,
    /// Median session HDratio under the paper's model rule.
    pub model_median: f64,
    /// Median under the naive rule (paper: 0.69).
    pub naive_median: f64,
    /// Mean HDratio under each rule.
    pub model_mean: f64,
    /// Mean under the naive rule.
    pub naive_mean: f64,
}

/// Run the comparison over `n` sessions on a population of paths good
/// enough to sustain HD (so the difference isolates the estimator, not
/// the network).
pub fn run(seed: u64, n: usize) -> NaiveComparison {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let _ = WorkloadConfig::default();
    let mut model = Vec::new();
    let mut naive = Vec::new();

    while model.len() < n {
        // Paths mostly HD-capable, varied RTT.
        let rtt_ms = rng.gen_range(30.0..120.0);
        let bw = rng.gen_range(4.0e6..40.0e6);
        let state = PathState {
            base_rtt: (rtt_ms * MILLISECOND as f64) as u64,
            standing_queue: 0,
            jitter_max: 2 * MILLISECOND,
            bottleneck_bps: bw as u64,
            loss: 0.0005,
        };
        // Mid-size responses (tens of kB): the regime where the transfer
        // spends a meaningful share of its life in slow start — exactly
        // what the naive Btotal/Ttotal rule wrongly charges against the
        // network (§3.2.3's motivation). Production traffic is full of
        // these (Figure 2).
        let d = edgeperf_workload::distributions::LogNormal::from_median(30_000.0, 0.6);
        let n_txns = rng.gen_range(2..=6);
        let transactions: Vec<edgeperf_workload::TxnPlan> = (0..n_txns)
            .map(|k| edgeperf_workload::TxnPlan {
                offset: k * 3 * edgeperf_core::SECOND,
                bytes: (d.sample(&mut rng) as u64).clamp(8_000, 300_000),
            })
            .collect();
        let plan = edgeperf_workload::SessionPlan {
            http: edgeperf_core::HttpVersion::H2,
            endpoint: edgeperf_workload::EndpointKind::Api,
            duration: (n_txns + 1) * 3 * edgeperf_core::SECOND,
            transactions,
        };
        let obs = simulate_session(&plan, &state, &mut rng);
        let m = session_hdratio_with_rule(&obs, HD_GOODPUT_BPS, AchievedRule::Model)
            .and_then(|v| v.hdratio());
        let nv = session_hdratio_with_rule(&obs, HD_GOODPUT_BPS, AchievedRule::Naive)
            .and_then(|v| v.hdratio());
        if let (Some(m), Some(nv)) = (m, nv) {
            model.push(m);
            naive.push(nv);
        }
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_unstable_by(f64::total_cmp);
        edgeperf_stats::quantile::median_sorted(v)
    };
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    NaiveComparison {
        sessions: n,
        model_mean: mean(&model),
        naive_mean: mean(&naive),
        model_median: med(&mut model),
        naive_median: med(&mut naive),
    }
}

impl std::fmt::Display for NaiveComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== Naive vs model achieved-rule (§4 ablation) ==")?;
        writeln!(f, "sessions tested: {}", self.sessions)?;
        writeln!(
            f,
            "median HDratio: model = {:.2}, naive = {:.2} (paper: naive drops the median to 0.69)",
            self.model_median, self.naive_median
        )?;
        writeln!(
            f,
            "mean HDratio:   model = {:.2}, naive = {:.2}",
            self.model_mean, self.naive_mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_rule_underestimates_hd_capability() {
        let r = run(5, 400);
        assert!(
            r.model_median > r.naive_median,
            "model {} vs naive {}",
            r.model_median,
            r.naive_median
        );
        assert!(r.model_mean > r.naive_mean + 0.05, "means too close: {r:?}");
        // On HD-capable paths the model rule should find most sessions HD.
        assert!(r.model_median > 0.8, "model median = {}", r.model_median);
        // And the naive rule should visibly drag it down (paper: 0.69).
        assert!(r.naive_median < 0.95, "naive median = {}", r.naive_median);
    }
}
