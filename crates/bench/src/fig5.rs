//! Figure 5: client-population mix shifts moving a group's median MinRTT.
//!
//! A /16 serves two clusters — a "California" cluster near the PoP and a
//! "Hawaii" cluster ~4000 km away. Each cluster's own median MinRTT is
//! stable, but the group's overall median swings between them as the
//! diurnal activity mix shifts with each cluster's local time.

use edgeperf_core::MILLISECOND;
use edgeperf_netsim::{FastFlow, PathState};
use edgeperf_tcp::TcpConfig;
use edgeperf_world::dynamics::{pick_cluster, WINDOWS_PER_DAY};
use edgeperf_world::geo::{propagation_rtt_ms, GeoPoint};
use edgeperf_world::topology::{ClientCluster, PrefixSite, World, WorldConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// One window's medians.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Point {
    /// Window index.
    pub window: u32,
    /// Median MinRTT over all sessions, ms.
    pub all_ms: f64,
    /// Median over near-cluster (California-analog) sessions.
    pub near_ms: Option<f64>,
    /// Median over far-cluster (Hawaii-analog) sessions.
    pub far_ms: Option<f64>,
    /// Share of sessions from the far cluster.
    pub far_share: f64,
}

/// Run the Figure-5 scenario over `days` days.
pub fn run(seed: u64, days: u32, sessions_per_window: usize) -> Vec<Fig5Point> {
    // A synthetic two-cluster prefix: PoP at Palo Alto; clusters in
    // California (UTC-8) and Hawaii (UTC-10).
    let world = World::generate(WorldConfig::default());
    let pop_loc = world.pops.iter().find(|p| p.name == "PaloAlto").unwrap().loc;
    let mut site: PrefixSite = world.prefixes[0].clone();
    site.clusters = vec![
        ClientCluster { loc: GeoPoint { lat: 37.0, lon: -120.0 }, utc_offset: -8 },
        ClientCluster { loc: GeoPoint { lat: 21.3, lon: -157.8 }, utc_offset: -10 },
    ];
    site.last_mile_ms = 8.0;
    site.jitter_max_ms = 3.0;

    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for window in 0..days * WINDOWS_PER_DAY {
        let mut all = Vec::new();
        let mut near = Vec::new();
        let mut far = Vec::new();
        for _ in 0..sessions_per_window {
            let c = pick_cluster(&site, window, rng.gen());
            let base = propagation_rtt_ms(pop_loc, site.clusters[c].loc) + site.last_mile_ms;
            let state = PathState {
                base_rtt: (base * MILLISECOND as f64) as u64,
                standing_queue: 0,
                jitter_max: (site.jitter_max_ms * MILLISECOND as f64) as u64,
                bottleneck_bps: 20_000_000,
                loss: 0.0,
            };
            let mut flow = FastFlow::new(TcpConfig::default());
            flow.transfer(30_000, &state, &mut rng);
            let mr = flow.min_rtt().unwrap() as f64 / MILLISECOND as f64;
            all.push(mr);
            if c == 0 {
                near.push(mr);
            } else {
                far.push(mr);
            }
        }
        let med = |mut v: Vec<f64>| {
            if v.is_empty() {
                None
            } else {
                v.sort_unstable_by(f64::total_cmp);
                Some(edgeperf_stats::quantile::median_sorted(&v))
            }
        };
        let far_share = far.len() as f64 / sessions_per_window as f64;
        out.push(Fig5Point {
            window,
            all_ms: med(all.clone()).unwrap(),
            near_ms: med(near),
            far_ms: med(far),
            far_share,
        });
    }
    out
}

/// Render a compact view (hourly resolution).
pub fn render(points: &[Fig5Point]) -> String {
    let mut s = String::from(
        "== Figure 5: client-mix shift (two-cluster /16, PaloAlto PoP) ==\n\
         window  all_ms  near_ms  far_ms  far_share\n",
    );
    for p in points.iter().step_by(4) {
        s.push_str(&format!(
            "{:>6} {:>7.1} {:>8} {:>7} {:>10.2}\n",
            p.window,
            p.all_ms,
            p.near_ms.map_or("-".into(), |v| format!("{v:.1}")),
            p.far_ms.map_or("-".into(), |v| format!("{v:.1}")),
            p.far_share
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cluster_medians_are_stable_but_overall_swings() {
        let pts = run(1, 2, 300);
        // Per-cluster medians stay in a narrow band...
        let near: Vec<f64> = pts.iter().filter_map(|p| p.near_ms).collect();
        let far: Vec<f64> = pts.iter().filter_map(|p| p.far_ms).collect();
        let spread = |v: &[f64]| {
            let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = v.iter().cloned().fold(0.0f64, f64::max);
            max - min
        };
        assert!(spread(&near) < 8.0, "near spread = {}", spread(&near));
        assert!(spread(&far) < 8.0, "far spread = {}", spread(&far));
        // ...and the far cluster is clearly slower.
        let near_med = near.iter().sum::<f64>() / near.len() as f64;
        let far_med = far.iter().sum::<f64>() / far.len() as f64;
        assert!(far_med > near_med + 20.0, "far {far_med} vs near {near_med}");
        // The overall median must swing by a sizeable fraction of the gap.
        let overall: Vec<f64> = pts.iter().map(|p| p.all_ms).collect();
        assert!(
            spread(&overall) > (far_med - near_med) * 0.5,
            "overall spread {} too small for gap {}",
            spread(&overall),
            far_med - near_med
        );
    }

    #[test]
    fn far_share_tracks_diurnal_mix() {
        let pts = run(2, 1, 300);
        let min = pts.iter().map(|p| p.far_share).fold(f64::INFINITY, f64::min);
        let max = pts.iter().map(|p| p.far_share).fold(0.0f64, f64::max);
        assert!(max - min > 0.15, "mix shift too small: {min}..{max}");
    }
}

/// §3.3's grouping rationale, quantified: the variability (standard
/// deviation across windows) of the group's MinRTT_P50 when the two
/// clusters are mixed, versus when geolocation splits them — the paper's
/// justification for including the client country in the user-group key.
#[derive(Debug, Clone, Serialize)]
pub struct GroupingComparison {
    /// Std-dev of per-window medians with clusters mixed (prefix-only
    /// grouping), ms.
    pub mixed_stddev_ms: f64,
    /// Std-dev for the near cluster alone, ms.
    pub near_stddev_ms: f64,
    /// Std-dev for the far cluster alone, ms.
    pub far_stddev_ms: f64,
    /// Variability reduction factor from splitting (mixed / worst split).
    pub reduction_factor: f64,
}

/// Summarize the Figure-5 run into the grouping comparison.
pub fn grouping_comparison(points: &[Fig5Point]) -> GroupingComparison {
    let stddev = |v: &[f64]| {
        let n = v.len().max(1) as f64;
        let mean = v.iter().sum::<f64>() / n;
        (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt()
    };
    let mixed: Vec<f64> = points.iter().map(|p| p.all_ms).collect();
    let near: Vec<f64> = points.iter().filter_map(|p| p.near_ms).collect();
    let far: Vec<f64> = points.iter().filter_map(|p| p.far_ms).collect();
    let (sm, sn, sf) = (stddev(&mixed), stddev(&near), stddev(&far));
    GroupingComparison {
        mixed_stddev_ms: sm,
        near_stddev_ms: sn,
        far_stddev_ms: sf,
        reduction_factor: sm / sn.max(sf).max(1e-9),
    }
}

/// Render the grouping comparison.
pub fn render_grouping(g: &GroupingComparison) -> String {
    format!(
        "== Grouping granularity (§3.3): why the user-group key includes geolocation ==\n\
         per-window MinRTT_P50 variability (std-dev):\n\
         \x20 prefix-only grouping (clusters mixed): {:.1} ms\n\
         \x20 split by location — near cluster:      {:.2} ms\n\
         \x20 split by location — far cluster:       {:.2} ms\n\
         splitting reduces variability {:.0}x\n",
        g.mixed_stddev_ms, g.near_stddev_ms, g.far_stddev_ms, g.reduction_factor
    )
}

#[cfg(test)]
mod grouping_tests {
    use super::*;

    #[test]
    fn splitting_by_location_reduces_variability() {
        let pts = run(3, 2, 250);
        let g = grouping_comparison(&pts);
        assert!(g.mixed_stddev_ms > 10.0, "mixed must swing: {}", g.mixed_stddev_ms);
        assert!(g.near_stddev_ms < 3.0, "near must be stable: {}", g.near_stddev_ms);
        assert!(g.far_stddev_ms < 3.0, "far must be stable: {}", g.far_stddev_ms);
        assert!(g.reduction_factor > 5.0, "reduction = {}", g.reduction_factor);
    }
}
