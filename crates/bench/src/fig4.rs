//! Figure 4: the paper's worked example — three back-to-back HTTP
//! transactions on a 60 ms connection with IW10 and 1500-byte packets.
//!
//! Reproduces the sequence-diagram arithmetic (per-transaction goodput,
//! `Wstart` carry-forward, `Gtestable`) and cross-checks it against a
//! packet-level simulation of the same scenario.

use edgeperf_core::gtestable::{gtestable_bps, next_wstart, rounds};
use edgeperf_core::{MILLISECOND, SECOND};
use serde::Serialize;

/// One row of the Figure-4 example.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Transaction number (1–3).
    pub txn: u32,
    /// Packets in the response.
    pub packets: u64,
    /// `Wstart` in packets (after carry-forward).
    pub wstart_packets: u64,
    /// Ideal round trips `m`.
    pub rounds: u32,
    /// Raw transaction goodput under the ideal schedule, Mbps.
    pub goodput_mbps: f64,
    /// Maximum testable goodput, Mbps.
    pub gtestable_mbps: f64,
    /// The paper's quoted values (goodput, Gtestable), Mbps.
    pub paper: (f64, f64),
}

/// Reproduce the Figure-4 table.
pub fn run() -> Vec<Fig4Row> {
    const MSS: u64 = 1_500;
    const RTT: u64 = 60 * MILLISECOND;
    let rtt_s = RTT as f64 / SECOND as f64;
    let mbps = |bits: f64| bits / 1e6;

    // (packets, ideal RTT count for the naive goodput quoted in the text)
    let txns: [(u64, f64); 3] = [(2, 1.0), (24, 2.0), (14, 1.0)];
    let mut wstart = 10 * MSS;
    let paper = [(0.4, 0.4), (2.4, 2.8), (2.8, 2.8)];

    let mut rows = Vec::new();
    for (i, &(pkts, rtts)) in txns.iter().enumerate() {
        let bytes = pkts * MSS;
        let goodput = mbps(bytes as f64 * 8.0 / (rtts * rtt_s));
        let g = mbps(gtestable_bps(bytes, wstart, RTT));
        rows.push(Fig4Row {
            txn: i as u32 + 1,
            packets: pkts,
            wstart_packets: wstart / MSS,
            rounds: rounds(bytes, wstart),
            goodput_mbps: goodput,
            gtestable_mbps: g,
            paper: paper[i],
        });
        // Carry forward assuming Wnic equals the previous ideal window.
        wstart = next_wstart(wstart, bytes, wstart);
    }
    rows
}

/// Render the rows.
pub fn render(rows: &[Fig4Row]) -> String {
    let mut s = String::from("== Figure 4: worked example (60 ms RTT, IW10, 1500 B packets) ==\n");
    s.push_str("txn  pkts  Wstart  m  goodput(Mbps)  Gtestable(Mbps)  paper(goodput, Gtestable)\n");
    for r in rows {
        s.push_str(&format!(
            "{:>3} {:>5} {:>7} {:>2} {:>14.2} {:>16.2}  ({:.1}, {:.1})\n",
            r.txn,
            r.packets,
            r.wstart_packets,
            r.rounds,
            r.goodput_mbps,
            r.gtestable_mbps,
            r.paper.0,
            r.paper.1
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_exactly() {
        let rows = run();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                (r.goodput_mbps - r.paper.0).abs() < 0.05,
                "txn {} goodput {} vs paper {}",
                r.txn,
                r.goodput_mbps,
                r.paper.0
            );
            assert!(
                (r.gtestable_mbps - r.paper.1).abs() < 0.05,
                "txn {} gtestable {} vs paper {}",
                r.txn,
                r.gtestable_mbps,
                r.paper.1
            );
        }
        // The carry-forward chain: Wstart 10 → 10 → 20 packets.
        assert_eq!(rows[0].wstart_packets, 10);
        assert_eq!(rows[1].wstart_packets, 10);
        assert_eq!(rows[2].wstart_packets, 20);
    }

    /// The same scenario through the packet-level simulator: transaction
    /// timings must land within one serialization of the ideal schedule.
    #[test]
    fn packet_level_simulation_agrees() {
        use edgeperf_netsim::{FlowSim, PathConfig};
        use edgeperf_tcp::TcpConfig;

        // Fat pipe ⇒ negligible serialization, like the paper's diagram.
        let mut sim = FlowSim::new(
            TcpConfig::figure4(),
            PathConfig::ideal(1_000_000_000, 60 * MILLISECOND),
            1,
        );
        sim.schedule_write(0, 2 * 1_500);
        sim.schedule_write(200 * MILLISECOND, 24 * 1_500);
        sim.schedule_write(500 * MILLISECOND, 14 * 1_500);
        let res = sim.run(10 * SECOND);

        // Txn 1: one RTT.
        let t1 = res.writes[0].t_full_ack.unwrap() - res.writes[0].first_tx.unwrap().0;
        assert!((t1 as i64 - 60 * MILLISECOND as i64).abs() < MILLISECOND as i64, "t1 = {t1}");
        // Txn 2: two RTTs (cwnd 10 → 20).
        let t2 = res.writes[1].t_full_ack.unwrap() - res.writes[1].first_tx.unwrap().0;
        assert!((t2 as i64 - 120 * MILLISECOND as i64).abs() < 2 * MILLISECOND as i64, "t2 = {t2}");
        // Txn 3: one RTT thanks to the grown window.
        let t3 = res.writes[2].t_full_ack.unwrap() - res.writes[2].first_tx.unwrap().0;
        assert!((t3 as i64 - 60 * MILLISECOND as i64).abs() < 2 * MILLISECOND as i64, "t3 = {t3}");
        // And the observed Wnic of txn 3 reflects the growth.
        assert!(res.writes[2].first_tx.unwrap().1 >= 20 * 1_500);
    }
}
