//! Detector validation: precision/recall of the §5 degradation detector
//! against the synthetic world's *known* congestion episodes.
//!
//! This is an experiment the paper could not run — production has no
//! ground truth — and the main scientific payoff of the synthetic-world
//! substitution: we can measure how much real degradation the
//! statistically-guarded detector recovers and how often it cries wolf.

use edgeperf_analysis::degradation::{degradation_events, DegradationMetric, WindowStatus};
use edgeperf_analysis::{AnalysisConfig, Dataset};
use edgeperf_world::dynamics::route_condition;
use edgeperf_world::{run_study, StudyConfig, World, WorldConfig};
use serde::Serialize;

/// Outcome of the validation.
#[derive(Debug, Clone, Serialize)]
pub struct DetectorScore {
    /// (group, window) cells with ground-truth degradation of the
    /// preferred route ≥ the ground-truth threshold.
    pub truth_windows: usize,
    /// Cells the detector flagged.
    pub flagged_windows: usize,
    /// Flagged ∧ true.
    pub hits: usize,
    /// Recall among *valid* windows (the detector can only speak where
    /// its statistical rules allow).
    pub recall: f64,
    /// Precision of flagged windows.
    pub precision: f64,
}

/// Ground truth: the preferred route's condition imposes ≥ `queue_ms`
/// standing queue this window (relative to the group's own floor).
fn truly_degraded(world: &World, prefix_idx: usize, window: u32, queue_ms: f64) -> bool {
    let site = &world.prefixes[prefix_idx];
    route_condition(world.seed, site, 0, window).standing_queue_ms >= queue_ms
}

/// Run the validation: simulate `days`, detect MinRTT degradation at
/// `threshold_ms`, and compare with ground-truth standing queues of at
/// least `threshold_ms` (a standing queue raises MinRTT one-for-one).
pub fn run(seed: u64, days: u32, sessions: u32, threshold_ms: f64) -> DetectorScore {
    let world = World::generate(WorldConfig { seed, country_fraction: 0.5, ..Default::default() });
    let cfg = StudyConfig {
        seed: seed ^ 0xD07,
        days,
        sessions_per_group_window: sessions,
        parallelism: 0,
        ..Default::default()
    };
    let records = run_study(&world, &cfg);
    let n_windows = cfg.n_windows() as usize;
    let ds = Dataset::from_records(&records, n_windows);
    let acfg = AnalysisConfig::default();

    // Map group keys back to prefix indices for ground-truth lookup.
    let mut truth_windows = 0usize;
    let mut flagged = 0usize;
    let mut hits = 0usize;
    let mut truth_and_valid = 0usize;

    for (key, g) in &ds.groups {
        let Some(pidx) = world.prefixes.iter().position(|p| p.prefix == key.prefix) else {
            continue;
        };
        // Two-cluster prefixes shift their median MinRTT with the client
        // mix (the Figure-5 effect) — real detections, but not queue-based
        // degradation, so they have no ground-truth label here. The paper
        // faces the same confounder and motivates finer grouping with it.
        if world.prefixes[pidx].clusters.len() > 1 {
            continue;
        }
        let assessments = degradation_events(&acfg, g, DegradationMetric::MinRtt, threshold_ms);
        for (w, a) in assessments.iter().enumerate() {
            let truth = truly_degraded(&world, pidx, w as u32, threshold_ms);
            if truth {
                truth_windows += 1;
            }
            let valid = matches!(a.status, WindowStatus::Quiet | WindowStatus::Event);
            if truth && valid {
                truth_and_valid += 1;
            }
            if a.status == WindowStatus::Event {
                flagged += 1;
                if truth {
                    hits += 1;
                }
            }
        }
    }

    DetectorScore {
        truth_windows,
        flagged_windows: flagged,
        hits,
        recall: hits as f64 / truth_and_valid.max(1) as f64,
        precision: hits as f64 / flagged.max(1) as f64,
    }
}

impl std::fmt::Display for DetectorScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== Degradation-detector validation vs ground truth ==")?;
        writeln!(
            f,
            "ground-truth degraded windows: {}   flagged: {}   hits: {}",
            self.truth_windows, self.flagged_windows, self.hits
        )?;
        writeln!(
            f,
            "recall (among statistically valid windows) = {:.2}   precision = {:.2}",
            self.recall, self.precision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_finds_injected_episodes_with_high_precision() {
        let s = run(404, 2, 120, 10.0);
        assert!(s.truth_windows > 20, "world must inject episodes: {s:?}");
        assert!(s.flagged_windows > 0, "detector must fire: {s:?}");
        assert!(s.precision > 0.7, "precision = {} ({s:?})", s.precision);
        assert!(s.recall > 0.4, "recall = {} ({s:?})", s.recall);
    }

    #[test]
    fn higher_thresholds_flag_fewer_windows() {
        let low = run(404, 1, 80, 5.0);
        let high = run(404, 1, 80, 20.0);
        assert!(high.flagged_windows <= low.flagged_windows, "high {high:?} vs low {low:?}");
    }
}
