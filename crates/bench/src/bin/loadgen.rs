//! `loadgen` — replay simulated workload sessions into `edgeperf serve`.
//!
//! ```text
//! loadgen --addr HOST:PORT [--wire jsonl|binary] [--rate F] [--sessions N]
//!         [--connections N] [--groups N] [--windows N] [--window-ms F]
//!         [--lateness-ms F] [--max-txns N] [--seed N] [--shutdown]
//!         [--query-from N] [--query-until N]
//!         [--expect-clean] [--json PATH]
//! loadgen --suite [--sessions N] ... [--expect-clean] [--json PATH]
//! loadgen --profile [--workers N] [--sessions N] ... [--json PATH]
//! loadgen --long-horizon [--windows N] [--retention N] [--spill-dir DIR]
//!         [--expect-clean] [--json PATH]
//! loadgen --chaos PLAN [--wire jsonl|binary] [--workers N]
//!         [--idle-timeout-ms N] [--retention N] [--spill-dir DIR]
//!         [--expect-clean] [--json PATH]
//! loadgen --fleet ADDR | --fleet-pops N [--workers N]
//!         [--fleet-chaos PLAN] [--sessions N] [--groups N] [--windows N]
//!         [--window-ms F] [--lateness-ms F] [--expect-clean] [--json PATH]
//! ```
//!
//! Prints the [`edgeperf_bench::loadgen::LoadReport`] as JSON on stdout;
//! `--json PATH` also writes it to a file (the tracked `BENCH_live.json`).
//! `--wire binary` negotiates the length-prefixed binary frame format
//! (the estimator runs locally; the server skips JSON entirely).
//! `--shutdown` drains the server at the end of the replay.
//! `--expect-clean` exits non-zero unless every session was ingested
//! (no rejects, no late drops, groups observed, clean drain when
//! `--shutdown` was given) — the CI smoke assertion.
//!
//! `--query-from` / `--query-until` issue a window-range `cells` query
//! after the replay (and before any `--shutdown` drain) — the smoke for
//! the tiered window store's historical query path. With
//! `--expect-clean` the query must return at least one cell.
//!
//! `--suite` ignores `--addr`/`--shutdown` and self-hosts servers
//! in-process instead: one headline run per wire mode plus a binary
//! connections × workers scaling grid, a per-stage profile, and a
//! long-horizon pass through the tiered window store, reported as a
//! combined [`edgeperf_bench::loadgen::SuiteReport`].
//!
//! `--profile` runs only the per-stage breakdown (decode /
//! route+enqueue / window-apply) without any server, reported as a
//! [`edgeperf_bench::stage_profile::StageProfile`].
//!
//! `--chaos PLAN` self-hosts a fault-injected server (the plan's worker
//! panics and disk faults fire server-side; its disconnects, torn
//! records and stalls fire client-side in the resume loop), replays
//! with reconnect-and-resume, then proves the recovery exact against a
//! fault-free control server, reported as a
//! [`edgeperf_bench::loadgen::ChaosReport`]. `--spill-dir` (with
//! `--retention`) routes the faulted server through the tiered store so
//! `spillfail:`/`compactfail:` clauses have a disk to hit. With
//! `--expect-clean` the run must ack every record exactly once, reject
//! nothing, and be bit-identical to the control.
//!
//! `--fleet ADDR` replays a catchment-partitioned workload through the
//! multi-PoP coordinator listening on `ADDR` (started with `edgeperf
//! fleet`); `--fleet-pops N` self-hosts an N-PoP fleet in-process
//! instead. Either way each group's records go to the PoP the anycast
//! catchment homes them on, the merged `fleet cells` view is compared
//! f64-bit-identically against a fault-free single-node control, and
//! the run is reported as a
//! [`edgeperf_bench::fleet_run::FleetReport`]. `--fleet-chaos PLAN`
//! (grammar `kill:POP@RECORDS;seed:S`) kills a PoP mid-replay and
//! proves exactly-once failover. With `--expect-clean` every record
//! must be acked and accepted exactly once fleet-wide, nothing
//! rejected or late, every planned kill fired (re-homing at least one
//! group), and the merged view bit-identical to the control.
//!
//! `--long-horizon` self-hosts the tiered-store comparison on its own:
//! replay `--windows` of event time into a server that spills past
//! `--retention` windows (segments under `--spill-dir`, a throwaway
//! temp directory by default), replay the same sessions into an all-RAM
//! control, and report the
//! [`edgeperf_bench::loadgen::LongHorizonReport`]. With
//! `--expect-clean` the merged disk+RAM query must be bit-identical to
//! the control and something must actually have spilled.

use edgeperf_bench::fleet_run::{run_fleet, run_fleet_at, FleetRunOpts};
use edgeperf_bench::loadgen::{
    run, run_chaos, run_long_horizon, run_suite, ChaosRunOpts, LoadReport, LoadgenConfig, WireMode,
    LONG_HORIZON_RETENTION, LONG_HORIZON_WINDOWS,
};
use edgeperf_bench::stage_profile::profile_stages;
use edgeperf_fleet::FleetChaosPlan;
use edgeperf_live::{CellQuery, ChaosPlan, LiveClient};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LoadgenConfig::default();
    let mut json_path: Option<String> = None;
    let mut expect_clean = false;
    let mut suite = false;
    let mut profile = false;
    let mut profile_workers = 4usize;
    let mut long_horizon = false;
    let mut chaos: Option<ChaosPlan> = None;
    let mut fleet_addr: Option<String> = None;
    let mut fleet_pops: Option<u16> = None;
    let mut fleet_chaos = FleetChaosPlan::default();
    let mut idle_timeout_ms = 0u64;
    let mut retention = LONG_HORIZON_RETENTION;
    let mut spill_dir: Option<PathBuf> = None;
    let mut query_from: Option<u32> = None;
    let mut query_until: Option<u32> = None;
    fn num(it: &mut dyn Iterator<Item = &String>, flag: &str) -> f64 {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die(&format!("{flag} needs a number")))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                cfg.addr = it.next().cloned().unwrap_or_else(|| die("--addr needs an address"));
            }
            "--wire" => {
                cfg.wire = it
                    .next()
                    .and_then(|s| WireMode::parse(s))
                    .unwrap_or_else(|| die("--wire needs `jsonl` or `binary`"));
            }
            "--rate" => cfg.rate = num(&mut it, "--rate"),
            "--sessions" => cfg.sessions = num(&mut it, "--sessions") as usize,
            "--connections" => cfg.connections = num(&mut it, "--connections") as usize,
            "--groups" => cfg.groups = num(&mut it, "--groups") as usize,
            "--windows" => cfg.windows = num(&mut it, "--windows") as u32,
            "--window-ms" => cfg.window_ms = num(&mut it, "--window-ms"),
            "--lateness-ms" => cfg.lateness_ms = num(&mut it, "--lateness-ms"),
            "--target-bps" => cfg.target_bps = num(&mut it, "--target-bps"),
            "--max-txns" => cfg.max_txns = num(&mut it, "--max-txns") as usize,
            "--seed" => cfg.seed = num(&mut it, "--seed") as u64,
            "--ping-interval-ms" => {
                cfg.ping_interval_ms = num(&mut it, "--ping-interval-ms") as u64
            }
            "--shutdown" => cfg.shutdown = true,
            "--suite" => suite = true,
            "--profile" => profile = true,
            "--workers" => profile_workers = num(&mut it, "--workers") as usize,
            "--long-horizon" => long_horizon = true,
            "--chaos" => {
                let spec = it.next().cloned().unwrap_or_else(|| die("--chaos needs a plan"));
                chaos =
                    Some(ChaosPlan::parse(&spec).unwrap_or_else(|e| die(&format!("--chaos: {e}"))));
            }
            "--fleet" => {
                fleet_addr =
                    Some(it.next().cloned().unwrap_or_else(|| die("--fleet needs an address")));
            }
            "--fleet-pops" => fleet_pops = Some(num(&mut it, "--fleet-pops") as u16),
            "--fleet-chaos" => {
                let spec = it.next().cloned().unwrap_or_else(|| die("--fleet-chaos needs a plan"));
                fleet_chaos = FleetChaosPlan::parse(&spec)
                    .unwrap_or_else(|e| die(&format!("--fleet-chaos: {e}")));
            }
            "--idle-timeout-ms" => idle_timeout_ms = num(&mut it, "--idle-timeout-ms") as u64,
            "--retention" => retention = num(&mut it, "--retention") as usize,
            "--spill-dir" => {
                spill_dir = Some(PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| die("--spill-dir needs a path")),
                ));
            }
            "--query-from" => query_from = Some(num(&mut it, "--query-from") as u32),
            "--query-until" => query_until = Some(num(&mut it, "--query-until") as u32),
            "--expect-clean" => expect_clean = true,
            "--json" => {
                json_path = Some(it.next().cloned().unwrap_or_else(|| die("--json needs a path")));
            }
            other => die(&format!("unknown argument {other}")),
        }
    }

    if profile {
        let report =
            profile_stages(&cfg, profile_workers).unwrap_or_else(|e| die(&format!("profile: {e}")));
        emit(&serde_json::to_string_pretty(&report).expect("profile serializes"), &json_path);
        return;
    }

    if let Some(plan) = chaos {
        let opts = ChaosRunOpts {
            workers: profile_workers,
            idle_timeout_ms,
            spill: spill_dir.map(|dir| (dir, retention)),
            ..ChaosRunOpts::default()
        };
        let report = run_chaos(&cfg, &plan, &opts).unwrap_or_else(|e| die(&format!("chaos: {e}")));
        emit(&serde_json::to_string_pretty(&report).expect("report serializes"), &json_path);
        if expect_clean
            && !(report.acked == report.sessions
                && report.accepted == report.sessions
                && report.rejected == 0
                && report.worker_lost_records == 0
                && report.windows_shed == 0
                && report.bit_identical_to_clean)
        {
            die(&format!("chaos run was not clean: {report:?}"));
        }
        return;
    }

    if fleet_addr.is_some() || fleet_pops.is_some() {
        let opts = FleetRunOpts {
            pops: fleet_pops.unwrap_or(FleetRunOpts::default().pops),
            workers: profile_workers,
            plan: fleet_chaos,
        };
        let planned_kills = opts.plan.kills.len() as u64;
        let report = match &fleet_addr {
            Some(addr) => run_fleet_at(addr, &cfg, &opts)
                .unwrap_or_else(|e| die(&format!("fleet replay against {addr}: {e}"))),
            None => run_fleet(&cfg, &opts).unwrap_or_else(|e| die(&format!("fleet: {e}"))),
        };
        emit(&serde_json::to_string_pretty(&report).expect("report serializes"), &json_path);
        if expect_clean
            && !(report.acked == report.sessions
                && report.accepted == report.sessions
                && report.rejected == 0
                && report.late == 0
                && report.drained
                && report.kills == planned_kills
                && (report.kills == 0 || report.rehomed_groups > 0)
                && report.bit_identical_to_single_node)
        {
            die(&format!("fleet run was not clean: {report:?}"));
        }
        return;
    }

    if long_horizon {
        if cfg.windows == LoadgenConfig::default().windows {
            cfg.windows = LONG_HORIZON_WINDOWS;
        }
        let (dir, throwaway) = match spill_dir {
            Some(dir) => (dir, false),
            None => (
                std::env::temp_dir().join(format!("edgeperf-long-horizon-{}", std::process::id())),
                true,
            ),
        };
        let result = run_long_horizon(&cfg, retention, &dir);
        if throwaway {
            let _ = std::fs::remove_dir_all(&dir);
        }
        let report = result.unwrap_or_else(|e| die(&format!("long-horizon: {e}")));
        emit(&serde_json::to_string_pretty(&report).expect("report serializes"), &json_path);
        if expect_clean
            && !(report.bit_identical
                && report.spilled_windows > 0
                && report.segments > 0
                && report.full_range_cells > 0)
        {
            die(&format!("long-horizon run was not clean: {report:?}"));
        }
        return;
    }

    if suite {
        let report = run_suite(&cfg).unwrap_or_else(|e| die(&format!("suite: {e}")));
        emit(&serde_json::to_string_pretty(&report).expect("suite serializes"), &json_path);
        if expect_clean {
            check_clean(&report.jsonl, true);
            check_clean(&report.binary, true);
            for point in &report.binary_scaling {
                if point.rejected != 0 || point.accepted != report.sessions {
                    die(&format!("scaling run was not clean: {point:?}"));
                }
            }
            if let Some(chaos) = &report.chaos {
                if !(chaos.acked == chaos.sessions
                    && chaos.accepted == chaos.sessions
                    && chaos.rejected == 0
                    && chaos.worker_lost_records == 0
                    && chaos.bit_identical_to_clean)
                {
                    die(&format!("chaos recovery was not exact: {chaos:?}"));
                }
            }
        }
        return;
    }

    // A range query must run before any drain: replay with shutdown
    // deferred, query, then drain explicitly.
    let wants_query = query_from.is_some() || query_until.is_some();
    let mut run_cfg = cfg.clone();
    if wants_query {
        run_cfg.shutdown = false;
    }
    let mut report =
        run(&run_cfg).unwrap_or_else(|e| die(&format!("replay against {}: {e}", cfg.addr)));
    if wants_query {
        let mut client = LiveClient::connect(&cfg.addr)
            .unwrap_or_else(|e| die(&format!("connect {}: {e}", cfg.addr)));
        let query = CellQuery {
            from_window: query_from,
            until_window: query_until,
            ..CellQuery::default()
        };
        let rows = client.cells_query(&query).unwrap_or_else(|e| die(&format!("cells query: {e}")));
        eprintln!(
            "loadgen: cells query from={} until={} returned {} cells",
            query_from.map_or("start".to_string(), |w| w.to_string()),
            query_until.map_or("end".to_string(), |w| w.to_string()),
            rows.len()
        );
        if expect_clean && rows.is_empty() {
            die("range query returned no cells");
        }
        if cfg.shutdown {
            let snapshot = client.shutdown().unwrap_or_else(|e| die(&format!("shutdown: {e}")));
            report.drained = snapshot.drained;
        }
    }
    emit(&serde_json::to_string_pretty(&report).expect("report serializes"), &json_path);
    if expect_clean {
        check_clean(&report, cfg.shutdown);
    }
}

fn emit(json: &str, json_path: &Option<String>) {
    println!("{json}");
    if let Some(path) = json_path {
        std::fs::write(path, format!("{json}\n"))
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
    }
}

fn check_clean(report: &LoadReport, drained_expected: bool) {
    let clean = report.accepted == report.sessions
        && report.rejected == 0
        && report.late == 0
        && report.groups > 0
        && (!drained_expected || report.drained);
    if !clean {
        die(&format!("replay was not clean: {report:?}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(1);
}
