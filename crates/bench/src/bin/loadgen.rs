//! `loadgen` — replay simulated workload sessions into `edgeperf serve`.
//!
//! ```text
//! loadgen --addr HOST:PORT [--rate F] [--sessions N] [--connections N]
//!         [--groups N] [--windows N] [--window-ms F] [--max-txns N]
//!         [--seed N] [--shutdown] [--expect-clean] [--json PATH]
//! ```
//!
//! Prints the [`edgeperf_bench::loadgen::LoadReport`] as JSON on stdout;
//! `--json PATH` also writes it to a file (the tracked `BENCH_live.json`).
//! `--shutdown` drains the server at the end of the replay.
//! `--expect-clean` exits non-zero unless every session was ingested
//! (no rejects, no late drops, groups observed, clean drain when
//! `--shutdown` was given) — the CI smoke assertion.

use edgeperf_bench::loadgen::{run, LoadgenConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LoadgenConfig::default();
    let mut json_path: Option<String> = None;
    let mut expect_clean = false;
    fn num(it: &mut dyn Iterator<Item = &String>, flag: &str) -> f64 {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die(&format!("{flag} needs a number")))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                cfg.addr = it.next().cloned().unwrap_or_else(|| die("--addr needs an address"));
            }
            "--rate" => cfg.rate = num(&mut it, "--rate"),
            "--sessions" => cfg.sessions = num(&mut it, "--sessions") as usize,
            "--connections" => cfg.connections = num(&mut it, "--connections") as usize,
            "--groups" => cfg.groups = num(&mut it, "--groups") as usize,
            "--windows" => cfg.windows = num(&mut it, "--windows") as u32,
            "--window-ms" => cfg.window_ms = num(&mut it, "--window-ms"),
            "--max-txns" => cfg.max_txns = num(&mut it, "--max-txns") as usize,
            "--seed" => cfg.seed = num(&mut it, "--seed") as u64,
            "--ping-interval-ms" => {
                cfg.ping_interval_ms = num(&mut it, "--ping-interval-ms") as u64
            }
            "--shutdown" => cfg.shutdown = true,
            "--expect-clean" => expect_clean = true,
            "--json" => {
                json_path = Some(it.next().cloned().unwrap_or_else(|| die("--json needs a path")));
            }
            other => die(&format!("unknown argument {other}")),
        }
    }

    let report = run(&cfg).unwrap_or_else(|e| die(&format!("replay against {}: {e}", cfg.addr)));
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("{json}");
    if let Some(path) = json_path {
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
    }
    if expect_clean {
        let clean = report.accepted == report.sessions
            && report.rejected == 0
            && report.late == 0
            && report.groups > 0
            && (!cfg.shutdown || report.drained);
        if !clean {
            die(&format!("replay was not clean: {report:?}"));
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(1);
}
