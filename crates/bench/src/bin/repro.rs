//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro <experiment> [--seed N] [--days N] [--sessions N] [--scale F] [--json PATH] [--streaming]
//!                    [--metrics] [--metrics-json PATH]
//!
//! experiments:
//!   fig1 fig2 fig3      traffic characterization (Figures 1–3)
//!   fig4                worked example (Figure 4)
//!   validation          §3.2.3 NS3-style sweep (15,840 configs at scale 1)
//!   fig5                client-mix MinRTT shift (Figure 5)
//!   fig6 fig7           global performance (Figures 6–7)
//!   fig8 table1         degradation over time (Figure 8, Table 1)
//!   fig9 fig10 table2   routing opportunity (Figures 9–10, Table 2)
//!   naive               naive-vs-model achieved-rule ablation (§4)
//!   bench               pipeline-throughput baseline (--quick, --bench-json)
//!   all                 everything (one shared study run; excludes bench)
//! ```
//!
//! `--scale` (or `EDGEPERF_SCALE`) trades fidelity for speed: it thins the
//! validation grid and shrinks the study (countries and sessions).
//! Scale 1.0 reproduces the full configuration; CI uses ~0.1.
//!
//! `--streaming` runs the study through the bounded-memory t-digest sink
//! instead of collecting every record: figures 6 and 10 are computed from
//! digest cells; experiments that need per-session records are skipped
//! with a note. Per-worker scheduler counters are printed either way.
//!
//! `--metrics` prints the observability snapshot (counters, gauges,
//! latency histograms, phase spans) to stderr after the run;
//! `--metrics-json PATH` writes the same snapshot as JSON. Either flag
//! enables recording; otherwise the metrics layer stays a dead branch.
//!
//! `--supervised` runs the study under the fault-tolerant supervisor
//! (panic isolation, retry/quarantine, watchdog deadlines).
//! `--checkpoint-dir PATH` adds periodic checkpoints there — a rerun
//! against the same directory resumes after the last merged prefix, and
//! the supervisor's `study_report.json` is written alongside the
//! checkpoint. `--fault-plan SPEC` (or `EDGEPERF_FAULT_PLAN`) injects
//! deterministic faults — `panic:K`, `stall:K`, `delay:W:MS`,
//! `malformed:N`, `mergefail:K`, `crash:K` — for chaos testing. Either
//! flag implies `--supervised`. `--quick` shrinks the study to scale 0.1
//! unless `--scale` is given.

use edgeperf_bench::{
    ablations, cc_compare, detector, env_scale, fig4, fig5, naive, pipeline_bench, study,
    validation, workload_figs,
};
use edgeperf_obs::{render_table, Metrics};
use std::fmt::Write as _;

struct Args {
    experiment: String,
    seed: u64,
    days: u32,
    sessions: u32,
    scale: f64,
    json: Option<String>,
    bench_json: Option<String>,
    quick: bool,
    streaming: bool,
    metrics: bool,
    metrics_json: Option<String>,
    supervised: bool,
    fault_plan: Option<String>,
    checkpoint_dir: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        seed: 20190521,
        days: 0, // 0 = per-experiment default
        sessions: 0,
        scale: 0.0, // resolved after parsing (depends on --quick)
        json: None,
        bench_json: None,
        quick: false,
        streaming: false,
        metrics: false,
        metrics_json: None,
        supervised: false,
        fault_plan: None,
        checkpoint_dir: None,
    };
    let mut scale_flag: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => args.seed = it.next().expect("--seed N").parse().expect("seed"),
            "--days" => args.days = it.next().expect("--days N").parse().expect("days"),
            "--sessions" => {
                args.sessions = it.next().expect("--sessions N").parse().expect("sessions")
            }
            "--scale" => scale_flag = Some(it.next().expect("--scale F").parse().expect("scale")),
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--bench-json" => args.bench_json = Some(it.next().expect("--bench-json PATH")),
            "--quick" => args.quick = true,
            "--streaming" => args.streaming = true,
            "--metrics" => args.metrics = true,
            "--metrics-json" => args.metrics_json = Some(it.next().expect("--metrics-json PATH")),
            "--supervised" => args.supervised = true,
            "--fault-plan" => args.fault_plan = Some(it.next().expect("--fault-plan SPEC")),
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(it.next().expect("--checkpoint-dir PATH"))
            }
            "--help" | "-h" => {
                eprintln!("repro <experiment> [--seed N] [--days N] [--sessions N] [--scale F] [--json PATH] [--streaming]");
                eprintln!("       repro bench [--quick] [--bench-json PATH]   pipeline throughput baseline");
                eprintln!("       --metrics prints the observability snapshot to stderr; --metrics-json PATH writes it as JSON");
                eprintln!("       --supervised [--fault-plan SPEC] [--checkpoint-dir PATH]   fault-tolerant study driver");
                eprintln!("experiments: fig1..fig10, table1, table2, fig4, validation, naive, ablations, bench, all");
                std::process::exit(0);
            }
            exp if args.experiment.is_empty() && !exp.starts_with('-') => {
                args.experiment = exp.to_string()
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.experiment.is_empty() {
        args.experiment = "all".to_string();
    }
    // --quick shrinks everything unless the scale was pinned explicitly
    // (EDGEPERF_SCALE still wins over the quick default).
    args.scale = scale_flag.unwrap_or_else(|| env_scale(if args.quick { 0.1 } else { 1.0 }));
    if args.fault_plan.is_some() || args.checkpoint_dir.is_some() {
        args.supervised = true;
    }
    args
}

fn write_json(path: &Option<String>, name: &str, value: serde_json::Value) {
    if let Some(dir) = path {
        std::fs::create_dir_all(dir).expect("create json dir");
        let file = format!("{dir}/{name}.json");
        std::fs::write(&file, serde_json::to_string_pretty(&value).unwrap())
            .unwrap_or_else(|e| panic!("write {file}: {e}"));
        eprintln!("wrote {file}");
    }
}

fn study_builder(a: &Args, metrics: &Metrics) -> study::StudyBuilder {
    let mut b = study::StudyBuilder::new().seed(a.seed).scale(a.scale).metrics(metrics);
    if a.days > 0 {
        b = b.days(a.days);
    }
    if a.sessions > 0 {
        b = b.sessions_per_group_window(a.sessions);
    }
    b
}

fn main() {
    let a = parse_args();
    let exp = a.experiment.as_str();
    let metrics = if a.metrics || a.metrics_json.is_some() {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    let mut printed = String::new();

    let needs_study =
        matches!(exp, "fig6" | "fig7" | "fig8" | "fig9" | "fig10" | "table1" | "table2" | "all");
    let mut data: Option<study::StudyData> = None;
    let mut sdata: Option<study::StreamingStudyData> = None;
    if needs_study {
        let mut b = study_builder(&a, &metrics);
        eprintln!(
            "running study ({}): days={} sessions/group/window={} country_fraction={:.2}",
            if a.supervised {
                "supervised"
            } else if a.streaming {
                "streaming sink"
            } else {
                "exact sink"
            },
            b.resolved_days(),
            b.resolved_sessions_per_group_window(),
            b.resolved_country_fraction()
        );
        let t0 = std::time::Instant::now();
        if a.supervised {
            if a.streaming {
                eprintln!("note: --supervised uses the exact sink; --streaming ignored");
            }
            if let Some(spec) = &a.fault_plan {
                let plan = edgeperf_world::FaultPlan::parse(spec).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
                eprintln!("fault plan: {plan}");
                b = b.fault_plan(plan);
            }
            if let Some(dir) = &a.checkpoint_dir {
                b = b.checkpoint_dir(dir);
            }
            match b.run_supervised() {
                Ok(d) => {
                    eprintln!("study: {} session records in {:.1?}", d.records.len(), t0.elapsed());
                    eprintln!("{}", study::render_stats(&d.stats));
                    eprint!("{}", d.report.render());
                    let report_json = serde_json::to_string_pretty(&d.report.to_value()).unwrap();
                    if let Some(dir) = &a.checkpoint_dir {
                        let file = format!("{dir}/study_report.json");
                        std::fs::create_dir_all(dir).expect("create checkpoint dir");
                        std::fs::write(&file, &report_json)
                            .unwrap_or_else(|e| panic!("write {file}: {e}"));
                        eprintln!("wrote {file}");
                    }
                    write_json(&a.json, "study_report", serde_json::parse(&report_json).unwrap());
                    data = Some(study::StudyData {
                        records: d.records,
                        dataset: d.dataset,
                        cfg: d.cfg,
                        stats: d.stats,
                    });
                }
                Err(e) => {
                    eprintln!("supervised study failed: {e}");
                    std::process::exit(3);
                }
            }
        } else if a.streaming {
            let d = b.run_streaming();
            eprintln!(
                "study: {} sessions into bounded digest cells in {:.1?}",
                d.stats.total().records_emitted,
                t0.elapsed()
            );
            eprintln!("{}", study::render_stats(&d.stats));
            sdata = Some(d);
        } else {
            let d = b.run();
            eprintln!("study: {} session records in {:.1?}", d.records.len(), t0.elapsed());
            eprintln!("{}", study::render_stats(&d.stats));
            data = Some(d);
        }
    }

    let workload_n = ((30_000.0 * a.scale) as usize).max(2_000);
    if matches!(exp, "fig1" | "fig2" | "fig3" | "all") {
        let out = workload_figs::run(a.seed, workload_n);
        let _ = writeln!(printed, "{out}");
        write_json(&a.json, "fig1-3", serde_json::to_value(&out).unwrap());
    }
    if matches!(exp, "fig4" | "all") {
        let rows = fig4::run();
        let _ = writeln!(printed, "{}", fig4::render(&rows));
        write_json(&a.json, "fig4", serde_json::to_value(&rows).unwrap());
    }
    if matches!(exp, "validation" | "all") {
        let res = validation::run(a.scale);
        let _ = writeln!(printed, "{res}");
        write_json(&a.json, "validation", serde_json::to_value(&res).unwrap());
    }
    if matches!(exp, "fig5" | "grouping" | "all") {
        let days = if a.days > 0 { a.days } else { 3 };
        let pts = fig5::run(a.seed, days, ((400.0 * a.scale) as usize).max(100));
        if matches!(exp, "fig5" | "all") {
            let _ = writeln!(printed, "{}", fig5::render(&pts));
            write_json(&a.json, "fig5", serde_json::to_value(&pts).unwrap());
        }
        let g = fig5::grouping_comparison(&pts);
        let _ = writeln!(printed, "{}", fig5::render_grouping(&g));
        write_json(&a.json, "grouping", serde_json::to_value(&g).unwrap());
    }
    if let Some(sdata) = &sdata {
        if matches!(exp, "fig6" | "all") {
            let s = {
                let _sp = metrics.span("figures.fig6");
                study::fig6_streaming(sdata)
            };
            let _ = writeln!(printed, "{}", study::render_fig6(&s));
            write_json(&a.json, "fig6", serde_json::to_value(&s).unwrap());
        }
        if matches!(exp, "fig10" | "all") {
            let d = {
                let _sp = metrics.span("figures.fig10");
                study::fig10_streaming(sdata)
            };
            let _ = writeln!(
                printed,
                "{}",
                study::render_diffs("Figure 10: MinRTT by relationship pair [streaming]", &d)
            );
            write_json(&a.json, "fig10", serde_json::to_value(&d).unwrap());
        }
        for skipped in ["fig7", "fig8", "fig9", "table1", "table2"] {
            if matches!(exp, "all") || exp == skipped {
                let _ = writeln!(
                    printed,
                    "== {skipped}: skipped — needs per-session records; rerun without --streaming ==\n"
                );
            }
        }
    }
    if let Some(data) = &data {
        if matches!(exp, "fig6" | "all") {
            let s = {
                let _sp = metrics.span("figures.fig6");
                study::fig6(data)
            };
            let _ = writeln!(printed, "{}", study::render_fig6(&s));
            write_json(&a.json, "fig6", serde_json::to_value(&s).unwrap());
        }
        if matches!(exp, "fig7" | "all") {
            let rows = {
                let _sp = metrics.span("figures.fig7");
                study::fig7(data)
            };
            let _ = writeln!(printed, "{}", study::render_fig7(&rows));
            write_json(&a.json, "fig7", serde_json::to_value(&rows).unwrap());
        }
        if matches!(exp, "fig8" | "all") {
            let d = {
                let _sp = metrics.span("figures.fig8");
                study::fig8(data)
            };
            let _ = writeln!(
                printed,
                "{}",
                study::render_diffs("Figure 8: degradation vs baseline", &d)
            );
            write_json(&a.json, "fig8", serde_json::to_value(&d).unwrap());
        }
        if matches!(exp, "table1" | "all") {
            let t = {
                let _sp = metrics.span("figures.table1");
                study::table1_blocks(data)
            };
            let _ = writeln!(printed, "{}", study::render_table1(&t));
            write_json(&a.json, "table1", serde_json::to_value(&t).unwrap());
        }
        if matches!(exp, "fig9" | "all") {
            let d = {
                let _sp = metrics.span("figures.fig9");
                study::fig9(data)
            };
            let _ = writeln!(
                printed,
                "{}",
                study::render_diffs("Figure 9: opportunity vs best alternate", &d)
            );
            write_json(&a.json, "fig9", serde_json::to_value(&d).unwrap());
        }
        if matches!(exp, "fig10" | "all") {
            let d = {
                let _sp = metrics.span("figures.fig10");
                study::fig10(data)
            };
            let _ = writeln!(
                printed,
                "{}",
                study::render_diffs("Figure 10: MinRTT by relationship pair", &d)
            );
            write_json(&a.json, "fig10", serde_json::to_value(&d).unwrap());
        }
        if matches!(exp, "table2" | "all") {
            let t = {
                let _sp = metrics.span("figures.table2");
                study::table2_outputs(data)
            };
            let _ = writeln!(printed, "{}", study::render_table2(&t));
            write_json(&a.json, "table2", serde_json::to_value(&t).unwrap());
        }
    }
    if matches!(exp, "cc" | "all") {
        let rows = cc_compare::run(a.seed, ((1_500.0 * a.scale) as usize).max(200));
        let _ = writeln!(printed, "{}", cc_compare::render(&rows));
        write_json(&a.json, "cc", serde_json::to_value(&rows).unwrap());
    }
    if matches!(exp, "detector" | "all") {
        let days = if a.days > 0 { a.days.min(3) } else { 1 };
        let s = detector::run(a.seed, days, ((160.0 * a.scale) as u32).max(40), 10.0);
        let _ = writeln!(printed, "{s}");
        write_json(&a.json, "detector", serde_json::to_value(&s).unwrap());
    }
    if matches!(exp, "ablations" | "all") {
        let rows = ablations::run(a.seed, ((12.0 * a.scale) as usize).max(3));
        let _ = writeln!(printed, "{}", ablations::render(&rows));
        write_json(&a.json, "ablations", serde_json::to_value(&rows).unwrap());
    }
    if matches!(exp, "naive" | "all") {
        let r = naive::run(a.seed, ((2_000.0 * a.scale) as usize).max(300));
        let _ = writeln!(printed, "{r}");
        write_json(&a.json, "naive", serde_json::to_value(&r).unwrap());
    }
    // Deliberately not part of `all`: it re-runs the study several times
    // to time each ingestion path.
    if matches!(exp, "bench") {
        let r = pipeline_bench::run_observed(
            &pipeline_bench::BenchOptions { seed: a.seed, quick: a.quick },
            &metrics,
        );
        let _ = writeln!(printed, "{}", pipeline_bench::render(&r));
        write_json(&a.json, "bench", serde_json::to_value(&r).unwrap());
        if let Some(path) = &a.bench_json {
            std::fs::write(path, serde_json::to_string_pretty(&r).unwrap())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }

    if printed.is_empty() {
        eprintln!("unknown experiment '{exp}'; try --help");
        std::process::exit(2);
    }
    print!("{printed}");

    if metrics.is_enabled() {
        let snap = metrics.snapshot();
        if let Some(path) = &a.metrics_json {
            std::fs::write(path, serde_json::to_string_pretty(&snap).unwrap())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        if a.metrics {
            eprintln!("{}", render_table(&snap));
        }
    }
}
