//! Fleet load generation: catchment-routed, chunk-barriered replay
//! across a multi-PoP fleet, with mid-run PoP failover, proven
//! bit-identical to a single-node control run.
//!
//! Routing mirrors anycast: each user group's client key is homed via
//! the coordinator's `home` command, and the group's full record
//! substream is replayed straight to that PoP's ingest socket over the
//! PR 9 exactly-once session protocol ([`replay_with_resume`]). The
//! replay is chunked on global event time — all streams quiesce at
//! each boundary before any advances — so cross-PoP skew stays within
//! half the lateness bound and nothing is ever late.
//!
//! **Failover.** A [`FleetChaosPlan`] kill fires at a chunk barrier:
//! the coordinator stops the PoP (its un-drained state is discarded)
//! and re-homes its catchment; for every survivor inheriting groups
//! the replayer opens a *new* session whose payload is the inherited
//! groups' full substream from record zero. The server acks zero for
//! an unknown session, so resume naturally replays everything, and the
//! new home rebuilds exactly the per-group insertion sequences a
//! single-node run would have seen. The lateness budget that makes the
//! catch-up safe: a kill at event time `T` is only valid while
//! `T <= lateness/2`, because the survivors' watermark at the kill
//! barrier is then `<= T + lateness/2 - lateness <= 0` — older than
//! every inherited record.

use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::time::Instant;

use edgeperf::serve::WireParser;
use edgeperf_fleet::{ClientKey, Fleet, FleetChaosPlan, FleetClient, FleetConfig};
use edgeperf_live::{
    cell_line_sort_key, replay_with_resume, CellLine, CellQuery, ChaosPlan, LiveClient,
    ResumeInput, RetryPolicy, WireChaos,
};
use edgeperf_obs::Metrics;
use serde::{Deserialize, Serialize};

use crate::loadgen::{generate_lines, hosted_builder, render_rows, LoadgenConfig};

/// Fleet-run shape: how many PoPs to host and what to break.
#[derive(Debug, Clone)]
pub struct FleetRunOpts {
    /// PoPs in the fleet (self-hosted runs; external coordinators
    /// report their own).
    pub pops: u16,
    /// Ingest workers per PoP.
    pub workers: usize,
    /// PoP kills to inject at chunk barriers.
    pub plan: FleetChaosPlan,
}

impl Default for FleetRunOpts {
    fn default() -> FleetRunOpts {
        FleetRunOpts { pops: 2, workers: 2, plan: FleetChaosPlan::default() }
    }
}

/// What a fleet replay achieved, fleet-wide.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FleetReport {
    /// The canonical fleet chaos plan that was injected.
    pub plan: String,
    /// PoPs the fleet started with.
    pub pops: u64,
    /// PoPs still alive at the end.
    pub alive_pops: u64,
    /// Ingest workers per PoP.
    pub workers: u64,
    /// Sessions replayed.
    pub sessions: u64,
    /// Distinct user groups routed through the catchment.
    pub groups: u64,
    /// Final cumulative acks across live sessions (must equal
    /// `sessions`: every record acked exactly once fleet-wide).
    pub acked: u64,
    /// Fleet-merged records folded into windows (must equal `sessions`).
    pub accepted: u64,
    /// Fleet-merged rejected records (0 in a clean run).
    pub rejected: u64,
    /// Fleet-merged late records (0 in a clean run).
    pub late: u64,
    /// Every alive PoP drained cleanly at shutdown.
    pub drained: bool,
    /// PoP kills that fired.
    pub kills: u64,
    /// Client keys the coordinator re-homed across all kills.
    pub rehomed_groups: u64,
    /// Replay sessions opened (initial per-PoP streams + failover
    /// catch-up streams).
    pub streams: u64,
    /// Coordinator fan-out connections opened (reuse makes this small).
    pub fanout_connects: u64,
    /// Coordinator fan-out reconnects after transport errors.
    pub fanout_reconnects: u64,
    /// Last fleet cells merge latency, ms.
    pub merge_ms: f64,
    /// Rows in the fleet-merged full-range cells view.
    pub fleet_cells: u64,
    /// Final per-PoP catchment share over observed client keys.
    pub catchment_share: Vec<f64>,
    /// Fleet-merged cells are f64-bit-identical (and byte-identical
    /// when serialized) to a single-node control over the same records.
    pub bit_identical_to_single_node: bool,
    /// Wall-clock replay time (s), excluding the control run.
    pub elapsed_s: f64,
}

/// One replay session: a (pop, session-id) pair carrying the global
/// record indices homed there, replayed as growing prefixes.
struct Stream {
    addr: String,
    session: u64,
    /// Ascending global record indices this stream carries.
    indices: Vec<usize>,
    /// The wire lines at those indices, in the same order.
    lines: Vec<String>,
    /// Lines already replayed and acked (a prefix length).
    sent: usize,
    /// Last cumulative ack from the server.
    acked: u64,
    pop: u16,
}

/// The client key [`generate_lines`] encodes for group `g` — the
/// catchment input. Prefix ↔ group is 1:1, which is what makes each
/// group's whole insertion sequence live on exactly one PoP at a time.
fn group_key(g: usize) -> ClientKey {
    ClientKey {
        prefix_base: 0x0A00_0000 + ((g as u32) << 8),
        prefix_len: 24,
        country: (g % 40) as u16,
        continent: (g % 6) as u8,
    }
}

fn session_id(seed: u64, generation: u64, pop: u16) -> u64 {
    (seed << 20) ^ (generation << 10) ^ u64::from(pop)
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

fn metrics_gauge(metrics_json: &str, name: &str) -> f64 {
    let Ok(v) = serde_json::parse(metrics_json) else { return 0.0 };
    match v.get("gauges").and_then(|g| g.get(name)) {
        Some(serde_json::Value::Num(n)) => *n,
        _ => 0.0,
    }
}

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

/// Strict f64-bit-identity between two canonical cell sequences: same
/// keys in the same order, every float field equal under
/// [`f64::to_bits`], and byte-identical serialized rows.
fn cells_bit_identical(a: &[CellLine], b: &[CellLine]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            cell_line_sort_key(x) == cell_line_sort_key(y)
                && x.relationship == y.relationship
                && x.longer_path == y.longer_path
                && x.more_prepended == y.more_prepended
                && x.n == y.n
                && x.n_tested == y.n_tested
                && x.bytes == y.bytes
                && x.min_rtt_p50.to_bits() == y.min_rtt_p50.to_bits()
                && opt_bits(x.min_rtt_var) == opt_bits(y.min_rtt_var)
                && opt_bits(x.hdratio_p50) == opt_bits(y.hdratio_p50)
                && opt_bits(x.hdratio_var) == opt_bits(y.hdratio_var)
        })
        && render_rows(a) == render_rows(b)
}

/// Single-node control: the same lines into one server, then the
/// canonical `digest` export (sorted cells + accepted under one sync
/// barrier). The fleet view must match this bit-for-bit.
fn run_control(
    cfg: &LoadgenConfig,
    workers: usize,
    lines: &[String],
    policy: &RetryPolicy,
) -> io::Result<(u64, Vec<CellLine>)> {
    let server = hosted_builder(cfg, workers)
        .retention_windows(cfg.windows as usize + 4)
        .start(Arc::new(WireParser::new(cfg.target_bps)))
        .map_err(|e| invalid(e.to_string()))?;
    let mut wire = WireChaos::new(&ChaosPlan::default());
    replay_with_resume(
        server.addr(),
        session_id(cfg.seed, 0, u16::MAX),
        ResumeInput::Lines(lines),
        policy,
        &mut wire,
    )?;
    let mut client = LiveClient::connect(server.addr())?;
    let full = CellQuery { from_window: Some(0), ..CellQuery::default() };
    let (accepted, rows) = client.digest_query(&full)?;
    client.shutdown()?;
    drop(client);
    let _ = server.join();
    Ok((accepted, rows))
}

/// Self-host a fleet matching `cfg`'s geometry, replay through it (see
/// [`run_fleet_at`]), and shut it down.
pub fn run_fleet(cfg: &LoadgenConfig, opts: &FleetRunOpts) -> io::Result<FleetReport> {
    let fleet_cfg = FleetConfig {
        pops: opts.pops,
        workers: opts.workers,
        addr: "127.0.0.1:0".to_string(),
        window_ms: cfg.window_ms,
        lateness_ms: cfg.lateness_ms,
        retention_windows: cfg.windows as usize + 4,
        seed: cfg.seed,
    };
    let handle =
        Fleet::start(&fleet_cfg, Arc::new(WireParser::new(cfg.target_bps)), &Metrics::enabled())
            .map_err(|e| invalid(e.to_string()))?;
    let report = run_fleet_at(&handle.addr().to_string(), cfg, opts);
    if report.is_err() {
        // A successful run ends with `fleet shutdown`; on the error
        // paths the coordinator is still accepting, so drain it here or
        // the join below would block forever.
        if let Ok(mut coord) = FleetClient::connect(handle.addr()) {
            let _ = coord.shutdown();
        }
    }
    let _ = handle.join();
    report
}

/// Replay `cfg.sessions` through the fleet behind the coordinator at
/// `addr`: home every group, stream each PoP's substream under the
/// exactly-once session protocol with global chunk barriers, fire the
/// plan's kills at barriers, fail over, and verify the merged fleet
/// view against a single-node control. Always ends with
/// `fleet shutdown`.
pub fn run_fleet_at(
    addr: &str,
    cfg: &LoadgenConfig,
    opts: &FleetRunOpts,
) -> io::Result<FleetReport> {
    let lines = generate_lines(cfg);
    let sessions = cfg.sessions;
    let groups = cfg.groups.max(1);
    let span_ms = f64::from(cfg.windows) * cfg.window_ms;
    let per_record_ms = span_ms / sessions.max(1) as f64;

    // Failover lateness budget (module docs): a kill at event time T
    // is only recoverable while T <= lateness/2.
    let kills = opts.plan.kills_sorted();
    for kill in &kills {
        let ts = kill.after_records as f64 * per_record_ms;
        if kill.after_records >= sessions as u64 || ts > cfg.lateness_ms / 2.0 {
            return Err(invalid(format!(
                "kill of PoP {} at record {} (event time {ts:.0} ms) breaks the failover \
                 budget: kills must land before {} records (lateness/2 = {:.0} ms)",
                kill.pop,
                kill.after_records,
                (cfg.lateness_ms / 2.0 / per_record_ms) as u64,
                cfg.lateness_ms / 2.0,
            )));
        }
    }

    let started = Instant::now();
    let mut coord = FleetClient::connect(addr)?;
    let pops_at_start = coord.pops()?.len() as u64;

    // Home every group through the coordinator's catchment.
    let mut group_home: Vec<u16> = Vec::with_capacity(groups);
    let mut pop_addr: BTreeMap<u16, String> = BTreeMap::new();
    for g in 0..groups {
        let (pop, addr) = coord.home(&group_key(g))?;
        group_home.push(pop);
        pop_addr.insert(pop, addr);
    }

    // One initial stream per PoP that owns at least one group.
    let mut streams: Vec<Stream> = Vec::new();
    for (&pop, addr) in &pop_addr {
        let indices: Vec<usize> = (0..sessions).filter(|i| group_home[i % groups] == pop).collect();
        if indices.is_empty() {
            continue;
        }
        let stream_lines = indices.iter().map(|&i| lines[i].clone()).collect();
        streams.push(Stream {
            addr: addr.clone(),
            session: session_id(cfg.seed, 1, pop),
            indices,
            lines: stream_lines,
            sent: 0,
            acked: 0,
            pop,
        });
    }
    let mut total_streams = streams.len() as u64;

    // Chunk the replay so each barrier-to-barrier stretch spans at most
    // half the lateness bound in event time.
    let chunk = ((cfg.lateness_ms / 2.0 / per_record_ms) as usize).max(1);
    let policy = RetryPolicy { seed: cfg.seed, ..RetryPolicy::default() };
    let mut no_chaos = WireChaos::new(&ChaosPlan::default());
    let mut generation = 1u64;
    let mut kills_fired = 0u64;
    let mut rehomed_total = 0u64;
    let mut kill_iter = kills.iter().peekable();
    let mut b_prev = 0usize;
    let mut boundaries: Vec<usize> = (1..sessions.div_ceil(chunk)).map(|k| k * chunk).collect();
    boundaries.push(sessions);
    for b in boundaries {
        // Kills land on barriers: everything sent so far is acked and
        // applied, so the re-homed substreams rebuild complete
        // per-group sequences on their new home.
        while let Some(kill) = kill_iter.peek() {
            if kill.after_records as usize > b_prev {
                break;
            }
            let report = coord
                .kill(kill.pop)
                .map_err(|e| invalid(format!("kill of PoP {}: {e}", kill.pop)))?;
            kills_fired += 1;
            rehomed_total += report.rehomed;
            generation += 1;
            streams.retain(|s| s.pop != kill.pop);
            // Re-home the dead PoP's groups and open one catch-up
            // session per inheriting survivor, carrying the full
            // substream of every inherited group from record zero.
            let mut inherited: BTreeMap<u16, Vec<usize>> = BTreeMap::new();
            for (g, home) in group_home.iter_mut().enumerate() {
                if *home != kill.pop {
                    continue;
                }
                let (new_home, new_addr) = coord.home(&group_key(g))?;
                *home = new_home;
                pop_addr.insert(new_home, new_addr);
                inherited.entry(new_home).or_default().push(g);
            }
            for (pop, inherited_groups) in inherited {
                let indices: Vec<usize> =
                    (0..sessions).filter(|i| inherited_groups.contains(&(i % groups))).collect();
                let stream_lines = indices.iter().map(|&i| lines[i].clone()).collect();
                let mut stream = Stream {
                    addr: pop_addr[&pop].clone(),
                    session: session_id(cfg.seed, generation, pop),
                    indices,
                    lines: stream_lines,
                    sent: 0,
                    acked: 0,
                    pop,
                };
                // Catch the new session up to the barrier immediately:
                // the survivors' watermark is still older than every
                // inherited record (the budget check above).
                replay_stream_to(&mut stream, b_prev, &policy, &mut no_chaos)?;
                streams.push(stream);
                total_streams += 1;
            }
            kill_iter.next();
        }
        for stream in &mut streams {
            replay_stream_to(stream, b, &policy, &mut no_chaos)?;
        }
        b_prev = b;
    }

    let acked: u64 = streams.iter().map(|s| s.acked).sum();

    // The merged fleet view, while windows are still live.
    let full = CellQuery { from_window: Some(0), ..CellQuery::default() };
    let fleet_rows = coord.cells(&full)?;
    let pops_info = coord.pops()?;
    let metrics_json = coord.metrics_json()?;

    // Single-node control over the very same lines.
    let (_, control_rows) = run_control(cfg, opts.workers, &lines, &policy)?;
    let bit_identical = cells_bit_identical(&fleet_rows, &control_rows);

    let elapsed_s = started.elapsed().as_secs_f64();
    let merged = coord.shutdown()?;

    Ok(FleetReport {
        plan: opts.plan.to_string(),
        pops: pops_at_start,
        alive_pops: pops_info.iter().filter(|p| p.alive).count() as u64,
        workers: opts.workers as u64,
        sessions: sessions as u64,
        groups: groups as u64,
        acked,
        accepted: merged.accepted,
        rejected: merged.rejected,
        late: merged.late,
        drained: merged.drained,
        kills: kills_fired,
        rehomed_groups: rehomed_total,
        streams: total_streams,
        fanout_connects: crate::loadgen::metrics_counter(&metrics_json, "fleet.fanout.connects"),
        fanout_reconnects: crate::loadgen::metrics_counter(
            &metrics_json,
            "fleet.fanout.reconnects",
        ),
        merge_ms: metrics_gauge(&metrics_json, "fleet.merge.last_ms"),
        fleet_cells: fleet_rows.len() as u64,
        catchment_share: pops_info.iter().map(|p| p.share).collect(),
        bit_identical_to_single_node: bit_identical,
        elapsed_s,
    })
}

/// Advance one stream to the global barrier `b`: replay the prefix of
/// its lines whose global index is below `b` and block until the
/// server acks (and has applied) all of it.
fn replay_stream_to(
    stream: &mut Stream,
    b: usize,
    policy: &RetryPolicy,
    wire: &mut WireChaos,
) -> io::Result<()> {
    let k = stream.indices.partition_point(|&i| i < b);
    if k <= stream.sent {
        return Ok(());
    }
    let report = replay_with_resume(
        &stream.addr,
        stream.session,
        ResumeInput::Lines(&stream.lines[..k]),
        policy,
        wire,
    )?;
    if report.acked != k as u64 {
        return Err(io::Error::other(format!(
            "stream for PoP {} quiesced at {} of {k} lines",
            stream.pop, report.acked
        )));
    }
    stream.sent = k;
    stream.acked = report.acked;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_keys_match_the_generated_wire_lines() {
        let cfg = LoadgenConfig { sessions: 32, groups: 8, ..LoadgenConfig::default() };
        let lines = generate_lines(&cfg);
        for (i, line) in lines.iter().enumerate() {
            let key = group_key(i % cfg.groups);
            assert!(
                line.contains(&format!("\"prefix_base\":{}", key.prefix_base)),
                "line {i} prefix mismatch: {line}"
            );
            assert!(
                line.contains(&format!("\"country\":{}", key.country)),
                "line {i} country mismatch"
            );
            assert!(
                line.contains(&format!("\"continent\":{}", key.continent)),
                "line {i} continent mismatch"
            );
        }
    }

    #[test]
    fn the_failover_budget_is_enforced() {
        let cfg = LoadgenConfig {
            sessions: 3_000,
            groups: 16,
            windows: 6,
            window_ms: 1_000.0,
            lateness_ms: 2_100.0,
            ..LoadgenConfig::default()
        };
        // span 6000 ms, 2 ms/record: lateness/2 = 1050 ms => 525 records.
        let opts = FleetRunOpts {
            plan: FleetChaosPlan::parse("kill:0@2000").unwrap(),
            ..FleetRunOpts::default()
        };
        let err = run_fleet(&cfg, &opts).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("failover budget"), "{err}");
    }
}
