//! Figures 1–3: traffic characterization (session durations, busy time,
//! bytes per session/response, transactions per session).

use edgeperf_core::{HttpVersion, SECOND};
use edgeperf_netsim::{FastFlow, PathState};
use edgeperf_stats::cdf::{CdfBuilder, WeightedCdf};
use edgeperf_tcp::{TcpConfig, MILLISECOND};
use edgeperf_workload::{EndpointKind, WorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// A rendered CDF series plus its headline quantiles.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, cumulative fraction) points.
    pub points: Vec<(f64, f64)>,
    /// (q, value) quantiles.
    pub quantiles: Vec<(f64, f64)>,
}

impl Series {
    fn from_cdf(label: &str, cdf: &WeightedCdf, n_points: usize) -> Series {
        Series {
            label: label.to_string(),
            points: cdf.series(n_points),
            quantiles: cdf.quantiles(&[0.1, 0.25, 0.5, 0.75, 0.9, 0.99]),
        }
    }
}

/// Output of the Figure 1–3 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadFigures {
    /// Fig 1a: session duration CDFs (seconds) for All/H1/H2.
    pub fig1a_duration: Vec<Series>,
    /// Fig 1b: percent of session time busy, CDFs for All/H1/H2.
    pub fig1b_busy: Vec<Series>,
    /// Fig 2: bytes CDFs for sessions / all responses / media responses.
    pub fig2_bytes: Vec<Series>,
    /// Fig 3: transactions-per-session CDFs for All/H1/H2.
    pub fig3_txns: Vec<Series>,
    /// Headline statistics compared against the paper's §2.3 numbers.
    pub headlines: Headlines,
}

/// Scalar shape statistics the paper quotes in §2.3.
#[derive(Debug, Clone, Serialize)]
pub struct Headlines {
    /// Fraction of sessions shorter than 1 s (paper: 0.074).
    pub sessions_under_1s: f64,
    /// Fraction shorter than 60 s (paper: 0.33).
    pub sessions_under_60s: f64,
    /// Fraction longer than 180 s (paper: 0.20).
    pub sessions_over_180s: f64,
    /// Fraction of HTTP/1.1 sessions under 60 s (paper: 0.44).
    pub h1_under_60s: f64,
    /// Fraction of HTTP/2 sessions under 60 s (paper: 0.26).
    pub h2_under_60s: f64,
    /// Fraction of sessions busy less than 10% of their life (paper: ~0.75–0.80).
    pub busy_under_10pct: f64,
    /// Fraction of sessions transferring < 10 kB (paper: 0.58).
    pub sessions_under_10kb: f64,
    /// Median response size, bytes (paper: < 6 kB).
    pub median_response_bytes: f64,
    /// Median media response size, bytes (paper: ≈19 kB).
    pub median_media_response_bytes: f64,
    /// Fraction of sessions with < 5 transactions (paper: > 0.8).
    pub sessions_under_5_txns: f64,
    /// Byte share of sessions with ≥ 50 transactions (paper: > 0.5).
    pub heavy_session_byte_share: f64,
}

/// Generate `n_sessions` and characterize them (Figures 1a, 1b, 2, 3).
///
/// Busy time is measured by replaying each session against a reference
/// clean path (20 Mbps, 40 ms) with the fast TCP model — matching the
/// paper's definition (time with data outstanding / session lifetime).
pub fn run(seed: u64, n_sessions: usize) -> WorkloadFigures {
    let cfg = WorkloadConfig::default();
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let state = PathState {
        base_rtt: 40 * MILLISECOND,
        standing_queue: 0,
        jitter_max: 2 * MILLISECOND,
        bottleneck_bps: 20_000_000,
        loss: 0.0,
    };

    let mut dur = [CdfBuilder::new(), CdfBuilder::new(), CdfBuilder::new()]; // all, h1, h2
    let mut busy = [CdfBuilder::new(), CdfBuilder::new(), CdfBuilder::new()];
    let mut txns = [CdfBuilder::new(), CdfBuilder::new(), CdfBuilder::new()];
    let mut bytes_sessions = CdfBuilder::new();
    let mut bytes_responses = CdfBuilder::new();
    let mut bytes_media = CdfBuilder::new();

    let (mut under_1s, mut under_60s, mut over_180s) = (0usize, 0usize, 0usize);
    let (mut h1_under_60, mut h1_n, mut h2_under_60, mut h2_n) = (0usize, 0usize, 0usize, 0usize);
    let mut busy_under_10 = 0usize;
    let mut under_10kb = 0usize;
    let mut under_5_txn = 0usize;
    let (mut heavy_bytes, mut total_bytes) = (0u64, 0u64);

    for _ in 0..n_sessions {
        let plan = cfg.generate(&mut rng);
        let secs = plan.duration as f64 / SECOND as f64;
        let vi = match plan.http {
            HttpVersion::H1 => 1,
            HttpVersion::H2 => 2,
        };

        // Busy time: replay transfers on the reference path.
        let mut flow = FastFlow::new(TcpConfig::default());
        let mut busy_ns = 0u64;
        for t in &plan.transactions {
            busy_ns += flow.transfer(t.bytes, &state, &mut rng).ttotal;
        }
        let busy_pct = 100.0 * (busy_ns as f64 / plan.duration.max(1) as f64).min(1.0);

        for idx in [0, vi] {
            dur[idx].push(secs.min(300.0));
            busy[idx].push(busy_pct);
            txns[idx].push(plan.transactions.len() as f64);
        }
        let total = plan.total_bytes();
        bytes_sessions.push(total as f64);
        for t in &plan.transactions {
            bytes_responses.push(t.bytes as f64);
            if plan.endpoint != EndpointKind::Api {
                bytes_media.push(t.bytes as f64);
            }
        }

        under_1s += usize::from(secs < 1.0);
        under_60s += usize::from(secs < 60.0);
        over_180s += usize::from(secs > 180.0);
        match plan.http {
            HttpVersion::H1 => {
                h1_n += 1;
                h1_under_60 += usize::from(secs < 60.0);
            }
            HttpVersion::H2 => {
                h2_n += 1;
                h2_under_60 += usize::from(secs < 60.0);
            }
        }
        busy_under_10 += usize::from(busy_pct < 10.0);
        under_10kb += usize::from(total < 10_000);
        under_5_txn += usize::from(plan.transactions.len() < 5);
        total_bytes += total;
        if plan.transactions.len() >= 50 {
            heavy_bytes += total;
        }
    }

    let n = n_sessions as f64;
    let frac = |x: usize| x as f64 / n;
    let resp_cdf = bytes_responses.build();
    let media_cdf = bytes_media.build();
    let labels = ["All", "HTTP/1.1", "HTTP/2"];
    let build3 = |builders: [CdfBuilder; 3]| -> Vec<Series> {
        builders.into_iter().zip(labels).map(|(b, l)| Series::from_cdf(l, &b.build(), 60)).collect()
    };

    WorkloadFigures {
        headlines: Headlines {
            sessions_under_1s: frac(under_1s),
            sessions_under_60s: frac(under_60s),
            sessions_over_180s: frac(over_180s),
            h1_under_60s: h1_under_60 as f64 / h1_n.max(1) as f64,
            h2_under_60s: h2_under_60 as f64 / h2_n.max(1) as f64,
            busy_under_10pct: frac(busy_under_10),
            sessions_under_10kb: frac(under_10kb),
            median_response_bytes: resp_cdf.quantile(0.5),
            median_media_response_bytes: media_cdf.quantile(0.5),
            sessions_under_5_txns: frac(under_5_txn),
            heavy_session_byte_share: heavy_bytes as f64 / total_bytes.max(1) as f64,
        },
        fig1a_duration: build3(dur),
        fig1b_busy: build3(busy),
        fig2_bytes: vec![
            Series::from_cdf("Sessions", &bytes_sessions.build(), 60),
            Series::from_cdf("All Responses", &resp_cdf, 60),
            Series::from_cdf("Media Responses", &media_cdf, 60),
        ],
        fig3_txns: build3(txns),
    }
}

impl std::fmt::Display for WorkloadFigures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let h = &self.headlines;
        writeln!(f, "== Figures 1-3: traffic characterization ==")?;
        writeln!(f, "{:<44} {:>9} {:>9}", "statistic", "measured", "paper")?;
        let rows: Vec<(&str, f64, &str)> = vec![
            ("sessions < 1 s", h.sessions_under_1s, "0.074"),
            ("sessions < 60 s", h.sessions_under_60s, "0.33"),
            ("sessions > 180 s", h.sessions_over_180s, "0.20"),
            ("HTTP/1.1 sessions < 60 s", h.h1_under_60s, "0.44"),
            ("HTTP/2 sessions < 60 s", h.h2_under_60s, "0.26"),
            ("sessions busy < 10% of lifetime", h.busy_under_10pct, "~0.75+"),
            ("sessions transferring < 10 kB", h.sessions_under_10kb, "0.58"),
            ("median response bytes", h.median_response_bytes, "< 6000"),
            ("median media response bytes", h.median_media_response_bytes, "~19000"),
            ("sessions with < 5 transactions", h.sessions_under_5_txns, "> 0.8"),
            ("byte share of >= 50-txn sessions", h.heavy_session_byte_share, "> 0.5"),
        ];
        for (label, v, paper) in rows {
            writeln!(f, "{label:<44} {v:>9.3} {paper:>9}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_have_shape_close_to_paper() {
        let out = run(11, 4_000);
        let h = &out.headlines;
        assert!(h.sessions_under_1s > 0.01 && h.sessions_under_1s < 0.3);
        assert!(h.h1_under_60s > h.h2_under_60s, "H1 sessions end sooner");
        assert!(h.busy_under_10pct > 0.5, "sessions are idle-dominated: {}", h.busy_under_10pct);
        assert!(h.median_response_bytes < 12_000.0);
        assert!(h.median_media_response_bytes > 8_000.0);
        assert!(h.heavy_session_byte_share > 0.35);
        assert!(h.sessions_under_5_txns > 0.5);
        assert_eq!(out.fig1a_duration.len(), 3);
        assert_eq!(out.fig2_bytes.len(), 3);
    }

    #[test]
    fn deterministic() {
        let a = run(1, 500);
        let b = run(1, 500);
        assert_eq!(a.headlines.median_response_bytes, b.headlines.median_response_bytes);
        assert_eq!(a.fig3_txns[0].points, b.fig3_txns[0].points);
    }
}
