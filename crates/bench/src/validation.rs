//! §3.2.3 validation: the NS3-style simulation sweep.
//!
//! 15,840 configurations — bottleneck 0.5–5 Mbps, RTT 20–200 ms, initial
//! cwnd 1–50 segments, transfer size 1–500 packets — each run through the
//! packet-level simulator under ideal conditions (no loss, no jitter,
//! deep queue, delayed ACKs disabled). For configurations whose transfer
//! can test the bottleneck rate (`Gtestable > Gbottleneck`) the estimated
//! goodput must never overestimate the bottleneck and should usually be
//! close (the paper reports a 99th-percentile relative error of 0.066).

use edgeperf_core::gtestable::gtestable_bps;
use edgeperf_core::tmodel::delivery_rate;
use edgeperf_core::MILLISECOND;
use edgeperf_netsim::{FlowSim, PathConfig};
use edgeperf_tcp::{TcpConfig, SECOND};
use serde::Serialize;

/// Result of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ValidationResult {
    /// Configurations simulated.
    pub configs: usize,
    /// Configurations capable of testing their bottleneck rate.
    pub capable: usize,
    /// Of the capable, how many overestimated the bottleneck (paper: 0).
    pub overestimates: usize,
    /// Quantiles of the relative error (Gbottleneck − G)/Gbottleneck.
    pub err_p50: f64,
    /// 90th percentile relative error.
    pub err_p90: f64,
    /// 99th percentile relative error (paper: 0.066).
    pub err_p99: f64,
    /// Worst relative error.
    pub err_max: f64,
}

/// Grid axes. `fraction` thins every axis (test-scale knob); 1.0 gives
/// the full 10 × 9 × 11 × 16 = 15,840-point grid.
pub fn grid(fraction: f64) -> Vec<(u64, u64, u32, u64)> {
    let thin = |v: Vec<f64>| -> Vec<f64> {
        let keep = ((v.len() as f64 * fraction).ceil() as usize).clamp(2, v.len());
        let step = v.len() as f64 / keep as f64;
        (0..keep).map(|i| v[(i as f64 * step) as usize]).collect()
    };
    let bws = thin((1..=10).map(|i| i as f64 * 0.5e6).collect()); // 0.5–5 Mbps
    let rtts = thin((0..9).map(|i| 20.0 + 22.5 * i as f64).collect()); // 20–200 ms
    let iws = thin(vec![1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 10.0, 16.0, 24.0, 32.0, 50.0]);
    let sizes = thin(
        (0..16)
            .map(|i| (500.0f64 / 1.0).powf(i as f64 / 15.0)) // log-spaced 1–500
            .collect(),
    );
    let mut out = Vec::new();
    for &bw in &bws {
        for &rtt in &rtts {
            for &iw in &iws {
                for &size in &sizes {
                    out.push((
                        bw as u64,
                        (rtt * MILLISECOND as f64) as u64,
                        iw as u32,
                        (size.round() as u64).max(1),
                    ));
                }
            }
        }
    }
    out
}

/// Run one grid point; returns `(capable, relative_error)` —
/// `None` if the transfer could not test the bottleneck rate.
pub fn run_config(bw_bps: u64, rtt: u64, iw: u32, size_pkts: u64) -> Option<f64> {
    const MSS: u64 = 1_460;
    let tcp = TcpConfig::ns3_validation(iw);
    let mut sim = FlowSim::new(tcp, PathConfig::ideal(bw_bps, rtt), 42);
    let bytes = size_pkts * MSS;
    sim.schedule_write(0, bytes);
    let res = sim.run(3_600 * SECOND);
    let w = res.writes[0];
    let (t0, wnic) = w.first_tx?;
    let t2 = w.t_second_last_ack?;
    let min_rtt = res.info.min_rtt?;
    let measured_bytes = bytes.checked_sub(w.last_packet_bytes? as u64)?;
    if measured_bytes == 0 || t2 <= t0 {
        return None;
    }

    // Capability gate: can this transfer even test the bottleneck rate?
    let g_testable = gtestable_bps(measured_bytes, wnic as u64, min_rtt);
    if g_testable <= bw_bps as f64 {
        return None;
    }
    let g = delivery_rate(measured_bytes, wnic as u64, min_rtt, t2 - t0)
        .unwrap_or(f64::INFINITY)
        .min(g_testable);
    Some((bw_bps as f64 - g) / bw_bps as f64)
}

/// Run the sweep at the given grid fraction.
pub fn run(fraction: f64) -> ValidationResult {
    let grid = grid(fraction);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let chunk = grid.len().div_ceil(threads);
    let mut errors: Vec<f64> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in grid.chunks(chunk) {
            handles.push(s.spawn(move || {
                c.iter()
                    .filter_map(|&(bw, rtt, iw, size)| run_config(bw, rtt, iw, size))
                    .collect::<Vec<f64>>()
            }));
        }
        for h in handles {
            errors.extend(h.join().expect("validation worker panicked"));
        }
    });
    errors.sort_unstable_by(f64::total_cmp);
    let q = |p: f64| {
        if errors.is_empty() {
            f64::NAN
        } else {
            edgeperf_stats::quantile::quantile_sorted(&errors, p)
        }
    };
    ValidationResult {
        configs: grid.len(),
        capable: errors.len(),
        overestimates: errors.iter().filter(|&&e| e < -1e-9).count(),
        err_p50: q(0.5),
        err_p90: q(0.9),
        err_p99: q(0.99),
        err_max: errors.last().copied().unwrap_or(f64::NAN),
    }
}

impl std::fmt::Display for ValidationResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== §3.2.3 validation sweep ==")?;
        writeln!(
            f,
            "configurations: {}   capable of testing bottleneck: {}",
            self.configs, self.capable
        )?;
        writeln!(f, "overestimates of bottleneck rate: {} (paper: 0)", self.overestimates)?;
        writeln!(f, "relative error (bottleneck - estimate)/bottleneck:")?;
        writeln!(
            f,
            "  p50 = {:.3}   p90 = {:.3}   p99 = {:.3} (paper p99: 0.066)   max = {:.3}",
            self.err_p50, self.err_p90, self.err_p99, self.err_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_has_paper_size() {
        assert_eq!(grid(1.0).len(), 15_840);
    }

    #[test]
    fn thinned_grid_is_smaller_but_valid() {
        let g = grid(0.25);
        assert!(g.len() < 2_000 && g.len() > 16, "len = {}", g.len());
        for (bw, rtt, iw, size) in g {
            assert!((500_000..=5_000_000).contains(&bw));
            assert!((20 * MILLISECOND..=200 * MILLISECOND).contains(&rtt));
            assert!((1..=50).contains(&iw));
            assert!((1..=500).contains(&size));
        }
    }

    #[test]
    fn large_transfer_estimates_bottleneck_accurately() {
        // 500 packets at 2 Mbps, 60 ms, IW10: definitely capable.
        let err = run_config(2_000_000, 60 * MILLISECOND, 10, 500).expect("capable");
        assert!(err >= -1e-9, "overestimate: {err}");
        assert!(err < 0.15, "error too large: {err}");
    }

    #[test]
    fn tiny_transfer_cannot_test() {
        // 1 packet can never test 5 Mbps at 200 ms.
        assert!(run_config(5_000_000, 200 * MILLISECOND, 10, 1).is_none());
    }

    #[test]
    fn mini_sweep_never_overestimates() {
        let r = run(0.4);
        assert!(r.capable > 50, "too few capable configs: {}", r.capable);
        assert_eq!(r.overestimates, 0, "estimator must never overestimate");
        assert!(r.err_p99 < 0.25, "p99 error = {}", r.err_p99);
        assert!(r.err_p50 < 0.12, "p50 error = {}", r.err_p50);
    }
}
