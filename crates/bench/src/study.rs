//! The global study: Figures 6–10 and Tables 1–2 over a full synthetic
//! world run.

use edgeperf_analysis::figures::{
    fig10_by_relationship, fig6_hdratio, fig6_minrtt, fig7_hdratio_by_minrtt, fig8_degradation,
    fig9_opportunity, RelPair,
};
use edgeperf_analysis::sink::fig10_by_relationship_streaming;
use edgeperf_analysis::tables::{table1, table2, AnalysisKind, Share, Table2Row};
use edgeperf_analysis::{
    AnalysisConfig, ColumnarSink, Dataset, DegradationMetric, SessionRecord, StreamingDataset,
};
use edgeperf_obs::Metrics;
use edgeperf_routing::Relationship;
use edgeperf_world::{
    run_study_observed, run_study_supervised, Continent, FaultPlan, StudyConfig, StudyReport,
    StudyStats, SupervisorConfig, SupervisorError, World, WorldConfig,
};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Builder for study runs.
///
/// Every knob the harness has grown — seed, scale, explicit shape
/// overrides, parallelism, a metrics handle — lives here, so the next
/// knob is one more method instead of another positional argument at
/// every call site.
///
/// `scale` is the single fidelity-for-speed dial: unless overridden
/// explicitly, it derives the simulated days (`ceil(3·scale)`, clamped
/// to 1..=10), the sampled sessions per (group, window) (`240·scale`,
/// clamped to 8..=240), and the fraction of countries kept (`scale`,
/// clamped to 0.15..=1.0). Scale 1.0 reproduces the default study.
///
/// ```
/// use edgeperf_bench::study::StudyBuilder;
/// let data = StudyBuilder::new().seed(42).scale(0.1).days(1).run();
/// assert!(!data.records.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct StudyBuilder {
    seed: u64,
    scale: f64,
    days: Option<u32>,
    sessions_per_group_window: Option<u32>,
    country_fraction: Option<f64>,
    parallelism: usize,
    metrics: Metrics,
    fault_plan: FaultPlan,
    checkpoint_dir: Option<PathBuf>,
    retry_budget: Option<u32>,
}

impl Default for StudyBuilder {
    fn default() -> Self {
        StudyBuilder {
            seed: 20190521,
            scale: 1.0,
            days: None,
            sessions_per_group_window: None,
            country_fraction: None,
            parallelism: 0,
            metrics: Metrics::disabled(),
            fault_plan: FaultPlan::default(),
            checkpoint_dir: None,
            retry_budget: None,
        }
    }
}

impl StudyBuilder {
    /// Start from the default study (seed 20190521, scale 1.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// World + session seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fidelity dial; see the type docs for the derived shape.
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Days to simulate (paper: 10). Overrides the scale mapping.
    pub fn days(mut self, days: u32) -> Self {
        self.days = Some(days);
        self
    }

    /// Base sampled sessions per (group, window). Overrides the scale
    /// mapping.
    pub fn sessions_per_group_window(mut self, sessions: u32) -> Self {
        self.sessions_per_group_window = Some(sessions);
        self
    }

    /// Fraction of countries to keep. Overrides the scale mapping.
    pub fn country_fraction(mut self, fraction: f64) -> Self {
        self.country_fraction = Some(fraction);
        self
    }

    /// Worker count (0 = one per available core).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Metrics handle the run records into (default: disabled).
    pub fn metrics(mut self, metrics: &Metrics) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// Faults to inject on the supervised path (default: none). An empty
    /// plan falls back to `EDGEPERF_FAULT_PLAN` at run time.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Checkpoint directory for the supervised path. A compatible
    /// checkpoint already present there resumes the study.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Retries per prefix before quarantine on the supervised path.
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Days the run will simulate after applying the scale mapping.
    pub fn resolved_days(&self) -> u32 {
        self.days.unwrap_or_else(|| ((3.0 * self.scale).ceil() as u32).clamp(1, 10))
    }

    /// Sessions per (group, window) after applying the scale mapping.
    pub fn resolved_sessions_per_group_window(&self) -> u32 {
        self.sessions_per_group_window
            .unwrap_or_else(|| ((240.0 * self.scale) as u32).clamp(8, 240))
    }

    /// Country fraction after applying the scale mapping.
    pub fn resolved_country_fraction(&self) -> f64 {
        self.country_fraction.unwrap_or_else(|| self.scale.clamp(0.15, 1.0))
    }
}

/// Everything the §§4–6 experiments need: the raw records plus the
/// windowed dataset.
pub struct StudyData {
    /// Per-session records.
    pub records: Vec<SessionRecord>,
    /// Aggregated dataset.
    pub dataset: Dataset,
    /// Analysis configuration used.
    pub cfg: AnalysisConfig,
    /// Per-worker scheduler counters from the run.
    pub stats: StudyStats,
}

/// [`StudyData`] plus the supervisor's account of the run: quarantine,
/// retries, watchdog interventions, checkpoints.
pub struct SupervisedStudyData {
    /// Per-session records (prefix-index order — supervisor merge order).
    pub records: Vec<SessionRecord>,
    /// Aggregated dataset.
    pub dataset: Dataset,
    /// Analysis configuration used.
    pub cfg: AnalysisConfig,
    /// Per-worker scheduler counters from this process.
    pub stats: StudyStats,
    /// Completion, quarantine, and recovery report (cumulative across
    /// resume).
    pub report: StudyReport,
}

/// The bounded-memory variant: per-cell t-digests, no record vector.
pub struct StreamingStudyData {
    /// Streaming dataset (same cell layout as the exact one).
    pub dataset: StreamingDataset,
    /// Analysis configuration used.
    pub cfg: AnalysisConfig,
    /// Per-worker scheduler counters from the run.
    pub stats: StudyStats,
}

impl StudyBuilder {
    fn build(&self) -> (World, StudyConfig) {
        let world = World::generate(WorldConfig {
            seed: self.seed,
            country_fraction: self.resolved_country_fraction(),
            ..Default::default()
        });
        let study = StudyConfig {
            seed: self.seed ^ 0xABCD,
            days: self.resolved_days(),
            sessions_per_group_window: self.resolved_sessions_per_group_window(),
            parallelism: self.parallelism,
            ..Default::default()
        };
        (world, study)
    }

    /// Run the study through the exact (collect-everything) sink.
    ///
    /// A tee sink collects the raw record vector and the columnar dataset
    /// shards in the same parallel pass, so the dataset comes from a
    /// zero-copy shard merge at join time instead of a serial
    /// `Dataset::from_records` sweep afterwards. The result is
    /// bit-identical (see `columnar_sink_matches_from_records_end_to_end`).
    pub fn run(&self) -> StudyData {
        let (world, study) = self.build();
        let mut sink: (Vec<SessionRecord>, ColumnarSink) =
            (Vec::new(), ColumnarSink::new(study.n_windows() as usize));
        let stats = run_study_observed(&world, &study, &mut sink, &self.metrics);
        let (records, columnar) = sink;
        let dataset = columnar.into_dataset();
        StudyData { records, dataset, cfg: AnalysisConfig::default(), stats }
    }

    /// Run the study through the streaming sink: memory stays bounded by
    /// the number of (group, window, route) cells regardless of session
    /// count.
    pub fn run_streaming(&self) -> StreamingStudyData {
        let (world, study) = self.build();
        let mut dataset = StreamingDataset::new(study.n_windows() as usize);
        let stats = run_study_observed(&world, &study, &mut dataset, &self.metrics);
        StreamingStudyData { dataset, cfg: AnalysisConfig::default(), stats }
    }

    /// The builder-level identity stored in (and checked against) a
    /// checkpoint: everything [`resume_from`](Self::resume_from) needs to
    /// rebuild an equivalent builder. Parallelism is deliberately absent —
    /// a resumed run may use a different worker count.
    fn checkpoint_meta(&self) -> Vec<(String, String)> {
        vec![
            ("builder_seed".into(), self.seed.to_string()),
            ("country_fraction".into(), self.resolved_country_fraction().to_string()),
        ]
    }

    /// Run the study under the fault-tolerant supervisor (see
    /// `edgeperf-world`'s `supervisor` module): per-prefix panic
    /// isolation with retry/quarantine, watchdog deadlines, and — when a
    /// checkpoint directory is set — periodic checkpoints and automatic
    /// resume.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O failures, resuming against a checkpoint from a
    /// different study, and the fault plan's injected crash.
    ///
    /// # Panics
    ///
    /// When no fault plan was set and `EDGEPERF_FAULT_PLAN` holds an
    /// unparseable spec.
    pub fn run_supervised(&self) -> Result<SupervisedStudyData, SupervisorError> {
        let (world, study) = self.build();
        let plan = if self.fault_plan.is_empty() {
            FaultPlan::from_env().expect("EDGEPERF_FAULT_PLAN")
        } else {
            self.fault_plan.clone()
        };
        let mut sup = SupervisorConfig {
            checkpoint_dir: self.checkpoint_dir.clone(),
            meta: self.checkpoint_meta(),
            fault_plan: plan,
            ..SupervisorConfig::default()
        };
        if let Some(budget) = self.retry_budget {
            sup.retry_budget = budget;
        }
        let mut records: Vec<SessionRecord> = Vec::new();
        let (stats, report) =
            run_study_supervised(&world, &study, &sup, &mut records, &self.metrics)?;
        let dataset = Dataset::from_records(&records, study.n_windows() as usize);
        Ok(SupervisedStudyData { records, dataset, cfg: AnalysisConfig::default(), stats, report })
    }

    /// Rebuild the builder for a study whose checkpoint lives in `dir`,
    /// ready to [`run_supervised`](Self::run_supervised) to completion.
    /// The study shape (seed, days, sessions, country fraction) comes
    /// from the checkpoint itself; parallelism and metrics are fresh
    /// choices.
    ///
    /// # Errors
    ///
    /// When the checkpoint file is missing, unreadable, or malformed.
    pub fn resume_from(dir: impl AsRef<Path>) -> Result<StudyBuilder, SupervisorError> {
        let dir = dir.as_ref();
        let path = dir.join("checkpoint.json");
        let fail = |message: String| SupervisorError::Checkpoint { path: path.clone(), message };
        let text = std::fs::read_to_string(&path).map_err(|e| fail(e.to_string()))?;
        let root = serde_json::parse(&text).map_err(|e| fail(e.to_string()))?;
        let study = root.get("study").ok_or_else(|| fail("missing field study".into()))?;
        let meta = root.get("meta").ok_or_else(|| fail("missing field meta".into()))?;
        let num = |v: &serde_json::Value, what: &str| match v {
            serde_json::Value::Num(n) => Ok(*n),
            _ => Err(fail(format!("{what}: expected a number"))),
        };
        let days = num(study.get("days").ok_or_else(|| fail("missing field days".into()))?, "days")?
            as u32;
        let sessions = num(
            study
                .get("sessions_per_group_window")
                .ok_or_else(|| fail("missing field sessions_per_group_window".into()))?,
            "sessions_per_group_window",
        )? as u32;
        let meta_str = |name: &str| -> Result<String, SupervisorError> {
            match meta.get(name) {
                Some(serde_json::Value::Str(s)) => Ok(s.clone()),
                _ => Err(fail(format!("missing meta field {name}"))),
            }
        };
        let seed: u64 =
            meta_str("builder_seed")?.parse().map_err(|_| fail("bad builder_seed".into()))?;
        let fraction: f64 = meta_str("country_fraction")?
            .parse()
            .map_err(|_| fail("bad country_fraction".into()))?;
        Ok(StudyBuilder::new()
            .seed(seed)
            .days(days)
            .sessions_per_group_window(sessions)
            .country_fraction(fraction)
            .checkpoint_dir(dir))
    }
}

/// Render the supervisor's report for the CLI.
pub fn render_report(report: &StudyReport) -> String {
    report.render()
}

/// Render the per-worker scheduler counters for the CLI.
pub fn render_stats(stats: &StudyStats) -> String {
    let mut out = String::from("study workers (work-stealing scheduler):\n");
    for (i, w) in stats.workers.iter().enumerate() {
        out.push_str(&format!(
            "  worker {i:>2}: prefixes {:>6}  sessions {:>9}  emitted {:>9}  dropped(no MinRTT) {:>7}\n",
            w.prefixes, w.sessions_simulated, w.records_emitted, w.sessions_dropped_no_minrtt
        ));
    }
    let t = stats.total();
    out.push_str(&format!(
        "  total    : prefixes {:>6}  sessions {:>9}  emitted {:>9}  dropped(no MinRTT) {:>7}",
        t.prefixes, t.sessions_simulated, t.records_emitted, t.sessions_dropped_no_minrtt
    ));
    out
}

fn cont_name(c: u8) -> &'static str {
    Continent::from_u8(c).map(|c| c.code()).unwrap_or("??")
}

/// Figure 6 summary: MinRTT and HDratio distributions.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Summary {
    /// Global MinRTT quantiles (p50, p80) in ms (paper: 39, 78).
    pub minrtt_p50: f64,
    /// 80th percentile MinRTT.
    pub minrtt_p80: f64,
    /// Median MinRTT per continent (paper: AF 58, AS 51, SA 40, rest ≈25).
    pub minrtt_p50_by_continent: BTreeMap<String, f64>,
    /// Fraction of sessions with HDratio > 0 (paper: 0.82).
    pub hdratio_gt0: f64,
    /// Fraction with HDratio = 1 (paper: 0.60).
    pub hdratio_eq1: f64,
    /// Fraction with HDratio = 0 per continent (paper: AF .36 AS .24 SA .27).
    pub hdratio_zero_by_continent: BTreeMap<String, f64>,
}

/// Compute the Figure 6 summary.
pub fn fig6(data: &StudyData) -> Fig6Summary {
    let (mr_all, mr_cont) = fig6_minrtt(&data.records);
    let (hd_all, hd_cont) = fig6_hdratio(&data.records);
    Fig6Summary {
        minrtt_p50: mr_all.quantile(0.5),
        minrtt_p80: mr_all.quantile(0.8),
        minrtt_p50_by_continent: mr_cont
            .iter()
            .map(|(c, cdf)| (cont_name(*c).to_string(), cdf.quantile(0.5)))
            .collect(),
        hdratio_gt0: 1.0 - hd_all.fraction_leq(0.0),
        hdratio_eq1: 1.0 - hd_all.fraction_leq(1.0 - 1e-9),
        hdratio_zero_by_continent: hd_cont
            .iter()
            .map(|(c, cdf)| (cont_name(*c).to_string(), cdf.fraction_leq(0.0)))
            .collect(),
    }
}

/// Figure 6 summary from the streaming dataset: global digests are
/// obtained by merging preferred-route cell digests (`TDigest::merge`).
/// Quantiles match the exact path closely; the HDratio point-mass
/// fractions (= 0, = 1) are interpolated from centroids and carry a few
/// percentage points of approximation error (see EXPERIMENTS.md).
pub fn fig6_streaming(data: &StreamingStudyData) -> Fig6Summary {
    let (mr_all, mr_cont) = data.dataset.minrtt_rollup();
    let (hd_all, hd_cont) = data.dataset.hdratio_rollup();
    Fig6Summary {
        minrtt_p50: mr_all.quantile(0.5),
        minrtt_p80: mr_all.quantile(0.8),
        minrtt_p50_by_continent: mr_cont
            .into_iter()
            .map(|(c, d)| (cont_name(c).to_string(), d.quantile(0.5)))
            .collect(),
        hdratio_gt0: 1.0 - hd_all.cdf(0.0),
        hdratio_eq1: 1.0 - hd_all.cdf(1.0 - 1e-9),
        hdratio_zero_by_continent: hd_cont
            .into_iter()
            .map(|(c, d)| (cont_name(c).to_string(), d.cdf(0.0)))
            .collect(),
    }
}

/// Figure 7 summary: HDratio by MinRTT bucket.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// MinRTT bucket label (ms).
    pub bucket: String,
    /// Fraction with HDratio = 0.
    pub frac_zero: f64,
    /// Median HDratio.
    pub median: f64,
    /// Fraction with HDratio = 1.
    pub frac_one: f64,
}

/// Compute Figure 7 rows.
pub fn fig7(data: &StudyData) -> Vec<Fig7Row> {
    fig7_hdratio_by_minrtt(&data.records)
        .into_iter()
        .map(|(label, cdf)| Fig7Row {
            bucket: label.to_string(),
            frac_zero: cdf.fraction_leq(0.0),
            median: cdf.quantile(0.5),
            frac_one: 1.0 - cdf.fraction_leq(1.0 - 1e-9),
        })
        .collect()
}

/// A difference-distribution summary (Figures 8 and 9).
#[derive(Debug, Clone, Serialize)]
pub struct DiffSummary {
    /// Metric label.
    pub metric: String,
    /// Traffic-weighted quantiles of the difference: (q, value).
    pub quantiles: Vec<(f64, f64)>,
    /// Fractions of traffic with difference ≥ each threshold.
    pub traffic_at_least: Vec<(f64, f64)>,
    /// Fraction of dataset traffic included in valid comparisons.
    pub traffic_covered: f64,
}

fn summarize_diff(
    metric: &str,
    cdfs: Option<edgeperf_analysis::figures::DiffCdfs>,
    thresholds: &[f64],
) -> Option<DiffSummary> {
    let c = cdfs?;
    Some(DiffSummary {
        metric: metric.to_string(),
        quantiles: c.diff.quantiles(&[0.1, 0.5, 0.9, 0.99]),
        traffic_at_least: thresholds.iter().map(|&t| (t, 1.0 - c.diff.fraction_leq(t))).collect(),
        traffic_covered: c.traffic_covered,
    })
}

/// A copy of the analysis config with the HDratio CI-tightness rule
/// relaxed. At production sampling volumes the paper's 0.1 rule is
/// satisfiable; at this reproduction's volumes, median CIs over bimodal
/// HDratio samples are inherently wide, so the strict rule (correctly)
/// invalidates most windows. The relaxed view shows the underlying shape
/// and is always labeled as such.
fn relaxed(cfg: &AnalysisConfig) -> AnalysisConfig {
    AnalysisConfig { max_ci_width_hdratio: 1.01, ..*cfg }
}

/// Figure 8: degradation distributions for both metrics.
pub fn fig8(data: &StudyData) -> Vec<DiffSummary> {
    let mut out = Vec::new();
    if let Some(s) = summarize_diff(
        "MinRTT_P50 degradation (ms)",
        fig8_degradation(&data.cfg, &data.dataset, DegradationMetric::MinRtt),
        &[4.0, 10.0, 20.0],
    ) {
        out.push(s);
    }
    if let Some(s) = summarize_diff(
        "HDratio_P50 degradation",
        fig8_degradation(&data.cfg, &data.dataset, DegradationMetric::HdRatio),
        &[0.065, 0.2, 0.4],
    ) {
        out.push(s);
    }
    if let Some(s) = summarize_diff(
        "HDratio_P50 degradation [relaxed CI rule]",
        fig8_degradation(&relaxed(&data.cfg), &data.dataset, DegradationMetric::HdRatio),
        &[0.065, 0.2, 0.4],
    ) {
        out.push(s);
    }
    out
}

/// Figure 9: opportunity distributions for both metrics.
pub fn fig9(data: &StudyData) -> Vec<DiffSummary> {
    let mut out = Vec::new();
    if let Some(s) = summarize_diff(
        "MinRTT_P50 improvement on best alternate (ms)",
        fig9_opportunity(&data.cfg, &data.dataset, DegradationMetric::MinRtt),
        &[3.0, 5.0, 10.0],
    ) {
        out.push(s);
    }
    if let Some(s) = summarize_diff(
        "HDratio_P50 improvement on best alternate",
        fig9_opportunity(&data.cfg, &data.dataset, DegradationMetric::HdRatio),
        &[0.025, 0.05, 0.1],
    ) {
        out.push(s);
    }
    if let Some(s) = summarize_diff(
        "HDratio_P50 improvement [relaxed CI rule]",
        fig9_opportunity(&relaxed(&data.cfg), &data.dataset, DegradationMetric::HdRatio),
        &[0.025, 0.05, 0.1],
    ) {
        out.push(s);
    }
    out
}

/// Figure 10: MinRTT difference by relationship pair.
pub fn fig10(data: &StudyData) -> Vec<DiffSummary> {
    [RelPair::PeeringVsTransit, RelPair::TransitVsTransit, RelPair::PrivateVsPublic]
        .into_iter()
        .filter_map(|pair| {
            summarize_diff(
                pair.label(),
                fig10_by_relationship(&data.cfg, &data.dataset, pair),
                &[5.0, 10.0],
            )
        })
        .collect()
}

/// Figure 10 from the streaming dataset: per-cell medians and
/// Price–Bonett CIs read from digest order statistics instead of sorted
/// samples.
pub fn fig10_streaming(data: &StreamingStudyData) -> Vec<DiffSummary> {
    [RelPair::PeeringVsTransit, RelPair::TransitVsTransit, RelPair::PrivateVsPublic]
        .into_iter()
        .filter_map(|pair| {
            summarize_diff(
                pair.label(),
                fig10_by_relationship_streaming(&data.cfg, &data.dataset, pair),
                &[5.0, 10.0],
            )
        })
        .collect()
}

/// One Table-1 block: a metric at a threshold.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Block {
    /// "degradation" or "opportunity".
    pub kind: String,
    /// Metric label.
    pub metric: String,
    /// Threshold value.
    pub threshold: f64,
    /// (class, group-traffic share, event-traffic share) overall.
    pub overall: Vec<(String, f64, f64)>,
    /// Per continent: (class, continent, shares).
    pub per_continent: Vec<(String, String, f64, f64)>,
}

/// Compute the paper's Table-1 threshold grid.
pub fn table1_blocks(data: &StudyData) -> Vec<Table1Block> {
    let mut blocks = Vec::new();
    let spec: Vec<(AnalysisKind, DegradationMetric, &str, Vec<f64>)> = vec![
        (
            AnalysisKind::Degradation,
            DegradationMetric::MinRtt,
            "MinRTT_P50 (+ms)",
            vec![5.0, 10.0, 20.0, 50.0],
        ),
        (
            AnalysisKind::Degradation,
            DegradationMetric::HdRatio,
            "HDratio_P50 (-) [relaxed CI]",
            vec![0.05, 0.1, 0.2, 0.5],
        ),
        (AnalysisKind::Opportunity, DegradationMetric::MinRtt, "MinRTT_P50 (-ms)", vec![5.0, 10.0]),
        (
            AnalysisKind::Opportunity,
            DegradationMetric::HdRatio,
            "HDratio_P50 (+) [relaxed CI]",
            vec![0.05],
        ),
    ];
    for (kind, metric, label, thresholds) in spec {
        for t in thresholds {
            let cfg =
                if metric == DegradationMetric::HdRatio { relaxed(&data.cfg) } else { data.cfg };
            let tab = table1(&cfg, &data.dataset, kind, metric, t);
            let render_share = |s: &Share| (s.group_share, s.event_share);
            blocks.push(Table1Block {
                kind: match kind {
                    AnalysisKind::Degradation => "degradation".into(),
                    AnalysisKind::Opportunity => "opportunity".into(),
                },
                metric: label.to_string(),
                threshold: t,
                overall: tab
                    .overall
                    .iter()
                    .map(|(c, s)| {
                        let (g, e) = render_share(s);
                        (c.label().to_string(), g, e)
                    })
                    .collect(),
                per_continent: tab
                    .per_continent
                    .iter()
                    .map(|((c, cont), s)| {
                        let (g, e) = render_share(s);
                        (c.label().to_string(), cont_name(*cont).to_string(), g, e)
                    })
                    .collect(),
            });
        }
    }
    blocks
}

/// Table 2 output rows.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Output {
    /// Metric label.
    pub metric: String,
    /// (pref→alt label, absolute, relative, longer, prepended).
    pub rows: Vec<(String, f64, f64, f64, f64)>,
}

/// Compute Table 2 for both metrics at the paper's thresholds.
pub fn table2_outputs(data: &StudyData) -> Vec<Table2Output> {
    let spec = [
        (DegradationMetric::MinRtt, "MinRTT_P50 (5 ms)", 5.0),
        (DegradationMetric::HdRatio, "HDratio_P50 (0.05)", 0.05),
    ];
    spec.iter()
        .map(|&(metric, label, t)| {
            let rows = table2(&data.cfg, &data.dataset, metric, t);
            Table2Output {
                metric: label.to_string(),
                rows: rows
                    .iter()
                    .map(|(&(p, a), r): (&(Relationship, Relationship), &Table2Row)| {
                        (
                            format!("{} → {}", p.label(), a.label()),
                            r.absolute,
                            r.relative,
                            r.longer,
                            r.prepended,
                        )
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Render helpers for the repro binary.
pub fn render_fig6(s: &Fig6Summary) -> String {
    let mut out = String::from("== Figure 6: global MinRTT & HDratio ==\n");
    out.push_str(&format!(
        "MinRTT p50 = {:.1} ms (paper: <39)   p80 = {:.1} ms (paper: 78)\n",
        s.minrtt_p50, s.minrtt_p80
    ));
    out.push_str("median MinRTT by continent (paper: AF 58, AS 51, SA 40, others ~25):\n");
    for (c, v) in &s.minrtt_p50_by_continent {
        out.push_str(&format!("  {c}: {v:.1} ms\n"));
    }
    out.push_str(&format!(
        "HDratio > 0: {:.2} (paper 0.82)   HDratio = 1: {:.2} (paper 0.60)\n",
        s.hdratio_gt0, s.hdratio_eq1
    ));
    out.push_str("HDratio = 0 by continent (paper: AF .36, AS .24, SA .27):\n");
    for (c, v) in &s.hdratio_zero_by_continent {
        out.push_str(&format!("  {c}: {v:.2}\n"));
    }
    out
}

/// Render Figure 7 rows.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::from("== Figure 7: HDratio by MinRTT bucket ==\n");
    out.push_str("bucket(ms)  frac(HD=0)  median  frac(HD=1)\n");
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>11.2} {:>7.2} {:>11.2}\n",
            r.bucket, r.frac_zero, r.median, r.frac_one
        ));
    }
    out
}

/// Render a diff summary list.
pub fn render_diffs(title: &str, diffs: &[DiffSummary]) -> String {
    let mut out = format!("== {title} ==\n");
    for d in diffs {
        out.push_str(&format!("-- {} (traffic covered: {:.2}) --\n", d.metric, d.traffic_covered));
        for (q, v) in &d.quantiles {
            out.push_str(&format!("  p{:<3.0} = {:+.3}\n", q * 100.0, v));
        }
        for (t, f) in &d.traffic_at_least {
            out.push_str(&format!("  traffic with diff >= {t}: {:.3}\n", f));
        }
    }
    out
}

/// Render Table 1 blocks.
pub fn render_table1(blocks: &[Table1Block]) -> String {
    let mut out = String::from("== Table 1: temporal behaviour classes ==\n");
    for b in blocks {
        out.push_str(&format!("-- {} {} @ {} --\n", b.kind, b.metric, b.threshold));
        for (class, g, e) in &b.overall {
            out.push_str(&format!("  {class:<11} group-share {g:.3}  event-share {e:.3}\n"));
        }
        for (class, cont, g, e) in &b.per_continent {
            out.push_str(&format!("    {cont} {class:<11} {g:.3} {e:.3}\n"));
        }
    }
    out
}

/// Render Table 2 outputs.
pub fn render_table2(outputs: &[Table2Output]) -> String {
    let mut out = String::from("== Table 2: opportunity by relationship pair ==\n");
    for t in outputs {
        out.push_str(&format!("-- {} --\n", t.metric));
        out.push_str("  pair                      absolute  relative  longer  prepended\n");
        for (pair, a, r, l, p) in &t.rows {
            out.push_str(&format!("  {pair:<25} {a:>8.4} {r:>9.3} {l:>7.3} {p:>10.3}\n"));
        }
        if t.rows.is_empty() {
            out.push_str("  (no opportunity events)\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StudyBuilder {
        StudyBuilder::new().seed(42).days(1).sessions_per_group_window(40).country_fraction(0.3)
    }

    #[test]
    fn scale_mapping_matches_the_old_cli_defaults() {
        let b = StudyBuilder::new().scale(0.1);
        assert_eq!(b.resolved_days(), 1);
        assert_eq!(b.resolved_sessions_per_group_window(), 24);
        assert!((b.resolved_country_fraction() - 0.15).abs() < 1e-12);
        let full = StudyBuilder::new();
        assert_eq!(full.resolved_days(), 3);
        assert_eq!(full.resolved_sessions_per_group_window(), 240);
        assert_eq!(full.resolved_country_fraction(), 1.0);
        // Explicit overrides beat the scale mapping.
        let o = StudyBuilder::new().scale(0.1).days(7).sessions_per_group_window(99);
        assert_eq!(o.resolved_days(), 7);
        assert_eq!(o.resolved_sessions_per_group_window(), 99);
    }

    #[test]
    fn builder_records_into_the_supplied_metrics_handle() {
        let metrics = Metrics::enabled();
        let data = small().metrics(&metrics).run();
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counters.get("runner.records_emitted").copied(),
            Some(data.records.len() as u64)
        );
        assert!(snap.spans.iter().any(|s| s.name == "study"));
    }

    #[test]
    fn study_pipeline_produces_all_outputs() {
        let data = small().run();
        assert!(!data.records.is_empty());
        let f6 = fig6(&data);
        assert!(f6.minrtt_p50 > 5.0 && f6.minrtt_p50 < 100.0, "{}", f6.minrtt_p50);
        assert!(f6.hdratio_gt0 > 0.3, "{}", f6.hdratio_gt0);
        let f7 = fig7(&data);
        assert!(!f7.is_empty());
        // Lower-latency buckets should not be worse than the 81+ bucket.
        if f7.len() == 4 {
            assert!(f7[0].median >= f7[3].median);
        }
        let t1 = table1_blocks(&data);
        assert_eq!(t1.len(), 4 + 4 + 2 + 1);
        let _ = table2_outputs(&data);
        let _ = fig10(&data);
    }

    #[test]
    fn streaming_study_tracks_exact_study() {
        let exact = small().run();
        let stream = small().run_streaming();
        // Same sessions flowed through both sinks.
        assert_eq!(exact.stats.total(), stream.stats.total());
        assert_eq!(exact.stats.total().records_emitted, exact.records.len() as u64);
        let f6e = fig6(&exact);
        let f6s = fig6_streaming(&stream);
        assert!(
            (f6e.minrtt_p50 - f6s.minrtt_p50).abs() <= 0.5,
            "{} vs {}",
            f6e.minrtt_p50,
            f6s.minrtt_p50
        );
        assert!(
            (f6e.minrtt_p80 - f6s.minrtt_p80).abs() <= 1.0,
            "{} vs {}",
            f6e.minrtt_p80,
            f6s.minrtt_p80
        );
        // Point-mass fractions are interpolated from centroids: looser.
        assert!((f6e.hdratio_gt0 - f6s.hdratio_gt0).abs() < 0.1);
        assert!((f6e.hdratio_eq1 - f6s.hdratio_eq1).abs() < 0.1);
        // Fig 10 reaches the same comparisons from digest order statistics.
        let f10e = fig10(&exact);
        let f10s = fig10_streaming(&stream);
        assert_eq!(f10e.len(), f10s.len());
        for (e, s) in f10e.iter().zip(&f10s) {
            assert_eq!(e.metric, s.metric);
            assert!((e.traffic_covered - s.traffic_covered).abs() < 0.15);
            let p50 = |d: &DiffSummary| d.quantiles.iter().find(|(q, _)| *q == 0.5).unwrap().1;
            assert!((p50(e) - p50(s)).abs() < 2.0, "{} vs {}", p50(e), p50(s));
        }
    }

    #[test]
    fn preferred_route_is_usually_best() {
        // The paper's headline: default routing is close to optimal.
        let data = small().run();
        let opp = fig9(&data);
        if let Some(minrtt) = opp.iter().find(|d| d.metric.contains("MinRTT")) {
            // Median improvement available should be ≈ 0 or negative.
            let p50 = minrtt.quantiles.iter().find(|(q, _)| *q == 0.5).unwrap().1;
            assert!(p50 < 5.0, "median available improvement too large: {p50}");
        }
    }
}
