//! Reproduction harness: one entry point per table/figure of the paper,
//! plus the Criterion performance benches in `benches/`.
//!
//! The `repro` binary (`cargo run -p edgeperf-bench --release --bin
//! repro -- <experiment>`) prints each experiment's series/rows in a
//! paper-comparable form and can emit machine-readable JSON. See
//! EXPERIMENTS.md for the paper-vs-measured record.

pub mod ablations;
pub mod cc_compare;
pub mod detector;
pub mod fig4;
pub mod fig5;
pub mod fleet_run;
pub mod loadgen;
pub mod naive;
pub mod pipeline_bench;
pub mod stage_profile;
pub mod study;
pub mod validation;
pub mod workload_figs;

/// Scale knob shared by the heavy experiments: multiplies session counts
/// and divides the study length so CI runs in seconds and full runs in
/// minutes. Read from `--scale` or the `EDGEPERF_SCALE` env var.
pub fn env_scale(default: f64) -> f64 {
    std::env::var("EDGEPERF_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}
