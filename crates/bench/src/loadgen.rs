//! Load generator for the live ingest server (`edgeperf serve`).
//!
//! Replays simulated workload sessions (from `edgeperf-workload`'s
//! session planner, so the transaction mixture matches the paper's
//! traffic shape) over TCP — as `WireSession` JSONL or, with
//! [`WireMode::Binary`], as the length-prefixed binary frames of
//! `edgeperf_live::frame` — paced to a target rate across several
//! connections, while a dedicated control connection pings through the
//! worker queues to measure end-to-end ingest latency. The resulting
//! [`LoadReport`] (or the self-hosted [`SuiteReport`] comparing both
//! wire modes and sweeping worker counts) is the tracked
//! `BENCH_live.json` artifact.
//!
//! In binary mode the generator runs the core estimator *locally*
//! ([`edgeperf::serve::record_from_wire`], the same function the
//! server's JSONL path calls) and ships the resulting `f64` bits verbatim
//! in little-endian frames — which is why binary-ingested cells are
//! bit-identical to JSONL-ingested ones.

use edgeperf::ingest::{ResponseIn, SessionIn};
use edgeperf::serve::{WireParser, WireSession};
use edgeperf_core::{HD_GOODPUT_BPS, MILLISECOND};
use edgeperf_live::{
    encode_frame, preamble, replay_with_resume, CellLine, CellQuery, ChaosPlan, LiveClient,
    LiveRecord, ResumeInput, RetryPolicy, ServeBuilder, ServerHandle, WireChaos,
};
use edgeperf_obs::Metrics;
use edgeperf_workload::WorkloadConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::io::{self, BufWriter, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wire format of the replay's data connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// `WireSession` JSONL lines (the default wire format).
    Jsonl,
    /// Length-prefixed binary frames (`edgeperf_live::frame`).
    Binary,
}

impl WireMode {
    /// Stable label, as reported in [`LoadReport::wire`].
    pub fn label(self) -> &'static str {
        match self {
            WireMode::Jsonl => "jsonl",
            WireMode::Binary => "binary",
        }
    }

    /// Parse a `--wire` argument.
    pub fn parse(s: &str) -> Option<WireMode> {
        match s {
            "jsonl" => Some(WireMode::Jsonl),
            "binary" => Some(WireMode::Binary),
            _ => None,
        }
    }
}

/// Knobs for one load run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Wire format for the data connections.
    pub wire: WireMode,
    /// Target send rate in sessions/s (0 = unthrottled).
    pub rate: f64,
    /// Total sessions to replay.
    pub sessions: usize,
    /// Parallel data connections.
    pub connections: usize,
    /// Distinct user groups to spread sessions over.
    pub groups: usize,
    /// PoPs the groups are spread over.
    pub pops: u16,
    /// Event time spans this many windows.
    pub windows: u32,
    /// Window length used to lay out event time (ms).
    pub window_ms: f64,
    /// Cap on transactions per session (keeps wire lines bounded; the
    /// workload planner's video sessions can carry hundreds).
    pub max_txns: usize,
    /// The server's allowed lateness (must match its `--lateness-ms`):
    /// the replay is chunked so cross-connection event-time skew stays
    /// within half this bound, guaranteeing a late-free replay.
    pub lateness_ms: f64,
    /// HD goodput target (bps) for the local estimator pass in binary
    /// mode; must match the server's target so both wire formats yield
    /// the same records.
    pub target_bps: f64,
    /// Workload/rng seed.
    pub seed: u64,
    /// Ping cadence on the control connection (ms).
    pub ping_interval_ms: u64,
    /// Drain the server after the replay (`shutdown` command).
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:4620".to_string(),
            wire: WireMode::Jsonl,
            rate: 0.0,
            sessions: 100_000,
            connections: 4,
            groups: 64,
            pops: 4,
            windows: 8,
            window_ms: 900_000.0,
            max_txns: 6,
            lateness_ms: 60_000.0,
            target_bps: HD_GOODPUT_BPS,
            seed: 7,
            ping_interval_ms: 10,
            shutdown: false,
        }
    }
}

/// What a load run achieved, plus the server's closing snapshot.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Wire format the data connections used (`jsonl` / `binary`).
    #[serde(default)]
    pub wire: String,
    /// Configured target rate (sessions/s; 0 = unthrottled).
    pub target_rate: f64,
    /// Sessions replayed.
    pub sessions: u64,
    /// Wall-clock replay time (s).
    pub elapsed_s: f64,
    /// Sessions per second actually sustained.
    pub achieved_sessions_per_sec: f64,
    /// Ping round-trips measured during the replay.
    pub pings: u64,
    /// Median control-path round-trip, ms. Pings ride each worker's
    /// control channel, which bypasses the record lanes — so this
    /// measures command responsiveness under load, not queue wait.
    pub p50_ingest_latency_ms: f64,
    /// p99 control-path round-trip, ms.
    pub p99_ingest_latency_ms: f64,
    /// Server: records folded into windows.
    pub accepted: u64,
    /// Server: lines rejected (parse errors + late records).
    pub rejected: u64,
    /// Server: late records (behind the watermark).
    pub late: u64,
    /// Server: distinct groups observed.
    pub groups: u64,
    /// Server: windows closed.
    pub windows_closed: u64,
    /// Server: confident MinRTT degradation events.
    pub events_minrtt: u64,
    /// The server drained cleanly (only with [`LoadgenConfig::shutdown`]).
    pub drained: bool,
}

/// Pre-render the whole replay as wire lines. Event time is laid out
/// monotonically across [`LoadgenConfig::windows`] windows, so a replay
/// never produces late records regardless of pacing.
pub fn generate_lines(cfg: &LoadgenConfig) -> Vec<String> {
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
    let workload = WorkloadConfig::default();
    let span_ms = cfg.windows as f64 * cfg.window_ms;
    let relationships = ["private", "public", "transit"];
    (0..cfg.sessions)
        .map(|i| {
            let g = i % cfg.groups.max(1);
            let plan = workload.generate(&mut rng);
            let min_rtt_ms = 15.0 + (g % 60) as f64 * 1.5 + rng.gen_range(0.0..4.0);
            // Per-group achievable goodput straddles the 2.5 Mbps HD
            // target so both HD outcomes occur.
            let goodput_bps = 1.2e6 * (1.0 + (g % 8) as f64);
            let responses: Vec<ResponseIn> = plan
                .transactions
                .iter()
                .take(cfg.max_txns)
                .map(|t| {
                    let issued_at_ms = t.offset as f64 / MILLISECOND as f64;
                    let first_tx_ms = issued_at_ms + 0.1;
                    let transfer_ms = t.bytes as f64 * 8_000.0 / goodput_bps;
                    let full_ack_ms = first_tx_ms + transfer_ms + min_rtt_ms;
                    ResponseIn {
                        bytes: t.bytes,
                        issued_at_ms,
                        first_tx_ms: Some(first_tx_ms),
                        wnic: Some(14_600),
                        second_last_ack_ms: Some((full_ack_ms - 1.0).max(first_tx_ms)),
                        full_ack_ms: Some(full_ack_ms),
                        last_packet_bytes: Some(1_240.min(t.bytes as u32)),
                        bytes_in_flight_at_write: 0,
                        prev_unsent_at_write: false,
                    }
                })
                .collect();
            let session = SessionIn {
                min_rtt_ms,
                responses,
                http: None,
                duration_ms: Some(plan.duration as f64 / MILLISECOND as f64),
            };
            WireSession {
                ts_ms: (i as f64 + 0.5) * span_ms / cfg.sessions as f64,
                pop: (g as u16) % cfg.pops.max(1),
                prefix_base: 0x0A00_0000 + ((g as u32) << 8),
                prefix_len: 24,
                country: (g % 40) as u16,
                continent: (g % 6) as u8,
                route_rank: u8::from(i % 11 == 0),
                relationship: relationships[g % 3].to_string(),
                longer_path: g.is_multiple_of(5),
                more_prepended: g.is_multiple_of(7),
                session,
            }
            .to_line()
        })
        .collect()
}

/// Pre-render the replay as raw socket payloads for `cfg.wire`: JSONL
/// lines with their trailing newline, or binary frames produced by
/// running the estimator locally on the very same generated sessions.
pub fn render_payloads(cfg: &LoadgenConfig, lines: &[String]) -> io::Result<Vec<Vec<u8>>> {
    match cfg.wire {
        WireMode::Jsonl => Ok(lines
            .iter()
            .map(|l| {
                let mut bytes = Vec::with_capacity(l.len() + 1);
                bytes.extend_from_slice(l.as_bytes());
                bytes.push(b'\n');
                bytes
            })
            .collect()),
        WireMode::Binary => {
            let parser = WireParser::new(cfg.target_bps);
            lines
                .iter()
                .map(|l| {
                    parser
                        .parse_line(l)
                        .map(|rec| encode_frame(&rec).to_vec())
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                })
                .collect()
        }
    }
}

/// Poll `snapshot` until the server has accounted for `expected` lines
/// (ingested or rejected), i.e. every byte sent so far is processed.
fn wait_processed(client: &mut LiveClient, expected: u64) -> io::Result<()> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = client.snapshot()?;
        if snap.accepted + snap.rejected >= expected {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("server stuck at {}/{expected} processed", snap.accepted + snap.rejected),
            ));
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run one replay against a live server and collect the report.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadReport> {
    let lines = generate_lines(cfg);
    let payloads = render_payloads(cfg, &lines)?;
    drop(lines);
    let connections = cfg.connections.max(1);

    // Ping sampler on its own connection: each round-trip rides a worker
    // queue, so it measures real ingest latency under load.
    let stop = Arc::new(AtomicBool::new(false));
    let pinger = {
        let stop = Arc::clone(&stop);
        let addr = cfg.addr.clone();
        let interval = Duration::from_millis(cfg.ping_interval_ms.max(1));
        std::thread::spawn(move || -> io::Result<Vec<f64>> {
            let mut client = LiveClient::connect(&addr)?;
            let mut samples = Vec::new();
            while !stop.load(Ordering::Acquire) {
                samples.push(client.ping()?.as_secs_f64() * 1e3);
                std::thread::sleep(interval);
            }
            Ok(samples)
        })
    };

    // Senders: stripe the replay across connections. Event time is tied
    // to the global line index, but connections drain at independent
    // speeds, so an unconstrained replay would let one stripe race whole
    // windows ahead and turn the others' records late. The replay is
    // therefore chunked: after each chunk every sender flushes, meets at
    // a barrier, and the leader polls `snapshot` until the server has
    // processed everything sent so far. Chunks span at most half the
    // lateness bound in event time, so no record can fall behind the
    // watermark — and the final sync quiesces the server before the
    // closing snapshot/shutdown (a drain cuts data connections, so bytes
    // still in flight then would be lost).
    let span_ms = cfg.windows as f64 * cfg.window_ms;
    let chunk = ((cfg.sessions as f64 * (cfg.lateness_ms / 2.0) / span_ms) as usize)
        .clamp(connections, cfg.sessions.max(1));
    let barrier = Arc::new(std::sync::Barrier::new(connections));
    let payloads = Arc::new(payloads);
    let started = Instant::now();
    let senders: Vec<_> = (0..connections)
        .map(|c| {
            let payloads = Arc::clone(&payloads);
            let barrier = Arc::clone(&barrier);
            let addr = cfg.addr.clone();
            let per_conn_rate = cfg.rate / connections as f64;
            let wire = cfg.wire;
            std::thread::spawn(move || -> io::Result<u64> {
                let stream = TcpStream::connect(&addr)?;
                stream.set_nodelay(true)?;
                let mut out = BufWriter::with_capacity(1 << 18, stream);
                if wire == WireMode::Binary {
                    out.write_all(&preamble())?;
                }
                // The leader polls replay progress on a dedicated
                // control connection: binary data connections carry no
                // commands, and the snapshot counters are global anyway.
                let mut control = if c == 0 { Some(LiveClient::connect(&addr)?) } else { None };
                let start = Instant::now();
                let mut sent = 0u64;
                let total = payloads.len();
                let mut chunk_start = 0usize;
                while chunk_start < total {
                    let chunk_end = (chunk_start + chunk).min(total);
                    for payload in payloads[chunk_start..chunk_end]
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| (chunk_start + i) % connections == c)
                        .map(|(_, p)| p)
                    {
                        out.write_all(payload)?;
                        sent += 1;
                        if per_conn_rate > 0.0 && sent.is_multiple_of(64) {
                            let due = sent as f64 / per_conn_rate;
                            let ahead = due - start.elapsed().as_secs_f64();
                            if ahead > 0.0 {
                                std::thread::sleep(Duration::from_secs_f64(ahead));
                            }
                        }
                    }
                    out.flush()?;
                    barrier.wait();
                    if let Some(control) = control.as_mut() {
                        wait_processed(control, chunk_end as u64)?;
                    }
                    barrier.wait();
                    chunk_start = chunk_end;
                }
                Ok(sent)
            })
        })
        .collect();

    let mut sent = 0u64;
    for s in senders {
        sent += s.join().expect("sender thread")?;
    }
    let elapsed = started.elapsed().as_secs_f64();

    stop.store(true, Ordering::Release);
    let mut pings = pinger.join().expect("ping thread").unwrap_or_default();
    pings.sort_by(f64::total_cmp);

    // Data connections are closed; fetch the closing server state.
    let mut control = LiveClient::connect(&cfg.addr)?;
    let snapshot = if cfg.shutdown { control.shutdown()? } else { control.snapshot()? };

    Ok(LoadReport {
        wire: cfg.wire.label().to_string(),
        target_rate: cfg.rate,
        sessions: sent,
        elapsed_s: elapsed,
        achieved_sessions_per_sec: if elapsed > 0.0 { sent as f64 / elapsed } else { 0.0 },
        pings: pings.len() as u64,
        p50_ingest_latency_ms: percentile(&pings, 0.50),
        p99_ingest_latency_ms: percentile(&pings, 0.99),
        accepted: snapshot.accepted,
        rejected: snapshot.rejected,
        late: snapshot.late,
        groups: snapshot.groups,
        windows_closed: snapshot.windows_closed,
        events_minrtt: snapshot.events_minrtt,
        drained: snapshot.drained,
    })
}

/// Geometry knobs for a [`run_chaos`] server pair (faulted + control).
#[derive(Debug, Clone)]
pub struct ChaosRunOpts {
    /// Ingest worker threads.
    pub workers: usize,
    /// Server idle read deadline (ms; 0 = off). Combined with a chaos
    /// stall longer than this, it exercises slow-client eviction and
    /// the subsequent resume.
    pub idle_timeout_ms: u64,
    /// Spill the faulted server through a tiered store: `(dir,
    /// retention_windows)`. Disk faults in the plan need this to have
    /// anything to hit.
    pub spill: Option<(std::path::PathBuf, usize)>,
    /// Worker respawn budget before zombie mode.
    pub max_worker_respawns: u32,
}

impl Default for ChaosRunOpts {
    fn default() -> ChaosRunOpts {
        ChaosRunOpts { workers: 4, idle_timeout_ms: 0, spill: None, max_worker_respawns: 8 }
    }
}

/// What a chaos replay achieved: resume/retry traffic, server-side
/// recovery accounting, and the bit-identity verdict against a
/// fault-free control replay of the same sessions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The canonical chaos plan that was injected.
    pub plan: String,
    /// Wire format of the data connection (`jsonl` / `binary`).
    pub wire: String,
    /// Sessions in the replay.
    pub sessions: u64,
    /// Final cumulative server ack (must equal `sessions`).
    pub acked: u64,
    /// Connections the resume loop opened.
    pub connections: u64,
    /// Reconnects after the first connection.
    pub reconnects: u64,
    /// Chaos-injected clean disconnects that fired.
    pub injected_disconnects: u64,
    /// Chaos-injected torn (mid-record) cuts that fired.
    pub injected_torn: u64,
    /// Chaos-injected stalls that fired.
    pub injected_stalls: u64,
    /// Server: records folded into windows (must equal `sessions`).
    pub accepted: u64,
    /// Server: rejected records (0 in a clean recovery).
    pub rejected: u64,
    /// Server: late records.
    pub late: u64,
    /// Server: worker panic recoveries.
    pub worker_recovered: u64,
    /// Server: records lost to dirty panics or zombie workers (0 when
    /// chaos panics land on batch boundaries, as scripted ones do).
    pub worker_lost_records: u64,
    /// Server: truncated wire tails left unconsumed (and replayed).
    pub truncated_tails: u64,
    /// Server: connections evicted by idle/write deadlines.
    pub conns_evicted: u64,
    /// Store: spill attempts that failed (injected ENOSPC + real).
    pub spill_errors: u64,
    /// Store: windows shed past the 8× degraded retention cap (0 in a
    /// lossless run).
    pub windows_shed: u64,
    /// Store: still degraded when the replay ended.
    pub degraded_at_end: bool,
    /// Canonically-sorted cells from the faulted server are
    /// byte-identical (same serialized `f64` bits) to the fault-free
    /// control server's.
    pub bit_identical_to_clean: bool,
    /// Wall-clock chaos replay time (s).
    pub elapsed_s: f64,
}

pub(crate) fn metrics_counter(metrics_json: &str, name: &str) -> u64 {
    let Ok(v) = serde_json::parse(metrics_json) else { return 0 };
    match v.get("counters").and_then(|c| c.get(name)) {
        Some(serde_json::Value::Num(n)) => *n as u64,
        _ => 0,
    }
}

/// Parse the replay into [`LiveRecord`]s with the same local estimator
/// pass the binary wire ships (bit-identical to the server's JSONL
/// parse by construction).
fn parse_records(cfg: &LoadgenConfig, lines: &[String]) -> io::Result<Vec<LiveRecord>> {
    let parser = WireParser::new(cfg.target_bps);
    lines
        .iter()
        .map(|l| {
            parser
                .parse_line(l)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect()
}

/// Replay `cfg.sessions` through a chaos-injected self-hosted server
/// with [`replay_with_resume`], then through a fault-free control
/// server, and prove the recovery was exact: every record applied
/// exactly once (ack == sessions, rejected == 0) and the closed cells
/// bit-identical to the fault-free run.
///
/// The same `plan` drives both sides of the fault surface: its wire
/// faults fire client-side (disconnects, torn records, stalls) and its
/// worker panics / disk faults fire server-side.
pub fn run_chaos(
    cfg: &LoadgenConfig,
    plan: &ChaosPlan,
    opts: &ChaosRunOpts,
) -> io::Result<ChaosReport> {
    let lines = generate_lines(cfg);
    let records;
    let input = match cfg.wire {
        WireMode::Jsonl => ResumeInput::Lines(&lines),
        WireMode::Binary => {
            records = parse_records(cfg, &lines)?;
            ResumeInput::Records(&records)
        }
    };
    let parser = Arc::new(WireParser::new(cfg.target_bps));
    let full = CellQuery { from_window: Some(0), ..CellQuery::default() };

    // Faulted server: the plan's worker panics and disk faults inject
    // server-side via the builder.
    let mut builder = hosted_builder(cfg, opts.workers)
        .chaos(plan.clone())
        .idle_timeout_ms(opts.idle_timeout_ms)
        .max_worker_respawns(opts.max_worker_respawns);
    if let Some((dir, retention)) = &opts.spill {
        builder = builder
            .spill_dir(dir)
            .retention_windows(*retention)
            .compact_min_segments(8)
            .compact_batch(4);
    }
    let server = builder
        .start(Arc::clone(&parser) as Arc<dyn edgeperf_live::LineParser>)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let addr = server.addr();

    let mut wire_chaos = WireChaos::new(plan);
    let policy = RetryPolicy { seed: cfg.seed, ..RetryPolicy::default() };
    let started = Instant::now();
    let resume = replay_with_resume(addr, cfg.seed, input, &policy, &mut wire_chaos)?;
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut control = LiveClient::connect(addr)?;
    let metrics_json = control.metrics_json()?;
    let store_stats = control.store_stats().ok();
    let (chaos_rows, _) = timed_cells(&mut control, &full)?;
    let snapshot = control.shutdown()?;
    drop(control);
    let _ = server.join();

    // Fault-free control: same sessions, same worker count, all-RAM
    // retention so every window is queryable.
    let clean_server = hosted_builder(cfg, opts.workers)
        .retention_windows(cfg.windows as usize + 4)
        .start(parser)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let mut no_chaos = WireChaos::new(&ChaosPlan::default());
    replay_with_resume(clean_server.addr(), cfg.seed, input, &policy, &mut no_chaos)?;
    let mut control = LiveClient::connect(clean_server.addr())?;
    let (clean_rows, _) = timed_cells(&mut control, &full)?;
    control.shutdown()?;
    drop(control);
    let _ = clean_server.join();

    Ok(ChaosReport {
        plan: plan.to_string(),
        wire: cfg.wire.label().to_string(),
        sessions: resume.total,
        acked: resume.acked,
        connections: u64::from(resume.connections),
        reconnects: u64::from(resume.reconnects),
        injected_disconnects: u64::from(resume.injected_disconnects),
        injected_torn: u64::from(resume.injected_torn),
        injected_stalls: u64::from(resume.injected_stalls),
        accepted: snapshot.accepted,
        rejected: snapshot.rejected,
        late: snapshot.late,
        worker_recovered: metrics_counter(&metrics_json, "worker.recovered"),
        worker_lost_records: metrics_counter(&metrics_json, "worker.lost_records"),
        truncated_tails: metrics_counter(&metrics_json, "ingest.truncated"),
        conns_evicted: metrics_counter(&metrics_json, "live.conns.evicted"),
        spill_errors: store_stats.as_ref().map_or(0, |s| s.spill_errors),
        windows_shed: metrics_counter(&metrics_json, "store.windows_shed"),
        degraded_at_end: store_stats.as_ref().is_some_and(|s| s.degraded),
        bit_identical_to_clean: render_rows(&chaos_rows) == render_rows(&clean_rows),
        elapsed_s,
    })
}

/// One (connections, workers) point of the binary scaling grid.
/// Throughput is **aggregate** across connections — the number a whole
/// node sustains, not a per-connection figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Parallel data connections (0 in reports from before the grid).
    #[serde(default)]
    pub connections: u64,
    /// Server ingest worker threads.
    pub workers: u64,
    /// Aggregate sessions per second actually sustained.
    pub achieved_sessions_per_sec: f64,
    /// Wall-clock replay time (s).
    pub elapsed_s: f64,
    /// Server: records folded into windows.
    pub accepted: u64,
    /// Server: rejected records (must be 0 for a clean sweep).
    pub rejected: u64,
}

/// Combined wire-format comparison: one headline run per mode plus a
/// binary connections × workers grid, all against self-hosted
/// in-process servers over real loopback TCP, and a per-stage profile
/// of the ingest hot path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Sessions replayed per run.
    pub sessions: u64,
    /// Parallel data connections per run.
    pub connections: u64,
    /// Server workers for the headline runs.
    pub server_workers: u64,
    /// Logical cores on the measuring host (0 in reports from before
    /// this field). Multi-worker speedups are only physically possible
    /// when this exceeds 1 — read the scaling grid against it.
    #[serde(default)]
    pub host_cores: u64,
    /// Headline JSONL run.
    pub jsonl: LoadReport,
    /// Headline binary run (same sessions, same server geometry).
    pub binary: LoadReport,
    /// `binary.achieved_sessions_per_sec / jsonl.achieved_sessions_per_sec`.
    pub binary_speedup: f64,
    /// Aggregate binary throughput over the
    /// [`SCALING_CONNECTIONS`] × [`SCALING_WORKERS`] grid.
    pub binary_scaling: Vec<ScalingPoint>,
    /// Decode / route+enqueue / window-apply breakdown.
    #[serde(default)]
    pub stage_profile: crate::stage_profile::StageProfile,
    /// Long-horizon replay through the tiered window store (absent in
    /// reports from before the store existed).
    #[serde(default)]
    pub long_horizon: Option<LongHorizonReport>,
    /// Chaos recovery pass: a fixed-seed fault plan (wire cuts, torn
    /// record, stall, worker panic, injected ENOSPC) replayed with
    /// reconnect-and-resume, proving exactly-once recovery against a
    /// fault-free control (absent in reports from before chaos
    /// existed).
    #[serde(default)]
    pub chaos: Option<ChaosReport>,
    /// Multi-PoP fleet pass: a catchment-routed replay across a
    /// self-hosted fleet with one mid-run PoP kill, proving fleet-wide
    /// exactly-once accounting and bit-identity against a single-node
    /// control (absent in reports from before the fleet tier existed).
    #[serde(default)]
    pub fleet: Option<crate::fleet_run::FleetReport>,
}

/// What a long-horizon (multi-day event time) replay through the tiered
/// window store achieved, against an identical all-in-RAM control run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LongHorizonReport {
    /// Event-time windows the replay spanned.
    pub windows: u64,
    /// Sessions replayed into each server.
    pub sessions: u64,
    /// RAM retention of the spilling server (windows per worker); every
    /// older window lived only on disk at query time.
    pub retention_windows: u64,
    /// Segments on disk after the replay (post-compaction).
    pub segments: u64,
    /// Windows spilled past the retention horizon.
    pub spilled_windows: u64,
    /// Cells written into segments.
    pub spilled_cells: u64,
    /// Background compaction passes that ran.
    pub compactions: u64,
    /// Total bytes of live segments on disk.
    pub store_bytes: u64,
    /// Cells returned by the full-range query (disk + RAM merged).
    pub full_range_cells: u64,
    /// Cells returned by the historical half-horizon query (disk only).
    pub historical_cells: u64,
    /// Latency of the full-range `cells` query, ms.
    pub full_query_ms: f64,
    /// Latency of the historical range query, ms.
    pub historical_query_ms: f64,
    /// Process peak RSS (`VmHWM`, kB) right after the spilling replay.
    pub peak_rss_spill_kb: u64,
    /// Process peak RSS (kB) after the all-RAM control replay ran in
    /// the same process. `VmHWM` is monotonic, so this only exceeds
    /// [`LongHorizonReport::peak_rss_spill_kb`] if holding the whole
    /// horizon in RAM pushed the high-water mark beyond the spill run.
    pub peak_rss_all_ram_kb: u64,
    /// Full-range query rows from the spilling server are byte-for-byte
    /// identical (same serialized `f64` bits, same order) to the
    /// all-RAM control server's.
    pub bit_identical: bool,
}

/// Read a kB-denominated field (`VmHWM`, `VmRSS`, ...) from
/// `/proc/self/status`. Returns 0 where procfs is unavailable.
pub fn proc_status_kb(field: &str) -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with(field))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Stream every payload down one data connection, then block until the
/// server has processed them all. A single connection delivers in
/// order, so the replay is late-free by construction and needs none of
/// [`run`]'s cross-connection chunk barriers.
pub(crate) fn replay_single_connection(
    addr: std::net::SocketAddr,
    payloads: &[Vec<u8>],
    wire: WireMode,
) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut out = BufWriter::with_capacity(1 << 18, stream);
    if wire == WireMode::Binary {
        out.write_all(&preamble())?;
    }
    for payload in payloads {
        out.write_all(payload)?;
    }
    out.flush()?;
    drop(out);
    let mut control = LiveClient::connect(addr)?;
    wait_processed(&mut control, payloads.len() as u64)
}

pub(crate) fn render_rows(rows: &[CellLine]) -> Vec<String> {
    rows.iter().map(|c| serde_json::to_string(c).expect("cell line serializes")).collect()
}

pub(crate) fn timed_cells(
    client: &mut LiveClient,
    query: &CellQuery,
) -> io::Result<(Vec<CellLine>, f64)> {
    let start = Instant::now();
    let rows = client.cells_query(query)?;
    Ok((rows, start.elapsed().as_secs_f64() * 1e3))
}

/// Replay a long event-time horizon twice — once into a server whose
/// RAM retention is a small fraction of the horizon (everything older
/// spills to columnar segments under `spill_dir`), once into an all-RAM
/// control — and prove the disk+RAM merged query path returns
/// bit-identical rows while peak RSS stays bounded.
pub fn run_long_horizon(
    cfg: &LoadgenConfig,
    retention_windows: usize,
    spill_dir: &Path,
) -> io::Result<LongHorizonReport> {
    let lines = generate_lines(cfg);
    let payloads = render_payloads(cfg, &lines)?;
    drop(lines);
    let parser = Arc::new(WireParser::new(cfg.target_bps));
    let full = CellQuery { from_window: Some(0), ..CellQuery::default() };
    let horizon_mid = cfg.windows / 2;
    let historical = CellQuery { until_window: Some(horizon_mid), ..full };

    // Pass 1: tiered server. Aggressive compaction thresholds so a
    // bench-sized replay exercises the compactor, not just the spiller.
    let spill_server = hosted_builder(cfg, SUITE_WORKERS)
        .retention_windows(retention_windows)
        .spill_dir(spill_dir)
        .compact_min_segments(8)
        .compact_batch(4)
        .start(Arc::clone(&parser) as Arc<dyn edgeperf_live::LineParser>)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    replay_single_connection(spill_server.addr(), &payloads, cfg.wire)?;
    let peak_rss_spill_kb = proc_status_kb("VmHWM:");
    let mut control = LiveClient::connect(spill_server.addr())?;
    let store = control.store_stats()?;
    let (spilled_rows, full_query_ms) = timed_cells(&mut control, &full)?;
    let (historical_rows, historical_query_ms) = timed_cells(&mut control, &historical)?;
    control.shutdown()?;
    drop(control);
    let _ = spill_server.join();

    // Pass 2: all-RAM control with retention covering the whole horizon.
    let ram_server: ServerHandle = hosted_builder(cfg, SUITE_WORKERS)
        .retention_windows(cfg.windows as usize + 4)
        .start(parser)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    replay_single_connection(ram_server.addr(), &payloads, cfg.wire)?;
    let mut control = LiveClient::connect(ram_server.addr())?;
    let (ram_rows, _) = timed_cells(&mut control, &full)?;
    control.shutdown()?;
    drop(control);
    let _ = ram_server.join();

    Ok(LongHorizonReport {
        windows: u64::from(cfg.windows),
        sessions: payloads.len() as u64,
        retention_windows: retention_windows as u64,
        segments: store.segments,
        spilled_windows: store.spilled_windows,
        spilled_cells: store.spilled_cells,
        compactions: store.compactions,
        store_bytes: store.bytes,
        full_range_cells: spilled_rows.len() as u64,
        historical_cells: historical_rows.len() as u64,
        full_query_ms,
        historical_query_ms,
        peak_rss_spill_kb,
        peak_rss_all_ram_kb: proc_status_kb("VmHWM:"),
        bit_identical: render_rows(&spilled_rows) == render_rows(&ram_rows),
    })
}

/// Event-time windows for the suite's long-horizon pass: 10 days of the
/// paper's 15-minute windows.
pub const LONG_HORIZON_WINDOWS: u32 = 960;

/// RAM retention (windows per worker) for the suite's long-horizon
/// pass — under 1% of the horizon stays in memory.
pub const LONG_HORIZON_RETENTION: usize = 8;

/// Worker counts swept by [`run_suite`]'s binary scaling pass.
pub const SCALING_WORKERS: [usize; 3] = [1, 4, 16];

/// Connection counts swept by [`run_suite`]'s binary scaling pass.
pub const SCALING_CONNECTIONS: [usize; 2] = [1, 4];

/// Server workers for the suite's headline JSONL-vs-binary comparison.
pub const SUITE_WORKERS: usize = 4;

/// Logical cores available to this process.
pub fn host_cores() -> u64 {
    std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1)
}

/// The [`ServeBuilder`] every self-hosted server starts from: ephemeral
/// loopback port, `cfg`'s window geometry, metrics enabled.
pub(crate) fn hosted_builder(cfg: &LoadgenConfig, workers: usize) -> ServeBuilder {
    ServeBuilder::new()
        .addr("127.0.0.1:0")
        .workers(workers)
        .window_ms(cfg.window_ms)
        .lateness_ms(cfg.lateness_ms)
        .metrics(&Metrics::enabled())
}

/// Start an in-process [`edgeperf_live::LiveServer`] matching `cfg`'s
/// window geometry, replay into it over loopback TCP, drain it, and
/// report.
pub fn run_hosted(cfg: &LoadgenConfig, wire: WireMode, workers: usize) -> io::Result<LoadReport> {
    let server = hosted_builder(cfg, workers)
        .start(Arc::new(WireParser::new(cfg.target_bps)))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let run_cfg =
        LoadgenConfig { addr: server.addr().to_string(), wire, shutdown: true, ..cfg.clone() };
    let report = run(&run_cfg)?;
    let _ = server.join();
    Ok(report)
}

/// Run the full self-hosted comparison suite (see [`SuiteReport`]).
/// `cfg.addr` is ignored; each run gets a fresh ephemeral-port server.
pub fn run_suite(cfg: &LoadgenConfig) -> io::Result<SuiteReport> {
    let jsonl = run_hosted(cfg, WireMode::Jsonl, SUITE_WORKERS)?;
    let binary = run_hosted(cfg, WireMode::Binary, SUITE_WORKERS)?;
    let mut binary_scaling = Vec::with_capacity(SCALING_CONNECTIONS.len() * SCALING_WORKERS.len());
    for &connections in &SCALING_CONNECTIONS {
        for &workers in &SCALING_WORKERS {
            let grid_cfg = LoadgenConfig { connections, ..cfg.clone() };
            let r = run_hosted(&grid_cfg, WireMode::Binary, workers)?;
            binary_scaling.push(ScalingPoint {
                connections: connections as u64,
                workers: workers as u64,
                achieved_sessions_per_sec: r.achieved_sessions_per_sec,
                elapsed_s: r.elapsed_s,
                accepted: r.accepted,
                rejected: r.rejected,
            });
        }
    }
    let binary_speedup = if jsonl.achieved_sessions_per_sec > 0.0 {
        binary.achieved_sessions_per_sec / jsonl.achieved_sessions_per_sec
    } else {
        0.0
    };
    let stage_profile = crate::stage_profile::profile_stages(cfg, SUITE_WORKERS)?;

    // Long-horizon pass: 10 days of event time through the tiered
    // store, against an all-RAM control. Scoped to a throwaway spill
    // directory; session count capped so the suite stays minutes-scale.
    let horizon_cfg = LoadgenConfig {
        sessions: cfg.sessions.min(24_000),
        windows: LONG_HORIZON_WINDOWS,
        connections: 1,
        ..cfg.clone()
    };
    let spill_dir =
        std::env::temp_dir().join(format!("edgeperf-long-horizon-{}", std::process::id()));
    let long_horizon = run_long_horizon(&horizon_cfg, LONG_HORIZON_RETENTION, &spill_dir)?;
    let _ = std::fs::remove_dir_all(&spill_dir);

    // Chaos recovery pass: the suite's standard fault plan — two wire
    // cuts, a torn record, a worker panic, injected ENOSPC — replayed
    // with reconnect-and-resume against a fault-free control. Session
    // count capped: the pass proves exactness, not throughput.
    let chaos_cfg = LoadgenConfig {
        sessions: cfg.sessions.min(20_000),
        windows: 12,
        connections: 1,
        ..cfg.clone()
    };
    let chaos_plan = ChaosPlan::parse(&format!(
        "disconnect:500;torn:1200;stall:2500@400;panic:0@800;spillfail:0@3;seed:{}",
        cfg.seed
    ))
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let chaos_dir = std::env::temp_dir().join(format!("edgeperf-chaos-{}", std::process::id()));
    let chaos_opts = ChaosRunOpts {
        workers: SUITE_WORKERS,
        idle_timeout_ms: 200,
        spill: Some((chaos_dir.clone(), 2)),
        ..ChaosRunOpts::default()
    };
    let chaos = run_chaos(&chaos_cfg, &chaos_plan, &chaos_opts)?;
    let _ = std::fs::remove_dir_all(&chaos_dir);

    // Fleet pass: 3 PoPs behind a catchment coordinator, one PoP killed
    // an eighth of the way in (well inside the lateness/2 failover
    // budget), verified bit-identical against a single-node control.
    let fleet_cfg = LoadgenConfig {
        sessions: cfg.sessions.min(20_000),
        windows: 8,
        window_ms: 60_000.0,
        lateness_ms: 120_000.0,
        connections: 1,
        ..cfg.clone()
    };
    let fleet_plan = edgeperf_fleet::FleetChaosPlan::parse(&format!(
        "kill:1@{};seed:{}",
        fleet_cfg.sessions / 16,
        cfg.seed
    ))
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let fleet_opts = crate::fleet_run::FleetRunOpts { pops: 3, workers: 2, plan: fleet_plan };
    let fleet = crate::fleet_run::run_fleet(&fleet_cfg, &fleet_opts)?;

    Ok(SuiteReport {
        sessions: cfg.sessions as u64,
        connections: cfg.connections.max(1) as u64,
        server_workers: SUITE_WORKERS as u64,
        host_cores: host_cores(),
        jsonl,
        binary,
        binary_speedup,
        binary_scaling,
        stage_profile,
        long_horizon: Some(long_horizon),
        chaos: Some(chaos),
        fleet: Some(fleet),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadgen_replays_into_a_live_server_without_drops() {
        let server = ServeBuilder::new()
            .workers(2)
            .queue_capacity(512)
            .metrics(&Metrics::enabled())
            .start(Arc::new(WireParser::new(HD_GOODPUT_BPS)))
            .expect("server starts");
        let cfg = LoadgenConfig {
            addr: server.addr().to_string(),
            sessions: 2_000,
            connections: 2,
            groups: 16,
            windows: 4,
            ping_interval_ms: 1,
            shutdown: true,
            ..LoadgenConfig::default()
        };
        let report = run(&cfg).expect("replay succeeds");
        let final_snap = server.join();
        assert!(report.drained);
        assert_eq!(report.sessions, 2_000);
        assert_eq!(report.accepted, 2_000, "every session ingested: {report:?}");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.late, 0);
        assert_eq!(report.groups, 16);
        // 4 event-time windows on each of 2 worker rings.
        assert!(report.windows_closed >= 8, "windows closed: {report:?}");
        assert!(report.pings > 0);
        assert!(report.p99_ingest_latency_ms >= report.p50_ingest_latency_ms);
        assert_eq!(final_snap.accepted, 2_000);
    }

    #[test]
    fn loadgen_replays_binary_frames_without_drops() {
        let cfg = LoadgenConfig {
            sessions: 2_000,
            connections: 2,
            groups: 16,
            windows: 4,
            ping_interval_ms: 1,
            ..LoadgenConfig::default()
        };
        let report = run_hosted(&cfg, WireMode::Binary, 2).expect("binary replay succeeds");
        assert_eq!(report.wire, "binary");
        assert!(report.drained);
        assert_eq!(report.sessions, 2_000);
        assert_eq!(report.accepted, 2_000, "every frame ingested: {report:?}");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.late, 0);
        assert_eq!(report.groups, 16);
        assert!(report.windows_closed >= 8, "windows closed: {report:?}");
    }

    #[test]
    fn long_horizon_spill_matches_all_ram_bit_for_bit() {
        let cfg = LoadgenConfig {
            sessions: 3_000,
            connections: 1,
            groups: 16,
            windows: 48,
            ..LoadgenConfig::default()
        };
        let spill_dir =
            std::env::temp_dir().join(format!("edgeperf-loadgen-horizon-{}", std::process::id()));
        let report = run_long_horizon(&cfg, 4, &spill_dir).expect("long-horizon run");
        std::fs::remove_dir_all(&spill_dir).expect("spill dir cleanup");
        assert!(report.bit_identical, "spilled query drifted from RAM: {report:?}");
        assert!(report.spilled_windows > 0, "nothing spilled: {report:?}");
        assert!(report.segments > 0);
        assert!(report.full_range_cells > 0);
        assert!(report.historical_cells > 0);
        assert!(report.historical_cells <= report.full_range_cells);
        assert!(report.peak_rss_spill_kb > 0, "procfs RSS available on CI hosts");
    }

    #[test]
    fn chaos_replay_recovers_exactly_and_matches_clean_run() {
        let cfg = LoadgenConfig {
            sessions: 2_000,
            connections: 1,
            groups: 16,
            windows: 4,
            seed: 7,
            ..LoadgenConfig::default()
        };
        let plan = ChaosPlan::parse("disconnect:50;torn:120;stall:400@50;panic:0@300;seed:7")
            .expect("valid plan");
        let report =
            run_chaos(&cfg, &plan, &ChaosRunOpts { workers: 2, ..ChaosRunOpts::default() })
                .expect("chaos replay");
        assert_eq!(report.acked, 2_000, "every record acked exactly once: {report:?}");
        assert_eq!(report.accepted, 2_000, "no double-counts, no losses: {report:?}");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.worker_lost_records, 0, "scripted panics are clean: {report:?}");
        assert!(report.reconnects >= 2, "disconnect + torn both force reconnects: {report:?}");
        assert_eq!(report.injected_disconnects, 1);
        assert_eq!(report.injected_torn, 1);
        assert_eq!(report.injected_stalls, 1);
        assert_eq!(report.worker_recovered, 1, "worker 0 panicked once: {report:?}");
        assert_eq!(report.truncated_tails, 1, "the torn record's tail was dropped: {report:?}");
        assert!(report.bit_identical_to_clean, "chaos cells drifted from clean: {report:?}");
    }

    #[test]
    fn generated_lines_are_monotone_in_event_time() {
        let cfg = LoadgenConfig { sessions: 100, ..LoadgenConfig::default() };
        let lines = generate_lines(&cfg);
        assert_eq!(lines.len(), 100);
        let mut last = f64::NEG_INFINITY;
        for line in &lines {
            let w: WireSession = serde_json::from_str(line).expect("valid wire line");
            assert!(w.ts_ms > last);
            last = w.ts_ms;
            assert!(!w.session.responses.is_empty());
            assert!(w.session.responses.len() <= cfg.max_txns);
        }
    }
}
